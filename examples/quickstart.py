"""Quickstart: build the testbed, poke at the data, run one query.

Run with::

    python examples/quickstart.py
"""

from repro.catalogs import build_testbed
from repro.core import get_query, gold_answer
from repro.systems import thalia_mediator
import repro.xquery as xquery
from repro.xmlmodel import serialize_pretty


def main() -> None:
    # 1. Build the testbed: 25 university catalogs are rendered to HTML
    #    snapshots and scraped back into XML, exactly as THALIA's cached
    #    snapshots + TESS pipeline did.
    testbed = build_testbed()
    print(f"Testbed built: {len(testbed)} sources "
          f"({', '.join(testbed.slugs[:6])}, ...)\n")

    # 2. Look at one extracted document and its inferred XML Schema
    #    (the paper's Figure 3, for Brown University).
    brown = testbed.source("brown")
    print("First Brown course as extracted XML:")
    print(serialize_pretty(brown.document.root.find("Course"),
                           xml_declaration=False))

    # 3. Compile a benchmark query once, then run it against the testbed.
    #    The plan is reusable, inspectable, and byte-identical to the
    #    interpreter (DESIGN.md §8).
    query = get_query(1)  # Synonyms: Instructor vs. Lecturer
    print(f"Benchmark Query {query.number} ({query.name}):")
    print(query.xquery)
    plan = xquery.compile(query.xquery)
    results = plan.execute(testbed.documents)
    print(f"-> {len(results)} result(s) from the reference source "
          f"({query.reference})")
    print(plan.explain() + "\n")

    # 4. The same query through the full mediator resolves the challenge
    #    source too, matching the gold answer.
    system = thalia_mediator()
    attempt = system.answer(query, testbed)
    print(f"THALIA mediator answer: {sorted(attempt.answer)}")
    print(f"Gold answer:            {sorted(gold_answer(query, testbed))}")
    assert attempt.answer == gold_answer(query, testbed)
    print("mediator answer matches gold ✓")


if __name__ == "__main__":
    main()
