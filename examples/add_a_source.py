"""Add a new source to the testbed and integrate it.

The paper closes §3.1 noting the testbed keeps growing ("we are still
adding new data sources"). This example walks the full pipeline for a new
university: declare its profile, render and scrape its snapshot, write a
local→global mapping, and query the integrated result next to CMU's.

Run with::

    python examples/add_a_source.py
"""

from repro.catalogs import build_testbed
from repro.catalogs.universities import GenericSpec, GenericUniversity
from repro.catalogs.testbed import build_source
from repro.integration import generic_mapping, standard_mediator
from repro.xmlmodel import serialize_pretty


def main() -> None:
    # 1. Declare the new source. Tag vocabulary, layout and clock are the
    #    knobs that make it heterogeneous with the rest of the testbed.
    spec = GenericSpec(
        slug="tudelft",
        name="Delft University of Technology",
        country="Netherlands",
        layout="blocks",
        code_tag="Vaknummer",
        title_tag="Vaknaam",
        instructor_tag="Docent",
        time_tag="Tijdstip",
        room_tag="Zaal",
        units_tag="ECTS",
        clock="24h",
        code_prefix="IN", code_start=4001,
        course_count=8,
    )
    profile = GenericUniversity(spec)

    # 2. Run the snapshot -> TESS -> XML pipeline for it.
    bundle = build_source(profile, seed=2004)
    print(f"{profile.name}: extracted {bundle.stats.records} courses")
    print("First extracted record:")
    print(serialize_pretty(bundle.document.root.find("Course"),
                           xml_declaration=False))

    # 3. Extend the standard mediator with a mapping for the new source
    #    (derived from the spec; hand-written mappings work the same way).
    mediator = standard_mediator()
    mediator.register(generic_mapping(profile))

    # 4. Integrate the new source together with an existing one.
    testbed = build_testbed()
    documents = dict(testbed.documents)
    documents["tudelft"] = bundle.document
    courses = mediator.integrate(documents, ["cmu", "tudelft"])
    print(f"\nIntegrated {len(courses)} courses from cmu + tudelft.")

    # 5. Query the integrated result through the global schema.
    afternoon = [c for c in courses
                 if c.start_minute is not None and c.start_minute >= 15 * 60]
    print("Courses starting at or after 15:00, across both schemas:")
    for course in afternoon:
        print(f"  [{course.source}] {course.code}: {course.title} "
              f"({course.time_range_24h()})")


if __name__ == "__main__":
    main()
