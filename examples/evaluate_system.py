"""Evaluate integration systems on the THALIA benchmark (paper §4.2).

Reproduces the paper's evaluation of Cohera and IWIZ, adds the full THALIA
mediator, and shows how to score *your own* system by declaring its
capability profile.

Run with::

    python examples/evaluate_system.py
"""

from repro.catalogs import build_testbed
from repro.core import (
    HonorRoll,
    render_query_matrix,
    render_scoreboard,
    render_system_table,
    run_all,
    run_benchmark,
)
from repro.integration import Capability, Effort
from repro.systems import CapabilityModelSystem, cohera, iwiz, thalia_mediator


def main() -> None:
    testbed = build_testbed()

    # The paper's two systems plus this repository's mediator.
    cards = run_all([cohera(), iwiz(), thalia_mediator()], testbed)
    for card in cards:
        print(render_system_table(card))
        print()
    print(render_query_matrix(cards))
    print()
    print(render_scoreboard(cards))
    print()

    # Your own system: declare what it can do and at what cost. This toy
    # "SchemaMatcher2004" handles renaming and structure but nothing
    # value-level.
    my_system = CapabilityModelSystem(
        name="SchemaMatcher2004",
        profile={
            Capability.RENAME: Effort.NONE,
            Capability.RESTRUCTURE: Effort.LOW,
            Capability.SET_HANDLING: Effort.LOW,
            Capability.UNION_TYPE: Effort.MEDIUM,
        })
    my_card = run_benchmark(my_system, testbed)
    print(render_system_table(my_card))
    print()

    # Upload everything to the honor roll, as the web site's
    # 'Upload Your Scores' button would.
    roll = HonorRoll()
    for card in cards + [my_card]:
        roll.submit(card, submitter="examples/evaluate_system.py")
    print(roll.render())


if __name__ == "__main__":
    main()
