"""IWIZ's warehouse route: integrate once, query with plain XQuery.

Materializes the global schema for the whole testbed, then answers all
twelve benchmark queries as ordinary XQuery over ``doc("warehouse")`` —
"answered quickly and efficiently without connecting to the sources"
(paper §4.2 on IWIZ).

Run with::

    python examples/warehouse_queries.py
"""

from repro.catalogs import build_testbed
from repro.core import QUERIES, gold_answer
from repro.core.global_queries import global_query_text, run_global_query
from repro.integration import Warehouse, standard_mediator


def main() -> None:
    testbed = build_testbed()
    warehouse = Warehouse(standard_mediator(), testbed.documents)
    print(f"Warehouse materialized: {len(warehouse)} integrated courses "
          f"from {len(testbed)} sources.\n")

    # Ad-hoc exploration: plain XQuery with the UDF library available.
    print("Ad-hoc: German-language database courses above 10 credit hours:")
    rows = warehouse.query(
        "for $c in doc('warehouse')/warehouse/Course "
        "where $c/@language = 'de' "
        "and udf:matches-term($c/Title, 'database') "
        "and $c/Units > 10 "
        "return $c/Title")
    for row in rows:
        print(f"  {row.text}")
    print()

    # The full benchmark through the warehouse.
    print("Benchmark queries through the warehouse:")
    for query in QUERIES:
        answer = run_global_query(query, warehouse)
        gold = gold_answer(query, testbed)
        verdict = "matches gold" if answer == gold else "MISMATCH"
        print(f"  Q{query.number:>2} ({query.name}): "
              f"{len(answer)} answer tuple(s) — {verdict}")

    print("\nSample global-schema query text (Q4):")
    print(global_query_text(4))


if __name__ == "__main__":
    main()
