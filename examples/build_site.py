"""Generate the THALIA web site (paper Fig. 4) with live scores.

Builds the testbed, scores the three systems, and writes the full static
site — catalog browser, data/schema browser, benchmark downloads, honor
roll — under ``./thalia_site``.

Run with::

    python examples/build_site.py
"""

from pathlib import Path

from repro.catalogs import build_testbed
from repro.core import HonorRoll, run_all
from repro.systems import cohera, iwiz, thalia_mediator
from repro.website import SiteGenerator


def main() -> None:
    testbed = build_testbed()

    roll = HonorRoll()
    for card in run_all([cohera(), iwiz(), thalia_mediator()], testbed):
        roll.submit(card, submitter="examples/build_site.py",
                    date="2004-08-01")

    target = Path("thalia_site")
    root = SiteGenerator(testbed, roll).build(target)
    pages = sorted(p.relative_to(root) for p in root.rglob("*.html"))
    zips = sorted(p.name for p in (root / "downloads").glob("*.zip"))

    print(f"Site written under {root}/ ({len(pages)} pages)")
    print(f"Download bundles: {', '.join(zips)}")
    print(f"Open {root / 'index.html'} in a browser.")


if __name__ == "__main__":
    main()
