"""Two of the paper's integration mechanisms, hands-on.

1. **Query rewriting** (§3.2: "benchmark queries may need to be translated
   into the native language of the integration system"): Q1's reference
   query is rewritten for CMU's schema, Q5's for ETH's German schema with
   translated LIKE patterns.
2. **External functions** (§3.2 scoring: low/medium/high complexity):
   the UDF library answers Q4 — the query Cohera and IWIZ cannot do —
   directly in XQuery, at the cost the scoring function is built to
   expose.

Run with::

    python examples/rewrite_and_udfs.py
"""

from repro.catalogs import build_testbed
from repro.core import get_query
from repro.integration import QueryRewriter, q1_rules, q5_rules
from repro.integration.udfs import efforts_used, udf_registry
from repro.xquery import run_query


def main() -> None:
    testbed = build_testbed()
    documents = testbed.documents

    # --- 1. Rewrite Q1 (synonyms) for the challenge schema --------------
    q1 = get_query(1)
    print(f"Q1 reference query (against {q1.reference}):")
    print(q1.xquery)
    rewritten = QueryRewriter(q1_rules()).rewrite(q1.xquery)
    print(f"\nrewritten for {q1.challenge}:")
    print(rewritten)
    results = run_query(rewritten, documents)
    print(f"-> finds {[r.findtext('CourseNum') for r in results]} "
          "(the paper's 15-567* sample)\n")

    # --- 2. Rewrite Q5 (language) with pattern translation ---------------
    q5 = get_query(5)
    variants = QueryRewriter(q5_rules()).rewrite_all(q5.xquery)
    print(f"Q5 produces {len(variants)} rewrite variants "
          "(one per German equivalent of 'Database'):")
    found = set()
    for variant in variants:
        for result in run_query(variant, documents):
            found.add(result.findtext("Titel"))
    print(f"-> union of variant results: {sorted(found)}\n")

    # --- 3. Answer Q4 with an external function --------------------------
    registry = udf_registry()
    source = (
        "for $b in doc('eth.xml')/eth/Vorlesung "
        "where udf:workload-units($b/Umfang) > 10 "
        "and udf:matches-term($b/Titel, 'database') "
        "return $b/Titel")
    print("Q4 against ETH via external functions:")
    print(source)
    results = run_query(source, documents, functions=registry)
    print(f"-> {[r.text for r in results]}")
    charged = efforts_used(source)
    total = sum(int(effort) for _, effort in charged)
    print(f"external functions used: "
          f"{', '.join(name for name, _ in charged)} "
          f"(complexity charged: {total})")


if __name__ == "__main__":
    main()
