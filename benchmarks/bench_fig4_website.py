"""Experiment fig4 — Figure 4: the THALIA web site home page.

Figure 4 shows the site with its left-hand navigation: University Course
Catalogs, Browse Data and Schema, Run Benchmark (three downloads), Upload
Your Scores / Honor Roll. The bench regenerates the full static site and
verifies every interface option exists.
"""

from repro.core import HonorRoll, run_all
from repro.systems import cohera, iwiz, thalia_mediator
from repro.website import SiteGenerator


def test_fig4_website(benchmark, paper_testbed, tmp_path_factory):
    roll = HonorRoll()
    for card in run_all([cohera(), iwiz(), thalia_mediator()],
                        paper_testbed):
        roll.submit(card, submitter="bench")

    counter = iter(range(10 ** 6))

    def _build():
        target = tmp_path_factory.mktemp(f"site{next(counter)}")
        return SiteGenerator(paper_testbed, roll).build(target)

    root = benchmark.pedantic(_build, rounds=3, iterations=1)

    home = (root / "index.html").read_text()
    for option in ("University Course Catalogs", "Browse Data and Schema",
                   "Run Benchmark", "Honor Roll"):
        assert option in home

    # All three download options of §2.2.
    downloads = {p.name for p in (root / "downloads").glob("*.zip")}
    assert downloads == {"thalia_catalogs.zip",
                         "thalia_benchmark_queries.zip",
                         "thalia_sample_solutions.zip"}

    # Per-source browse pages and per-query benchmark pages.
    assert len(list((root / "catalogs").glob("*.html"))) == \
        len(paper_testbed) + 1
    assert len(list((root / "benchmark").glob("query*.html"))) == 12

    pages = len(list(root.rglob("*.html")))
    print(f"\n[fig4] site regenerated: {pages} pages, "
          f"{len(downloads)} download bundles, honor roll with "
          f"{len(roll)} entries")
