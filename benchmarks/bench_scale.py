"""Scale-tier macro bench: the XML-core fast paths vs the legacy paths.

For each requested scale this script builds the paper testbed at
``scale=N`` and times the build+query macro both ways:

* **legacy** — the pre-optimization code paths, kept here as clearly
  labeled local copies where the tree has moved on: the recursive
  serializer with unguarded escape chains, a *separate* sha256 pass over
  the serialized text (how ``document_hash`` used to work), the
  validating (untrusted) parse for reloads, and the per-call
  ``parse_query`` + ``evaluate`` interpreter for the twelve queries.
* **fast** — what the tree ships now: the guarded iterative serializer
  with its ride-along digest (:func:`serialize_digest`), the trusted
  parse path, and warm index-backed plans from a
  :class:`~repro.xquery.plan_cache.PlanCache`.

Correctness gates run before any timing is trusted: serializations must
be byte-identical, trusted and validating parses must build equal trees,
plan results must match the interpreter, and — the scale-tier invariant —
every query's plan answers at scale N must be identical to its answers
at scale 1.  Any divergence exits non-zero so CI fails loudly.

Usage::

    PYTHONPATH=src python benchmarks/bench_scale.py            # scales 1 8 32
    PYTHONPATH=src python benchmarks/bench_scale.py --scale 4 --repeat 1

The default (full) run is what ``BENCH_scale.json`` in the repo records;
the acceptance headline is the macro speedup at scale 8.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
import time
from pathlib import Path

from repro.catalogs import build_testbed, paper_universities
from repro.core import QUERIES
from repro.xmlmodel import XmlElement, parse_xml, serialize, serialize_digest
from repro.xquery import PlanCache
from repro.xquery.context import DynamicContext
from repro.xquery.errors import XQueryError
from repro.xquery.evaluator import evaluate
from repro.xquery.parser import parse_query

DEFAULT_SCALES = (1, 8, 32)
_XML_DECLARATION = '<?xml version="1.0" encoding="UTF-8"?>'


# --------------------------------------------------------------------------- #
# Legacy code paths (local copies of the pre-optimization implementations)
# --------------------------------------------------------------------------- #

def _legacy_escape_text(value: str) -> str:
    return (value.replace("&", "&amp;")
                 .replace("<", "&lt;")
                 .replace(">", "&gt;"))


def _legacy_escape_attr(value: str) -> str:
    return (value.replace("&", "&amp;")
                 .replace("<", "&lt;")
                 .replace(">", "&gt;")
                 .replace('"', "&quot;")
                 .replace("\n", "&#10;")
                 .replace("\t", "&#9;"))


def _legacy_open_tag(node: XmlElement, self_closing: bool) -> str:
    attrs = "".join(
        f' {key}="{_legacy_escape_attr(value)}"'
        for key, value in node.attrib.items())
    return f"<{node.tag}{attrs}{'/' if self_closing else ''}>"


def _legacy_serialize_node(node: XmlElement, parts: list[str]) -> None:
    if not node.children:
        parts.append(_legacy_open_tag(node, self_closing=True))
        return
    parts.append(_legacy_open_tag(node, self_closing=False))
    for child in node.children:
        if isinstance(child, str):
            parts.append(_legacy_escape_text(child))
        else:
            _legacy_serialize_node(child, parts)
    parts.append(f"</{node.tag}>")


def _legacy_serialize(document) -> str:
    parts = [_XML_DECLARATION + "\n"]
    _legacy_serialize_node(document.root, parts)
    return "".join(parts)


def _legacy_serialize_and_hash(documents) -> list[str]:
    """Pre-PR save path: the store serialized and hashed each document,
    then ``Testbed.document_hash`` re-serialized and re-hashed the same
    tree for the fingerprint memo — nothing primed it."""
    hashes = []
    for document in documents.values():
        stored = _legacy_serialize(document)
        hashlib.sha256(stored.encode("utf-8")).hexdigest()
        fingerprinted = _legacy_serialize(document)
        hashes.append(
            hashlib.sha256(fingerprinted.encode("utf-8")).hexdigest())
    return hashes


def _fast_serialize_and_hash(documents) -> list[str]:
    """Shipping save path: one walk emits text and digest together, and
    the digest primes ``document_hash`` so the fingerprint is free."""
    return [serialize_digest(document, xml_declaration=True)[1]
            for document in documents.values()]


def _render(seq):
    return [serialize(item) if isinstance(item, XmlElement) else repr(item)
            for item in seq]


def _interpreted_once(source, documents):
    try:
        return _render(evaluate(parse_query(source),
                                DynamicContext(documents=documents)))
    except XQueryError as exc:
        return ["raised", type(exc).__name__]


def _planned_once(plan, documents):
    try:
        return _render(plan.execute(documents))
    except XQueryError as exc:
        return ["raised", type(exc).__name__]


def _time_ns(fn, repeat):
    """Best-of-``repeat`` wall time for one call of ``fn``."""
    best = None
    for _ in range(repeat):
        start = time.perf_counter_ns()
        fn()
        elapsed = time.perf_counter_ns() - start
        if best is None or elapsed < best:
            best = elapsed
    return best


# --------------------------------------------------------------------------- #
# One scale tier
# --------------------------------------------------------------------------- #

def bench_scale(scale, repeat, warmup, reference_answers):
    """Time the macro at one scale; returns (row, divergences)."""
    divergences = []

    build_start = time.perf_counter()
    testbed = build_testbed(universities=paper_universities(), scale=scale)
    build_s = time.perf_counter() - build_start
    documents = testbed.documents
    plans = PlanCache()

    # -- correctness gates ------------------------------------------------ #
    exact_texts = {slug: serialize(doc, xml_declaration=True)
                   for slug, doc in documents.items()}
    for slug, doc in documents.items():
        if _legacy_serialize(doc) != exact_texts[slug]:
            divergences.append(f"scale {scale}: serializer drift on {slug}")
        if parse_xml(exact_texts[slug], trusted=True) != parse_xml(
                exact_texts[slug]):
            divergences.append(f"scale {scale}: trusted parse drift on {slug}")

    answers = {}
    for query in QUERIES:
        plan = plans.get(query.xquery)
        planned = _planned_once(plan, documents)
        if planned != _interpreted_once(query.xquery, documents):
            divergences.append(
                f"scale {scale}: Q{query.number} plan != interpreter")
        answers[query.number] = planned
    if reference_answers is not None:
        for number, expected in reference_answers.items():
            if answers[number] != expected:
                divergences.append(
                    f"scale {scale}: Q{number} diverged from scale-1 answers")

    # -- timings ---------------------------------------------------------- #
    def legacy_queries():
        for query in QUERIES:
            _interpreted_once(query.xquery, documents)

    def fast_queries():
        for query in QUERIES:
            _planned_once(plans.get(query.xquery), documents)

    def legacy_reload():
        for text in exact_texts.values():
            parse_xml(text)

    def fast_reload():
        for text in exact_texts.values():
            parse_xml(text, trusted=True)

    stages = {
        "serialize_hash": (lambda: _legacy_serialize_and_hash(documents),
                           lambda: _fast_serialize_and_hash(documents)),
        "reload_parse": (legacy_reload, fast_reload),
        "queries": (legacy_queries, fast_queries),
    }
    row = {
        "scale": scale,
        "build_s": round(build_s, 4),
        "documents": len(documents),
        "courses": sum(len(testbed.courses(slug)) for slug in testbed.slugs),
        "stages": {},
    }
    legacy_total = fast_total = 0
    for name, (legacy_fn, fast_fn) in stages.items():
        for _ in range(warmup):
            legacy_fn()
            fast_fn()
        legacy_ns = _time_ns(legacy_fn, repeat)
        fast_ns = _time_ns(fast_fn, repeat)
        legacy_total += legacy_ns
        fast_total += fast_ns
        row["stages"][name] = {
            "legacy_ns": legacy_ns,
            "fast_ns": fast_ns,
            "speedup": round(legacy_ns / fast_ns, 2),
        }
    row["macro_legacy_ns"] = legacy_total
    row["macro_fast_ns"] = fast_total
    row["macro_speedup"] = round(legacy_total / fast_total, 2)
    row["answers_identical"] = not divergences
    return row, divergences, answers


def run_bench(scales, repeat, warmup):
    rows = []
    all_divergences = []
    reference_answers = None
    for scale in scales:
        row, divergences, answers = bench_scale(
            scale, repeat, warmup, reference_answers)
        if reference_answers is None:
            reference_answers = answers
        rows.append(row)
        all_divergences.extend(divergences)
    headline = next((row for row in rows if row["scale"] >= 8), rows[-1])
    return {
        "bench": "bench_scale",
        "repeat": repeat,
        "scales": [row["scale"] for row in rows],
        "tiers": rows,
        "headline_scale": headline["scale"],
        "headline_macro_speedup": headline["macro_speedup"],
        "all_identical": not all_divergences,
        "divergences": all_divergences,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Time the scale-tier build+query macro: legacy XML-core "
                    "paths vs the shipping fast paths.")
    parser.add_argument("--scale", type=int, action="append", default=None,
                        metavar="N",
                        help="scale tier to bench (repeatable; default "
                             f"{' '.join(map(str, DEFAULT_SCALES))}). The "
                             "scale-1 reference answers are always computed.")
    parser.add_argument("--repeat", type=int, default=5, metavar="R",
                        help="best-of-R timing repetitions (default 5)")
    parser.add_argument("--out", default=None, metavar="FILE",
                        help="write the JSON report here "
                             "(default: BENCH_scale.json at the repo root)")
    args = parser.parse_args(argv)

    scales = sorted(set(args.scale)) if args.scale else list(DEFAULT_SCALES)
    if 1 not in scales:
        # Scale-1 always runs first: it provides the reference answers
        # every other tier is checked against.
        scales = [1] + scales
    repeat = max(1, args.repeat)
    warmup = 1 if repeat <= 2 else 2

    report = run_bench(scales, repeat, warmup)

    out = Path(args.out) if args.out else \
        Path(__file__).resolve().parent.parent / "BENCH_scale.json"
    # Re-emit through the perf schema so the trajectory file validates
    # against the `thalia perf` tooling (see repro.perf.schema).
    from repro.perf.schema import KIND_BENCH, stamp
    out.write_text(json.dumps(stamp(KIND_BENCH, report), indent=2) + "\n",
                   encoding="utf-8")

    print(f"[bench_scale] repeat={repeat} scales={report['scales']}")
    for row in report["tiers"]:
        flag = "ok " if row["answers_identical"] else "DIVERGED"
        stages = "  ".join(
            f"{name} x{stage['speedup']}"
            for name, stage in row["stages"].items())
        print(f"  scale {row['scale']:>3}  {flag}  "
              f"build {row['build_s']:7.3f}s  "
              f"macro {row['macro_legacy_ns'] / 1e6:9.2f} -> "
              f"{row['macro_fast_ns'] / 1e6:9.2f} ms  "
              f"x{row['macro_speedup']}  ({stages})")
    print(f"[bench_scale] headline: x{report['headline_macro_speedup']} "
          f"at scale {report['headline_scale']} -> {out}")

    if report["divergences"]:
        print("[bench_scale] FAIL:", file=sys.stderr)
        for line in report["divergences"]:
            print(f"  {line}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
