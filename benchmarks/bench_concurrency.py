"""Parallel-runner + result-cache speedup bench.

Three measurements over the nine paper-pinned sources:

* **legacy serial** — the pre-PR-4 cost model: every (system, query)
  cell recomputes its gold answer and its per-source integrations from
  scratch (the shared :class:`~repro.xquery.results.ResultCache` is
  cleared before each cell, which is exactly what not having one meant);
* **parallel cold** — ``run_all(workers=4)`` from an empty result
  cache: gold answers computed once per query and shared across all
  systems, per-source integrations shared across queries and systems;
* **repeat warm** — the same ``run_all`` again with the cache hot: the
  marginal cost of re-scoring identical inputs.

Score cards from every mode are checked byte-identical (``to_json``)
before any timing is trusted; divergence exits non-zero so the CI
``concurrency-smoke`` job fails loudly.  A microbench also times one
query's cold execution against a warm ResultCache hit.

Usage::

    PYTHONPATH=src python benchmarks/bench_concurrency.py [--smoke] [--out F]

``--smoke`` runs single repetitions and enforces only the determinism
invariant (timing thresholds flake on loaded CI boxes); the full run is
what BENCH_concurrency.json in the repo records and *does* enforce the
headline numbers (≥2× parallel, ≥10× warm hit).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.catalogs import build_testbed, paper_universities
from repro.core import QUERIES, run_all
from repro.core.runner import run_query
from repro.core.scoring import ScoreCard
from repro.systems import cohera, iwiz, thalia_mediator
from repro.xquery import shared_plan_cache
from repro.xquery.results import ResultCache, shared_result_cache

WORKERS = 4


def _systems():
    return [cohera(), iwiz(), thalia_mediator()]


def legacy_run_all(testbed) -> list[ScoreCard]:
    """The pre-reuse harness: no result sharing between cells.

    Clearing the shared cache before every (system, query) pair forces
    each cell to recompute its gold answer and both source integrations,
    which is what every run cost before the ResultCache existed.
    """
    cache = shared_result_cache()
    cards = []
    for system in _systems():
        card = ScoreCard(system=system.name)
        for query in QUERIES:
            cache.clear()
            card.outcomes.append(run_query(system, query, testbed))
        cards.append(card)
    cache.clear()
    return cards


def _best_ns(fn, repeat):
    best = None
    for _ in range(repeat):
        start = time.perf_counter_ns()
        result = fn()
        elapsed = time.perf_counter_ns() - start
        if best is None or elapsed < best:
            best = elapsed
            kept = result
    return best, kept


def _cards_json(cards):
    return [card.to_json() for card in cards]


def bench_run_all(testbed, repeat):
    legacy_ns, legacy_cards = _best_ns(
        lambda: legacy_run_all(testbed), repeat)

    def parallel_cold():
        shared_result_cache().clear()
        return run_all(_systems(), testbed, workers=WORKERS)

    parallel_ns, parallel_cards = _best_ns(parallel_cold, repeat)

    # Cache left hot by the cold run: the marginal cost of a repeat.
    warm_ns, warm_cards = _best_ns(
        lambda: run_all(_systems(), testbed, workers=WORKERS), repeat)

    serial_cold_ns, serial_cards = _best_ns(
        lambda: (shared_result_cache().clear(),
                 run_all(_systems(), testbed, workers=1))[1], repeat)

    reference = _cards_json(legacy_cards)
    divergent = [name for name, cards in [
        ("parallel_cold", parallel_cards),
        ("repeat_warm", warm_cards),
        ("serial_cold", serial_cards),
    ] if _cards_json(cards) != reference]

    return {
        "systems": [system.name for system in _systems()],
        "queries": len(QUERIES),
        "workers": WORKERS,
        "legacy_serial_ns": legacy_ns,
        "serial_cold_ns": serial_cold_ns,
        "parallel_cold_ns": parallel_ns,
        "repeat_warm_ns": warm_ns,
        "speedup_parallel_vs_legacy": round(legacy_ns / parallel_ns, 2),
        "speedup_serial_vs_legacy": round(legacy_ns / serial_cold_ns, 2),
        "speedup_warm_vs_legacy": round(legacy_ns / warm_ns, 2),
        "byte_identical": not divergent,
        "divergent_modes": divergent,
    }


def bench_warm_hit(testbed, repeat):
    """One query through the ResultCache: cold execution vs warm probe."""
    plan = shared_plan_cache().get(QUERIES[4].xquery)   # Q5, two sources
    documents = testbed.documents
    content_fp = testbed.content_fingerprint()
    cache = ResultCache()

    def cold():
        cache.clear()
        return cache.execute(plan, documents, content_fp)

    cold_ns, cold_result = _best_ns(cold, repeat)
    cache.clear()
    warm_reference = cache.execute(plan, documents, content_fp)  # prime
    warm_ns, warm_result = _best_ns(
        lambda: cache.execute(plan, documents, content_fp),
        max(repeat * 10, 20))

    return {
        "query": f"Q{QUERIES[4].number}",
        "cold_exec_ns": cold_ns,
        "warm_hit_ns": warm_ns,
        "warm_speedup": round(cold_ns / warm_ns, 2),
        "identical": warm_result is warm_reference is cold_result
        or warm_result == cold_result,
    }


def run_bench(smoke=False):
    repeat = 1 if smoke else 3
    testbed = build_testbed(universities=paper_universities())
    report = {
        "bench": "bench_concurrency",
        "mode": "smoke" if smoke else "full",
        "repeat": repeat,
        "run_all": bench_run_all(testbed, repeat),
        "result_cache": bench_warm_hit(testbed, repeat),
    }
    report["result_cache_stats"] = shared_result_cache().stats()
    return report


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Time the parallel runner and the result cache "
                    "against the legacy serial harness.")
    parser.add_argument("--smoke", action="store_true",
                        help="single repetition; enforce determinism only "
                             "(CI smoke)")
    parser.add_argument("--out", default=None, metavar="FILE",
                        help="write the JSON report here (default: "
                             "BENCH_concurrency.json at the repo root)")
    args = parser.parse_args(argv)

    report = run_bench(smoke=args.smoke)

    out = Path(args.out) if args.out else \
        Path(__file__).resolve().parent.parent / "BENCH_concurrency.json"
    # Re-emit through the perf schema so the trajectory file validates
    # against the `thalia perf` tooling (see repro.perf.schema).
    from repro.perf.schema import KIND_BENCH, stamp
    out.write_text(json.dumps(stamp(KIND_BENCH, report), indent=2) + "\n",
                   encoding="utf-8")

    runs = report["run_all"]
    hit = report["result_cache"]
    print(f"[bench_concurrency] mode={report['mode']} "
          f"workers={runs['workers']}")
    print(f"  legacy serial   {runs['legacy_serial_ns'] / 1e6:9.1f} ms")
    print(f"  serial cold     {runs['serial_cold_ns'] / 1e6:9.1f} ms  "
          f"x{runs['speedup_serial_vs_legacy']}")
    print(f"  parallel cold   {runs['parallel_cold_ns'] / 1e6:9.1f} ms  "
          f"x{runs['speedup_parallel_vs_legacy']}")
    print(f"  repeat warm     {runs['repeat_warm_ns'] / 1e6:9.1f} ms  "
          f"x{runs['speedup_warm_vs_legacy']}")
    print(f"  warm hit        {hit['warm_hit_ns'] / 1e3:9.1f} us vs cold "
          f"{hit['cold_exec_ns'] / 1e6:.2f} ms  x{hit['warm_speedup']} "
          f"({hit['query']})")
    print(f"[bench_concurrency] -> {out}")

    failures = []
    if not runs["byte_identical"]:
        failures.append(f"score cards diverged from the legacy serial run "
                        f"in modes {runs['divergent_modes']}")
    if not hit["identical"]:
        failures.append("warm cache hit returned a different result than "
                        "cold execution")
    if not args.smoke:
        if runs["speedup_parallel_vs_legacy"] < 2.0:
            failures.append(
                f"parallel speedup x{runs['speedup_parallel_vs_legacy']} "
                f"is below the 2x target")
        if hit["warm_speedup"] < 10.0:
            failures.append(f"warm-hit speedup x{hit['warm_speedup']} is "
                            f"below the 10x target")
    for failure in failures:
        print(f"[bench_concurrency] FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
