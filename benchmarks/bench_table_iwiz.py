"""Experiment tab-iwiz — §4.2: IWIZ's per-query walk-through.

Paper shape to reproduce: "IWIZ could do 9 queries with small to moderate
amounts of custom integration code. The remaining 3 queries cannot be
answered by IWIZ." — with no query free of code (IWIZ has no UDFs, and
"no direct support for nulls" makes Q6 cost moderate code, unlike Cohera).
"""

from repro.core import run_benchmark
from repro.core.report import render_system_table
from repro.integration import Effort
from repro.systems import iwiz

PAPER_VERDICTS = {
    1: Effort.LOW, 2: Effort.LOW, 3: Effort.MEDIUM, 4: None, 5: None,
    6: Effort.MEDIUM, 7: Effort.MEDIUM, 8: None, 9: Effort.LOW,
    10: Effort.LOW, 11: Effort.MEDIUM, 12: Effort.MEDIUM,
}


def test_table_iwiz(benchmark, paper_testbed):
    card = benchmark.pedantic(
        lambda: run_benchmark(iwiz(), paper_testbed),
        rounds=3, iterations=1)

    print("\n" + render_system_table(card))

    for number, verdict in PAPER_VERDICTS.items():
        outcome = card.outcome(number)
        if verdict is None:
            assert not outcome.supported, f"Q{number}"
            assert not outcome.correct, f"Q{number}"
        else:
            assert outcome.supported and outcome.correct, f"Q{number}"
            assert outcome.effort == verdict, f"Q{number}"

    assert card.correct_count == 9
    assert card.no_code_count == 0        # no UDFs: nothing is free
    assert sorted(card.unsupported_numbers) == [4, 5, 8]

    # All nine answered queries cost small *to moderate* code.
    efforts = {card.outcome(n).effort for n, v in PAPER_VERDICTS.items()
               if v is not None}
    assert efforts == {Effort.LOW, Effort.MEDIUM}
