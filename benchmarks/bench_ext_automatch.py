"""Experiment ext-automatch — extension: automatic schema matching baseline.

The paper's related work cites the schema-matching literature (Rahm &
Bernstein) as the automated route. This bench runs a name-based automatic
matcher as a benchmark contestant. Expected shape: automation for free
buys exactly the name-level queries — renaming (Q1), plus the cases where
a typed copy suffices once names line up (Q2 time fields, Q3 flattened
titles, Q6 textbook nulls) — and none of the value-level or structural
ones, placing it below Cohera and IWIZ on correctness but at complexity 0.
"""

from repro.core import rank, run_all, run_benchmark
from repro.core.report import render_scoreboard, render_system_table
from repro.systems import (
    automatch,
    cohera,
    iwiz,
    naive_xquery,
    thalia_mediator,
)


def test_ext_automatch(benchmark, paper_testbed):
    card = benchmark.pedantic(
        lambda: run_benchmark(automatch(), paper_testbed),
        rounds=3, iterations=1)

    print("\n" + render_system_table(card))

    correct = sorted(o.number for o in card.outcomes if o.correct)
    assert correct == [1, 2, 3, 6]
    assert card.complexity_score == 0
    # Structural and value-level heterogeneities all defeat it.
    for number in (4, 5, 7, 8, 9, 10, 11, 12):
        assert not card.outcome(number).correct


def test_ext_automatch_ranking(paper_testbed):
    """The full five-system spectrum, from zero integration to all
    twelve capabilities."""
    cards = run_all(
        [naive_xquery(), automatch(), cohera(), iwiz(), thalia_mediator()],
        paper_testbed)
    print("\n" + render_scoreboard(cards))
    ordered = [card.system for card in rank(cards)]
    assert ordered == ["THALIA-Mediator", "Cohera", "IWIZ", "AutoMatch",
                       "NaiveXQuery"]
