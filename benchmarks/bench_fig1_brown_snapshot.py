"""Experiment fig1 — Figure 1: the Brown University catalog snapshot.

The paper's Figure 1 shows Brown's original course page: a table with
Course / Instructor / Title-Time / Room columns, hyperlinked instructors,
composite Title/Time cells and a Room cell that also names the lab. This
bench regenerates the snapshot and checks each of those visual features.
"""

from repro.catalogs.universities import Brown


def _render():
    profile = Brown()
    courses = profile.build_courses(seed=2004)
    return profile.render(courses)


def test_fig1_brown_snapshot(benchmark):
    page = benchmark(_render)

    # Tabular layout with the figure's column headers.
    for header in ("Course", "Instructor", "Title/Time", "Room"):
        assert f"<th>{header}</th>" in page

    # Hyperlinked instructor pointing at a home page (the figure's
    # "Instructor column contains a hyperlinked string").
    assert '<a href="http://www.cs.brown.edu/~klein/">Klein</a>' in page

    # Composite Title/Time cell: title + hour block + days + time.
    assert "D hr. MWF 11-12" in page
    assert "Computer NetworksM hr. M 3-5:30" in page

    # Room column carrying the lab as well.
    assert "CIT 165, Labs in Sunlab" in page

    print("\n[fig1] Brown snapshot regenerated: "
          f"{page.count('class=' + chr(34) + 'course' + chr(34))} course "
          "rows, composite Title/Time cells present")
