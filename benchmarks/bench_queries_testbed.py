"""Experiment tab-queries — §3.1: the twelve benchmark queries.

For every query the paper gives the XQuery text plus sample data from its
reference and challenge schemas. This bench (a) runs each cleaned
reference query natively through the XQuery engine, (b) verifies each
challenge source really defeats the naive query (that is what makes it a
*challenge*), and (c) times the full 12-query sweep.
"""

from repro.core import QUERIES
from repro.xquery import XQueryError, run_query


def _run_all_reference_queries(documents):
    return {query.number: run_query(query.xquery, documents)
            for query in QUERIES}


def test_reference_queries_run(benchmark, paper_testbed):
    documents = paper_testbed.documents
    results = benchmark(_run_all_reference_queries, documents)

    print("\n[tab-queries] reference-side results:")
    for query in QUERIES:
        count = len(results[query.number])
        print(f"  Q{query.number:>2} ({query.reference:<7}) -> "
              f"{count} item(s)")
        assert count >= 1, f"Q{query.number} found nothing on its own " \
                           "reference schema"


NAIVE_CHALLENGE_QUERIES = {
    # The reference query repointed verbatim at the challenge schema.
    1: "FOR $b in doc('cmu.xml')/cmu/Course "
       "WHERE $b/Instructor = 'Mark' RETURN $b",
    2: "FOR $b in doc('umass.xml')/umass/Course "
       "WHERE $b/Time = '1:30%' and $b/CourseTitle = '%Database%' "
       "RETURN $b",
    4: "FOR $b in doc('eth.xml')/eth/Vorlesung "
       "WHERE $b/Units > 10 and $b/CourseTitle = '%Database%' RETURN $b",
    5: "FOR $b in doc('eth.xml')/eth/Vorlesung "
       "WHERE $b/CourseName = '%Database%' RETURN $b",
    6: "FOR $b in doc('cmu.xml')/cmu/course "
       "WHERE $b/title = '%Verification%' RETURN $b/text",
    7: "FOR $b in doc('cmu.xml')/cmu/Course "
       "WHERE $b/prerequisite = 'None' and $b/title = '%Database%' "
       "RETURN $b",
    8: "FOR $b in doc('eth.xml')/eth/Vorlesung "
       "WHERE $b/Restricted = '%JR%' RETURN $b",
    9: "FOR $b in doc('umd.xml')/umd/Course "
       "WHERE $b/Title = '%Software Engineering%' RETURN $b/Room",
    11: "FOR $b in doc('ucsd.xml')/ucsd/Course "
        "WHERE $b/CourseTitle = '%Database%' RETURN $b/Lecturer",
}


def test_challenges_defeat_naive_queries(paper_testbed):
    documents = paper_testbed.documents
    print("\n[tab-queries] naive query vs challenge schema:")
    for number, source in sorted(NAIVE_CHALLENGE_QUERIES.items()):
        try:
            results = run_query(source, documents)
            assert results == [], (
                f"Q{number}: the naive query succeeded on the challenge "
                "schema - no heterogeneity to resolve!")
            verdict = "empty result"
        except XQueryError as exc:
            verdict = f"error ({type(exc).__name__})"
        print(f"  Q{number:>2}: {verdict}")
