"""Experiment scale-testbed — scalability sweep over testbed size.

The paper motivates THALIA with integration approaches that "do not scale
to data integration problems involving a large number of sources". This
bench sweeps the pipeline (render → extract → infer schema) and the
mediator (integrate all sources) from 5 up to the **45 sources** the
paper projected for August 2004 (footnote 3; `extended_universities()` is
that roadmap). The shape to observe is near-linear growth — the harness
itself must not be the bottleneck when the testbed grows.
"""

import time

from repro.catalogs import build_testbed, extended_universities
from repro.integration import standard_mediator

SWEEP = (5, 10, 15, 20, 25, 35, 45)


def _build_subset(count: int):
    return build_testbed(universities=extended_universities()[:count])


def test_scale_pipeline(benchmark):
    testbed = benchmark.pedantic(lambda: _build_subset(25),
                                 rounds=3, iterations=1)
    assert len(testbed) == 25


def test_scale_sweep_is_roughly_linear():
    timings: list[tuple[int, float, int]] = []
    for count in SWEEP:
        start = time.perf_counter()
        testbed = _build_subset(count)
        mediator = standard_mediator(
            [bundle.profile for bundle in testbed])
        courses = mediator.integrate(testbed.documents)
        elapsed = time.perf_counter() - start
        timings.append((count, elapsed, len(courses)))

    print("\n[scale-testbed] sources  seconds  courses  s/source")
    for count, elapsed, courses in timings:
        print(f"  {count:>7}  {elapsed:>7.3f}  {courses:>7}  "
              f"{elapsed / count:>8.4f}")

    # Shape check: 5x the sources must cost clearly less than 15x the
    # time (i.e. no super-linear blow-up in the harness itself).
    per_source_small = timings[0][1] / timings[0][0]
    per_source_large = timings[-1][1] / timings[-1][0]
    assert per_source_large < per_source_small * 3

    # Course volume grows with source count.
    counts = [courses for _, _, courses in timings]
    assert counts == sorted(counts)
