"""Compiled-plan speedup bench: warm ``Plan.execute`` vs parse+evaluate.

For each of the twelve benchmark queries this script measures

* **baseline** — the pre-plan hot path: ``parse_query`` + ``evaluate``
  on every call, exactly what ``run_query`` did before compilation;
* **planned** — a warm :class:`~repro.xquery.plan.Plan` from the shared
  :class:`~repro.xquery.plan_cache.PlanCache`, executed repeatedly.

Both sides are checked byte-identical (serialized item lists) before any
timing is trusted; divergence exits non-zero so CI fails loudly.  The
headline number is the median per-query speedup, written to
``BENCH_query.json`` alongside per-query timings and plan stats.

Usage::

    PYTHONPATH=src python benchmarks/bench_query.py [--quick] [--out F]

``--quick`` trims repetitions for CI smoke runs; the acceptance run
(default repetitions) is what BENCH_query.json in the repo records.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

from repro.catalogs import build_testbed, paper_universities
from repro.core import QUERIES
from repro.xmlmodel import XmlElement, serialize
from repro.xquery import shared_plan_cache
from repro.xquery.context import DynamicContext
from repro.xquery.errors import XQueryError
from repro.xquery.evaluator import evaluate
from repro.xquery.parser import parse_query


def _render(seq):
    return [serialize(item) if isinstance(item, XmlElement) else repr(item)
            for item in seq]


def _baseline_once(source, documents):
    """One pre-plan query call: parse, then tree-walk the AST."""
    try:
        return _render(evaluate(parse_query(source),
                                DynamicContext(documents=documents)))
    except XQueryError as exc:
        return ["raised", type(exc).__name__]


def _planned_once(plan, documents):
    try:
        return _render(plan.execute(documents))
    except XQueryError as exc:
        return ["raised", type(exc).__name__]


def _time_ns(fn, repeat):
    """Best-of-``repeat`` wall time for one call of ``fn``."""
    best = None
    for _ in range(repeat):
        start = time.perf_counter_ns()
        fn()
        elapsed = time.perf_counter_ns() - start
        if best is None or elapsed < best:
            best = elapsed
    return best


def run_bench(quick=False):
    repeat = 5 if quick else 30
    warmup = 1 if quick else 3
    testbed = build_testbed(universities=paper_universities())
    documents = testbed.documents
    plans = shared_plan_cache()

    rows = []
    divergences = []
    for query in QUERIES:
        source = query.xquery
        plan = plans.get(source)

        baseline_result = _baseline_once(source, documents)
        planned_result = _planned_once(plan, documents)
        identical = planned_result == baseline_result
        if not identical:
            divergences.append(query.number)

        for _ in range(warmup):
            _baseline_once(source, documents)
            _planned_once(plan, documents)

        baseline_ns = _time_ns(lambda: _baseline_once(source, documents),
                               repeat)
        planned_ns = _time_ns(lambda: _planned_once(plan, documents),
                              repeat)

        rows.append({
            "query": f"Q{query.number}",
            "identical": identical,
            "items": len(planned_result),
            "baseline_ns": baseline_ns,
            "planned_ns": planned_ns,
            "speedup": round(baseline_ns / planned_ns, 2),
            "rewrites": dict(plan.rewrites),
            "plan": plan.stats_snapshot(),
        })

    speedups = [row["speedup"] for row in rows]
    return {
        "bench": "bench_query",
        "mode": "quick" if quick else "full",
        "repeat": repeat,
        "queries": rows,
        "median_speedup": round(statistics.median(speedups), 2),
        "min_speedup": round(min(speedups), 2),
        "max_speedup": round(max(speedups), 2),
        "all_identical": not divergences,
        "divergent_queries": divergences,
        "plan_cache": plans.stats(),
    }


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Time compiled plans against the per-call interpreter.")
    parser.add_argument("--quick", action="store_true",
                        help="fewer repetitions (CI smoke)")
    parser.add_argument("--out", default=None, metavar="FILE",
                        help="write the JSON report here "
                             "(default: BENCH_query.json at the repo root)")
    args = parser.parse_args(argv)

    report = run_bench(quick=args.quick)

    out = Path(args.out) if args.out else \
        Path(__file__).resolve().parent.parent / "BENCH_query.json"
    # Re-emit through the perf schema: BENCH_query.json is a point on
    # the repo's performance trajectory, so it carries the same stamped
    # envelope the `thalia perf` tooling validates and reads.
    from repro.perf.schema import KIND_BENCH, stamp
    out.write_text(json.dumps(stamp(KIND_BENCH, report), indent=2) + "\n",
                   encoding="utf-8")

    print(f"[bench_query] mode={report['mode']} repeat={report['repeat']}")
    for row in report["queries"]:
        flag = "ok " if row["identical"] else "DIVERGED"
        print(f"  {row['query']:>4}  {flag}  "
              f"baseline {row['baseline_ns'] / 1e6:8.3f} ms  "
              f"planned {row['planned_ns'] / 1e6:8.3f} ms  "
              f"x{row['speedup']}")
    print(f"[bench_query] median speedup x{report['median_speedup']} "
          f"(min x{report['min_speedup']}, max x{report['max_speedup']}) "
          f"-> {out}")

    if report["divergent_queries"]:
        print(f"[bench_query] FAIL: plans diverged from the interpreter "
              f"on {report['divergent_queries']}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
