"""Experiment ext-warehouse — IWIZ's warehouse claim, measured.

§4.2 on IWIZ: "queries that can be satisfied using the contents of the
IWIZ warehouse, are answered quickly and efficiently without connecting to
the sources." This bench quantifies that: answering all twelve benchmark
queries through the materialized warehouse versus re-integrating the
sources for every query (the mediation-only route). The shape to observe:
the warehouse route amortizes integration and is clearly faster per query
sweep, while producing identical (gold) answers.
"""

import time

from repro.catalogs import paper_universities
from repro.core import QUERIES, gold_answer
from repro.core.global_queries import run_global_query
from repro.integration import Warehouse, standard_mediator


def test_ext_warehouse_sweep(benchmark, paper_testbed):
    warehouse = Warehouse(standard_mediator(paper_universities()),
                          paper_testbed.documents)

    def sweep():
        return {query.number: run_global_query(query, warehouse)
                for query in QUERIES}

    answers = benchmark(sweep)
    for query in QUERIES:
        assert answers[query.number] == \
            gold_answer(query, paper_testbed), f"Q{query.number}"


def test_ext_warehouse_amortizes_integration(paper_testbed):
    from repro.tess import TessScraper

    mediator = standard_mediator(paper_universities())
    scraper = TessScraper()

    # Mediation-only: per query, *connect to the sources* — run the
    # wrapper over the (cached) pages again — then integrate and answer.
    start = time.perf_counter()
    for query in QUERIES:
        fresh = {}
        for slug in query.sources:
            bundle = paper_testbed.source(slug)
            fresh[slug] = scraper.extract(bundle.snapshot, bundle.config)
        courses = mediator.integrate(fresh, list(query.sources))
        query.evaluate(courses, mediator.lexicon)
    per_query_route = time.perf_counter() - start

    # Warehouse: integrate once, then query the materialization.
    start = time.perf_counter()
    warehouse = Warehouse(mediator, paper_testbed.documents)
    build_cost = time.perf_counter() - start
    start = time.perf_counter()
    for query in QUERIES:
        run_global_query(query, warehouse)
    query_cost = time.perf_counter() - start

    print(f"\n[ext-warehouse] source-connecting sweep: "
          f"{per_query_route * 1000:.1f} ms")
    print(f"[ext-warehouse] warehouse build: {build_cost * 1000:.1f} ms, "
          f"query sweep: {query_cost * 1000:.1f} ms")

    # The warehouse query sweep never re-touches the sources, so it must
    # beat the per-query connect-extract-integrate sweep (and in the real
    # deployment the gap is network-sized, not scraper-sized).
    assert query_cost < per_query_route
