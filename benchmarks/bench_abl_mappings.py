"""Experiment abl-mappings — ablation: knock out one capability at a time.

DESIGN.md's claim that the twelve heterogeneity cases are *separable* is
tested here: removing exactly one mapping capability from the full
mediator must break the benchmark query built on that capability (its
answer diverges from gold) while queries that do not require it keep
passing. This is the mechanized version of §3's taxonomy argument.
"""

from repro.core import QUERIES, gold_answer
from repro.integration import Capability, standard_mediator


def _ablation_matrix(testbed):
    """capability -> set of query numbers whose answers break."""
    broken: dict[Capability, set[int]] = {}
    full = standard_mediator()
    for capability in Capability:
        ablated = full.without_capability(capability)
        failures = set()
        for query in QUERIES:
            courses = ablated.integrate(
                testbed.documents, list(query.sources))
            answer = query.evaluate(courses, ablated.lexicon)
            if answer != gold_answer(query, testbed):
                failures.add(query.number)
        broken[capability] = failures
    return broken


def test_ablation_matrix(benchmark, paper_testbed):
    broken = benchmark.pedantic(lambda: _ablation_matrix(paper_testbed),
                                rounds=1, iterations=1)

    print("\n[abl-mappings] capability knocked out -> queries broken:")
    for capability in Capability:
        failures = sorted(broken[capability])
        print(f"  {capability.name:<18} -> {failures}")

    for capability in Capability:
        own_query = capability.query_number
        # Knocking out a capability breaks its own query...
        assert own_query in broken[capability], capability
        if capability is Capability.RENAME:
            # Renaming is the foundational copy step: without it no field
            # reaches the global schema, so *everything* breaks. That is
            # itself the expected shape.
            assert broken[capability] == set(range(1, 13))
            continue
        # ...and every broken query *declares* a dependency on it.
        for number in broken[capability]:
            query = QUERIES[number - 1]
            assert capability in query.required_capabilities, (
                f"{capability.name} breaks Q{number}, which does not "
                "declare it")
