"""Experiment tab-cohera — §4.2: Cohera's per-query walk-through.

Paper shape to reproduce: "Cohera could do 4 queries with no code, and
another 5 with varying amounts of user-defined code. The other 3 queries
look very difficult." — with the specific assignments:

=====  ==========================  =========================
query  paper verdict               capability
=====  ==========================  =========================
1      no code                     local→global mapping
2      small amount of code        user-defined function
3      moderate amount of code     union type + conversions
4      no easy way                 complex mapping
5      no easy way                 language translation
6      no code                     native Postgres nulls
7      moderate ("same as 3")      inference
8      no easy way                 semantic incompatibility
9      no code                     local→global mapping
10     no code                     local→global mapping
11     moderate ("same as 3, 7")   column semantics
12     moderate ("same as 3,7,11") decomposition
=====  ==========================  =========================
"""

from repro.core import run_benchmark
from repro.core.report import render_system_table
from repro.integration import Effort
from repro.systems import cohera

PAPER_VERDICTS = {
    1: Effort.NONE, 2: Effort.LOW, 3: Effort.MEDIUM, 4: None, 5: None,
    6: Effort.NONE, 7: Effort.MEDIUM, 8: None, 9: Effort.NONE,
    10: Effort.NONE, 11: Effort.MEDIUM, 12: Effort.MEDIUM,
}


def test_table_cohera(benchmark, paper_testbed):
    card = benchmark.pedantic(
        lambda: run_benchmark(cohera(), paper_testbed),
        rounds=3, iterations=1)

    print("\n" + render_system_table(card))

    # Per-query verdicts match the paper exactly.
    for number, verdict in PAPER_VERDICTS.items():
        outcome = card.outcome(number)
        if verdict is None:
            assert not outcome.supported, f"Q{number}"
            assert not outcome.correct, f"Q{number}"
        else:
            assert outcome.supported and outcome.correct, f"Q{number}"
            assert outcome.effort == verdict, f"Q{number}"

    # The summary sentence's shape.
    assert card.correct_count == 9
    assert card.no_code_count == 4
    coded = card.correct_count - card.no_code_count
    assert coded == 5
    assert sorted(card.unsupported_numbers) == [4, 5, 8]
