"""Experiment fig3 — Figure 3: Brown's extracted XML + XML Schema.

Figure 3 shows the TESS output for Brown: an XML document whose schema
stays "as close to the original schema of the corresponding catalog as
possible", plus the derived XML Schema file. The bench times the full
extract-and-infer pipeline and checks the figure's structural features.
"""

from repro.catalogs.universities import Brown
from repro.tess import TessScraper
from repro.xmlmodel import infer_schema, serialize_pretty


def _extract():
    profile = Brown()
    courses = profile.build_courses(seed=2004)
    page = profile.render(courses)
    document = TessScraper().extract(page, profile.wrapper_config())
    schema = infer_schema(document)
    return document, schema


def test_fig3_brown_extraction(benchmark):
    document, schema = benchmark(_extract)

    # One Course element per table row; per-column child tags.
    courses = document.root.findall("Course")
    assert len(courses) == 12
    first = courses[0]
    assert [c.tag for c in first.element_children] == \
        ["CourseNum", "Instructor", "Title", "Room"]

    # The union-type Title: anchor preserved inside the element.
    assert first.find("Title").find("a") is not None

    # The schema mirrors the source and validates its own document.
    schema.validate(document)
    xsd = serialize_pretty(schema.to_xsd())
    assert 'name="brown"' in xsd
    assert 'name="Course"' in xsd
    assert 'maxOccurs="unbounded"' in xsd
    assert 'mixed="true"' in xsd  # link + string titles

    print("\n[fig3] Brown XML + XSD regenerated "
          f"({len(courses)} Course elements; schema validates)")
