"""Hash-join speedup bench: costed join plans vs forced nested loops.

The headline experiment of the join engine: a two-source equi-join over
the scale-8 CMU catalog (``Lecturer = Lecturer`` self-join, 120 x 120
rows) compiled twice against the same statistics — once with the join
search on (the planner picks a hash stage) and once with
``join_search=False`` (the nested-loop reference plan).  Both sides are
checked byte-identical before any timing is trusted; the speedup gate
(default >= 5x, same-host comparison by construction) fails the run
loudly when the hash path stops paying for itself.

Two companion joins ride along ungated: the filtered switch query
(tiny inputs — measures that the planner's nested-loop choice costs
nothing) and a cross-school title join.

Usage::

    PYTHONPATH=src python benchmarks/bench_join.py [--quick] [--out F]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.catalogs import build_testbed, paper_universities
from repro.xmlmodel import XmlElement, serialize
from repro.xquery.plan import compile_query
from repro.xquery.stats import collect_statistics

SCALE = 8

#: (name, gated, xquery) — only the headline equi-join carries the gate.
JOINS = [
    ("cmu-self-lecturer", True,
     'for $a in doc("cmu.xml")/cmu/Course, '
     '$b in doc("cmu.xml")/cmu/Course '
     "where $a/Lecturer = $b/Lecturer return $b/CourseNum"),
    ("cmu-self-lecturer-filtered", False,
     'for $a in doc("cmu.xml")/cmu/Course, '
     '$b in doc("cmu.xml")/cmu/Course '
     "where $a/Day = 'F' and $b/Day = 'F' "
     "and $a/Lecturer = $b/Lecturer return $b/CourseNum"),
    ("brown-gatech-title", False,
     'for $a in doc("brown.xml")/brown/Course, '
     '$b in doc("gatech.xml")/gatech/Course '
     "where $a/Title = $b/Title return $a/CourseNum"),
]


def _render(seq):
    return [serialize(item) if isinstance(item, XmlElement) else repr(item)
            for item in seq]


def _time_ns(fn, repeat):
    best = None
    for _ in range(repeat):
        start = time.perf_counter_ns()
        fn()
        elapsed = time.perf_counter_ns() - start
        if best is None or elapsed < best:
            best = elapsed
    return best


def run_bench(quick=False, min_speedup=5.0):
    repeat = 5 if quick else 30
    warmup = 1 if quick else 3
    testbed = build_testbed(seed=2004, universities=paper_universities(),
                            scale=SCALE)
    documents = testbed.documents
    statistics = collect_statistics(
        documents, fingerprint=testbed.content_fingerprint())

    rows = []
    divergences = []
    gate_failures = []
    for name, gated, source in JOINS:
        joined = compile_query(source, statistics=statistics)
        looped = compile_query(source, statistics=statistics,
                               join_search=False)

        joined_result = _render(joined.execute(documents))
        looped_result = _render(looped.execute(documents))
        identical = joined_result == looped_result
        if not identical:
            divergences.append(name)

        for _ in range(warmup):
            joined.execute(documents)
            looped.execute(documents)
        joined_ns = _time_ns(lambda: joined.execute(documents), repeat)
        looped_ns = _time_ns(lambda: looped.execute(documents), repeat)
        speedup = round(looped_ns / joined_ns, 2)
        if gated and speedup < min_speedup:
            gate_failures.append(f"{name}: x{speedup} < x{min_speedup}")

        rows.append({
            "join": name,
            "gated": gated,
            "identical": identical,
            "items": len(joined_result),
            "nested_loop_ns": looped_ns,
            "hash_join_ns": joined_ns,
            "speedup": speedup,
            "decisions": {key: value
                          for key, value in joined.decisions.items()
                          if "join" in key or key == "hoisted-predicates"},
        })

    return {
        "bench": "bench_join",
        "mode": "quick" if quick else "full",
        "repeat": repeat,
        "scale": SCALE,
        "min_speedup": min_speedup,
        "joins": rows,
        "all_identical": not divergences,
        "divergent_joins": divergences,
        "gate_failures": gate_failures,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Time costed hash-join plans against forced "
                    "nested loops.")
    parser.add_argument("--quick", action="store_true",
                        help="fewer repetitions (CI smoke)")
    parser.add_argument("--min-speedup", type=float, default=5.0,
                        help="gate for the headline equi-join "
                             "(default 5.0)")
    parser.add_argument("--out", default=None, metavar="FILE",
                        help="write the JSON report here "
                             "(default: BENCH_join.json at the repo root)")
    args = parser.parse_args(argv)

    report = run_bench(quick=args.quick, min_speedup=args.min_speedup)

    out = Path(args.out) if args.out else \
        Path(__file__).resolve().parent.parent / "BENCH_join.json"
    from repro.perf.schema import KIND_BENCH, stamp
    out.write_text(json.dumps(stamp(KIND_BENCH, report), indent=2) + "\n",
                   encoding="utf-8")

    print(f"[bench_join] mode={report['mode']} repeat={report['repeat']} "
          f"scale={report['scale']}")
    for row in report["joins"]:
        flag = "ok " if row["identical"] else "DIVERGED"
        gate = "gated" if row["gated"] else "info "
        print(f"  {row['join']:<28} {flag} {gate}  "
              f"loop {row['nested_loop_ns'] / 1e6:8.3f} ms  "
              f"hash {row['hash_join_ns'] / 1e6:8.3f} ms  "
              f"x{row['speedup']}")
    print(f"[bench_join] -> {out}")

    if report["divergent_joins"]:
        print(f"[bench_join] FAIL: join plans diverged from the nested "
              f"loop on {report['divergent_joins']}", file=sys.stderr)
        return 1
    if report["gate_failures"]:
        print(f"[bench_join] FAIL: {report['gate_failures']}",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
