"""Shared fixtures for the benchmark harness.

Each ``bench_*`` module regenerates one table or figure from the paper
(see DESIGN.md's experiment index): it times the pipeline under
``pytest-benchmark`` *and* asserts the paper's qualitative shape, printing
the regenerated rows for inspection (run with ``-s`` to see them).
"""

from __future__ import annotations

import pytest

from repro.catalogs import build_testbed, paper_universities


@pytest.fixture(scope="session")
def testbed():
    """The full 25-source testbed, built once per benchmark session."""
    return build_testbed()


@pytest.fixture(scope="session")
def paper_testbed():
    """Just the nine paper-pinned sources (faster benches)."""
    return build_testbed(universities=paper_universities())
