"""Build pipeline flavors — serial cold vs parallel cold vs cache-warm.

Times the three ways :func:`repro.catalogs.build_testbed` can produce the
full 25-source testbed: a serial cold build (the baseline every other
bench pays), a thread-pool build (``workers=4``; the win scales with
available cores — on a single-core runner it only measures pool
overhead), and a cache-warm build that replays artifacts from the
content-addressed :class:`~repro.catalogs.ArtifactCache`.  The golden
suite asserts all three are byte-identical; this bench asserts the cache
is actually a shortcut: a warm build must beat a cold one.
"""

import shutil
import tempfile
import time

from repro.catalogs import build_testbed

ROUNDS = 5


def _best_of(rounds, fn):
    best, result = float("inf"), None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_pipeline_flavors():
    cache_dir = tempfile.mkdtemp(prefix="thalia-bench-cache-")
    try:
        serial_s, serial = _best_of(ROUNDS, lambda: build_testbed())
        parallel_s, parallel = _best_of(
            ROUNDS, lambda: build_testbed(workers=4))

        cold_s, cold = _best_of(1, lambda: build_testbed(cache_dir=cache_dir))
        warm_s, warm = _best_of(
            ROUNDS, lambda: build_testbed(cache_dir=cache_dir))

        rows = [
            ("serial cold", serial_s, serial),
            ("parallel cold (workers=4)", parallel_s, parallel),
            ("cache cold (populating)", cold_s, cold),
            ("cache warm", warm_s, warm),
        ]
        print("\n[pipeline] flavor                     seconds  hits  misses")
        for label, elapsed, testbed in rows:
            report = testbed.build_report
            print(f"  {label:<27} {elapsed:>8.4f}  {report.cache_hits:>4}  "
                  f"{report.cache_misses:>6}")
        print(f"  warm/cold speedup: {serial_s / warm_s:.2f}x "
              f"(best of {ROUNDS})")

        assert len(serial) == len(parallel) == len(warm) == 25
        assert cold.build_report.cache_misses == 25
        assert warm.build_report.cache_hits == 25
        # The cache must be a shortcut, not a detour.
        assert warm_s < serial_s
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)


def test_pipeline_serial_baseline(benchmark):
    testbed = benchmark.pedantic(build_testbed, rounds=3, iterations=1)
    assert len(testbed) == 25


def test_pipeline_cache_warm(benchmark):
    cache_dir = tempfile.mkdtemp(prefix="thalia-bench-cache-")
    try:
        build_testbed(cache_dir=cache_dir)  # populate
        testbed = benchmark.pedantic(
            lambda: build_testbed(cache_dir=cache_dir),
            rounds=3, iterations=1)
        assert testbed.build_report.cache_hits == 25
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)
