"""Benchmark service under load: throughput and latency, cold vs warm.

Boots the full benchmark service over the 25-source testbed and drives
it with an in-process load generator — one persistent HTTP/1.1
connection per client thread, round-robining over the service's
representative endpoints.  Reports per-endpoint cold (first-request,
cache-miss) latency against warm p50/p95 plus aggregate throughput, and
asserts the content cache actually short-circuits rebuilds: the warm
median must beat the cold first hit and the hit-rate must be ~1.
"""

from __future__ import annotations

import threading
import time
from http.client import HTTPConnection

from repro.server import HonorRollStore, ThaliaApp, ThaliaServer
from repro.server.metrics import percentile

CLIENT_THREADS = 8
ROUNDS_PER_THREAD = 20

ENDPOINTS = [
    ("home", "/"),
    ("catalog page", "/catalogs/cmu.html"),
    ("source xml", "/data/cmu.xml"),
    ("query defs", "/api/queries"),
    ("query page", "/benchmark/query04.html"),      # runs the mediator cold
    ("solutions zip", "/downloads/thalia_sample_solutions.zip"),
]


def _get(connection: HTTPConnection, path: str) -> float:
    start = time.perf_counter()
    connection.request("GET", path)
    response = connection.getresponse()
    response.read()
    assert response.status == 200, (path, response.status)
    return time.perf_counter() - start


def test_server_load(testbed, tmp_path_factory):
    store = HonorRollStore(
        tmp_path_factory.mktemp("bench-scores") / "roll.jsonl")
    app = ThaliaApp(testbed=testbed, store=store)
    with ThaliaServer(app, port=0, pool_size=CLIENT_THREADS) as server:
        host, port = server.host, server.port

        cold: dict[str, float] = {}
        for name, path in ENDPOINTS:
            connection = HTTPConnection(host, port)
            cold[name] = _get(connection, path)
            connection.close()

        warm: dict[str, list[float]] = {name: [] for name, _ in ENDPOINTS}
        lock = threading.Lock()

        def client() -> None:
            connection = HTTPConnection(host, port)
            local: dict[str, list[float]] = {name: []
                                             for name, _ in ENDPOINTS}
            for _ in range(ROUNDS_PER_THREAD):
                for name, path in ENDPOINTS:
                    local[name].append(_get(connection, path))
            connection.close()
            with lock:
                for name, samples in local.items():
                    warm[name].extend(samples)

        wall_start = time.perf_counter()
        threads = [threading.Thread(target=client)
                   for _ in range(CLIENT_THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall_s = time.perf_counter() - wall_start

        total = CLIENT_THREADS * ROUNDS_PER_THREAD * len(ENDPOINTS)
        print(f"\n[server] {total} warm requests, {CLIENT_THREADS} client "
              f"threads, {wall_s:.3f}s wall "
              f"→ {total / wall_s:,.0f} req/s")
        print(f"  {'endpoint':<14} {'cold ms':>9} {'warm p50':>9} "
              f"{'warm p95':>9} {'speedup':>8}")
        for name, _ in ENDPOINTS:
            p50 = percentile(warm[name], 0.50)
            p95 = percentile(warm[name], 0.95)
            print(f"  {name:<14} {1000 * cold[name]:>9.3f} "
                  f"{1000 * p50:>9.3f} {1000 * p95:>9.3f} "
                  f"{cold[name] / p50 if p50 else float('inf'):>7.1f}x")

        cache = app.cache.stats()
        print(f"  content cache: {cache['entries']} entries, "
              f"{cache['bytes'] / 1024:.0f} KiB, "
              f"hit rate {cache['hit_rate']:.1%} "
              f"({cache['builds']} builds for "
              f"{cache['hits'] + cache['misses']} lookups)")

        # Warm traffic must be pure cache replay...
        assert cache["builds"] == len(ENDPOINTS)
        assert cache["hit_rate"] > 0.95
        # ...and replay must beat rebuilding wherever the build was the
        # cost (cheap pages render in µs — there contention noise, not
        # the cache, decides the comparison).
        expensive = [name for name, _ in ENDPOINTS if cold[name] > 0.010]
        assert expensive, "no endpoint had a measurable cold build"
        for name in expensive:
            assert percentile(warm[name], 0.50) < cold[name], name
        snapshot = app.metrics.snapshot()
        assert snapshot["totals"]["requests"] == total + len(ENDPOINTS)
        assert snapshot["totals"]["errors"] == 0
