"""Two-stage load harness for the benchmark service: fleet vs single.

Stage 1 (**pilot**) boots a fleet server and a single-process server as
real subprocesses on one scale tier and

* replays a mixed query corpus against both and requires every response
  byte-identical (after removing ``plan.exec_ns``, the one legitimately
  run-local wall-clock field);
* kills one fleet worker mid-replay and requires zero failed requests,
  at least one respawn, and a nonzero shared-cache hit count (the
  respawned worker must re-serve its dead predecessor's results from
  the cross-process arena, not recompute them);
* calibrates the measurement stage from observed latency: the target
  offered rate and the ``/api/stats`` sampling interval.

Stage 2 (**measurement**) drives mixed traffic — ``POST /api/query``,
``POST /api/query/batch``, ``POST /api/scores`` uploads and scenario-
pack downloads — from persistent-connection client threads against each
server, reports client-side p50/p95/p99 latency and aggregate query
throughput, scrapes the fleet's SLO table at the calibrated interval,
and computes the fleet-vs-single speedup.

The report is stamped with the ``thalia-perf`` envelope
(``stamp(KIND_BENCH, ...)``) so ``thalia perf`` tooling can diff server
runs; the repo's ``BENCH_fleet.json`` records the committed run.

Usage::

    PYTHONPATH=src python benchmarks/bench_server.py             # full
    PYTHONPATH=src python benchmarks/bench_server.py \\
        --pilot-only --scale 4 --fleet 2                         # CI

The full run at ``--scale 32`` enforces the >=3x fleet-throughput
target for a 4-worker fleet — on hosts with >= 4 cores; on smaller
hosts the speedup is recorded but not enforced (there is nothing to
saturate).
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time
from http.client import HTTPConnection, HTTPException
from pathlib import Path

from repro.core import QUERIES
from repro.server.metrics import percentile

BOOT_TIMEOUT_S = 600.0

#: Ad-hoc per-source queries: sharded traffic with per-source variety,
#: so the fleet's (scale, document) sharding actually spreads work.
SOURCE_SLUGS = ("cmu", "brown", "ucsd", "umich", "gatech", "umd",
                "toronto", "asu")

#: Measurement traffic mix, one entry per round-robin slot.
MIX = ("query", "query", "query", "query", "batch", "batch",
       "scores", "scenario", "query_all", "batch")


def _free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def _card(system: str, correct: int) -> dict:
    outcomes = []
    for number in range(1, 13):
        good = number <= correct
        outcomes.append({"number": number, "supported": good,
                         "correct": good,
                         "effort": "LOW" if good else None,
                         "note": "bench"})
    return {"system": system, "outcomes": outcomes}


class Client:
    """One persistent HTTP/1.1 connection with JSON helpers."""

    def __init__(self, port: int) -> None:
        self.connection = HTTPConnection("127.0.0.1", port, timeout=120)

    def request(self, method: str, path: str,
                payload: dict | None = None) -> tuple[int, bytes]:
        body = None if payload is None \
            else json.dumps(payload).encode("utf-8")
        headers = {} if body is None \
            else {"Content-Type": "application/json"}
        self.connection.request(method, path, body=body, headers=headers)
        response = self.connection.getresponse()
        return response.status, response.read()

    def close(self) -> None:
        self.connection.close()


class ServerProcess:
    """A ``thalia serve`` subprocess on an ephemeral port."""

    def __init__(self, *, seed: int, scale: int, fleet: int,
                 cache_dir: str, scores_dir: str, label: str) -> None:
        self.label = label
        self.port = _free_port()
        scores = Path(scores_dir) / f"roll-{label}.jsonl"
        command = [sys.executable, "-m", "repro.cli",
                   "--seed", str(seed), "--scale", str(scale),
                   "--workers", "2", "--cache-dir", cache_dir,
                   "serve", "--port", str(self.port),
                   "--scores", str(scores), "--http-threads", "16"]
        if fleet > 0:
            command += ["--fleet", str(fleet)]
        self.process = subprocess.Popen(
            command, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True)
        self._wait_ready()

    def _wait_ready(self) -> None:
        deadline = time.monotonic() + BOOT_TIMEOUT_S
        while time.monotonic() < deadline:
            if self.process.poll() is not None:
                raise SystemExit(
                    f"[bench_server] {self.label} server exited early "
                    f"({self.process.returncode}):\n"
                    f"{self.process.stdout.read()}")
            try:
                client = Client(self.port)
                status, _ = client.request("GET", "/healthz")
                client.close()
                if status == 200:
                    return
            except (OSError, HTTPException):
                pass
            time.sleep(0.25)
        raise SystemExit(f"[bench_server] {self.label} server did not "
                         f"come up within {BOOT_TIMEOUT_S}s")

    def stats(self) -> dict:
        client = Client(self.port)
        _, body = client.request("GET", "/api/stats")
        client.close()
        return json.loads(body)

    def stop(self) -> None:
        if self.process.poll() is None:
            self.process.send_signal(signal.SIGINT)
            try:
                self.process.wait(timeout=60)
            except subprocess.TimeoutExpired:
                self.process.kill()


def query_corpus(scale: int) -> list[dict]:
    """The deterministic mixed corpus both stages draw from."""
    corpus = [{"xquery": query.xquery} for query in QUERIES]
    for slug in SOURCE_SLUGS:
        corpus.append({
            "xquery": f'FOR $c IN doc("{slug}.xml")/{slug}/Course '
                      f'RETURN $c', "source": slug})
        corpus.append({
            "xquery": f'FOR $c IN doc("{slug}.xml")/{slug}/Course '
                      f'WHERE $c/Instructor != "" RETURN $c/Title',
            "source": slug})
    del scale      # the corpus is scale-independent; answers are not
    return corpus


def normalized(body: bytes) -> str:
    """Canonical JSON with run-local wall-clock fields removed."""
    payload = json.loads(body)

    def scrub(node) -> None:
        if isinstance(node, dict):
            plan = node.get("plan")
            if isinstance(plan, dict):
                plan.pop("exec_ns", None)
            for value in node.values():
                scrub(value)
        elif isinstance(node, list):
            for value in node:
                scrub(value)

    scrub(payload)
    return json.dumps(payload, sort_keys=True)


# --------------------------------------------------------------------------- #
# Stage 1: pilot
# --------------------------------------------------------------------------- #

def run_pilot(fleet_server: ServerProcess, single_server: ServerProcess,
              scale: int, kill_worker: bool) -> dict:
    corpus = query_corpus(scale)
    mismatches = []
    latencies: list[float] = []
    fleet_client = Client(fleet_server.port)
    single_client = Client(single_server.port)

    # Byte-identity sweep: every corpus item, cold and warm, plus one
    # batch — the cache progression (cached false -> true) must match.
    for round_index in range(2):
        for index, payload in enumerate(corpus):
            started = time.perf_counter()
            f_status, f_body = fleet_client.request(
                "POST", "/api/query", payload)
            latencies.append(time.perf_counter() - started)
            s_status, s_body = single_client.request(
                "POST", "/api/query", payload)
            if (f_status, normalized(f_body)) \
                    != (s_status, normalized(s_body)):
                mismatches.append(
                    {"round": round_index, "item": index,
                     "fleet_status": f_status, "single_status": s_status})
    batch = {"queries": corpus[:8]}
    f_status, f_body = fleet_client.request("POST", "/api/query/batch",
                                            batch)
    s_status, s_body = single_client.request("POST", "/api/query/batch",
                                             batch)
    if (f_status, normalized(f_body)) != (s_status, normalized(s_body)):
        mismatches.append({"batch": True, "fleet_status": f_status,
                           "single_status": s_status})

    kill_report = None
    if kill_worker:
        fleet_block = fleet_server.stats()["fleet"]
        victim = fleet_block["per_worker"][0]["pid"]
        os.kill(victim, signal.SIGKILL)
        failed = 0
        for payload in corpus:
            status, _body = fleet_client.request("POST", "/api/query",
                                                 payload)
            if status >= 500:
                failed += 1
        after = fleet_server.stats()["fleet"]
        kill_report = {
            "killed_pid": victim,
            "requests_after_kill": len(corpus),
            "failed_requests": failed,
            "respawns": after["respawns"],
            "shared_cache_hits": after["shared_cache"]["hits"],
        }

    fleet_client.close()
    single_client.close()

    mean_s = sum(latencies) / len(latencies)
    # Target rate: keep every fleet worker busy with headroom; sampling
    # interval: ~50 requests between scrapes, clamped to something a
    # human can watch.
    target_rate = max(1.0, 1.0 / mean_s)
    sampling_interval = min(2.0, max(0.25, 50 * mean_s))
    return {
        "requests": len(latencies),
        "mean_ms": round(1000 * mean_s, 3),
        "p95_ms": round(1000 * percentile(latencies, 0.95), 3),
        "target_rate_rps": round(target_rate, 1),
        "sampling_interval_s": round(sampling_interval, 3),
        "byte_identical": not mismatches,
        "mismatches": mismatches[:10],
        "kill": kill_report,
    }


# --------------------------------------------------------------------------- #
# Stage 2: measurement
# --------------------------------------------------------------------------- #

def _drive(server: ServerProcess, *, clients: int, rounds: int,
           scale: int, scenario_url: str | None,
           sampling_interval_s: float,
           scrape: bool) -> dict:
    corpus = query_corpus(scale)
    per_endpoint: dict[str, list[float]] = {}
    counters = {"requests": 0, "queries": 0, "errors": 0, "shed": 0}
    lock = threading.Lock()
    stop_sampler = threading.Event()
    scrapes: list[dict] = []

    def sampler() -> None:
        while not stop_sampler.wait(sampling_interval_s):
            try:
                scrapes.append(server.stats().get("fleet", {}))
            except (OSError, HTTPException, ValueError):
                pass

    def worker(thread_index: int) -> None:
        client = Client(server.port)
        local: dict[str, list[float]] = {}
        local_counts = {"requests": 0, "queries": 0, "errors": 0,
                        "shed": 0}
        for round_index in range(rounds):
            slot = MIX[(thread_index + round_index) % len(MIX)]
            pick = corpus[(thread_index * rounds + round_index)
                          % len(corpus)]
            if slot == "query":
                method, path, payload, weight = \
                    "POST", "/api/query", pick, 1
            elif slot == "query_all":
                method, path, payload, weight = "POST", "/api/query", \
                    {"xquery": QUERIES[round_index % 12].xquery}, 1
            elif slot == "batch":
                start = (thread_index + round_index) % len(corpus)
                items = [corpus[(start + n) % len(corpus)]
                         for n in range(8)]
                method, path, payload, weight = \
                    "POST", "/api/query/batch", {"queries": items}, 8
            elif slot == "scores":
                method, path, weight = "POST", "/api/scores", 0
                payload = {
                    "submitter": "bench",
                    "date": "2004-08-01",
                    "card": _card(
                        f"Bench-{thread_index}-{round_index % 7}",
                        5 + round_index % 7)}
            else:   # scenario-pack download
                if scenario_url is None:
                    continue
                method, path, payload, weight = \
                    "GET", scenario_url, None, 0
            started = time.perf_counter()
            try:
                status, _body = client.request(method, path, payload)
            except (OSError, HTTPException):
                local_counts["errors"] += 1
                client.close()
                client = Client(server.port)
                continue
            elapsed = time.perf_counter() - started
            local.setdefault(slot, []).append(elapsed)
            local_counts["requests"] += 1
            if status == 429:
                local_counts["shed"] += 1
            elif status >= 500:
                local_counts["errors"] += 1
            else:
                local_counts["queries"] += weight
        client.close()
        with lock:
            for slot, samples in local.items():
                per_endpoint.setdefault(slot, []).extend(samples)
            for key, value in local_counts.items():
                counters[key] += value

    sampler_thread = None
    if scrape:
        sampler_thread = threading.Thread(target=sampler, daemon=True)
        sampler_thread.start()
    wall_start = time.perf_counter()
    threads = [threading.Thread(target=worker, args=(index,))
               for index in range(clients)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall_s = time.perf_counter() - wall_start
    stop_sampler.set()
    if sampler_thread is not None:
        sampler_thread.join(timeout=10)

    latency_table = {}
    for slot, samples in sorted(per_endpoint.items()):
        latency_table[slot] = {
            "count": len(samples),
            "p50_ms": round(1000 * percentile(samples, 0.50), 3),
            "p95_ms": round(1000 * percentile(samples, 0.95), 3),
            "p99_ms": round(1000 * percentile(samples, 0.99), 3),
        }
    return {
        **counters,
        "wall_s": round(wall_s, 3),
        "requests_per_s": round(counters["requests"] / wall_s, 1),
        "queries_per_s": round(counters["queries"] / wall_s, 1),
        "client_latency": latency_table,
        "stats_scrapes": len(scrapes),
        "final_fleet_block": scrapes[-1] if scrapes else None,
    }


def _make_scenario(server: ServerProcess) -> str | None:
    client = Client(server.port)
    status, body = client.request("POST", "/api/scenarios",
                                  {"seed": 7, "cases": 3})
    client.close()
    if status != 201:
        return None
    return json.loads(body)["url"]


# --------------------------------------------------------------------------- #
# Orchestration
# --------------------------------------------------------------------------- #

def run_bench(args) -> tuple[dict, list[str]]:
    cache_dir = tempfile.mkdtemp(prefix="thalia-bench-cache-")
    scores_dir = tempfile.mkdtemp(prefix="thalia-bench-scores-")
    cpus = os.cpu_count() or 1
    report: dict = {
        "bench": "bench_server",
        "mode": "pilot" if args.pilot_only else "full",
        "host": {"cpus": cpus},
        "config": {
            "seed": args.seed,
            "scale": args.scale,
            "fleet": args.fleet,
            "clients": args.clients,
            "rounds": args.rounds,
            "kill_worker": args.kill_worker,
        },
    }
    failures: list[str] = []

    print(f"[bench_server] booting single-process server "
          f"(scale {args.scale}) ...", flush=True)
    single = ServerProcess(seed=args.seed, scale=args.scale, fleet=0,
                           cache_dir=cache_dir, scores_dir=scores_dir,
                           label="single")
    print(f"[bench_server] booting {args.fleet}-worker fleet server ...",
          flush=True)
    fleet = ServerProcess(seed=args.seed, scale=args.scale,
                          fleet=args.fleet, cache_dir=cache_dir,
                          scores_dir=scores_dir, label="fleet")
    try:
        print("[bench_server] pilot: byte-identity sweep + calibration",
              flush=True)
        pilot = run_pilot(fleet, single, args.scale, args.kill_worker)
        report["pilot"] = pilot
        if not pilot["byte_identical"]:
            failures.append(
                f"{len(pilot['mismatches'])}+ fleet responses diverged "
                f"from single-process bytes")
        kill = pilot["kill"]
        if kill is not None:
            if kill["failed_requests"]:
                failures.append(
                    f"{kill['failed_requests']} request(s) failed after "
                    f"killing worker {kill['killed_pid']}")
            if kill["respawns"] < 1:
                failures.append("killed worker was not respawned")
            if kill["shared_cache_hits"] < 1:
                failures.append("respawned worker produced no "
                                "shared-cache hits")

        if not args.pilot_only:
            interval = pilot["sampling_interval_s"]
            print(f"[bench_server] measurement: {args.clients} clients x "
                  f"{args.rounds} rounds, sampling every {interval}s",
                  flush=True)
            scenario_url = _make_scenario(fleet)
            _make_scenario(single)
            fleet_run = _drive(fleet, clients=args.clients,
                               rounds=args.rounds, scale=args.scale,
                               scenario_url=scenario_url,
                               sampling_interval_s=interval, scrape=True)
            single_run = _drive(single, clients=args.clients,
                                rounds=args.rounds, scale=args.scale,
                                scenario_url=scenario_url,
                                sampling_interval_s=interval,
                                scrape=False)
            speedup = fleet_run["queries_per_s"] \
                / max(single_run["queries_per_s"], 0.001)
            report["measurement"] = {
                "fleet": fleet_run,
                "single": single_run,
                "speedup_fleet_vs_single": round(speedup, 2),
            }
            if fleet_run["errors"] or single_run["errors"]:
                failures.append(
                    f"measurement saw {fleet_run['errors']} fleet / "
                    f"{single_run['errors']} single-process errors")
            # The >=3x target needs cores to saturate: enforced only on
            # a >=4-core host driving a >=4-worker fleet.
            if cpus >= 4 and args.fleet >= 4 and speedup < 3.0:
                failures.append(
                    f"fleet speedup x{round(speedup, 2)} is below the "
                    f"3x target on a {cpus}-core host")

        report["slo"] = fleet.stats()["fleet"]
    finally:
        fleet.stop()
        single.stop()
    return report, failures


def _print_report(report: dict) -> None:
    pilot = report["pilot"]
    print(f"[bench_server] pilot: {pilot['requests']} requests, "
          f"mean {pilot['mean_ms']}ms p95 {pilot['p95_ms']}ms, "
          f"byte_identical={pilot['byte_identical']}")
    if pilot["kill"]:
        kill = pilot["kill"]
        print(f"  worker kill: {kill['failed_requests']} failed / "
              f"{kill['requests_after_kill']} after SIGKILL, "
              f"{kill['respawns']} respawn(s), "
              f"{kill['shared_cache_hits']} shared-cache hit(s)")
    measurement = report.get("measurement")
    if measurement:
        print(f"  {'mode':<8} {'req/s':>8} {'queries/s':>10} "
              f"{'shed':>6} {'errors':>7}")
        for mode in ("single", "fleet"):
            run = measurement[mode]
            print(f"  {mode:<8} {run['requests_per_s']:>8} "
                  f"{run['queries_per_s']:>10} {run['shed']:>6} "
                  f"{run['errors']:>7}")
        print(f"  speedup fleet vs single: "
              f"x{measurement['speedup_fleet_vs_single']}")
    slo = report["slo"]
    if slo.get("enabled"):
        print(f"  fleet SLO: hedged={slo['hedged']} "
              f"hedge_wins={slo['hedge_wins']} shed={slo['shed']} "
              f"respawns={slo['respawns']}")
        for endpoint, row in slo.get("slo", {}).items():
            latency = row["latency_ms"]
            print(f"    {endpoint:<10} p50 {latency['p50']}ms "
                  f"p95 {latency['p95']}ms p99 {latency['p99']}ms "
                  f"hedge_rate {row['hedge_rate']} "
                  f"shed_rate {row['shed_rate']}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Two-stage load harness: worker fleet vs "
                    "single-process serving.")
    parser.add_argument("--seed", type=int, default=2004)
    parser.add_argument("--scale", type=int, default=32,
                        help="testbed scale tier (default 32; CI pilots "
                             "at 4)")
    parser.add_argument("--fleet", type=int, default=4,
                        help="fleet worker count (default 4)")
    parser.add_argument("--clients", type=int, default=8,
                        help="measurement client threads (default 8)")
    parser.add_argument("--rounds", type=int, default=40,
                        help="requests per client thread (default 40)")
    parser.add_argument("--pilot-only", action="store_true",
                        help="run calibration + byte-identity + worker-"
                             "kill only (CI fleet-smoke)")
    parser.add_argument("--no-kill", dest="kill_worker",
                        action="store_false",
                        help="skip the worker-kill resilience step")
    parser.add_argument("--out", default=None, metavar="FILE",
                        help="write the stamped JSON report here "
                             "(default: BENCH_fleet.json at the repo "
                             "root)")
    args = parser.parse_args(argv)

    report, failures = run_bench(args)
    report["failures"] = failures

    out = Path(args.out) if args.out else \
        Path(__file__).resolve().parent.parent / "BENCH_fleet.json"
    from repro.perf.schema import KIND_BENCH, stamp
    out.write_text(json.dumps(stamp(KIND_BENCH, report), indent=2) + "\n",
                   encoding="utf-8")
    _print_report(report)
    print(f"[bench_server] -> {out}")
    for failure in failures:
        print(f"[bench_server] FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
