"""Experiment fig2 — Figure 2: the University of Maryland catalog snapshot.

Figure 2 shows UMD's free-form page with a *nested* section table inside
every course block — the structure that forced the THALIA authors to
extend TESS. The bench regenerates it and verifies the nesting plus the
section details quoted in the paper (ids, instructors, seat notes).
"""

from repro.catalogs.universities import UMD


def _render():
    profile = UMD()
    courses = profile.build_courses(seed=2004)
    return profile.render(courses)


def test_fig2_umd_snapshot(benchmark):
    page = benchmark(_render)

    # Free-form blocks, each containing a nested table.
    assert page.count('<div class="course">') >= 12
    assert page.count('<table class="sections"') >= 12

    # The section rows quoted in the paper's sample element.
    assert "0101(13795) Singh, H." in page
    assert "0201(13796) Memon, A." in page
    assert "(Seats=40, Open=2, Waitlist=0)" in page

    # Course names with UMD's trailing-semicolon quirk.
    assert "Software Engineering;" in page
    assert "Data Structures;" in page

    print("\n[fig2] UMD snapshot regenerated: nested section tables for "
          f"{page.count('class=' + chr(34) + 'course' + chr(34))} courses")
