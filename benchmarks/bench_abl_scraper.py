"""Experiment abl-scraper — ablation: TESS without the nesting extension.

§2.1: "Although the original TESS system could successfully extract
information from catalog with simple structure such as the one from Brown
University, it could not parse complex catalogs such as the one from the
University of Maryland... The combination free-form structure and nested
table required modification to TESS." The bench runs the whole testbed
through both engine flavors: the original must fail on exactly the
nested-structure sources, the modified one on none.
"""

from repro.catalogs import all_universities
from repro.tess import TessExtractionError, TessScraper


def _extraction_outcomes(supports_nesting: bool):
    scraper = TessScraper(supports_nesting=supports_nesting)
    outcomes: dict[str, bool] = {}
    for profile in all_universities():
        courses = profile.build_courses(seed=2004)
        page = profile.render(courses)
        try:
            scraper.extract(page, profile.wrapper_config())
            outcomes[profile.slug] = True
        except TessExtractionError:
            outcomes[profile.slug] = False
    return outcomes


def test_original_tess_fails_on_nested_sources(benchmark):
    outcomes = benchmark.pedantic(
        lambda: _extraction_outcomes(supports_nesting=False),
        rounds=1, iterations=1)

    failed = sorted(slug for slug, ok in outcomes.items() if not ok)
    print(f"\n[abl-scraper] original TESS fails on: {failed}")
    # UMD is the paper's example of an unextractable nested catalog.
    assert failed == ["umd"]


def test_modified_tess_extracts_everything():
    outcomes = _extraction_outcomes(supports_nesting=True)
    assert all(outcomes.values())
    print(f"\n[abl-scraper] modified TESS extracts all "
          f"{len(outcomes)} sources")
