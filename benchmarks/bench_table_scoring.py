"""Experiment tab-scoring — §3.2: the scoring function and ranking.

The paper's rule: 1 point per correct answer (max 12); external functions
charged low/medium/high = 1/2/3 complexity points; equal correctness is
ranked by *lower* complexity. Shape to reproduce: Cohera and IWIZ tie at
9/12; Cohera ranks above IWIZ because its UDF machinery answers four
queries with no code at all; the THALIA mediator tops the roll at 12/12.
"""

from repro.core import HonorRoll, rank, run_all
from repro.core.report import render_query_matrix, render_scoreboard
from repro.systems import cohera, iwiz, thalia_mediator


def test_table_scoring(benchmark, paper_testbed):
    cards = benchmark.pedantic(
        lambda: run_all([cohera(), iwiz(), thalia_mediator()],
                        paper_testbed),
        rounds=1, iterations=1)

    print("\n" + render_query_matrix(cards))
    print(render_scoreboard(cards))

    by_name = {card.system: card for card in cards}
    cohera_card = by_name["Cohera"]
    iwiz_card = by_name["IWIZ"]
    thalia_card = by_name["THALIA-Mediator"]

    # Correctness points.
    assert cohera_card.correct_count == 9
    assert iwiz_card.correct_count == 9
    assert thalia_card.correct_count == 12

    # Complexity: Cohera strictly cheaper than IWIZ at equal correctness.
    assert cohera_card.complexity_score == 9
    assert iwiz_card.complexity_score == 14
    assert cohera_card.complexity_score < iwiz_card.complexity_score

    # Ranking rule: THALIA > Cohera > IWIZ.
    ordered = [card.system for card in rank(cards)]
    assert ordered == ["THALIA-Mediator", "Cohera", "IWIZ"]

    # Honor-roll round trip preserves the ranking.
    roll = HonorRoll()
    for card in cards:
        roll.submit(card, submitter="bench")
    print(roll.render())
    assert [entry.card.system for entry in roll.ranked()] == ordered
