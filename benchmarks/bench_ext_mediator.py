"""Experiment ext-mediator — extension: the full mediator answers all 12.

The paper's conclusion: "current systems do not score well, and we hope
that THALIA will be an inducement for research groups to construct better
solutions." This bench runs this repository's construction — the full
mapping set of :mod:`repro.integration` — and verifies a perfect score,
with every answer equal to the gold answer computed from canonical data.
"""

from repro.core import QUERIES, gold_answer, run_benchmark
from repro.core.report import render_system_table
from repro.systems import thalia_mediator


def test_ext_mediator_full_score(benchmark, paper_testbed):
    card = benchmark.pedantic(
        lambda: run_benchmark(thalia_mediator(), paper_testbed),
        rounds=3, iterations=1)

    print("\n" + render_system_table(card))
    assert card.correct_count == 12
    assert card.unsupported_numbers == []


def test_ext_mediator_answers_equal_gold(paper_testbed):
    system = thalia_mediator()
    print("\n[ext-mediator] answers vs gold:")
    for query in QUERIES:
        attempt = system.answer(query, paper_testbed)
        gold = gold_answer(query, paper_testbed)
        assert attempt.answer == gold, f"Q{query.number}"
        print(f"  Q{query.number:>2}: {len(gold)} answer tuple(s) "
              "match gold")
