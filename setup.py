"""Legacy setup shim.

The execution environment has no ``wheel`` package, so PEP 660 editable
installs fail with ``invalid command 'bdist_wheel'``. Keeping a minimal
``setup.py`` lets ``pip install -e .`` fall back to the classic
``setup.py develop`` path. All real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
