"""CLI tests: every `thalia` subcommand end-to-end."""

import pytest

from repro.cli import main


class TestSources:
    def test_lists_all_sources(self, capsys):
        assert main(["sources"]) == 0
        out = capsys.readouterr().out
        assert out.count("\n") == 25
        assert "cmu" in out
        assert "Carnegie Mellon" in out

    def test_pinned_sources_show_query_numbers(self, capsys):
        main(["sources"])
        out = capsys.readouterr().out
        cmu_line = [line for line in out.splitlines()
                    if line.startswith("cmu")][0]
        assert "queries=1,2,4,6,7,10,11,12" in cmu_line


class TestRunBenchmark:
    def test_prints_scoreboard_and_honor_roll(self, capsys):
        assert main(["run-benchmark"]) == 0
        out = capsys.readouterr().out
        assert "THALIA scoreboard" in out
        assert "THALIA Honor Roll" in out
        assert "Cohera" in out and "IWIZ" in out
        assert "12/12" in out and "9/12" in out


class TestQuery:
    def test_describes_and_runs(self, capsys):
        assert main(["query", "1"]) == 0
        out = capsys.readouterr().out
        assert "Synonyms" in out
        assert "reference query returned 1 item(s)" in out
        assert "Mark" in out

    def test_rejects_out_of_range(self):
        with pytest.raises(SystemExit):
            main(["query", "13"])


class TestBuildTestbed:
    def test_writes_source_directories(self, tmp_path, capsys):
        target = tmp_path / "testbed"
        assert main(["build-testbed", str(target)]) == 0
        assert "wrote 25 sources" in capsys.readouterr().out
        assert (target / "eth" / "eth.xml").exists()
        assert (target / "eth" / "wrapper.cfg").exists()


class TestBundleAndSite:
    def test_bundle(self, tmp_path, capsys):
        assert main(["bundle", str(tmp_path / "dl")]) == 0
        out = capsys.readouterr().out
        assert out.count("wrote") == 3
        assert (tmp_path / "dl" / "thalia_catalogs.zip").exists()

    def test_build_site(self, tmp_path, capsys):
        target = tmp_path / "site"
        assert main(["build-site", str(target)]) == 0
        assert "site generated" in capsys.readouterr().out
        assert (target / "index.html").exists()
        assert (target / "honor_roll.html").exists()


class TestSeedOption:
    def test_seed_accepted(self, capsys):
        assert main(["--seed", "7", "sources"]) == 0
        assert "cmu" in capsys.readouterr().out

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])


class TestSelfCheck:
    def test_selfcheck_passes(self, capsys):
        assert main(["selfcheck"]) == 0
        out = capsys.readouterr().out
        assert "all invariants hold" in out


class TestScorePersistenceFlow:
    def test_save_then_build_site_with_scores(self, tmp_path, capsys):
        scores = tmp_path / "scores.json"
        assert main(["run-benchmark", "--save-scores", str(scores)]) == 0
        assert scores.exists()
        capsys.readouterr()

        site = tmp_path / "site"
        assert main(["build-site", str(site), "--scores",
                     str(scores)]) == 0
        page = (site / "honor_roll.html").read_text()
        assert "THALIA-Mediator" in page
        assert "repro" in page
