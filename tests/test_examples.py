"""Smoke tests: every shipped example runs cleanly.

The examples import ``repro`` as an installed package, but the test
environment runs from a source checkout, so the child process gets
``src`` prepended to its ``PYTHONPATH`` explicitly.  Each example runs
in its own scratch directory and only once per session (several tests
assert on the same run), so a failure in one example never masks the
results of the others.
"""

import os
import subprocess
import sys
import tempfile
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"
SRC = Path(__file__).resolve().parent.parent / "src"

_runs: dict[str, tuple[subprocess.CompletedProcess, Path]] = {}


def run_example(name: str) -> tuple[subprocess.CompletedProcess, Path]:
    """Run one example once per session; returns (result, its cwd)."""
    if name not in _runs:
        cwd = Path(tempfile.mkdtemp(prefix=f"example-{Path(name).stem}-"))
        env = os.environ.copy()
        env["PYTHONPATH"] = str(SRC) + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
        _runs[name] = (subprocess.run(
            [sys.executable, str(EXAMPLES / name)],
            capture_output=True, text=True, cwd=cwd, env=env,
            timeout=300), cwd)
    return _runs[name]


class TestExamples:
    def test_quickstart(self):
        result, _ = run_example("quickstart.py")
        assert result.returncode == 0, result.stderr
        assert "mediator answer matches gold" in result.stdout

    def test_evaluate_system(self):
        result, _ = run_example("evaluate_system.py")
        assert result.returncode == 0, result.stderr
        assert "THALIA Honor Roll" in result.stdout
        assert "SchemaMatcher2004" in result.stdout

    def test_add_a_source(self):
        result, _ = run_example("add_a_source.py")
        assert result.returncode == 0, result.stderr
        assert "tudelft" in result.stdout
        assert "Integrated" in result.stdout

    def test_build_site(self):
        result, cwd = run_example("build_site.py")
        assert result.returncode == 0, result.stderr
        assert (cwd / "thalia_site" / "index.html").exists()

    @pytest.mark.parametrize("name", [
        "quickstart.py", "evaluate_system.py", "add_a_source.py",
        "build_site.py"])
    def test_examples_emit_no_stderr(self, name):
        result, _ = run_example(name)
        assert result.stderr == "", result.stderr


class TestRewriteUdfsExample:
    def test_rewrite_and_udfs(self):
        result, _ = run_example("rewrite_and_udfs.py")
        assert result.returncode == 0, result.stderr
        assert "15-567*" in result.stdout
        assert "Datenbanksysteme" in result.stdout
        assert "complexity charged" in result.stdout


class TestWarehouseExample:
    def test_warehouse_queries(self):
        result, _ = run_example("warehouse_queries.py")
        assert result.returncode == 0, result.stderr
        assert "matches gold" in result.stdout
        assert "MISMATCH" not in result.stdout
