"""Smoke tests: every shipped example runs cleanly."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, cwd: Path) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, cwd=cwd, timeout=300)


class TestExamples:
    def test_quickstart(self, tmp_path):
        result = run_example("quickstart.py", tmp_path)
        assert result.returncode == 0, result.stderr
        assert "mediator answer matches gold" in result.stdout

    def test_evaluate_system(self, tmp_path):
        result = run_example("evaluate_system.py", tmp_path)
        assert result.returncode == 0, result.stderr
        assert "THALIA Honor Roll" in result.stdout
        assert "SchemaMatcher2004" in result.stdout

    def test_add_a_source(self, tmp_path):
        result = run_example("add_a_source.py", tmp_path)
        assert result.returncode == 0, result.stderr
        assert "tudelft" in result.stdout
        assert "Integrated" in result.stdout

    def test_build_site(self, tmp_path):
        result = run_example("build_site.py", tmp_path)
        assert result.returncode == 0, result.stderr
        assert (tmp_path / "thalia_site" / "index.html").exists()

    @pytest.mark.parametrize("name", [
        "quickstart.py", "evaluate_system.py", "add_a_source.py",
        "build_site.py"])
    def test_examples_emit_no_stderr(self, name, tmp_path):
        result = run_example(name, tmp_path)
        assert result.stderr == "", result.stderr


class TestRewriteUdfsExample:
    def test_rewrite_and_udfs(self, tmp_path):
        result = run_example("rewrite_and_udfs.py", tmp_path)
        assert result.returncode == 0, result.stderr
        assert "15-567*" in result.stdout
        assert "Datenbanksysteme" in result.stdout
        assert "complexity charged" in result.stdout


class TestWarehouseExample:
    def test_warehouse_queries(self, tmp_path):
        result = run_example("warehouse_queries.py", tmp_path)
        assert result.returncode == 0, result.stderr
        assert "matches gold" in result.stdout
        assert "MISMATCH" not in result.stdout
