"""Shared session-scoped testbed builds.

Most test modules only read the testbed, so they share one build per
flavor instead of each paying for a module-scoped rebuild:

* ``testbed`` — the full default 25-source build at ``DEFAULT_SEED``;
* ``paper_testbed`` — the nine paper-pinned sources (what most modules
  previously built for themselves);
* ``extended_testbed`` — the 45-source roadmap build.

All three are built serially without a cache directory, i.e. exactly the
artifacts a plain ``build_testbed()`` produces.  Tests that mutate a
testbed (none today, by convention) must build their own.
"""

import pytest

from repro.catalogs import (
    build_testbed,
    extended_universities,
    paper_universities,
)


@pytest.fixture(scope="session")
def _full_build():
    return build_testbed()


@pytest.fixture(scope="session")
def testbed(_full_build):
    """Full default 25-source testbed, built once per test session."""
    return _full_build


@pytest.fixture(scope="session")
def full_testbed(_full_build):
    """Alias for modules whose local ``testbed`` fixture shadows the
    session-scoped full build."""
    return _full_build


@pytest.fixture(scope="session")
def paper_testbed():
    """The nine paper-pinned sources, built once per test session."""
    return build_testbed(universities=paper_universities())


@pytest.fixture(scope="session")
def extended_testbed():
    """The 45-source roadmap testbed, built once per test session."""
    return build_testbed(universities=extended_universities())
