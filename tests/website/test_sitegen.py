"""Static-site generator tests (the Fig. 4 reproduction)."""

import pytest

from repro.catalogs import build_testbed, paper_universities
from repro.core import HonorRoll, run_all
from repro.systems import cohera, thalia_mediator
from repro.website import SiteGenerator


@pytest.fixture(scope="module")
def testbed(paper_testbed):
    return paper_testbed


@pytest.fixture(scope="module")
def site(testbed, tmp_path_factory):
    roll = HonorRoll()
    for card in run_all([cohera(), thalia_mediator()], testbed):
        roll.submit(card, submitter="tester")
    root = tmp_path_factory.mktemp("site")
    return SiteGenerator(testbed, roll).build(root)


class TestSiteStructure:
    def test_home_page(self, site):
        home = (site / "index.html").read_text()
        assert "Test Harness for the Assessment" in home
        assert "Run the benchmark" in home

    def test_nav_sections_exist(self, site):
        assert (site / "catalogs" / "index.html").exists()
        assert (site / "data" / "index.html").exists()
        assert (site / "benchmark" / "index.html").exists()
        assert (site / "honor_roll.html").exists()

    def test_catalog_snapshot_pages(self, site, testbed):
        for slug in testbed.slugs:
            page = (site / "catalogs" / f"{slug}.html").read_text()
            assert "Cached snapshot" in page

    def test_data_pages_contain_xml(self, site):
        page = (site / "data" / "cmu_xml.html").read_text()
        assert "CourseTitle" in page

    def test_schema_pages_contain_xsd(self, site):
        page = (site / "data" / "cmu_xsd.html").read_text()
        assert "xs:schema" in page

    def test_benchmark_index_lists_downloads(self, site):
        page = (site / "benchmark" / "index.html").read_text()
        assert "thalia_catalogs.zip" in page
        assert "thalia_benchmark_queries.zip" in page
        assert "thalia_sample_solutions.zip" in page

    def test_per_query_pages(self, site):
        for number in range(1, 13):
            page = (site / "benchmark" / f"query{number:02d}.html")
            assert page.exists(), number
        q4 = (site / "benchmark" / "query04.html").read_text()
        assert "Umfang" in q4

    def test_download_zips_written(self, site):
        downloads = site / "downloads"
        assert len(list(downloads.glob("*.zip"))) == 3

    def test_honor_roll_ranked(self, site):
        page = (site / "honor_roll.html").read_text()
        assert "THALIA-Mediator" in page
        assert "Cohera" in page
        # the 12/12 system is listed before the 9/12 one
        assert page.index("THALIA-Mediator") < page.index("Cohera")

    def test_empty_honor_roll_message(self, testbed, tmp_path):
        root = SiteGenerator(testbed).build(tmp_path / "s2")
        page = (root / "honor_roll.html").read_text()
        assert "No scores uploaded yet" in page


class TestClassificationPage:
    def test_page_generated_with_live_samples(self, site):
        page = (site / "classification.html").read_text()
        assert "Heterogeneity Classification" in page
        assert "Synonyms" in page
        assert "2V1U" in page

    def test_nav_links_to_classification(self, site):
        home = (site / "index.html").read_text()
        assert "classification.html" in home


class TestSharedBuildDefault:
    def test_default_generator_uses_shared_testbed(self):
        from repro.catalogs import shared_testbed
        generator = SiteGenerator()
        assert generator.testbed is shared_testbed()
