"""Download bundle tests."""

import io
import zipfile

import pytest

from repro.catalogs import build_testbed, paper_universities
from repro.core import QUERIES
from repro.website import (
    build_all_bundles,
    build_catalogs_bundle,
    build_queries_bundle,
    build_solutions_bundle,
    solution_document,
    verify_solution_bundle,
)


@pytest.fixture(scope="module")
def testbed(paper_testbed):
    return paper_testbed


def names_in(data: bytes) -> list[str]:
    with zipfile.ZipFile(io.BytesIO(data)) as archive:
        return archive.namelist()


class TestCatalogsBundle:
    def test_xml_and_xsd_per_source(self, testbed):
        names = names_in(build_catalogs_bundle(testbed))
        for slug in testbed.slugs:
            assert f"{slug}/{slug}.xml" in names
            assert f"{slug}/{slug}.xsd" in names

    def test_xml_content_parses(self, testbed):
        from repro.xmlmodel import parse_xml
        data = build_catalogs_bundle(testbed)
        with zipfile.ZipFile(io.BytesIO(data)) as archive:
            payload = archive.read("cmu/cmu.xml").decode("utf-8")
        assert parse_xml(payload).root.tag == "cmu"


class TestQueriesBundle:
    def test_twelve_query_directories(self, testbed):
        names = names_in(build_queries_bundle(testbed))
        for query in QUERIES:
            prefix = f"query{query.number:02d}"
            assert f"{prefix}/query.xq" in names
            assert f"{prefix}/README.txt" in names
            for slug in query.sources:
                assert f"{prefix}/{slug}.xml" in names

    def test_query_text_is_runnable(self, testbed):
        from repro.xquery.parser import parse_query
        data = build_queries_bundle(testbed)
        with zipfile.ZipFile(io.BytesIO(data)) as archive:
            for query in QUERIES:
                source = archive.read(
                    f"query{query.number:02d}/query.xq").decode("utf-8")
                parse_query(source)


class TestSolutionsBundle:
    def test_solution_per_query(self, testbed):
        names = names_in(build_solutions_bundle(testbed))
        for query in QUERIES:
            assert f"query{query.number:02d}/solution.xml" in names
            assert f"query{query.number:02d}/solution.xsd" in names

    def test_solution_document_covers_gold(self, testbed):
        assert verify_solution_bundle(testbed)

    def test_solution_document_structure(self, testbed):
        document = solution_document(1, testbed)
        assert document.root.tag == "result"
        keys = {(c.get("source"), c.get("code"))
                for c in document.root.findall("Course")}
        assert keys == {("gatech", "20381"), ("cmu", "15-567*")}

    def test_solution_includes_null_annotation(self, testbed):
        from repro.xmlmodel import serialize
        document = solution_document(8, testbed)
        text = serialize(document)
        assert "inapplicable" in text

    def test_solution_validates_against_shipped_schema(self, testbed):
        from repro.xmlmodel import infer_schema
        for number in (1, 6, 9, 12):
            document = solution_document(number, testbed)
            infer_schema(document).validate(document)


class TestAllBundles:
    def test_writes_three_zips(self, testbed, tmp_path):
        written = build_all_bundles(testbed, tmp_path)
        assert len(written) == 3
        assert all(path.exists() and path.stat().st_size > 0
                   for path in written)
