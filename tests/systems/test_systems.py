"""System evaluation tests: the §4.2 reproduction.

These are the repository's headline assertions: the per-query outcomes of
Cohera and IWIZ fall out of their capability profiles, and match the
paper's verdicts in shape — who answers what, at what effort, and which
three queries defeat both.
"""

import pytest

from repro.catalogs import build_testbed, paper_universities
from repro.core import get_query, gold_answer, run_all, run_benchmark
from repro.integration import Capability, Effort
from repro.systems import (
    CapabilityModelSystem,
    cohera,
    iwiz,
    thalia_mediator,
)

HARD_TRIPLE = (4, 5, 8)


@pytest.fixture(scope="module")
def testbed(paper_testbed):
    return paper_testbed


@pytest.fixture(scope="module")
def cards(testbed):
    return {card.system: card
            for card in run_all([cohera(), iwiz(), thalia_mediator()],
                                testbed)}


class TestCohera(object):
    def test_nine_correct(self, cards):
        assert cards["Cohera"].correct_count == 9

    def test_four_queries_with_no_code(self, cards):
        """Paper: 'Cohera could do 4 queries with no code'."""
        card = cards["Cohera"]
        no_code = [o.number for o in card.outcomes
                   if o.correct and o.effort == Effort.NONE]
        assert sorted(no_code) == [1, 6, 9, 10]

    def test_five_queries_with_user_code(self, cards):
        """Paper: 'another 5 with varying amounts of user-defined code'."""
        card = cards["Cohera"]
        coded = [o.number for o in card.outcomes
                 if o.correct and o.effort != Effort.NONE]
        assert sorted(coded) == [2, 3, 7, 11, 12]

    def test_hard_triple_unsupported(self, cards):
        assert sorted(cards["Cohera"].unsupported_numbers) == \
            list(HARD_TRIPLE)

    def test_q2_is_small_code(self, cards):
        assert cards["Cohera"].outcome(2).effort == Effort.LOW

    def test_q3_is_moderate_code(self, cards):
        assert cards["Cohera"].outcome(3).effort == Effort.MEDIUM


class TestIwiz(object):
    def test_nine_correct(self, cards):
        assert cards["IWIZ"].correct_count == 9

    def test_no_query_is_free(self, cards):
        """IWIZ has no UDFs: everything needs at least small code."""
        card = cards["IWIZ"]
        assert all(o.effort != Effort.NONE
                   for o in card.outcomes if o.correct)

    def test_small_code_queries(self, cards):
        card = cards["IWIZ"]
        small = [o.number for o in card.outcomes
                 if o.correct and o.effort == Effort.LOW]
        assert sorted(small) == [1, 2, 9, 10]

    def test_nulls_cost_moderate_code(self, cards):
        """Paper: 'no direct support for nulls; requires moderate amount
        of custom code'."""
        assert cards["IWIZ"].outcome(6).effort == Effort.MEDIUM

    def test_hard_triple_unsupported(self, cards):
        assert sorted(cards["IWIZ"].unsupported_numbers) == \
            list(HARD_TRIPLE)

    def test_more_custom_code_than_cohera(self, cards):
        assert cards["IWIZ"].complexity_score > \
            cards["Cohera"].complexity_score


class TestThaliaMediator(object):
    def test_twelve_correct(self, cards):
        assert cards["THALIA-Mediator"].correct_count == 12

    def test_no_unsupported(self, cards):
        assert cards["THALIA-Mediator"].unsupported_numbers == []

    def test_hard_queries_cost_high_effort(self, cards):
        card = cards["THALIA-Mediator"]
        assert card.outcome(4).effort == Effort.HIGH
        assert card.outcome(5).effort == Effort.HIGH


class TestMechanization(object):
    """Outcomes are *computed*, not hard-coded."""

    def test_unsupported_answers_degrade_not_vanish(self, testbed):
        """Cohera on Q4 still finds the CMU course; it loses ETH's because
        the Umfang transform is missing. Partial ≠ correct."""
        system = cohera()
        attempt = system.answer(get_query(4), testbed)
        assert ("cmu", "15-415") in attempt.answer
        assert not any(key[0] == "eth" for key in attempt.answer)
        assert attempt.answer != gold_answer(4, testbed)

    def test_q5_degradation_is_the_language_gap(self, testbed):
        attempt = iwiz().answer(get_query(5), testbed)
        assert attempt.answer == {("umd", "CMSC424")}

    def test_q8_degradation_loses_annotations(self, testbed):
        attempt = cohera().answer(get_query(8), testbed)
        assert attempt.answer == {("gatech", "20422", "open")}

    def test_thalia_answers_equal_gold_everywhere(self, testbed):
        system = thalia_mediator()
        for number in range(1, 13):
            query = get_query(number)
            attempt = system.answer(query, testbed)
            assert attempt.answer == gold_answer(query, testbed), \
                f"Q{number}"

    def test_custom_profile_system(self, testbed):
        """A hypothetical rename-only system answers exactly Q1."""
        minimal = CapabilityModelSystem(
            "Rename-Only", {Capability.RENAME: Effort.NONE})
        card = run_benchmark(minimal, testbed)
        correct = [o.number for o in card.outcomes if o.correct]
        assert correct == [1]

    def test_empty_profile_system_scores_zero(self, testbed):
        nothing = CapabilityModelSystem("Nothing", {})
        card = run_benchmark(nothing, testbed)
        assert card.correct_count == 0
        assert len(card.unsupported_numbers) == 12

    def test_note_mentions_missing_capability(self, testbed):
        attempt = cohera().answer(get_query(5), testbed)
        assert "TRANSLATION" in attempt.note


class TestUnifiedInterface:
    """Every system speaks one protocol: answer(query, testbed)."""

    def test_all_shipped_systems_implement_answer(self):
        from repro.systems import IntegrationSystem, automatch, naive_xquery
        for system in (cohera(), iwiz(), thalia_mediator(),
                       naive_xquery(), automatch()):
            assert isinstance(system, IntegrationSystem)
            assert callable(type(system).answer)

    def test_answer_returns_system_answer(self, testbed):
        from repro.systems import SystemAnswer
        attempt = thalia_mediator().answer(get_query(1), testbed)
        assert isinstance(attempt, SystemAnswer)

    @pytest.mark.parametrize("hook", ["run_query", "execute_query",
                                      "evaluate_query", "query"])
    def test_legacy_hook_names_are_rejected_at_class_definition(self, hook):
        from repro.systems import IntegrationSystem
        with pytest.raises(TypeError, match="unified"):
            type("Legacy", (IntegrationSystem,), {
                "name": "legacy",
                hook: lambda self, query, testbed: None,
                "answer": lambda self, query, testbed: None,
            })

    def test_abstract_base_cannot_instantiate(self):
        from repro.systems import IntegrationSystem
        with pytest.raises(TypeError):
            IntegrationSystem()
