"""Naive-baseline tests: the zero-integration floor."""

import pytest

from repro.catalogs import build_testbed, paper_universities
from repro.core import QUERIES, get_query, rank, run_all, run_benchmark
from repro.systems import (
    automatch,
    cohera,
    iwiz,
    naive_xquery,
    thalia_mediator,
)
from repro.xquery import run_query


@pytest.fixture(scope="module")
def testbed(paper_testbed):
    return paper_testbed


class TestNaiveFloor:
    def test_scores_zero(self, testbed):
        card = run_benchmark(naive_xquery(), testbed)
        assert card.correct_count == 0

    def test_every_answer_misses_the_challenge_half(self, testbed):
        system = naive_xquery()
        for query in QUERIES:
            attempt = system.answer(query, testbed)
            sources = {entry[0] for entry in attempt.answer}
            assert query.challenge not in sources, f"Q{query.number}"

    def test_reference_half_is_nonempty(self, testbed):
        """The naive system is not a strawman: it does answer the
        reference side correctly on every query."""
        system = naive_xquery()
        for query in QUERIES:
            attempt = system.answer(query, testbed)
            assert attempt.answer, f"Q{query.number}"

    @pytest.mark.parametrize("number", [1, 2, 3, 4, 5, 7, 8])
    def test_reference_half_matches_verbatim_xquery(self, testbed, number):
        """For whole-record queries, the claimed reference half is exactly
        what the verbatim reference XQuery returns."""
        query = get_query(number)
        raw = run_query(query.xquery, testbed.documents)
        code_tags = ("CourseNum", "Nummer", "code", "title")
        raw_codes = set()
        for item in raw:
            for tag in code_tags:
                value = item.findtext(tag)
                if value:
                    raw_codes.add(value.split()[0].strip())
                    break
        claimed = {entry[1] for entry in
                   naive_xquery().answer(query, testbed).answer}
        assert raw_codes == claimed


class TestFullSpectrum:
    def test_the_five_system_ranking(self, testbed):
        """Naive 0 < AutoMatch 4 < IWIZ 9 ≤ Cohera 9 < THALIA 12."""
        cards = run_all(
            [naive_xquery(), automatch(), cohera(), iwiz(),
             thalia_mediator()], testbed)
        ordered = [card.system for card in rank(cards)]
        assert ordered == ["THALIA-Mediator", "Cohera", "IWIZ",
                           "AutoMatch", "NaiveXQuery"]

    def test_correctness_strictly_increases_up_the_spectrum(self, testbed):
        cards = {card.system: card for card in run_all(
            [naive_xquery(), automatch(), cohera(), thalia_mediator()],
            testbed)}
        assert cards["NaiveXQuery"].correct_count \
            < cards["AutoMatch"].correct_count \
            < cards["Cohera"].correct_count \
            < cards["THALIA-Mediator"].correct_count
