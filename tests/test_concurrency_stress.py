"""Threaded stress tests: every cache keeps one canonical entry when
many threads race the same cold miss."""

import threading

from repro.server.cache import ContentCache
from repro.xquery import PlanCache
from repro.xquery.results import ResultCache

THREADS = 16


def _race(worker):
    """Run *worker* on THREADS threads released simultaneously.

    Synchronization is purely event-based: every thread checks in on a
    ready latch, and the coordinator fires one ``go`` event only after
    all of them are parked at it.  There are no sleeps and no wall-clock
    thresholds to mistune — on a loaded box the test just takes longer,
    it cannot spuriously break the way a ``Barrier.wait(timeout=...)``
    used to.  A worker exception is re-raised in the test thread.
    """
    ready = threading.Semaphore(0)
    go = threading.Event()
    results = [None] * THREADS
    errors = []

    def wrapped(index):
        ready.release()
        go.wait()
        try:
            results[index] = worker(index)
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=wrapped, args=(index,))
               for index in range(THREADS)]
    for thread in threads:
        thread.start()
    for _ in range(THREADS):
        ready.acquire()
    go.set()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]
    return results


class TestPlanCacheRaces:
    def test_racing_misses_one_canonical_plan(self):
        cache = PlanCache()
        source = 'FOR $c in doc("cmu.xml")/cmu/Course RETURN $c'
        plans = _race(lambda index: cache.get(source))
        assert len({id(plan) for plan in plans}) == 1
        assert len(cache) == 1

    def test_mixed_keys_under_contention(self):
        cache = PlanCache()
        sources = [f'FOR $c in doc("cmu.xml")/cmu/Course '
                   f'RETURN $c/F{n}' for n in range(4)]
        plans = _race(lambda index: cache.get(sources[index % 4]))
        assert len({id(plan) for plan in plans}) == 4
        assert len(cache) == 4


class TestContentCacheRaces:
    def test_racing_misses_one_canonical_entry(self):
        cache = ContentCache()
        entries = _race(lambda index: cache.get_or_build(
            ("group", "variant"), lambda: (b"payload", "text/plain")))
        canonical = {id(entry) for entry, _hit in entries}
        assert len(canonical) == 1
        assert cache.builds >= 1
        assert len(cache) == 1
        assert cache.bytes == len(b"payload")

    def test_byte_counter_tracks_prune_under_threads(self):
        cache = ContentCache()

        def worker(index):
            variant = str(index % 4)
            cache.get_or_build(("g", variant),
                               lambda: (b"x" * (index % 4 + 1), "t"))
            cache.prune_group("g", keep_variant="0")

        _race(worker)
        cache.prune_group("g", keep_variant="0")
        expected = sum(len(e.body) for e in cache._entries.values())
        assert cache.bytes == expected

    def test_stats_bytes_equals_actual_bytes(self):
        cache = ContentCache()
        for index in range(5):
            cache.get_or_build(("g", str(index)),
                               lambda: (b"y" * 10, "t"))
        cache.prune_group("g", keep_variant="3")
        assert cache.stats()["bytes"] == 10
        assert cache.stats()["entries"] == 1


class TestResultCacheRaces:
    def test_racing_misses_one_canonical_value(self):
        cache = ResultCache()
        calls = []
        lock = threading.Lock()

        def compute():
            with lock:
                calls.append(1)
            return ("shared",)

        values = _race(lambda index: cache.get_or_compute(
            "task", "content", compute))
        assert len({id(value) for value in values}) == 1
        assert len(calls) == 1
        assert len(cache) == 1
        stats = cache.stats()
        assert stats["misses"] == 1
        assert stats["hits"] + stats["coalesced"] == THREADS - 1

    def test_mixed_keys_and_eviction_under_contention(self):
        cache = ResultCache(maxsize=4)

        def worker(index):
            key = f"task-{index % 8}"
            return cache.get_or_compute(key, "c", lambda: key.upper())

        values = _race(worker)
        assert all(value.startswith("TASK-") for value in values)
        assert len(cache) <= 4
        # The byte counter never drifts from the surviving entries.
        expected = sum(entry.size for entry in cache._entries.values())
        assert cache.bytes == expected
