"""Property test: Plan.execute ≡ evaluate on randomized queries.

Queries are generated compositionally over a small fixed document so the
planner's rewrites (constant folding, WHERE fusion, index-backed paths)
all get exercised; results — including raised XQueryError types — must
match the tree-walking interpreter exactly.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.xmlmodel import XmlDocument, XmlElement, element, serialize
from repro.xquery import compile_query
from repro.xquery.context import DynamicContext
from repro.xquery.errors import XQueryError
from repro.xquery.evaluator import evaluate
from repro.xquery.parser import parse_query


def _docs():
    root = element(
        "r",
        element("c", element("v", "x"), element("w", "5"),
                element("t", "alpha beta")),
        element("c", element("v", "y"), element("w", "2")),
        element("c", element("v", "x"), element("w", "7"),
                element("t", "gamma")),
    )
    return {"d": XmlDocument(root)}


DOCS = _docs()

_tags = st.sampled_from(["c", "v", "w", "t", "missing"])
_strings = st.sampled_from(["'x'", "'y'", "'%x%'", "'alpha%'", "''"])
_numbers = st.sampled_from(["1", "2", "5", "0"])
_cmp_ops = st.sampled_from(["=", "!=", "<", "<=", ">", ">="])


@st.composite
def _paths(draw):
    steps = draw(st.lists(_tags, min_size=1, max_size=3))
    sep = draw(st.sampled_from(["/", "//"]))
    return "doc('d')" + sep + "/".join(steps)


@st.composite
def _conditions(draw):
    left = draw(st.one_of(
        _paths().map(lambda p: p),
        st.just("$i/v"),
        st.just("$i/w"),
    ))
    op = draw(_cmp_ops)
    right = draw(st.one_of(_strings, _numbers))
    condition = f"{left} {op} {right}"
    if draw(st.booleans()):
        other = f"$i/v = {draw(_strings)}"
        joiner = draw(st.sampled_from(["and", "or"]))
        condition = f"{condition} {joiner} {other}"
    return condition


@st.composite
def _queries(draw):
    shape = draw(st.integers(min_value=0, max_value=3))
    if shape == 0:
        return draw(_paths())
    if shape == 1:
        path = draw(_paths())
        predicate = draw(st.one_of(
            st.just("1"), st.just("2"), st.just("position() < 3"),
            st.just("v = 'x'"), st.just("last()")))
        return f"{path}[{predicate}]"
    if shape == 2:
        condition = draw(_conditions())
        returns = draw(st.sampled_from(
            ["$i", "$i/v", "element hit {$i/v}", "count($i/w)"]))
        order = draw(st.sampled_from(
            ["", " order by $i/v", " order by $i/w descending"]))
        return (f"for $i in doc('d')/r/c where {condition}{order} "
                f"return {returns}")
    kind = draw(st.sampled_from(["some", "every"]))
    condition = draw(_conditions())
    return f"{kind} $i in doc('d')/r/c satisfies {condition}"


def _run_interpreter(source):
    try:
        return [serialize(i) if isinstance(i, XmlElement) else i
                for i in evaluate(parse_query(source),
                                  DynamicContext(documents=DOCS))]
    except XQueryError as exc:
        return ("raised", type(exc).__name__)


def _run_plan(source):
    try:
        plan = compile_query(source)
        return [serialize(i) if isinstance(i, XmlElement) else i
                for i in plan.execute(DOCS)]
    except XQueryError as exc:
        return ("raised", type(exc).__name__)


class TestPlanInterpreterEquivalence:
    @settings(max_examples=300, deadline=None)
    @given(_queries())
    def test_plan_execute_matches_evaluate(self, source):
        assert _run_plan(source) == _run_interpreter(source)

    @settings(max_examples=100, deadline=None)
    @given(_queries())
    def test_plan_is_deterministic_across_runs(self, source):
        first = _run_plan(source)
        try:
            plan = compile_query(source)
        except XQueryError:
            return
        try:
            second = [serialize(i) if isinstance(i, XmlElement) else i
                      for i in plan.execute(DOCS)]
            third = [serialize(i) if isinstance(i, XmlElement) else i
                     for i in plan.execute(DOCS)]
        except XQueryError as exc:
            assert first == ("raised", type(exc).__name__)
            return
        assert first == second == third
        assert plan.explain() == compile_query(source).explain()
