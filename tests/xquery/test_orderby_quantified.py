"""Tests for order-by clauses and quantified expressions."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.xmlmodel import XmlDocument, element
from repro.xquery import XQuerySyntaxError, run_query, unparse
from repro.xquery.parser import parse_query
from repro.xquery.ast import FLWOR, Quantified


@pytest.fixture()
def docs():
    root = element(
        "u",
        element("c", element("t", "Gamma"), element("n", "3")),
        element("c", element("t", "Alpha"), element("n", "1")),
        element("c", element("t", "Beta"), element("n", "2")),
    )
    return {"u": XmlDocument(root)}


class TestOrderByParsing:
    def test_order_specs_recorded(self):
        ast = parse_query(
            "for $x in $s order by $x/a, $x/b descending return $x")
        assert isinstance(ast, FLWOR)
        assert len(ast.order_specs) == 2
        assert not ast.order_specs[0].descending
        assert ast.order_specs[1].descending

    def test_ascending_keyword_accepted(self):
        ast = parse_query("for $x in $s order by $x ascending return $x")
        assert not ast.order_specs[0].descending

    def test_order_requires_by(self):
        with pytest.raises(XQuerySyntaxError):
            parse_query("for $x in $s order $x return $x")

    def test_order_before_return_only(self):
        with pytest.raises(XQuerySyntaxError):
            parse_query("for $x in $s return $x order by $x")


class TestOrderByEvaluation:
    def test_string_sort(self, docs):
        result = run_query(
            "for $c in doc('u')/u/c order by $c/t return $c/t", docs)
        assert [r.text for r in result] == ["Alpha", "Beta", "Gamma"]

    def test_numeric_sort(self, docs):
        result = run_query(
            "for $c in doc('u')/u/c order by number($c/n) return $c/t",
            docs)
        assert [r.text for r in result] == ["Alpha", "Beta", "Gamma"]

    def test_descending(self, docs):
        result = run_query(
            "for $c in doc('u')/u/c order by $c/t descending return $c/t",
            docs)
        assert [r.text for r in result] == ["Gamma", "Beta", "Alpha"]

    def test_secondary_key(self):
        result = run_query(
            "for $x in (3, 1, 3, 2) order by $x descending, $x return $x",
            {})
        assert result == [3.0, 3.0, 2.0, 1.0]

    def test_empty_key_sorts_first(self, docs):
        root = element("u",
                       element("c", element("t", "HasKey")),
                       element("c"))
        result = run_query(
            "for $c in doc('u')/u/c order by $c/t return $c",
            {"u": XmlDocument(root)})
        assert result[0].find("t") is None

    def test_sort_is_stable(self):
        result = run_query(
            "for $x in ('b1', 'a2', 'b2', 'a1') "
            "order by substring($x, 1, 1) return $x", {})
        assert result == ["a2", "a1", "b1", "b2"]

    @given(st.lists(st.integers(-50, 50), max_size=8))
    def test_order_by_matches_sorted(self, values):
        literals = ", ".join(str(v) for v in values) or ""
        result = run_query(
            f"for $x in ({literals}) order by $x return $x", {})
        assert result == sorted(float(v) for v in values)


class TestQuantified:
    def test_some_true_false(self):
        assert run_query("some $x in (1, 2, 3) satisfies $x > 2", {}) == \
            [True]
        assert run_query("some $x in (1, 2, 3) satisfies $x > 5", {}) == \
            [False]

    def test_every(self):
        assert run_query("every $x in (1, 2, 3) satisfies $x > 0", {}) == \
            [True]
        assert run_query("every $x in (1, 2, 3) satisfies $x > 1", {}) == \
            [False]

    def test_empty_domain(self):
        assert run_query("some $x in () satisfies $x = 1", {}) == [False]
        assert run_query("every $x in () satisfies $x = 1", {}) == [True]

    def test_multiple_bindings(self):
        assert run_query(
            "some $x in (1, 2), $y in (2, 3) satisfies $x = $y", {}) == \
            [True]

    def test_over_documents(self, docs):
        assert run_query(
            "every $c in doc('u')/u/c satisfies exists($c/t)", docs) == \
            [True]

    def test_in_where_clause(self, docs):
        result = run_query(
            "for $c in doc('u')/u/c "
            "where some $n in $c/n satisfies number($n) > 2 "
            "return $c/t", docs)
        assert [r.text for r in result] == ["Gamma"]

    def test_missing_satisfies_rejected(self):
        with pytest.raises(XQuerySyntaxError, match="satisfies"):
            parse_query("some $x in (1) where $x = 1")


class TestUnparseNewForms:
    def test_order_by_round_trip(self):
        source = ("for $x in $s where $x > 1 "
                  "order by $x/k descending, $x return $x")
        ast = parse_query(source)
        assert parse_query(unparse(ast)) == ast

    def test_quantified_round_trip(self):
        ast = parse_query("every $x in $s satisfies contains($x, 'a')")
        assert isinstance(ast, Quantified)
        assert parse_query(unparse(ast)) == ast

    def test_rewriter_preserves_order_by(self):
        from repro.integration import QueryRewriter, RewriteRules
        rules = RewriteRules(tag_map={"A": "B"})
        rewritten = QueryRewriter(rules).rewrite(
            "for $x in $s/A order by $x/A return $x")
        assert "order by $x/B" in rewritten

    def test_rewriter_handles_quantified(self):
        from repro.integration import QueryRewriter, RewriteRules
        rules = RewriteRules(tag_map={"A": "B"})
        rewritten = QueryRewriter(rules).rewrite(
            "some $x in $s/A satisfies $x/A = 'v'")
        assert rewritten == "some $x in $s/B satisfies $x/B = 'v'"
