"""Evaluator tests: paths, comparisons (incl. LIKE), FLWOR, constructors."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.xmlmodel import XmlDocument, element
from repro.xquery import (
    Query,
    XQueryNameError,
    XQueryTypeError,
    run_query,
)


@pytest.fixture()
def cmu_doc():
    root = element(
        "cmu",
        element("Course",
                element("CourseTitle", "Database System Design"),
                element("Lecturer", "Ailamaki"),
                element("Units", "12"),
                element("Time", "1:30 - 2:50")),
        element("Course",
                element("CourseTitle", "Computer Networks"),
                element("Lecturer", "Steenkiste"),
                element("Units", "9"),
                element("Time", "10:30 - 11:50")),
        element("Course",
                element("CourseTitle", "Secure Software Systems"),
                element("Lecturer", "Song/Wing"),
                element("Units", "12"),
                element("Time", "3:00 - 4:20")),
    )
    return XmlDocument(root, source_name="cmu")


@pytest.fixture()
def docs(cmu_doc):
    return {"cmu": cmu_doc}


class TestPathEvaluation:
    def test_doc_path(self, docs):
        result = run_query('doc("cmu.xml")/cmu/Course', docs)
        assert len(result) == 3

    def test_doc_name_without_extension(self, docs):
        assert len(run_query('doc("cmu")/cmu/Course', docs)) == 3

    def test_unknown_doc_raises(self, docs):
        with pytest.raises(XQueryNameError, match="unknown document"):
            run_query('doc("mit")/Course', docs)

    def test_nested_path(self, docs):
        titles = run_query('doc("cmu")/cmu/Course/CourseTitle', docs)
        assert [t.text for t in titles] == [
            "Database System Design", "Computer Networks",
            "Secure Software Systems"]

    def test_descendant_path(self, docs):
        assert len(run_query('doc("cmu")//Lecturer', docs)) == 3

    def test_wildcard(self, docs):
        children = run_query('doc("cmu")/cmu/Course[1]/*', docs)
        assert [c.tag for c in children] == \
            ["CourseTitle", "Lecturer", "Units", "Time"]

    def test_positional_predicate(self, docs):
        result = run_query('doc("cmu")/cmu/Course[2]/CourseTitle', docs)
        assert result[0].text == "Computer Networks"

    def test_comparison_predicate(self, docs):
        result = run_query(
            "doc('cmu')/cmu/Course[Units = 12]/CourseTitle", docs)
        assert len(result) == 2

    def test_attribute_step_missing_is_empty(self, docs):
        assert run_query('doc("cmu")/cmu/Course/@nope', docs) == []

    def test_path_over_atomic_raises(self, docs):
        with pytest.raises(XQueryTypeError):
            run_query("'text'/Course", docs)

    def test_unbound_variable(self, docs):
        with pytest.raises(XQueryNameError, match="unbound"):
            run_query("$nope", docs)


class TestComparisons:
    def test_string_equality(self, docs):
        assert run_query("'a' = 'a'", docs) == [True]

    def test_existential_equality(self, docs):
        result = run_query(
            "doc('cmu')/cmu/Course/Lecturer = 'Ailamaki'", docs)
        assert result == [True]

    def test_numeric_comparison_over_elements(self, docs):
        result = run_query(
            "for $b in doc('cmu')/cmu/Course where $b/Units > 10 return $b",
            docs)
        assert len(result) == 2

    def test_numeric_vs_text_raises(self, docs):
        with pytest.raises(XQueryTypeError, match="2V1U"):
            run_query("'2V1U' > 10", docs)

    def test_like_contains(self, docs):
        result = run_query(
            "for $b in doc('cmu')/cmu/Course "
            "where $b/CourseTitle = '%Database%' return $b", docs)
        assert len(result) == 1

    def test_like_case_insensitive(self, docs):
        result = run_query(
            "for $b in doc('cmu')/cmu/Course "
            "where $b/CourseTitle = '%database%' return $b", docs)
        assert len(result) == 1

    def test_like_no_match(self, docs):
        result = run_query(
            "for $b in doc('cmu')/cmu/Course "
            "where $b/CourseTitle = '%Datenbank%' return $b", docs)
        assert result == []

    def test_like_anchored_prefix(self, docs):
        assert run_query("'Database Design' = 'Database%'", docs) == [True]
        assert run_query("'Intro Database' = 'Database%'", docs) == [False]

    def test_like_underscore(self, docs):
        assert run_query("'CS145' = 'CS1_5%'", docs) == [True]

    def test_like_negated(self, docs):
        assert run_query("'Networks' != '%Database%'", docs) == [True]

    def test_empty_sequence_comparison_false(self, docs):
        result = run_query(
            "doc('cmu')/cmu/Course/Nope = 'anything'", docs)
        assert result == [False]

    def test_boolean_comparison(self, docs):
        assert run_query("true() = true()", docs) == [True]

    def test_boolean_ordering_rejected(self, docs):
        with pytest.raises(XQueryTypeError):
            run_query("true() < false()", docs)


class TestLogicAndArithmetic:
    def test_and_short_circuit(self, docs):
        # Right side would raise if evaluated.
        assert run_query("false() and ('x' > 1)", docs) == [False]

    def test_or_short_circuit(self, docs):
        assert run_query("true() or ('x' > 1)", docs) == [True]

    def test_not(self, docs):
        assert run_query("not true()", docs) == [False]

    def test_arithmetic(self, docs):
        assert run_query("1 + 2 - 0.5", docs) == [2.5]

    def test_unary_minus(self, docs):
        assert run_query("- 3", docs) == [-3]

    def test_arithmetic_empty_operand(self, docs):
        assert run_query("doc('cmu')/cmu/Course/Nope + 1", docs) == []

    def test_if_expression(self, docs):
        assert run_query("if (1 = 1) then 'yes' else 'no'", docs) == ["yes"]
        assert run_query("if (1 = 2) then 'yes' else 'no'", docs) == ["no"]


class TestFLWOR:
    def test_paper_query_shape(self, docs):
        result = run_query(
            "FOR $b in doc('cmu.xml')/cmu/Course "
            "WHERE $b/CourseTitle = '%Software%' "
            "RETURN $b/Lecturer", docs)
        assert [r.text for r in result] == ["Song/Wing"]

    def test_let_binding(self, docs):
        result = run_query(
            "for $b in doc('cmu')/cmu/Course "
            "let $t := $b/CourseTitle "
            "where contains($t, 'Networks') return $t", docs)
        assert len(result) == 1

    def test_cartesian_product(self, docs):
        result = run_query(
            "for $a in (1, 2), $b in (10, 20) return $a + $b", docs)
        assert result == [11.0, 21.0, 12.0, 22.0]

    def test_nested_flwor(self, docs):
        result = run_query(
            "for $c in doc('cmu')/cmu/Course return "
            "for $l in $c/Lecturer return $l", docs)
        assert len(result) == 3

    def test_scoping_no_leak(self, docs):
        with pytest.raises(XQueryNameError):
            run_query(
                "(for $x in (1) return $x), $x", docs)

    def test_return_juxtaposition(self, docs):
        result = run_query(
            "for $b in doc('cmu')/cmu/Course "
            "where $b/CourseTitle = '%Computer Networks%' "
            "return $b/CourseTitle $b/Time", docs)
        assert [r.text for r in result] == \
            ["Computer Networks", "10:30 - 11:50"]


class TestConstructorsAndFunctions:
    def test_element_constructor_wraps_results(self, docs):
        result = run_query(
            "element result { doc('cmu')/cmu/Course[1]/CourseTitle }", docs)
        assert result[0].tag == "result"
        assert result[0].find("CourseTitle").text == "Database System Design"

    def test_element_constructor_atomics_joined(self, docs):
        result = run_query("element t { 'a', 'b' }", docs)
        assert result[0].text == "a b"

    def test_constructed_elements_are_copies(self, docs):
        result = run_query(
            "element r { doc('cmu')/cmu/Course[1]/Lecturer }", docs)
        original = docs["cmu"].root.find("Course").find("Lecturer")
        assert result[0].find("Lecturer") is not original

    def test_count(self, docs):
        assert run_query("count(doc('cmu')/cmu/Course)", docs) == [3.0]

    def test_custom_function_registry(self, docs):
        from repro.xquery import builtin_registry

        registry = builtin_registry().copy()

        def to_24h(context, args):
            from repro.xquery import string_value
            text = string_value(args[0][0])
            hour, minute = text.replace("pm", "").split(":")
            return [f"{int(hour) + 12}:{minute}"]

        registry.register("udf:to-24h", to_24h, 1)
        result = run_query("udf:to-24h('1:30pm')", docs,
                           functions=registry)
        assert result == ["13:30"]

    def test_unknown_function(self, docs):
        with pytest.raises(XQueryNameError, match="unknown function"):
            run_query("frobnicate(1)", docs)

    def test_fn_prefix_resolves(self, docs):
        assert run_query("fn:contains('abc', 'b')", docs) == [True]

    def test_query_object_reusable(self, docs):
        query = Query("count(doc('cmu')/cmu/Course)")
        assert query.run(docs) == [3.0]
        assert query.run(docs) == [3.0]

    def test_query_repr_truncates(self):
        query = Query("for $b in (1,2,3,4,5,6,7,8,9,10) return $b + $b + $b")
        assert len(repr(query)) < 90


class TestLikeCache:
    """The shared lru_cache behind SQL-LIKE pattern compilation."""

    def test_repeated_patterns_hit_the_cache(self, docs):
        from repro.xquery import like_cache_stats
        from repro.xquery.context import DynamicContext
        from repro.xquery.evaluator import _like_pattern, evaluate
        from repro.xquery.parser import parse_query

        _like_pattern.cache_clear()
        # The interpreter compiles the pattern per row (plans hoist the
        # compile to lowering time): one miss, then hits for rows 2..n.
        node = parse_query("for $b in doc('cmu')/cmu/Course "
                           "where $b/CourseTitle = '%Sys%' "
                           "return $b/Lecturer")
        evaluate(node, DynamicContext(documents=docs))
        stats = like_cache_stats()
        assert stats["misses"] == 1
        assert stats["hits"] >= 2
        assert stats["entries"] == 1
        evaluate(node, DynamicContext(documents=docs))
        again = like_cache_stats()
        assert again["misses"] == 1
        assert again["hits"] > stats["hits"]
        assert again["maxsize"] >= again["entries"]


class TestGeneralCompareFastPath:
    """Set-based =/!= over all-string sequences vs the pair loop."""

    @settings(max_examples=300, deadline=None)
    @given(op=st.sampled_from(["=", "!="]),
           left=st.lists(st.sampled_from(["a", "b", "c", "d", "e", ""]),
                         max_size=6),
           right=st.lists(st.sampled_from(["a", "b", "c", "d", "e", ""]),
                          max_size=6))
    def test_matches_the_brute_force_pair_product(self, op, left, right):
        from repro.xquery.evaluator import _compare_atomic, _general_compare

        expected = any(_compare_atomic(op, lv, rv)
                       for lv in left for rv in right)
        assert _general_compare(op, list(left), list(right)) == expected

    def test_large_inputs_stay_existential(self, docs):
        # 3 titles x 2 literals crosses the fast-path threshold; the
        # answer must stay the existential one.
        assert run_query(
            "doc('cmu')/cmu/Course/CourseTitle = "
            "('Computer Networks', 'Nope')", docs) == [True]
        assert run_query(
            "doc('cmu')/cmu/Course/CourseTitle != "
            "('Computer Networks', 'Nope')", docs) == [True]


class TestQuantifiedShortCircuit:
    """some/every stop at the first deciding binding in both engines."""

    def _probe_registry(self):
        from repro.xquery import builtin_registry, string_value

        seen = []
        registry = builtin_registry().copy()

        def probe(context, args):
            value = string_value(args[0][0])
            seen.append(value)
            return [value]

        registry.register("udf:probe", probe, 1)
        return registry, seen

    def test_some_stops_at_first_true(self, docs):
        registry, seen = self._probe_registry()
        result = run_query(
            "some $i in ('a', 'b', 'c', 'd') "
            "satisfies udf:probe($i) = 'b'", docs, functions=registry)
        assert result == [True]
        assert seen == ["a", "b"]

    def test_every_stops_at_first_false(self, docs):
        registry, seen = self._probe_registry()
        result = run_query(
            "every $i in ('a', 'b', 'c', 'd') "
            "satisfies udf:probe($i) = 'a'", docs, functions=registry)
        assert result == [False]
        assert seen == ["a", "b"]

    def test_interpreter_stops_too(self, docs):
        from repro.xquery.evaluator import evaluate
        from repro.xquery.parser import parse_query
        from repro.xquery.context import DynamicContext

        registry, seen = self._probe_registry()
        result = evaluate(
            parse_query("some $i in ('a', 'b', 'c') "
                        "satisfies udf:probe($i) = 'a'"),
            DynamicContext(documents=docs, functions=registry))
        assert result == [True]
        assert seen == ["a"]

    def test_short_circuit_skips_a_raising_tail(self, docs):
        # number('x') raises; the quantifier settles before reaching it.
        from repro.xquery import compile_query
        from repro.xquery.evaluator import evaluate
        from repro.xquery.parser import parse_query
        from repro.xquery.context import DynamicContext

        cases = [
            ("some $i in ('1', 'x') satisfies number($i) = 1", [True]),
            ("every $i in ('2', 'x') satisfies number($i) = 1", [False]),
        ]
        for source, expected in cases:
            assert run_query(source, docs) == expected
            assert compile_query(source).execute(docs) == expected
            assert evaluate(parse_query(source),
                            DynamicContext(documents=docs)) == expected

    def test_undecided_quantifier_still_raises(self, docs):
        with pytest.raises(XQueryTypeError):
            run_query("every $i in ('1', 'x') satisfies number($i) = 1",
                      docs)
