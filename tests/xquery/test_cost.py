"""The cost-based planner: costed plans answer exactly like rule-based
plans (and like index-disabled scans), while switching physical
strategies where the statistics say a scan is cheaper."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalogs import build_testbed, paper_universities
from repro.core.queries import QUERIES
from repro.xmlmodel import XmlDocument, XmlElement, element, serialize
from repro.xquery import compile_query
from repro.xquery.stats import collect_statistics


def _render(items):
    return tuple(serialize(item) if isinstance(item, XmlElement)
                 else repr(item) for item in items)


def _answers(source, documents, statistics=None, perturb=False):
    plan = compile_query(source, statistics=statistics, perturb=perturb)
    return _render(plan.execute(documents)), plan


@pytest.fixture(scope="module")
def scale8():
    testbed = build_testbed(seed=2004, universities=paper_universities(),
                            scale=8)
    documents = testbed.documents
    statistics = collect_statistics(
        documents, fingerprint=testbed.content_fingerprint())
    return documents, statistics


class TestTwelveQueries:
    def test_costed_answers_match_rule_based(self, scale8):
        documents, statistics = scale8
        for query in QUERIES:
            expected, _ = _answers(query.xquery, documents)
            produced, plan = _answers(query.xquery, documents,
                                      statistics=statistics)
            assert plan.costed
            assert produced == expected, f"Q{query.number}"

    def test_at_least_one_strategy_switch_at_scale_8(self, scale8):
        """The acceptance bar: at scale >= 8 the cost model must move at
        least one query off the rule-based physical strategy (the rules
        always probe the index first on child steps)."""
        documents, statistics = scale8
        switched = 0
        for query in QUERIES:
            plan = compile_query(query.xquery, statistics=statistics)
            if plan.decisions.get("scan-steps", 0) > 0:
                switched += 1
        assert switched >= 1

    def test_costed_plan_identity_differs_but_fingerprint_shared(
            self, scale8):
        """Result-cache entries stay shared (answers are interchangeable
        by construction); plan identity mixes the statistics in."""
        _documents, statistics = scale8
        source = QUERIES[0].xquery
        plain = compile_query(source)
        costed = compile_query(source, statistics=statistics)
        assert costed.fingerprint == plain.fingerprint
        assert costed.identity != plain.identity

    def test_predicate_reordering_happens_and_preserves_answers(
            self, scale8):
        """Q4 pushes two WHERE conjuncts; the cheap LIKE filter must run
        before the numeric range once selectivities are known."""
        documents, statistics = scale8
        reordered = 0
        for query in QUERIES:
            expected, _ = _answers(query.xquery, documents)
            produced, plan = _answers(query.xquery, documents,
                                      statistics=statistics)
            assert produced == expected, f"Q{query.number}"
            reordered += plan.decisions.get("reordered-predicates", 0)
        assert reordered >= 1

    def test_alternatives_recorded_with_costs(self, scale8):
        _documents, statistics = scale8
        plan = compile_query(QUERIES[0].xquery, statistics=statistics)
        data = plan.explain_data()

        found = []

        def walk(entry):
            estimated = entry.get("estimated") or {}
            if "alternatives" in estimated:
                found.append(estimated)
            for child in entry.get("children", ()):
                walk(child)

        walk(data["root"])
        assert found, "no costed step recorded its alternatives"
        for estimated in found:
            strategies = {alt["strategy"]: alt["cost"]
                          for alt in estimated["alternatives"]}
            assert set(strategies) == {"index", "scan"}
            assert estimated["strategy"] in strategies
            assert estimated["est_cost"] \
                == pytest.approx(min(strategies.values()), abs=1e-3)

    def test_perturb_beats_statistics(self, scale8):
        """The perf gate's rewrite toggle must stay a pure rule-based
        plan even when statistics are on hand."""
        _documents, statistics = scale8
        plan = compile_query(QUERIES[0].xquery, statistics=statistics,
                             perturb=True)
        assert not plan.costed
        assert plan.perturbed


class TestScenarioPack:
    @pytest.fixture(scope="class")
    def pack(self):
        from repro.scenarios.suite import ScenarioSuite
        suite = ScenarioSuite.generate(11, 25)
        testbed = suite.build_testbed()
        documents = testbed.documents
        statistics = collect_statistics(documents)
        return suite, documents, statistics

    def test_costed_matches_rule_based_and_forced_scan(self, pack):
        suite, documents, statistics = pack
        for query in suite.queries:
            expected, _ = _answers(query.xquery, documents)
            scanned, _ = _answers(query.xquery, documents, perturb=True)
            costed, plan = _answers(query.xquery, documents,
                                    statistics=statistics)
            assert plan.costed, query.case_id
            assert costed == expected == scanned, query.case_id


# --------------------------------------------------------------------------- #
# Property: costed ≡ rule-based ≡ forced-scan on generated queries
# --------------------------------------------------------------------------- #

def _docs():
    root = element(
        "r",
        element("c", element("v", "x"), element("w", "5"),
                element("t", "alpha beta")),
        element("c", element("v", "y"), element("w", "2")),
        element("c", element("v", "x"), element("w", "7"),
                element("t", "gamma")),
        element("deep", element("c", element("v", "z"))),
    )
    return {"d": XmlDocument(root)}


DOCS = _docs()
STATISTICS = collect_statistics(DOCS)

_tags = st.sampled_from(["c", "v", "w", "t", "deep", "missing"])
_values = st.sampled_from(["'x'", "'y'", "'%x%'", "'alpha%'", "5", "2", "0"])
_cmp_ops = st.sampled_from(["=", "!=", "<", "<=", ">", ">="])


@st.composite
def _queries(draw):
    steps = draw(st.lists(_tags, min_size=1, max_size=3))
    sep = draw(st.sampled_from(["/", "//"]))
    path = "doc('d')" + sep + "/".join(["r"] + steps)
    shape = draw(st.integers(min_value=0, max_value=2))
    if shape == 0:
        return path
    if shape == 1:
        tag = draw(_tags)
        op = draw(_cmp_ops)
        value = draw(_values)
        return f"{path}[{tag} {op} {value}]"
    conjuncts = [f"$i/{draw(_tags)} {draw(_cmp_ops)} {draw(_values)}"
                 for _ in range(draw(st.integers(1, 3)))]
    return (f"for $i in doc('d')/r/c where {' and '.join(conjuncts)} "
            f"return $i/v")


def _outcome(source, **kwargs):
    """Rendered results, or the raised XQueryError type — either way the
    three compilation modes must agree exactly."""
    from repro.xquery.errors import XQueryError
    try:
        return _render(compile_query(source, **kwargs).execute(DOCS))
    except XQueryError as exc:
        return ("raised", type(exc).__name__)


class TestCostedEquivalence:
    @settings(max_examples=200, deadline=None)
    @given(_queries())
    def test_costed_matches_rule_based_and_forced_scan(self, source):
        plain = _outcome(source)
        scanned = _outcome(source, perturb=True)
        costed = _outcome(source, statistics=STATISTICS)
        assert costed == plain == scanned
