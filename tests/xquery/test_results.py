"""ResultCache semantics: LRU + counters, single-flight, fingerprints,
and the invalidation guarantee (changed content is never served stale)."""

import copy
import threading

import pytest

from repro.catalogs import build_testbed, paper_universities
from repro.core.answers import cached_gold_answer, gold_answer
from repro.core.queries import get_query
from repro.xquery import compile_query
from repro.xquery.results import (
    ResultCache,
    estimate_bytes,
    shared_result_cache,
)


class TestBasics:
    def test_miss_then_hit(self):
        cache = ResultCache()
        calls = []
        value = cache.get_or_compute("task", "content",
                                     lambda: calls.append(1) or 42)
        again = cache.get_or_compute("task", "content",
                                     lambda: calls.append(1) or 42)
        assert value == again == 42
        assert calls == [1]
        assert cache.misses == 1 and cache.hits == 1

    def test_fetch_reports_status(self):
        cache = ResultCache()
        _, first = cache.fetch("t", "c", lambda: "v")
        _, second = cache.fetch("t", "c", lambda: "v")
        assert (first, second) == ("miss", "hit")

    def test_distinct_keys_distinct_entries(self):
        cache = ResultCache()
        assert cache.get_or_compute("t", "c1", lambda: "a") == "a"
        assert cache.get_or_compute("t", "c2", lambda: "b") == "b"
        assert cache.get_or_compute("t2", "c1", lambda: "c") == "c"
        assert len(cache) == 3 and cache.misses == 3

    def test_lru_eviction_and_byte_counter(self):
        cache = ResultCache(maxsize=2)
        cache.get_or_compute("a", "c", lambda: "x" * 10)
        cache.get_or_compute("b", "c", lambda: "y" * 20)
        cache.get_or_compute("a", "c", lambda: "never")   # refresh a
        cache.get_or_compute("d", "c", lambda: "z" * 30)  # evicts b
        assert cache.evictions == 1
        assert cache.bytes == 10 + 30
        # b is gone, a survived its refresh
        calls = []
        cache.get_or_compute("b", "c", lambda: calls.append(1) or "y")
        assert calls == [1]

    def test_clear_resets(self):
        cache = ResultCache()
        cache.get_or_compute("t", "c", lambda: "v")
        cache.clear()
        assert len(cache) == 0 and cache.bytes == 0 and cache.misses == 0

    def test_stats_shape(self):
        cache = ResultCache(maxsize=7)
        cache.get_or_compute("t", "c", lambda: "v")
        cache.get_or_compute("t", "c", lambda: "v")
        stats = cache.stats()
        assert stats["size"] == 1 and stats["maxsize"] == 7
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["hit_rate"] == 0.5
        assert stats["bytes"] == estimate_bytes("v")

    def test_rejects_zero_maxsize(self):
        with pytest.raises(ValueError):
            ResultCache(maxsize=0)

    def test_shared_instance_is_stable(self):
        assert shared_result_cache() is shared_result_cache()


class TestSingleFlight:
    def test_racing_misses_compute_once(self):
        cache = ResultCache()
        entered = threading.Event()
        release = threading.Event()
        calls = []

        def compute():
            calls.append(threading.get_ident())
            entered.set()
            release.wait(timeout=10)
            return "value"

        leader_result = []
        leader = threading.Thread(target=lambda: leader_result.append(
            cache.fetch("t", "c", compute)))
        leader.start()
        assert entered.wait(timeout=10)

        follower_result = []
        follower = threading.Thread(target=lambda: follower_result.append(
            cache.fetch("t", "c", compute)))
        follower.start()
        # Wait until the follower is registered as coalesced, then release.
        for _ in range(1000):
            if cache.coalesced:
                break
            threading.Event().wait(0.005)
        release.set()
        leader.join(timeout=10)
        follower.join(timeout=10)

        assert len(calls) == 1
        assert leader_result[0] == ("value", "miss")
        assert follower_result[0][0] == "value"
        assert follower_result[0][1] in ("hit", "coalesced")

    def test_failed_flight_propagates_and_caches_nothing(self):
        cache = ResultCache()

        def boom():
            raise RuntimeError("no")

        with pytest.raises(RuntimeError):
            cache.get_or_compute("t", "c", boom)
        assert len(cache) == 0
        # The key is not poisoned: the next caller recomputes.
        assert cache.get_or_compute("t", "c", lambda: "ok") == "ok"


class TestPlanFingerprint:
    def test_stable_across_recompilation(self):
        source = 'FOR $c in doc("cmu.xml")/cmu/Course RETURN $c'
        assert compile_query(source).fingerprint == \
            compile_query(source).fingerprint

    def test_distinct_sources_distinct_fingerprints(self):
        a = compile_query('FOR $c in doc("cmu.xml")/cmu/Course RETURN $c')
        b = compile_query('FOR $c in doc("eth.xml")/eth/Course RETURN $c')
        assert a.fingerprint != b.fingerprint

    def test_registry_contents_change_fingerprint(self):
        from repro.xquery import builtin_registry
        source = 'FOR $c in doc("cmu.xml")/cmu/Course RETURN $c'
        plain = compile_query(source)
        extended = builtin_registry()
        extended.register("shout", lambda ctx, args: [
            str(args[0][0]).upper()], 1)
        assert compile_query(source, extended).fingerprint \
            != plain.fingerprint

    def test_registry_fingerprint_memo_invalidated_on_register(self):
        from repro.xquery import builtin_registry
        registry = builtin_registry()
        before = registry.fingerprint()
        assert registry.fingerprint() is before     # memoized
        registry.register("extra", lambda ctx, args: [], 0)
        after = registry.fingerprint()
        assert after != before
        assert any(name == "extra" for name, _ in after)


class TestContentFingerprint:
    @pytest.fixture(scope="class")
    def bed(self, paper_testbed):
        return paper_testbed

    def test_full_fingerprint_is_stable(self, bed):
        assert bed.content_fingerprint() == bed.content_fingerprint()

    def test_subset_order_insensitive(self, bed):
        assert bed.content_fingerprint(["cmu", "umich"]) == \
            bed.content_fingerprint(["umich", "cmu"])

    def test_subset_differs_from_full(self, bed):
        assert bed.content_fingerprint(["cmu"]) != bed.content_fingerprint()

    def test_identical_builds_fingerprint_identically(self, bed):
        rebuilt = build_testbed(universities=paper_universities())
        assert rebuilt.content_fingerprint() == bed.content_fingerprint()
        assert rebuilt.document_hash("cmu") == bed.document_hash("cmu")

    def test_different_seed_changes_fingerprint(self, bed):
        other = build_testbed(seed=7, universities=paper_universities())
        assert other.content_fingerprint() != bed.content_fingerprint()

    def test_modified_document_changes_fingerprint(self, bed):
        broken = copy.deepcopy(bed)
        root = broken.source("cmu").document.root
        for course in root.findall("Course"):
            course.children = [c for c in course.children
                               if not (hasattr(c, "tag")
                                       and c.tag == "Lecturer")]
        assert broken.document_hash("cmu") != bed.document_hash("cmu")
        assert broken.content_fingerprint() != bed.content_fingerprint()
        # untouched sources still hash identically
        assert broken.document_hash("eth") == bed.document_hash("eth")


class TestInvalidation:
    """A testbed whose content changed can never serve stale results."""

    def test_changed_content_never_serves_stale_gold(self, paper_testbed):
        query = get_query(1)
        # Other tests corrupt a testbed the same way and may have cached
        # the broken fingerprint already — start from a clean slate so
        # the miss arithmetic below is order-independent.
        cache = shared_result_cache()
        cache.clear()
        baseline = cached_gold_answer(query, paper_testbed)
        assert baseline == cached_gold_answer(query, paper_testbed)

        broken = copy.deepcopy(paper_testbed)
        root = broken.source("cmu").document.root
        for course in root.findall("Course"):
            course.children = [c for c in course.children
                               if not (hasattr(c, "tag")
                                       and c.tag == "Lecturer")]
        # The gold is derived from canonical courses (unchanged), but the
        # cache must key it under the *new* content fingerprint — i.e. it
        # recomputes rather than reusing the old entry.
        misses_before = cache.misses
        recomputed = cached_gold_answer(query, broken)
        assert cache.misses == misses_before + 1
        assert recomputed == gold_answer(query, broken)

    def test_changed_content_never_serves_stale_execution(self, paper_testbed):
        cache = ResultCache()
        plan = compile_query(
            'FOR $c in doc("cmu.xml")/cmu/Course RETURN $c/Lecturer')
        documents = {"cmu": paper_testbed.source("cmu").document}
        fresh = cache.execute(plan, documents,
                              paper_testbed.content_fingerprint(["cmu"]))
        assert fresh  # lecturers present

        broken = copy.deepcopy(paper_testbed)
        root = broken.source("cmu").document.root
        for course in root.findall("Course"):
            course.children = [c for c in course.children
                               if not (hasattr(c, "tag")
                                       and c.tag == "Lecturer")]
        stale_check = cache.execute(
            plan, {"cmu": broken.source("cmu").document},
            broken.content_fingerprint(["cmu"]))
        # Same plan, different content fingerprint: executed against the
        # broken document, not replayed from the healthy one's entry.
        assert stale_check == []
        assert cache.misses == 2 and cache.hits == 0

    def test_system_integration_keyed_by_document_hash(self, paper_testbed):
        from repro.systems import thalia_mediator
        query = get_query(1)
        healthy = thalia_mediator().answer(query, paper_testbed)

        broken = copy.deepcopy(paper_testbed)
        root = broken.source("cmu").document.root
        for course in root.findall("Course"):
            course.children = [c for c in course.children
                               if not (hasattr(c, "tag")
                                       and c.tag == "Lecturer")]
        degraded = thalia_mediator().answer(query, broken)
        # Q1 needs CMU lecturers; a stale per-source integration would
        # reproduce the healthy answer despite the corrupted document.
        assert healthy.answer != degraded.answer
