"""Unparser tests, including the parse∘unparse fixpoint property."""

import pytest

from repro.xquery import unparse
from repro.xquery.parser import parse_query


def round_trips(source: str) -> bool:
    ast = parse_query(source)
    return parse_query(unparse(ast)) == ast


class TestBasics:
    def test_literal_string(self):
        assert unparse(parse_query("'Mark'")) == "'Mark'"

    def test_literal_with_quote(self):
        assert round_trips("'it''s'")

    def test_integer_renders_without_decimal(self):
        assert unparse(parse_query("10")) == "10"

    def test_variable(self):
        assert unparse(parse_query("$b")) == "$b"

    def test_path(self):
        assert unparse(parse_query("$b/Course/Title")) == "$b/Course/Title"

    def test_attribute_and_text_steps(self):
        assert unparse(parse_query("$b/@code")) == "$b/@code"
        assert unparse(parse_query("$b/text()")) == "$b/text()"

    def test_descendant_axis(self):
        assert unparse(parse_query("$b//Section")) == "$b//Section"

    def test_predicate(self):
        assert round_trips("$b/Course[Title = 'DB']")

    def test_relative_path_in_predicate(self):
        text = unparse(parse_query("$b/Course[Title = 'DB']"))
        assert "[Title = 'DB']" in text

    def test_function_call(self):
        assert unparse(parse_query("contains($t, 'DB')")) == \
            "contains($t, 'DB')"

    def test_empty_sequence(self):
        assert unparse(parse_query("()")) == "()"

    def test_element_constructor(self):
        assert round_trips("element result { $b/Title }")

    def test_empty_element_constructor(self):
        assert round_trips("element empty {}")

    def test_if_expression(self):
        assert round_trips("if ($x = 1) then 'a' else 'b'")

    def test_logical_precedence_preserved(self):
        source = "($a = 1 or $b = 2) and $c = 3"
        ast = parse_query(source)
        assert parse_query(unparse(ast)) == ast

    def test_arithmetic(self):
        assert round_trips("1 + 2 - 3")

    def test_not(self):
        assert round_trips("not $x")


class TestPaperQueries:
    @pytest.mark.parametrize("number", range(1, 13))
    def test_all_benchmark_queries_round_trip(self, number):
        from repro.core import get_query
        assert round_trips(get_query(number).xquery)

    def test_flwor_layout(self):
        text = unparse(parse_query(
            "for $b in doc('cmu.xml')/cmu/Course "
            "where $b/Units > 10 return $b"))
        lines = text.splitlines()
        assert lines[0].startswith("for $b in")
        assert lines[1].startswith("where")
        assert lines[2].startswith("return")

    def test_juxtaposed_return_renders_as_sequence(self):
        ast = parse_query(
            "for $b in $s return $b/Title $b/Day")
        assert parse_query(unparse(ast)) == ast


class TestFixpointProperty:
    SOURCES = [
        "for $a in (1, 2), $b in $a/x return $a + $b",
        "let $t := $b/Title return contains($t, 'DB')",
        "count(doc('cmu')/cmu/Course[Units = 12])",
        "if (empty($x)) then element none {} else $x",
        "for $c in $s where $c/@code = 'CS145' and not $c/Closed "
        "return $c/Title, $c/Room",
        "'%Database%' = $b/CourseName",
        "$a//Section[2]/time/text()",
    ]

    @pytest.mark.parametrize("source", SOURCES)
    def test_unparse_is_a_fixpoint(self, source):
        ast = parse_query(source)
        once = unparse(ast)
        assert parse_query(once) == ast
        # And unparse is idempotent on its own output.
        assert unparse(parse_query(once)) == once
