"""Function library tests."""

import pytest

from repro.xmlmodel import XmlDocument, element
from repro.xquery import XQueryTypeError, run_query


@pytest.fixture()
def docs():
    root = element("u", element("c", element("t", "  Data   Bases ")))
    return {"u": XmlDocument(root)}


def q(source, docs=None):
    return run_query(source, docs or {})


class TestStringFunctions:
    def test_contains_true_false(self):
        assert q("contains('Database Design', 'base')") == [True]
        assert q("contains('Database Design', 'zebra')") == [False]

    def test_contains_empty_haystack(self, docs):
        assert q("contains(doc('u')/u/c/nope, 'x')", docs) == [False]

    def test_starts_ends_with(self):
        assert q("starts-with('CS145', 'CS')") == [True]
        assert q("ends-with('CS145', '45')") == [True]

    def test_case_functions(self):
        assert q("lower-case('DataBank')") == ["databank"]
        assert q("upper-case('eth')") == ["ETH"]

    def test_concat(self):
        assert q("concat('a', 'b', 'c')") == ["abc"]

    def test_concat_with_empty_sequence(self, docs):
        assert q("concat('a', doc('u')/u/c/nope)", docs) == ["a"]

    def test_string_join(self):
        assert q("string-join(('a', 'b'), ', ')") == ["a, b"]

    def test_normalize_space(self, docs):
        assert q("normalize-space(doc('u')/u/c/t/text())", docs) == \
            ["Data Bases"]

    def test_string_length(self):
        assert q("string-length('abc')") == [3.0]

    def test_substring_before_after(self):
        assert q("substring-before('1:30 - 2:50', ' - ')") == ["1:30"]
        assert q("substring-after('1:30 - 2:50', ' - ')") == ["2:50"]

    def test_substring_before_missing_marker(self):
        assert q("substring-before('abc', 'x')") == [""]

    def test_substring(self):
        assert q("substring('Databases', 1, 4)") == ["Data"]
        assert q("substring('Databases', 5)") == ["bases"]

    def test_matches(self):
        assert q("matches('CS145', '^CS[0-9]+$')") == [True]

    def test_matches_bad_regex(self):
        with pytest.raises(XQueryTypeError):
            q("matches('x', '(')")

    def test_replace(self):
        assert q("replace('1:30pm', 'pm', '')") == ["1:30"]

    def test_tokenize(self):
        assert q("tokenize('Song/Wing', '/')") == ["Song", "Wing"]

    def test_translate(self):
        assert q("translate('abc', 'abc', 'xyz')") == ["xyz"]

    def test_translate_deletes_unmapped(self):
        assert q("translate('a-b-c', '-', '')") == ["abc"]


class TestSequenceFunctions:
    def test_count(self):
        assert q("count((1, 2, 3))") == [3.0]
        assert q("count(())") == [0.0]

    def test_empty_exists(self):
        assert q("empty(())") == [True]
        assert q("exists((1))") == [True]

    def test_distinct_values(self):
        assert q("distinct-values(('a', 'b', 'a'))") == ["a", "b"]

    def test_data_atomizes(self, docs):
        assert q("data(doc('u')/u/c/t)", docs) == ["Data Bases"]

    def test_name(self, docs):
        assert q("name(doc('u')/u/c)", docs) == ["c"]

    def test_name_on_atomic_raises(self):
        with pytest.raises(XQueryTypeError):
            q("name('x')")


class TestConversionFunctions:
    def test_string_of_number(self):
        assert q("string(3)") == ["3"]

    def test_string_of_empty(self):
        assert q("string(())") == [""]

    def test_number(self):
        assert q("number('12')") == [12.0]

    def test_number_failure(self):
        with pytest.raises(XQueryTypeError):
            q("number('2V1U')")

    def test_boolean(self):
        assert q("boolean(('x'))") == [True]
        assert q("boolean(())") == [False]

    def test_not_function(self):
        assert q("not(())") == [True]


class TestArityChecking:
    def test_too_few_arguments(self):
        with pytest.raises(XQueryTypeError, match="expects 2"):
            q("contains('x')")

    def test_too_many_arguments(self):
        with pytest.raises(XQueryTypeError):
            q("count((1), (2))")

    def test_variadic_minimum(self):
        with pytest.raises(XQueryTypeError, match="at least 2"):
            q("concat('only-one')")

    def test_range_arity(self):
        assert q("substring('abc', 2)") == ["bc"]
        assert q("substring('abc', 2, 1)") == ["b"]
        with pytest.raises(XQueryTypeError):
            q("substring('abc', 1, 2, 3)")


class TestFocusFunctions:
    def test_position_in_predicate(self, docs):
        from repro.xmlmodel import XmlDocument, element
        root = element("r", element("i", "a"), element("i", "b"),
                       element("i", "c"))
        result = run_query("doc('r')/r/i[position() = 2]",
                           {"r": XmlDocument(root)})
        assert [n.text for n in result] == ["b"]

    def test_last_in_predicate(self):
        from repro.xmlmodel import XmlDocument, element
        root = element("r", element("i", "a"), element("i", "b"))
        result = run_query("doc('r')/r/i[position() = last()]",
                           {"r": XmlDocument(root)})
        assert [n.text for n in result] == ["b"]

    def test_last_as_positional_predicate(self):
        from repro.xmlmodel import XmlDocument, element
        root = element("r", element("i", "a"), element("i", "b"),
                       element("i", "c"))
        result = run_query("doc('r')/r/i[last()]",
                           {"r": XmlDocument(root)})
        assert [n.text for n in result] == ["c"]

    def test_position_outside_focus_raises(self):
        with pytest.raises(XQueryTypeError):
            q("position()")

    def test_last_outside_focus_raises(self):
        with pytest.raises(XQueryTypeError):
            q("last()")


class TestAggregates:
    def test_sum(self):
        assert q("sum((1, 2, 3))") == [6.0]
        assert q("sum(())") == [0.0]

    def test_avg(self):
        assert q("avg((2, 4))") == [3.0]
        assert q("avg(())") == []

    def test_min_max(self):
        assert q("min((3, 1, 2))") == [1.0]
        assert q("max((3, 1, 2))") == [3.0]
        assert q("min(())") == []
        assert q("max(())") == []

    def test_aggregates_atomize_elements(self, docs):
        from repro.xmlmodel import XmlDocument, element
        root = element("r", element("u", "9"), element("u", "12"))
        local = {"r": XmlDocument(root)}
        assert q("sum(doc('r')/r/u)", local) == [21.0]
        assert q("avg(doc('r')/r/u)", local) == [10.5]

    def test_aggregate_over_warehouse_units(self, paper_testbed):
        """Ad-hoc analytics over the materialized global schema."""
        from repro.catalogs import paper_universities
        from repro.integration import Warehouse, standard_mediator
        warehouse = Warehouse(standard_mediator(paper_universities()),
                              paper_testbed.documents)
        result = warehouse.query(
            "max(for $c in doc('warehouse')/warehouse/Course "
            "where $c/@source = 'cmu' return $c/Units)")
        assert result == [12.0]

    def test_non_numeric_aggregate_raises(self):
        with pytest.raises(XQueryTypeError):
            q("sum(('a', 'b'))")
