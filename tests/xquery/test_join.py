"""Join execution engine: hash/loop stages vs nested loops, byte for byte.

Every test drives the same source through up to five engines — the
tree-walking interpreter, the rule-based plan, the costed plan (join
search on), the costed plan with ``join_search=False`` (the forced
nested-loop reference) and the perturbed plan — and requires identical
renderings *including order* and identical raised error types.  The
join engine may change how tuples are produced, never what comes back.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.xmlmodel import XmlDocument, XmlElement, element, serialize
from repro.xquery import compile_query
from repro.xquery.context import DynamicContext
from repro.xquery.errors import XQueryError, XQueryTypeError
from repro.xquery.evaluator import evaluate
from repro.xquery.parser import parse_query
from repro.xquery.plan import (
    ComparisonOp,
    JoinGroupOp,
    LiteralOp,
    SequenceOp,
    VarRefOp,
    _ExecState,
    _JoinStage,
)
from repro.xquery.stats import collect_statistics


def _row(k, v=None, n=None):
    children = [element("k", k)]
    if v is not None:
        children.append(element("v", v))
    if n is not None:
        children.append(element("n", n))
    return element("row", *children)


def _docs():
    left = element(
        "L",
        _row("a", "l0", "1"), _row("b", "l1", "2"), _row("a", "l2", "x"),
        _row("c", "l3", "3"), _row("b", "l4", "4"))
    right = element(
        "R",
        _row("b", "r0", "2"), _row("a", "r1", "5"), _row("a", "r2", "y"),
        _row("d", "r3", "1"), _row("c"))
    third = element("T", _row("a", "t0", "1"), _row("b", "t1", "2"))
    return {"L": XmlDocument(left), "R": XmlDocument(right),
            "T": XmlDocument(third)}


DOCS = _docs()
STATS = collect_statistics(DOCS)


def _big_docs(rows=30):
    """Inputs large enough that the cost model picks hash stages."""
    keys = ["a", "b", "c", "d", "e", "f"]
    left = element("L", *[_row(keys[i % 6], f"l{i}", str(i))
                          for i in range(rows)])
    right = element("R", *[_row(keys[(i * 5) % 6], f"r{i}", str(i))
                           for i in range(rows)])
    return {"L": XmlDocument(left), "R": XmlDocument(right)}


BIG_DOCS = _big_docs()
BIG_STATS = collect_statistics(BIG_DOCS)


def _render(seq):
    return [serialize(item) if isinstance(item, XmlElement) else repr(item)
            for item in seq]


def _outcome(run):
    try:
        return _render(run())
    except XQueryError as exc:
        return ("raised", type(exc).__name__)


def _engines(source, documents, statistics):
    """name -> rendered outcome across all five engines."""
    return {
        "interp": _outcome(lambda: evaluate(
            parse_query(source), DynamicContext(documents=documents))),
        "plain": _outcome(
            lambda: compile_query(source).execute(documents)),
        "joined": _outcome(lambda: compile_query(
            source, statistics=statistics).execute(documents)),
        "nojoin": _outcome(lambda: compile_query(
            source, statistics=statistics,
            join_search=False).execute(documents)),
        "perturbed": _outcome(lambda: compile_query(
            source, perturb=True).execute(documents)),
    }


def _assert_agree(source, documents=DOCS, statistics=STATS):
    outcomes = _engines(source, documents, statistics)
    reference = outcomes["interp"]
    for name, outcome in outcomes.items():
        assert outcome == reference, (name, source)
    return reference


def _find(entry, kind):
    if entry.get("kind") == kind:
        yield entry
    for child in entry.get("children", ()):
        yield from _find(child, kind)


class TestJoinParity:
    """Byte-identical results, including duplicate keys and order."""

    def test_two_source_equi_join_preserves_order(self):
        source = ("for $a in doc('L')//row, $b in doc('R')//row "
                  "where $a/k = $b/k return $b/v")
        result = _assert_agree(source)
        # Duplicate keys on both sides: the nested loop emits the full
        # cross product of matches in outer-major order.
        assert len(result) > 4
        plan = compile_query(source, statistics=STATS)
        assert plan.decisions["join-groups"] == 1
        assert plan.decisions["hoisted-predicates"] == 1

    def test_hash_stage_at_scale(self):
        source = ("for $a in doc('L')//row, $b in doc('R')//row "
                  "where $a/k = $b/k return $b/v")
        _assert_agree(source, BIG_DOCS, BIG_STATS)
        plan = compile_query(source, statistics=BIG_STATS)
        assert plan.decisions["hash-joins"] == 1
        assert plan.decisions["loop-joins"] == 0

    def test_self_join(self):
        _assert_agree("for $a in doc('L')//row, $b in doc('L')//row "
                      "where $a/k = $b/k and $a/v != $b/v return $b/v")

    def test_three_source_join(self):
        _assert_agree(
            "for $a in doc('L')//row, $b in doc('R')//row, "
            "$c in doc('T')//row where $a/k = $b/k and $b/k = $c/k "
            "return $c/v")

    def test_single_variable_filters_hoisted(self):
        source = ("for $a in doc('L')//row, $b in doc('R')//row "
                  "where $a/k = 'a' and $a/k = $b/k and $b/v = '%r%' "
                  "return $b/v")
        _assert_agree(source)
        plan = compile_query(source, statistics=STATS)
        assert plan.decisions["hoisted-predicates"] == 3

    def test_empty_match_set(self):
        assert _assert_agree(
            "for $a in doc('L')//row, $b in doc('R')//row "
            "where $a/k = $b/k and $a/v = 'nope' return $b/v") == []

    def test_empty_source_short_circuits(self):
        assert _assert_agree(
            "for $a in doc('L')//missing, $b in doc('R')//row "
            "where $a/k = $b/k return $b/v") == []

    def test_non_equi_cross_predicate(self):
        _assert_agree("for $a in doc('L')//row, $b in doc('R')//row "
                      "where $a/k = $b/k and $a/v != $b/v return $b/v")

    def test_order_by_over_join(self):
        _assert_agree("for $a in doc('L')//row, $b in doc('R')//row "
                      "where $a/k = $b/k order by $b/v descending "
                      "return $b/v")

    def test_dependent_tail_clause(self):
        _assert_agree("for $a in doc('L')//row, $b in doc('R')//row, "
                      "$k in $a/k where $a/k = $b/k return $k")

    def test_residual_raising_conjunct_error_equivalence(self):
        # $a/n < 3 forces numeric coercion and some n values are not
        # numbers: all five engines must raise the same error type.
        outcome = _assert_agree(
            "for $a in doc('L')//row, $b in doc('R')//row "
            "where $a/k = $b/k and $a/n < 3 return $b/v")
        assert outcome == ("raised", XQueryTypeError.__name__)

    def test_raising_conjunct_blocks_hoisting_of_later_ones(self):
        source = ("for $a in doc('L')//row, $b in doc('R')//row "
                  "where $a/n < 3 and $a/k = $b/k return $b/v")
        _assert_agree(source)
        plan = compile_query(source, statistics=STATS)
        # The raising conjunct comes first: nothing may be hoisted
        # across it, so no join group is planned at all.
        assert plan.decisions["join-groups"] == 0

    def test_multi_valued_keys(self):
        doubled = element(
            "L", *[element("row", element("k", "a"), element("k", f"x{i}"),
                           element("v", f"l{i}")) for i in range(25)])
        single = element(
            "R", *[_row("a" if i % 3 else f"x{i}", f"r{i}")
                   for i in range(25)])
        documents = {"L": XmlDocument(doubled), "R": XmlDocument(single)}
        statistics = collect_statistics(documents)
        source = ("for $a in doc('L')//row, $b in doc('R')//row "
                  "where $a/k = $b/k return $b/v")
        _assert_agree(source, documents, statistics)
        plan = compile_query(source, statistics=statistics)
        assert plan.decisions["hash-joins"] == 1


class TestJoinExplain:
    SOURCE = ("for $a in doc('L')//row, $b in doc('R')//row "
              "where $a/k = $b/k and $a/v != $b/v return $b/v")

    def test_join_group_node_records_search(self):
        plan = compile_query(self.SOURCE, statistics=BIG_STATS)
        data = plan.explain_data()
        groups = list(_find(data["root"], "join-group"))
        assert len(groups) == 1
        estimated = groups[0]["estimated"]
        assert estimated["strategy"] == "join-group"
        assert estimated["order"] == ["$a", "$b"] \
            or estimated["order"] == ["$b", "$a"]
        assert estimated["orders_considered"] >= 2
        assert estimated["alternatives"][0]["order"] == ["$a", "$b"]
        assert "join-group [order " in plan.explain()

    def test_hash_stage_estimates_and_alternatives(self):
        plan = compile_query(self.SOURCE, statistics=BIG_STATS)
        data = plan.explain_data()
        stages = list(_find(data["root"], "hash-join"))
        assert len(stages) == 1
        estimated = stages[0]["estimated"]
        assert estimated["strategy"] == "hash"
        assert estimated["est_build_rows"] > 0
        assert estimated["est_probe_rows"] > 0
        strategies = [alt["strategy"] for alt in estimated["alternatives"]]
        assert strategies == ["loop", "hash", "hash"]

    def test_explain_analyze_reports_build_and_probe_rows(self):
        plan = compile_query(self.SOURCE, statistics=BIG_STATS)
        result = plan.execute(BIG_DOCS, analyze=True)
        data = plan.explain_data(analyze=True)
        assert data["root"]["actual"]["rows"] == len(result)
        stage = next(_find(data["root"], "hash-join"))
        build = next(_find(stage, "join-build"))
        probe = next(_find(stage, "join-probe"))
        assert build["actual"]["rows"] == 30
        assert probe["actual"]["rows"] == 30
        assert stage["actual"]["rows"] >= len(result)

    def test_loop_stage_on_tiny_inputs(self):
        # Selective hoisted filters shrink both sides to ~1 row each:
        # the hash table can never pay back its setup cost.
        source = ("for $a in doc('L')//row, $b in doc('R')//row "
                  "where $a/v = 'l0' and $b/v = 'r1' and $a/k = $b/k "
                  "return $b/v")
        plan = compile_query(source, statistics=STATS)
        data = plan.explain_data()
        assert list(_find(data["root"], "loop-join"))
        assert not list(_find(data["root"], "hash-join"))
        _assert_agree(source)

    def test_joinless_identity_differs(self):
        joined = compile_query(self.SOURCE, statistics=STATS)
        nojoin = compile_query(self.SOURCE, statistics=STATS,
                               join_search=False)
        assert joined.identity != nojoin.identity
        # The computation fingerprint stays shared: costed choices are
        # answer-preserving, so cached results are interchangeable.
        assert joined.fingerprint == nojoin.fingerprint
        assert nojoin.decisions["join-groups"] == 0


class TestStageFallback:
    """The runtime loop fallback for key sequences with non-string atoms."""

    def _group(self, left_items, right_items, build):
        conjunct = ComparisonOp("=", VarRefOp("a"), VarRefOp("b"), None)
        stage = _JoinStage(
            position=1, variable="b", strategy="hash", build=build,
            edge=(0, VarRefOp("a"), VarRefOp("b"), conjunct),
            hash_filters=(), loop_filters=(conjunct,))
        return JoinGroupOp(
            variables=("a", "b"),
            sources=(SequenceOp(tuple(LiteralOp(v) for v in left_items)),
                     SequenceOp(tuple(LiteralOp(v) for v in right_items))),
            source_filters=((), ()), prefilters=(), start=0,
            stages=(stage,))

    @pytest.mark.parametrize("build", ["source", "tuples"])
    def test_string_keys_take_the_hash_path(self, build):
        group = self._group(["a", "b", "a"], ["b", "a"], build)
        rows = group.run(DynamicContext(), _ExecState())
        assert rows == [("a", "a"), ("b", "b"), ("a", "a")]

    @pytest.mark.parametrize("build", ["source", "tuples"])
    def test_numeric_keys_fall_back_to_the_loop(self, build):
        # Numbers atomize to floats: the hash path must refuse (string
        # equality is not numeric promotion) and the generic loop runs.
        group = self._group([1.0, 2.0], [2.0, 3.0], build)
        rows = group.run(DynamicContext(), _ExecState())
        assert rows == [(2.0, 2.0)]


_variables = ["x0", "x1", "x2", "x3"]


@st.composite
def _join_sources(draw):
    count = draw(st.integers(min_value=2, max_value=4))
    variables = _variables[:count]
    clauses = ", ".join(
        f"${variable} in doc('{draw(st.sampled_from(['L', 'R', 'T']))}')"
        f"//row" for variable in variables)
    conjuncts = []
    for _ in range(draw(st.integers(min_value=1, max_value=4))):
        kind = draw(st.sampled_from(
            ["equi", "equi", "single", "like", "nonequi", "raising",
             "numeric-pair"]))
        first = draw(st.sampled_from(variables))
        second = draw(st.sampled_from(variables))
        if kind == "equi":
            conjuncts.append(f"${first}/k = ${second}/k")
        elif kind == "single":
            literal = draw(st.sampled_from(["a", "b", "d", "zz"]))
            conjuncts.append(f"${first}/k = '{literal}'")
        elif kind == "like":
            literal = draw(st.sampled_from(["l", "r", "0", "q"]))
            conjuncts.append(f"${first}/v = '%{literal}%'")
        elif kind == "nonequi":
            conjuncts.append(f"${first}/v != ${second}/v")
        elif kind == "raising":
            bound = draw(st.sampled_from(["2", "3"]))
            conjuncts.append(f"${first}/n < {bound}")
        else:
            conjuncts.append(f"${first}/n < ${second}/n")
    where = " and ".join(conjuncts)
    order = draw(st.sampled_from(
        ["", " order by $x0/v", " order by $x1/k descending"]))
    returns = draw(st.sampled_from(
        ["$x0/v", "element hit {$x1/k}", "count($x0/k)"]))
    return f"for {clauses} where {where}{order} return {returns}"


class TestJoinProperties:
    """Randomized multi-source FLWORs: five engines, one outcome."""

    @settings(max_examples=200, deadline=None)
    @given(_join_sources())
    def test_all_engines_agree(self, source):
        _assert_agree(source)

    @settings(max_examples=60, deadline=None)
    @given(_join_sources())
    def test_costed_plan_is_deterministic(self, source):
        first = compile_query(source, statistics=STATS)
        second = compile_query(source, statistics=STATS)
        assert first.explain() == second.explain()
        assert first.identity == second.identity
