"""Lexer unit tests."""

import pytest

from repro.xquery import XQuerySyntaxError, tokenize
from repro.xquery.tokens import (
    EOF,
    KEYWORD,
    NAME,
    NUMBER,
    STRING,
    SYMBOL,
    VARIABLE,
)


def kinds(source):
    return [t.kind for t in tokenize(source)]


def values(source):
    return [t.value for t in tokenize(source)[:-1]]


class TestBasics:
    def test_empty_source(self):
        assert kinds("") == [EOF]

    def test_whitespace_only(self):
        assert kinds("  \n\t ") == [EOF]

    def test_variable(self):
        token = tokenize("$b")[0]
        assert token.kind == VARIABLE
        assert token.value == "b"

    def test_variable_requires_name(self):
        with pytest.raises(XQuerySyntaxError):
            tokenize("$ b")

    def test_keywords_case_insensitive(self):
        for text in ["for", "FOR", "For"]:
            token = tokenize(text)[0]
            assert token.kind == KEYWORD
            assert token.value == "for"

    def test_name_not_keyword(self):
        token = tokenize("Course")[0]
        assert token.kind == NAME

    def test_namespaced_name(self):
        token = tokenize("fn:contains")[0]
        assert token.kind == NAME
        assert token.value == "fn:contains"

    def test_hyphenated_name(self):
        assert tokenize("starts-with")[0].value == "starts-with"

    def test_let_binding_symbol(self):
        assert values("let $x := 1") == ["let", "x", ":=", "1"]


class TestStrings:
    def test_single_quoted(self):
        token = tokenize("'Mark'")[0]
        assert token.kind == STRING
        assert token.value == "Mark"

    def test_double_quoted(self):
        assert tokenize('"cmu.xml"')[0].value == "cmu.xml"

    def test_doubled_quote_escape(self):
        assert tokenize("'it''s'")[0].value == "it's"

    def test_percent_preserved(self):
        assert tokenize("'%Database%'")[0].value == "%Database%"

    def test_unterminated_raises(self):
        with pytest.raises(XQuerySyntaxError):
            tokenize("'oops")

    def test_unicode_content(self):
        assert tokenize("'Datenbanken für Zürich'")[0].value == \
            "Datenbanken für Zürich"


class TestNumbers:
    def test_integer(self):
        token = tokenize("10")[0]
        assert token.kind == NUMBER
        assert token.value == "10"

    def test_decimal(self):
        assert tokenize("1.5")[0].value == "1.5"

    def test_number_then_dot_symbol(self):
        # '1.' is number 1 followed by '.' symbol (context-item dot).
        toks = tokenize("1 .")
        assert toks[0].kind == NUMBER
        assert toks[1].kind == SYMBOL


class TestSymbols:
    def test_double_slash_single_token(self):
        assert values("$a//b") == ["a", "//", "b"]

    def test_comparison_operators(self):
        assert values("<= >= != = < >") == \
            ["<=", ">=", "!=", "=", "<", ">"]

    def test_path_tokens(self):
        assert values('doc("x")/y/@z') == \
            ["doc", "(", "x", ")", "/", "y", "/", "@", "z"]

    def test_unexpected_character(self):
        with pytest.raises(XQuerySyntaxError):
            tokenize("#")


class TestComments:
    def test_comment_skipped(self):
        assert values("(: hello :) $x") == ["x"]

    def test_nested_comment(self):
        assert values("(: a (: b :) c :) 1") == ["1"]

    def test_unterminated_comment(self):
        with pytest.raises(XQuerySyntaxError):
            tokenize("(: oops")


class TestPaperQueries:
    def test_query_one_tokenizes(self):
        source = ('FOR $b in doc("gatech.xml")/gatech/Course '
                  'WHERE $b/Instructor = "Mark" RETURN $b')
        toks = tokenize(source)
        assert toks[0].is_keyword("for")
        assert toks[-1].kind == EOF

    def test_error_reports_line(self):
        with pytest.raises(XQuerySyntaxError) as exc:
            tokenize("$a\n'unterminated")
        assert exc.value.line == 2
