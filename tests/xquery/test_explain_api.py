"""The explain API: ``Plan.explain_data()`` as the single source of
truth, text/json rendering, EXPLAIN ANALYZE actuals, deprecations."""

import json

import pytest

from repro.core.queries import QUERIES
from repro.xquery import Query, compile_query
from repro.xquery.stats import collect_statistics


@pytest.fixture(scope="module")
def documents(paper_testbed):
    return paper_testbed.documents


@pytest.fixture(scope="module")
def statistics(paper_testbed):
    return collect_statistics(
        paper_testbed.documents,
        fingerprint=paper_testbed.content_fingerprint())


class TestExplainData:
    def test_schema_and_json_round_trip(self, statistics):
        plan = compile_query(QUERIES[0].xquery, statistics=statistics)
        data = plan.explain_data()
        assert data["version"] == 1
        assert data["xquery"] == QUERIES[0].xquery
        assert data["costed"] is True
        assert data["statistics_fingerprint"] == statistics.fingerprint
        assert data["analyzed"] is False
        assert all(isinstance(count, int)
                   for count in data["rewrites"].values())
        assert all(isinstance(count, int)
                   for count in data["decisions"].values())
        # The whole tree must survive a JSON round trip unchanged.
        assert json.loads(json.dumps(data)) == data

        def walk(entry):
            assert set(entry) >= {"kind", "label", "children"}
            assert "actual" not in entry
            for child in entry["children"]:
                walk(child)

        walk(data["root"])

    def test_uncosted_plan_has_no_estimates(self):
        plan = compile_query(QUERIES[0].xquery)
        data = plan.explain_data()
        assert data["costed"] is False
        assert data["statistics_fingerprint"] is None

        def walk(entry):
            assert entry.get("estimated") is None \
                or "strategy" not in entry["estimated"]
            for child in entry["children"]:
                walk(child)

        walk(data["root"])

    def test_text_rendering_comes_from_explain_data(self, statistics):
        plan = compile_query(QUERIES[0].xquery, statistics=statistics)
        assert plan.explain() == plan.explain(analyze=False, format="text")
        assert json.loads(plan.explain(format="json")) \
            == plan.explain_data()

    def test_unknown_format_rejected(self):
        plan = compile_query("1 + 1")
        with pytest.raises(ValueError):
            plan.explain(format="yaml")


class TestExplainAnalyze:
    def test_actuals_require_an_analyzed_run(self, documents):
        plan = compile_query(QUERIES[0].xquery)
        with pytest.raises(ValueError):
            plan.explain_data(analyze=True)
        plan.execute(documents)          # un-analyzed runs don't count
        with pytest.raises(ValueError):
            plan.explain_data(analyze=True)

    def test_root_actual_rows_match_execution_exactly(
            self, documents, statistics):
        for query in QUERIES:
            plan = compile_query(query.xquery, statistics=statistics)
            result = plan.execute(documents, analyze=True)
            data = plan.explain_data(analyze=True)
            assert data["analyzed"] is True
            actual = data["root"]["actual"]
            assert actual["rows"] == len(result), f"Q{query.number}"
            assert actual["calls"] == 1
            assert actual["wall_ns"] >= 0

    def test_analyzed_text_contains_actuals(self, documents, statistics):
        plan = compile_query(QUERIES[0].xquery, statistics=statistics)
        plan.execute(documents, analyze=True)
        text = plan.explain(analyze=True)
        assert "actual rows=" in text
        assert "calls=" in text
        # The default rendering stays byte-identical to the un-analyzed
        # view — actuals only appear when asked for.
        assert "actual rows=" not in plan.explain()

    def test_estimates_paired_with_actuals_per_operator(
            self, documents, statistics):
        plan = compile_query(QUERIES[0].xquery, statistics=statistics)
        plan.execute(documents, analyze=True)
        data = plan.explain_data(analyze=True)

        paired = []

        def walk(entry):
            if entry.get("estimated") and entry.get("actual"):
                paired.append(entry)
            for child in entry["children"]:
                walk(child)

        walk(data["root"])
        assert paired, "no operator carries both an estimate and actuals"
        for entry in paired:
            assert entry["actual"]["rows"] >= 0
            estimated = entry["estimated"]
            assert estimated.get("est_rows") is not None \
                or estimated.get("est_selectivity") is not None

    def test_last_analyzed_run_wins(self, documents, statistics):
        plan = compile_query("doc('cmu.xml')//Course", statistics=statistics)
        full = plan.execute(documents, analyze=True)
        subset = {"cmu": documents["cmu"]}
        again = plan.execute(subset, analyze=True)
        assert len(again) == len(full)
        data = plan.explain_data(analyze=True)
        assert data["root"]["actual"]["rows"] == len(again)


class TestDeprecatedEntryPoints:
    def test_query_explain_warns_but_still_works(self):
        query = Query("1 + 1")
        with pytest.deprecated_call():
            text = query.explain()
        assert text == query.plan.explain()
