"""PlanCache: LRU behavior, fingerprint keying, stats."""

import pytest

from repro.xquery import PlanCache, shared_plan_cache
from repro.xquery.functions import builtin_registry


class TestLookups:
    def test_hit_returns_same_plan_object(self):
        cache = PlanCache()
        first = cache.get("1 < 2")
        second = cache.get("1 < 2")
        assert first is second
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1
        assert cache.stats()["hit_rate"] == 0.5

    def test_distinct_sources_get_distinct_plans(self):
        cache = PlanCache()
        assert cache.get("1 < 2") is not cache.get("2 < 3")
        assert len(cache) == 2

    def test_contains_by_source(self):
        cache = PlanCache()
        cache.get("1 < 2")
        assert "1 < 2" in cache
        assert "2 < 3" not in cache


class TestFingerprintKeying:
    def test_equivalent_registries_share_entries(self):
        cache = PlanCache()
        first = cache.get("1 < 2", builtin_registry())
        second = cache.get("1 < 2", builtin_registry())
        assert first is second

    def test_rebinding_a_function_splits_the_key(self):
        cache = PlanCache()
        plain = cache.get("upper-case('a')")
        patched = builtin_registry()
        patched.register("upper-case", lambda ctx, args: ["nope"], arity=1)
        custom = cache.get("upper-case('a')", patched)
        assert plain is not custom
        assert plain.execute({}) == ["A"]
        assert custom.execute({}) == ["nope"]


class TestEviction:
    def test_lru_evicts_least_recently_used(self):
        cache = PlanCache(maxsize=2)
        cache.get("1")
        cache.get("2")
        cache.get("1")          # refresh 1; 2 is now LRU
        cache.get("3")          # evicts 2
        assert "1" in cache
        assert "2" not in cache
        assert "3" in cache
        assert cache.stats()["evictions"] == 1

    def test_evicted_entry_recompiles_as_miss(self):
        cache = PlanCache(maxsize=1)
        first = cache.get("1")
        cache.get("2")
        again = cache.get("1")
        assert again is not first
        assert cache.stats()["misses"] == 3

    def test_size_never_exceeds_maxsize(self):
        cache = PlanCache(maxsize=3)
        for n in range(10):
            cache.get(str(n))
        assert len(cache) == 3
        assert cache.stats()["size"] == 3

    def test_maxsize_must_be_positive(self):
        with pytest.raises(ValueError):
            PlanCache(maxsize=0)


class TestShared:
    def test_shared_cache_is_a_singleton(self):
        assert shared_plan_cache() is shared_plan_cache()

    def test_clear_resets_counters(self):
        cache = PlanCache()
        cache.get("1")
        cache.get("1")
        cache.clear()
        stats = cache.stats()
        assert (stats["size"], stats["hits"], stats["misses"]) == (0, 0, 0)

    def test_entries_lists_plans_lru_order(self):
        cache = PlanCache()
        a = cache.get("1")
        b = cache.get("2")
        cache.get("1")
        assert cache.entries() == [b, a]
