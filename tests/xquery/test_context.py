"""Context, document resolver and document-node tests."""

import pytest

from repro.xmlmodel import XmlDocument, element
from repro.xquery import XQueryNameError, run_query
from repro.xquery.context import DocumentNode, DocumentResolver, \
    DynamicContext


class TestDocumentResolver:
    def test_add_and_resolve(self):
        resolver = DocumentResolver()
        resolver.add("cmu", XmlDocument(element("cmu")))
        node = resolver.resolve("cmu")
        assert isinstance(node, DocumentNode)
        assert node.children[0].tag == "cmu"

    def test_xml_suffix_equivalence(self):
        resolver = DocumentResolver({"cmu.xml": XmlDocument(element("cmu"))})
        assert resolver.resolve("cmu") is resolver.resolve("CMU.xml")

    def test_contains(self):
        resolver = DocumentResolver({"brown": XmlDocument(element("brown"))})
        assert "brown" in resolver
        assert "brown.xml" in resolver
        assert "mit" not in resolver

    def test_names_sorted(self):
        resolver = DocumentResolver({
            "umd": XmlDocument(element("umd")),
            "cmu": XmlDocument(element("cmu"))})
        assert resolver.names() == ["cmu", "umd"]

    def test_unknown_document_lists_known(self):
        resolver = DocumentResolver({"cmu": XmlDocument(element("cmu"))})
        with pytest.raises(XQueryNameError, match="cmu"):
            resolver.resolve("mit")


class TestDocumentNode:
    def test_reserved_tag(self):
        node = DocumentNode(element("root"))
        assert node.tag == "#document"

    def test_paper_style_path_steps_through_root(self):
        docs = {"cmu": XmlDocument(element(
            "cmu", element("Course", element("Title", "DB"))))}
        result = run_query('doc("cmu.xml")/cmu/Course/Title', docs)
        assert [r.text for r in result] == ["DB"]

    def test_descendant_axis_from_document_node(self):
        docs = {"cmu": XmlDocument(element(
            "cmu", element("Course", element("Title", "DB"))))}
        assert len(run_query('doc("cmu")//Title', docs)) == 1

    def test_wrong_root_name_selects_nothing(self):
        docs = {"cmu": XmlDocument(element("cmu", element("Course")))}
        assert run_query('doc("cmu")/brown/Course', docs) == []

    def test_document_node_text(self):
        node = DocumentNode(element("r", "payload"))
        assert node.text == "payload"


class TestDynamicContext:
    def test_bind_creates_child_scope(self):
        parent = DynamicContext()
        child = parent.bind("x", [1.0])
        assert child.lookup("x") == [1.0]
        with pytest.raises(XQueryNameError):
            parent.lookup("x")

    def test_focus_does_not_leak(self):
        parent = DynamicContext()
        focused = parent.with_focus("item", 2, 5)
        assert focused.context_position == 2
        assert focused.context_size == 5
        assert parent.context_item is None

    def test_unbound_variable_message(self):
        with pytest.raises(XQueryNameError, match=r"\$ghost"):
            DynamicContext().lookup("ghost")
