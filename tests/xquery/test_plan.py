"""Compiled plans: byte-identical to the interpreter, observable stats."""

import pytest

from repro.core.queries import QUERIES
from repro.xmlmodel import XmlDocument, XmlElement, element, serialize
from repro.xquery import Query, XQueryTypeError, compile_query, run_query
from repro.xquery.context import DynamicContext
from repro.xquery.errors import XQueryError
from repro.xquery.evaluator import evaluate
from repro.xquery.parser import parse_query
from repro.xquery.plan import IndexedPathOp


def _render(seq):
    return [serialize(item) if isinstance(item, XmlElement) else item
            for item in seq]


def _both_ways(source, documents):
    """(interpreter result, plan result), errors normalized to markers."""
    try:
        interp = _render(evaluate(parse_query(source),
                                  DynamicContext(documents=documents)))
    except XQueryError as exc:
        interp = ("raised", type(exc).__name__)
    plan = compile_query(source)
    try:
        planned = _render(plan.execute(documents))
    except XQueryError as exc:
        planned = ("raised", type(exc).__name__)
    return interp, planned


class TestBenchmarkEquivalence:
    """The tentpole contract: all 12 queries, byte-identical results."""

    @pytest.mark.parametrize("query", QUERIES,
                             ids=[f"q{q.number:02d}" for q in QUERIES])
    def test_plan_matches_interpreter(self, query, paper_testbed):
        interp, planned = _both_ways(query.xquery, paper_testbed.documents)
        assert planned == interp

    @pytest.mark.parametrize("query", QUERIES,
                             ids=[f"q{q.number:02d}" for q in QUERIES])
    def test_plan_is_stable_across_runs(self, query, paper_testbed):
        plan = compile_query(query.xquery)
        first = _render(plan.execute(paper_testbed.documents))
        second = _render(plan.execute(paper_testbed.documents))
        assert first == second


class TestRewrites:
    def test_where_fuses_into_predicate(self):
        plan = compile_query(
            "for $c in doc('d')/r/c where $c/v = 'x' return $c")
        assert plan.rewrites["where-to-predicate"] == 1
        explained = plan.explain()
        assert "pushed from where" in explained
        # The WHERE clause itself is gone from the plan.
        assert not any(line.strip() == "where"
                       for line in explained.splitlines())

    def test_conjunction_fusion_is_all_or_nothing(self):
        fused = compile_query(
            "for $c in doc('d')/r/c "
            "where $c/v = 'x' and $c/w > 2 return $c")
        assert fused.rewrites["where-to-predicate"] == 2
        # position() is focus-dependent: nothing may move, not even the
        # fusable first conjunct.
        kept = compile_query(
            "for $c in doc('d')/r/c "
            "where $c/v = 'x' and position() < 9 return $c")
        assert kept.rewrites["where-to-predicate"] == 0

    def test_numeric_conjunct_is_not_pushed(self):
        """A bare numeric WHERE would flip to position-filter semantics
        as a predicate, so it must stay a WHERE."""
        plan = compile_query(
            "for $c in doc('d')/r/c where $c/v return $c")
        assert plan.rewrites["where-to-predicate"] == 0

    def test_constant_folding(self):
        plan = compile_query("if (1 < 2) then 'a' else 'b'")
        assert plan.rewrites["constant-fold"] >= 1
        assert plan.execute({}) == ["a"]

    def test_folding_keeps_runtime_errors(self):
        plan = compile_query("'abc' < 5")
        assert plan.rewrites["constant-fold"] == 0
        with pytest.raises(XQueryTypeError):
            plan.execute({})

    def test_doc_rooted_path_is_index_backed(self):
        plan = compile_query("doc('d')/r/c")
        assert plan.rewrites["index-paths"] == 1
        assert isinstance(plan.root, IndexedPathOp)

    def test_rebound_doc_disables_index_paths(self):
        from repro.xquery.functions import builtin_registry
        registry = builtin_registry()
        registry.register("doc", lambda ctx, args: [], arity=1)
        plan = compile_query("doc('d')/r/c", functions=registry)
        assert plan.rewrites["index-paths"] == 0


class TestEquivalenceCorners:
    """Shapes where a sloppy planner would diverge from the evaluator."""

    @pytest.fixture()
    def docs(self):
        root = element(
            "r",
            element("c", element("v", "x"), element("w", "5")),
            element("c", element("v", "y"), element("w", "2")),
            element("c", element("v", "x x"), element("w", "not-a-number")),
        )
        return {"d": XmlDocument(root)}

    @pytest.mark.parametrize("source", [
        "doc('d')/r/c[2]",                          # position predicate
        "doc('d')/r/c[position() > 1]/v",
        "doc('d')/r/c[last()]",
        "doc('d')//v",                              # descendant from doc
        "doc('d')/r/c/*",                           # wildcard
        "doc('d')//missing",
        "for $c in doc('d')/r/c where $c/v = 'x' return $c/w",
        "for $c in doc('d')/r/c where $c/v = '%x%' "
        "return element hit {$c/v}",
        "for $c in doc('d')/r/c where $c/w > 3 return $c",   # raises on row 3
        "for $c in doc('d')/r/c order by $c/v descending return $c/v",
        "some $c in doc('d')/r/c satisfies $c/v = 'y'",
        "count(doc('d')/r/c)",
        "doc('d')/r/c[v = 'x']",                    # hand-written predicate
        "doc('missing')/r/c",                       # unknown document
    ])
    def test_corner_shapes_agree(self, source, docs):
        interp, planned = _both_ways(source, docs)
        assert planned == interp

    def test_duplicate_elimination_matches(self, docs):
        interp, planned = _both_ways("doc('d')//c//v", docs)
        assert planned == interp


class TestPlanStats:
    def test_stats_populated_after_execute(self, paper_testbed):
        plan = compile_query(QUERIES[0].xquery)
        plan.execute(paper_testbed.documents)
        stats = plan.last_stats
        assert stats is not None
        assert stats.parse_ns > 0
        assert stats.compile_ns > 0
        assert stats.exec_ns > 0
        assert stats.nodes_visited > 0
        assert stats.index_lookups > 0
        assert set(stats.to_dict()) == {"parse_ns", "compile_ns", "exec_ns",
                                        "nodes_visited", "index_lookups"}

    def test_cumulative_snapshot(self, paper_testbed):
        plan = compile_query(QUERIES[0].xquery)
        for _ in range(3):
            plan.execute(paper_testbed.documents)
        snapshot = plan.stats_snapshot()
        assert snapshot["runs"] == 3
        assert snapshot["total_exec_ns"] >= snapshot["avg_exec_ns"] * 3 - 3
        assert snapshot["index_lookups"] > 0

    def test_index_lookups_zero_without_doc_paths(self):
        plan = compile_query("for $x in (1, 2, 3) return $x")
        assert plan.execute({}) == [1.0, 2.0, 3.0]
        assert plan.last_stats.index_lookups == 0


class TestFacade:
    def test_module_level_compile(self):
        from repro import xquery
        plan = xquery.compile("1 < 2")
        assert plan.execute({}) == [True]

    def test_query_wraps_plans(self, paper_testbed):
        query = Query(QUERIES[0].xquery)
        with pytest.deprecated_call():
            assert query.explain() == query.plan.explain()
        assert _render(query.run(paper_testbed.documents)) == \
            _render(run_query(QUERIES[0].xquery, paper_testbed.documents))

    def test_query_syntax_error_carries_location(self):
        from repro.xquery import XQuerySyntaxError
        with pytest.raises(XQuerySyntaxError) as info:
            Query("for $x in (1,\n  2 return $x")
        err = info.value
        assert err.line == 2
        assert err.column is not None
        assert err.context() is not None
        assert "^" in err.context()

    def test_deprecated_imports_warn_but_work(self):
        import repro.xquery as xq
        with pytest.warns(DeprecationWarning):
            parse = xq.parse_query
        with pytest.warns(DeprecationWarning):
            ev = xq.evaluate
        assert ev(parse("1 < 2"), DynamicContext()) == [True]

    def test_unknown_attribute_still_raises(self):
        import repro.xquery as xq
        with pytest.raises(AttributeError):
            xq.definitely_not_a_thing
