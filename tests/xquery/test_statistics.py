"""Statistics collection: naive-count parity, determinism, the cache."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.xquery.cost import comparison_selectivity, q_error
from repro.xquery.stats import (
    SAMPLE_CAP,
    clear_statistics_cache,
    collect_statistics,
    statistics_cache_stats,
)

REPO_SRC = Path(__file__).resolve().parent.parent.parent / "src"


def _naive_tag_counts(root):
    counts = {}

    def walk(node):
        counts[node.tag] = counts.get(node.tag, 0) + 1
        for child in node.element_children:
            walk(child)

    walk(root)
    return counts


def _naive_child_pairs(root):
    pairs = {}

    def walk(node):
        for child in node.element_children:
            key = (node.tag, child.tag)
            pairs[key] = pairs.get(key, 0) + 1
            walk(child)

    walk(root)
    return pairs


@pytest.fixture(scope="module")
def statistics(testbed):
    clear_statistics_cache()
    return collect_statistics(testbed.documents,
                              fingerprint=testbed.content_fingerprint())


class TestCardinalities:
    def test_tag_counts_match_naive_counts_on_every_source(
            self, testbed, statistics):
        """Posting-list cardinalities equal a hand-rolled tree walk."""
        for slug, document in testbed.documents.items():
            docstats = statistics.for_document(slug)
            assert docstats is not None, slug
            naive = _naive_tag_counts(document.root)
            assert docstats.tag_counts == naive, slug
            assert docstats.element_count == sum(naive.values()), slug
            index = document.index()
            for tag, count in naive.items():
                assert index.tag_count(tag) == count, (slug, tag)

    def test_child_pairs_match_naive_counts(self, testbed, statistics):
        for slug, document in testbed.documents.items():
            docstats = statistics.for_document(slug)
            assert docstats.child_pairs \
                == _naive_child_pairs(document.root), slug

    def test_fanout_of_document_node_is_the_root(self, statistics):
        docstats = statistics.for_document("cmu")
        assert docstats.fanout(None, docstats.root_tag) == 1.0
        assert docstats.fanout(None, "Course") == 0.0

    def test_doc_uri_normalization(self, statistics):
        assert statistics.for_document("cmu.xml") \
            is statistics.for_document("cmu")

    def test_sample_cap_respected(self, statistics):
        for docstats in statistics.documents.values():
            for tag, values in docstats.value_samples.items():
                assert len(values) <= SAMPLE_CAP, (docstats.name, tag)

    def test_subtree_sizes_match_naive_walk(self, testbed):
        document = testbed.documents["cmu"]
        index = document.index()

        def descendants(node):
            return sum(1 + descendants(child)
                       for child in node.element_children)

        for course in index.elements("Course")[:5]:
            assert index.subtree_size(course) == descendants(course)


class TestScaled:
    def test_scaled_inflates_row_estimates(self, statistics):
        docstats = statistics.for_document("umd")
        inflated = docstats.scaled(100)
        base = docstats.fanout("umd", "Course")
        assert base > 0
        assert inflated.fanout("umd", "Course") == pytest.approx(100 * base)
        assert inflated.avg_subtree("Course") \
            == pytest.approx(100 * docstats.avg_subtree("Course"))

    def test_scaled_leaves_value_samples_alone(self, statistics):
        docstats = statistics.for_document("umd")
        assert docstats.scaled(100).value_samples is docstats.value_samples

    def test_scaled_changes_the_fingerprint(self, statistics):
        assert statistics.scaled(100).fingerprint != statistics.fingerprint

    def test_scale_factor_must_be_positive(self, statistics):
        with pytest.raises(ValueError):
            statistics.scaled(0)


_DUMP_SCRIPT = """\
import json, sys
from repro.catalogs import build_testbed, paper_universities
from repro.xquery.cost import comparison_selectivity
from repro.xquery.stats import collect_statistics

testbed = build_testbed(universities=paper_universities())
statistics = collect_statistics(
    testbed.documents, fingerprint=testbed.content_fingerprint())
selectivities = {}
for slug in sorted(statistics.documents):
    docstats = statistics.documents[slug]
    for tag in sorted(docstats.value_samples)[:5]:
        values = docstats.samples(tag)
        if values:
            selectivities[f"{slug}/{tag}"] = comparison_selectivity(
                docstats, docstats.root_tag, tag, "=", values[0])
json.dump({"fingerprint": statistics.fingerprint,
           "selectivities": selectivities}, sys.stdout, sort_keys=True)
"""


class TestDeterminism:
    @pytest.fixture(scope="class")
    def dumps(self):
        def run():
            result = subprocess.run(
                [sys.executable, "-c", _DUMP_SCRIPT],
                capture_output=True, text=True, timeout=300,
                env={"PYTHONPATH": str(REPO_SRC),
                     "PYTHONHASHSEED": "random"})
            assert result.returncode == 0, result.stderr
            return result.stdout

        return run(), run()

    def test_fingerprint_and_selectivities_stable_across_processes(
            self, dumps):
        """Two interpreters with randomized hashing agree byte for
        byte on the fingerprint and on every selectivity estimate."""
        first, second = dumps
        assert first == second
        payload = json.loads(first)
        assert len(payload["fingerprint"]) == 64
        assert payload["selectivities"]

    def test_fresh_process_matches_this_process(self, dumps, statistics):
        """The subprocess estimates agree with in-process estimates over
        the same documents (the full testbed is a superset of the paper
        nine, and per-document stats depend only on that document)."""
        payload = json.loads(dumps[0])
        for key, value in payload["selectivities"].items():
            slug, tag = key.split("/", 1)
            docstats = statistics.for_document(slug)
            values = docstats.samples(tag)
            assert comparison_selectivity(
                docstats, docstats.root_tag, tag, "=", values[0]) \
                == pytest.approx(value)


class TestCache:
    def test_fingerprint_keyed_hits(self, testbed):
        clear_statistics_cache()
        fingerprint = testbed.content_fingerprint()
        first = collect_statistics(testbed.documents,
                                   fingerprint=fingerprint)
        second = collect_statistics(testbed.documents,
                                    fingerprint=fingerprint)
        assert second is first
        counters = statistics_cache_stats()
        assert counters["hits"] == 1
        assert counters["misses"] == 1
        assert counters["collections"] == 1
        assert counters["hit_rate"] == 0.5

    def test_no_fingerprint_means_no_caching(self, testbed):
        clear_statistics_cache()
        first = collect_statistics(testbed.documents)
        second = collect_statistics(testbed.documents)
        assert second is not first
        counters = statistics_cache_stats()
        assert counters["hits"] == 0
        assert counters["misses"] == 0
        assert counters["collections"] == 2

    def test_clear_resets_counters(self, testbed):
        collect_statistics(testbed.documents,
                           fingerprint=testbed.content_fingerprint())
        clear_statistics_cache()
        counters = statistics_cache_stats()
        assert counters["entries"] == 0
        assert counters["hits"] == 0
        assert counters["misses"] == 0
        assert counters["collections"] == 0


class TestIndexCounters:
    def test_reset_counters_is_reset_safe(self, testbed):
        document = testbed.documents["cmu"]
        index = document.index()
        index.children_of(document.root, "Course")
        assert index.stats()["child_lookups"] >= 1
        index.reset_counters()
        stats = index.stats()
        assert stats["child_lookups"] == 0
        assert stats["descendant_lookups"] == 0
        assert stats["string_lookups"] == 0
        # Structure untouched by a counter reset.
        assert stats["elements"] == index.element_count


class TestQError:
    def test_symmetric(self):
        assert q_error(10, 1000) == q_error(1000, 10)

    def test_exact_is_one(self):
        assert q_error(42, 42) == 1.0

    def test_zero_safe(self):
        assert q_error(0, 0) == 1.0
        assert q_error(0, 99) == 100.0
