"""Property tests for the evaluator's semantic laws."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.xmlmodel import XmlDocument, element
from repro.xquery import run_query

_words = st.text(alphabet="abcdefg XYZ", min_size=0, max_size=10)
_safe_words = _words.map(lambda s: s.replace("'", ""))
_numbers = st.integers(min_value=-1000, max_value=1000)


def _quote(text: str) -> str:
    return "'" + text.replace("'", "''") + "'"


class TestLikeSemantics:
    @settings(max_examples=120, deadline=None)
    @given(_safe_words, _safe_words)
    def test_contains_pattern_equals_substring(self, haystack, needle):
        """``s = '%n%'`` is case-insensitive substring containment
        (documented THALIA extension), provided the needle has no
        wildcard characters of its own."""
        if "%" in needle or "_" in needle or "%" in haystack:
            return
        got = run_query(f"{_quote(haystack)} = {_quote('%' + needle + '%')}",
                        {})
        assert got == [needle.lower() in haystack.lower()]

    @settings(max_examples=60, deadline=None)
    @given(_safe_words)
    def test_universal_pattern_matches_everything(self, text):
        if "%" in text:
            return
        assert run_query(f"{_quote(text)} = '%'", {}) == [True]

    @settings(max_examples=60, deadline=None)
    @given(_safe_words, _safe_words)
    def test_negated_like_is_complement(self, haystack, needle):
        if "%" in needle or "_" in needle or "%" in haystack:
            return
        pattern = _quote("%" + needle + "%")
        eq = run_query(f"{_quote(haystack)} = {pattern}", {})
        ne = run_query(f"{_quote(haystack)} != {pattern}", {})
        assert eq == [not ne[0]]


class TestComparisonLaws:
    @settings(max_examples=80, deadline=None)
    @given(_numbers, _numbers)
    def test_numeric_comparison_agrees_with_python(self, a, b):
        for op, expected in (("=", a == b), ("!=", a != b), ("<", a < b),
                             ("<=", a <= b), (">", a > b), (">=", a >= b)):
            assert run_query(f"{a} {op} {b}", {}) == [expected], op

    @settings(max_examples=60, deadline=None)
    @given(st.lists(_numbers, max_size=6), _numbers)
    def test_general_comparison_is_existential(self, values, probe):
        literals = ", ".join(str(v) for v in values)
        got = run_query(f"({literals}) = {probe}", {})
        assert got == [probe in values]


class TestFlworLaws:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(_numbers, max_size=8), _numbers)
    def test_where_filter_equals_comprehension(self, values, threshold):
        literals = ", ".join(str(v) for v in values)
        got = run_query(
            f"for $x in ({literals}) where $x > {threshold} return $x", {})
        assert got == [float(v) for v in values if v > threshold]

    @settings(max_examples=50, deadline=None)
    @given(st.lists(_numbers, min_size=1, max_size=8))
    def test_descending_is_reverse_of_ascending(self, values):
        literals = ", ".join(str(v) for v in values)
        ascending = run_query(
            f"for $x in ({literals}) order by $x return $x", {})
        descending = run_query(
            f"for $x in ({literals}) order by $x descending return $x", {})
        assert descending == list(reversed(ascending))

    @settings(max_examples=50, deadline=None)
    @given(st.lists(_numbers, max_size=8), _numbers)
    def test_some_iff_not_every_negation(self, values, threshold):
        literals = ", ".join(str(v) for v in values)
        some = run_query(
            f"some $x in ({literals}) satisfies $x > {threshold}", {})
        every_not = run_query(
            f"every $x in ({literals}) satisfies not ($x > {threshold})",
            {})
        assert some == [not every_not[0]]

    @settings(max_examples=40, deadline=None)
    @given(st.lists(_numbers, max_size=5))
    def test_count_agrees_with_len(self, values):
        literals = ", ".join(str(v) for v in values)
        assert run_query(f"count(({literals}))", {}) == \
            [float(len(values))]


class TestElementSemantics:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(_safe_words.filter(bool), min_size=1, max_size=5))
    def test_path_selection_preserves_document_order(self, texts):
        root = element("r", *[element("i", t) for t in texts])
        result = run_query("doc('d')/r/i", {"d": XmlDocument(root)})
        assert [node.text for node in result] == texts
