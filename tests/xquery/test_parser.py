"""Parser unit tests."""

import pytest

from repro.xquery import XQuerySyntaxError
from repro.xquery.parser import parse_query
from repro.xquery.ast import (
    Comparison,
    ElementConstructor,
    FLWOR,
    ForClause,
    FunctionCall,
    IfExpr,
    LetClause,
    Literal,
    Logical,
    Not,
    PathExpr,
    Sequence,
    VarRef,
)


class TestPrimaries:
    def test_string_literal(self):
        assert parse_query("'Mark'") == Literal("Mark")

    def test_number_literal(self):
        assert parse_query("10") == Literal(10.0)

    def test_variable(self):
        assert parse_query("$b") == VarRef("b")

    def test_empty_parens(self):
        assert parse_query("()") == Sequence(())

    def test_function_call_no_args(self):
        assert parse_query("true()") == FunctionCall("true", ())

    def test_function_call_args(self):
        node = parse_query("contains($t, 'DB')")
        assert node == FunctionCall(
            "contains", (VarRef("t"), Literal("DB")))

    def test_bare_name_is_context_relative_path(self):
        node = parse_query("Course")
        assert isinstance(node, PathExpr)
        assert node.steps[0].name == "Course"

    def test_bare_attribute_is_context_relative(self):
        node = parse_query("@code")
        assert isinstance(node, PathExpr)
        assert node.steps[0].kind == "attribute"

    def test_top_level_sequence(self):
        node = parse_query("1, 2")
        assert isinstance(node, Sequence)
        assert len(node.items) == 2


class TestPaths:
    def test_path_from_variable(self):
        node = parse_query("$b/Course/Title")
        assert isinstance(node, PathExpr)
        assert node.base == VarRef("b")
        assert [s.name for s in node.steps] == ["Course", "Title"]

    def test_path_from_doc(self):
        node = parse_query('doc("cmu.xml")/cmu/Course')
        assert isinstance(node.base, FunctionCall)
        assert node.base.name == "doc"

    def test_attribute_step(self):
        node = parse_query("$b/@code")
        assert node.steps[0].kind == "attribute"
        assert node.steps[0].name == "code"

    def test_text_step(self):
        node = parse_query("$b/text()")
        assert node.steps[0].kind == "text"

    def test_descendant_axis(self):
        node = parse_query("$b//Section")
        assert node.steps[0].axis == "descendant"

    def test_wildcard_step(self):
        node = parse_query("$b/*")
        assert node.steps[0].name == "*"

    def test_predicate(self):
        node = parse_query("$b/Course[2]")
        assert len(node.steps[0].predicates) == 1

    def test_predicate_expression(self):
        node = parse_query("$b/Course[Title = 'DB']")
        pred = node.steps[0].predicates[0]
        assert isinstance(pred, Comparison)

    def test_predicate_on_attribute_step_rejected(self):
        with pytest.raises(XQuerySyntaxError):
            parse_query("$b/@code[1]")

    def test_step_must_follow_slash(self):
        with pytest.raises(XQuerySyntaxError):
            parse_query("$b/")


class TestOperators:
    def test_comparison(self):
        node = parse_query("$b/Units > 10")
        assert isinstance(node, Comparison)
        assert node.op == ">"

    def test_and_or_precedence(self):
        node = parse_query("$a = 1 or $b = 2 and $c = 3")
        assert isinstance(node, Logical)
        assert node.op == "or"
        assert isinstance(node.right, Logical)
        assert node.right.op == "and"

    def test_not(self):
        assert isinstance(parse_query("not $x"), Not)

    def test_arithmetic(self):
        node = parse_query("1 + 2 - 3")
        assert node.op == "-"

    def test_no_chained_comparison(self):
        with pytest.raises(XQuerySyntaxError):
            parse_query("1 < 2 < 3")


class TestFLWOR:
    PAPER_QUERY_1 = """
        FOR $b in doc("gatech.xml")/gatech/Course
        WHERE $b/Instructor = 'Mark'
        RETURN $b
    """

    def test_paper_query_structure(self):
        node = parse_query(self.PAPER_QUERY_1)
        assert isinstance(node, FLWOR)
        assert isinstance(node.clauses[0], ForClause)
        assert node.clauses[0].variable == "b"
        assert isinstance(node.where, Comparison)
        assert node.returns == VarRef("b")

    def test_flwor_without_where(self):
        node = parse_query("for $x in $s return $x")
        assert node.where is None

    def test_let_clause(self):
        node = parse_query("let $t := $b/Title return $t")
        assert isinstance(node.clauses[0], LetClause)

    def test_multiple_for_bindings(self):
        node = parse_query("for $a in $x, $b in $y return $a")
        assert len(node.clauses) == 2

    def test_mixed_for_let(self):
        node = parse_query(
            "for $a in $x let $t := $a/Title return $t")
        assert isinstance(node.clauses[0], ForClause)
        assert isinstance(node.clauses[1], LetClause)

    def test_return_juxtaposition_paper_query_12(self):
        node = parse_query(
            "FOR $b in doc('cmu.xml')/cmu/Course "
            "WHERE $b/CourseTitle = '%Computer Networks%' "
            "RETURN $b/Title $b/Day")
        assert isinstance(node.returns, Sequence)
        assert len(node.returns.items) == 2

    def test_return_comma_sequence(self):
        node = parse_query("for $x in $s return $x/Title, $x/Day")
        assert isinstance(node.returns, Sequence)

    def test_nested_flwor_in_return(self):
        node = parse_query(
            "for $x in $s return for $y in $x/Section return $y")
        assert isinstance(node.returns, FLWOR)

    def test_missing_return_rejected(self):
        with pytest.raises(XQuerySyntaxError):
            parse_query("for $x in $s where $x = 1")

    def test_missing_in_rejected(self):
        with pytest.raises(XQuerySyntaxError):
            parse_query("for $x $s return $x")


class TestConstructorsAndConditionals:
    def test_if_expression(self):
        node = parse_query("if ($x = 1) then 'a' else 'b'")
        assert isinstance(node, IfExpr)

    def test_element_constructor(self):
        node = parse_query("element result { $b/Title }")
        assert isinstance(node, ElementConstructor)
        assert node.name == "result"

    def test_empty_element_constructor(self):
        node = parse_query("element empty {}")
        assert node.content is None

    def test_trailing_tokens_rejected(self):
        with pytest.raises(XQuerySyntaxError):
            parse_query("$a $b")


class TestAllPaperQueriesParse:
    """Smoke-parse idiomatic versions of all 12 benchmark queries."""

    SOURCES = [
        "FOR $b in doc('gatech.xml')/gatech/Course "
        "WHERE $b/Instructor = 'Mark' RETURN $b",
        "FOR $b in doc('cmu.xml')/cmu/Course "
        "WHERE $b/Time = '1:30 - 2:50' RETURN $b",
        "FOR $b in doc('umd.xml')/umd/Course "
        "WHERE $b/CourseName = '%Data Structures%' RETURN $b",
        "FOR $b in doc('cmu.xml')/cmu/Course "
        "WHERE $b/Units > 10 and $b/CourseTitle = '%Database%' RETURN $b",
        "FOR $b in doc('umd.xml')/umd/Course "
        "WHERE $b/CourseName = '%Database%' RETURN $b",
        "FOR $b in doc('toronto.xml')/toronto/course "
        "WHERE $b/title = '%Verification%' RETURN $b/text",
        "FOR $b in doc('umich.xml')/umich/Course "
        "WHERE $b/prerequisite = 'None' RETURN $b",
        "FOR $b in doc('gatech.xml')/gatech/Course "
        "WHERE $b/Restricted = '%JR%' RETURN $b",
        "FOR $b in doc('brown.xml')/brown/Course "
        "WHERE $b/Title = 'Software Engineering' RETURN $b/Room",
        "FOR $b in doc('cmu.xml')/cmu/Course "
        "WHERE $b/CourseTitle = '%Software%' RETURN $b/Lecturer",
        "FOR $b in doc('cmu.xml')/cmu/Course "
        "WHERE $b/CourseTitle = '%Database%' RETURN $b/Lecturer",
        "FOR $b in doc('cmu.xml')/cmu/Course "
        "WHERE $b/CourseTitle = '%Computer Networks%' "
        "RETURN $b/Title $b/Day",
    ]

    def test_all_parse(self):
        for source in self.SOURCES:
            node = parse_query(source)
            assert isinstance(node, FLWOR)
