"""XML-core fast-path tests.

The scale tier made the XML core's hot paths profile-guided: guarded
escaping, an iterative exact serializer with a ride-along digest, a
trusted parse path, and compiled simple paths that can be served from a
:class:`DocumentIndex`.  Every fast path must be *observably identical*
to the code it replaced — these tests pin that equivalence, including on
scale-generated documents far larger than the paper's.
"""

import hashlib

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.catalogs import build_testbed, paper_universities
from repro.xmlmodel import (
    XmlElement,
    compile_path,
    element,
    escape_attr,
    escape_text,
    parse_element,
    parse_xml,
    select,
    select_elements,
    serialize,
    serialize_digest,
)

# ---------------------------------------------------------------------- #
# Reference implementations: the pre-guard escape chains.
# ---------------------------------------------------------------------- #

def _legacy_escape_text(value: str) -> str:
    return (value.replace("&", "&amp;")
                 .replace("<", "&lt;")
                 .replace(">", "&gt;"))


def _legacy_escape_attr(value: str) -> str:
    return (value.replace("&", "&amp;")
                 .replace("<", "&lt;")
                 .replace(">", "&gt;")
                 .replace('"', "&quot;")
                 .replace("\n", "&#10;")
                 .replace("\t", "&#9;"))


_any_text = st.text(
    alphabet=st.characters(codec="utf-8",
                           exclude_categories=("Cs", "Cc", "Co")),
    max_size=60)


class TestEscapeGuards:
    def test_clean_text_returned_unchanged(self):
        value = "Intro to Algorithms D hr. MWF 11-12"
        assert escape_text(value) is value
        assert escape_attr(value) is value

    def test_specials_still_escaped(self):
        assert escape_text("A & B < C > D") == "A &amp; B &lt; C &gt; D"
        assert escape_attr('say "hi"\nnow\t') == "say &quot;hi&quot;&#10;now&#9;"

    def test_attr_guard_covers_newline_and_tab(self):
        assert escape_attr("a\nb") == "a&#10;b"
        assert escape_attr("a\tb") == "a&#9;b"
        assert escape_text("a\nb") == "a\nb"   # legal in element content

    @settings(max_examples=200, deadline=None)
    @given(_any_text)
    def test_escape_text_matches_legacy(self, value):
        assert escape_text(value) == _legacy_escape_text(value)

    @settings(max_examples=200, deadline=None)
    @given(_any_text)
    def test_escape_attr_matches_legacy(self, value):
        assert escape_attr(value) == _legacy_escape_attr(value)


# ---------------------------------------------------------------------- #
# Serializer digest and trusted parse on scale-generated documents
# ---------------------------------------------------------------------- #

@pytest.fixture(scope="module")
def scaled_document():
    bed = build_testbed(universities=paper_universities()[:1], scale=8)
    return bed.source(bed.slugs[0]).document


class TestSerializeDigest:
    def test_digest_matches_separate_hash(self, scaled_document):
        text, sha = serialize_digest(scaled_document, xml_declaration=True)
        assert text == serialize(scaled_document, xml_declaration=True)
        assert sha == hashlib.sha256(text.encode("utf-8")).hexdigest()

    def test_small_document_digest(self):
        node = element("r", element("a", "x & y"), code="1")
        text, sha = serialize_digest(node)
        assert text == serialize(node)
        assert sha == hashlib.sha256(text.encode("utf-8")).hexdigest()

    @settings(max_examples=60, deadline=None)
    @given(_any_text)
    def test_digest_on_arbitrary_text_children(self, value):
        node = XmlElement("r", {}, [value] if value else [])
        text, sha = serialize_digest(node)
        assert text == serialize(node)
        assert sha == hashlib.sha256(text.encode("utf-8")).hexdigest()


class TestTrustedRoundTrip:
    def test_trusted_parse_equals_validating_parse(self, scaled_document):
        text = serialize(scaled_document, xml_declaration=True)
        trusted = parse_xml(text, trusted=True)
        validating = parse_xml(text)
        assert trusted == validating

    def test_scaled_document_round_trips(self, scaled_document):
        text = serialize(scaled_document)
        assert parse_element(text) == scaled_document.root

    def test_deep_document_serializes_iteratively(self):
        # ~5000 levels would blow Python's recursion limit in a recursive
        # serializer; the iterative walker must not care.
        root = node = XmlElement("n0")
        for depth in range(1, 5000):
            child = XmlElement(f"n{depth % 7}")
            node.children.append(child)
            node = child
        text = serialize(root)
        assert text.startswith("<n0><n1>")
        # Structural __eq__ is recursive, so round-trip at the byte level.
        assert serialize(parse_element(text)) == text


# ---------------------------------------------------------------------- #
# Compiled paths: with and without an index, same results
# ---------------------------------------------------------------------- #

_PATHS = (
    "Course/Title",
    "//Title",
    "Course[2]",
    "Course/@code",
    "//Course/Instructor",
    "Course/*",
)


class TestCompiledPathParity:
    def test_compile_path_is_memoized(self):
        assert compile_path("Course/Title") is compile_path("Course/Title")

    def test_index_and_scan_agree_on_scaled_document(self, scaled_document):
        root = scaled_document.root
        index = scaled_document.index()
        for path in _PATHS:
            assert select(root, path) == select(root, path, index=index), path

    def test_select_elements_accepts_index(self, scaled_document):
        root = scaled_document.root
        index = scaled_document.index()
        with_index = select_elements(root, "//Course", index=index)
        without = select_elements(root, "//Course")
        assert with_index == without
        assert len(with_index) > 0

    def test_foreign_index_falls_back_to_scan(self, scaled_document):
        other = parse_element("<r><Course><Title>X</Title></Course></r>")
        index = scaled_document.index()   # does not cover `other`
        assert select(other, "Course/Title") \
            == select(other, "Course/Title", index=index)

    def test_index_lookup_counters_advance(self, scaled_document):
        index = scaled_document.index()
        before = index.stats()["descendant_lookups"]
        select(scaled_document.root, "//Course", index=index)
        assert index.stats()["descendant_lookups"] > before
