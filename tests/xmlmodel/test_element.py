"""Unit tests for the XmlElement / XmlDocument tree model."""

import pytest

from repro.xmlmodel import XmlDocument, XmlElement, element, is_valid_name


class TestNameValidation:
    def test_plain_names_are_valid(self):
        for name in ["Course", "CourseName", "a", "_hidden", "xs:element",
                     "Title-Time", "room.2"]:
            assert is_valid_name(name), name

    def test_invalid_names_rejected(self):
        for name in ["", "1course", " Course", "Co urse", "@attr", "a:", ":a",
                     "<tag>"]:
            assert not is_valid_name(name), name

    def test_constructor_rejects_bad_tag(self):
        with pytest.raises(ValueError):
            XmlElement("9lives")

    def test_set_rejects_bad_attribute_name(self):
        with pytest.raises(ValueError):
            XmlElement("a").set("bad name", "x")


class TestConstruction:
    def test_element_helper_builds_tree(self):
        node = element("Course", element("Title", "Databases"), code="CS145")
        assert node.tag == "Course"
        assert node.get("code") == "CS145"
        assert node.find("Title").text == "Databases"

    def test_append_returns_self_for_chaining(self):
        node = XmlElement("a")
        assert node.append("x").append(XmlElement("b")) is node
        assert len(node.children) == 2

    def test_append_rejects_non_child(self):
        with pytest.raises(TypeError):
            XmlElement("a").append(42)

    def test_extend(self):
        node = XmlElement("a").extend(["x", XmlElement("b"), "y"])
        assert node.text == "xy"
        assert len(node.element_children) == 1

    def test_attribute_values_coerced_to_str(self):
        node = element("a", n=3)
        assert node.get("n") == "3"


class TestTextFlattening:
    def test_text_concatenates_descendants_in_order(self):
        node = element("Title",
                       element("a", "Intro to Algorithms",
                               href="http://x"), " D hr. MWF 11-12")
        assert node.text == "Intro to Algorithms D hr. MWF 11-12"

    def test_normalized_text_collapses_whitespace(self):
        node = element("t", "  a \n  b\t c ")
        assert node.normalized_text == "a b c"

    def test_empty_element_text(self):
        assert XmlElement("a").text == ""

    def test_findtext_default(self):
        node = element("Course")
        assert node.findtext("Title") is None
        assert node.findtext("Title", "n/a") == "n/a"


class TestNavigation:
    def _catalog(self):
        return element(
            "brown",
            element("Course", element("Title", "Networks")),
            element("Course", element("Title", "Databases")),
            element("Note", "cached snapshot"),
        )

    def test_find_returns_first_match(self):
        root = self._catalog()
        assert root.find("Course").find("Title").text == "Networks"

    def test_find_returns_none_when_absent(self):
        assert self._catalog().find("Missing") is None

    def test_findall_preserves_order(self):
        titles = [c.find("Title").text
                  for c in self._catalog().findall("Course")]
        assert titles == ["Networks", "Databases"]

    def test_iter_all_nodes(self):
        tags = [n.tag for n in self._catalog().iter()]
        assert tags == ["brown", "Course", "Title", "Course", "Title", "Note"]

    def test_iter_filtered_by_tag(self):
        assert len(list(self._catalog().iter("Title"))) == 2

    def test_walk_with_predicate(self):
        found = list(self._catalog().walk(
            lambda n: n.tag == "Title" and "Data" in n.text))
        assert len(found) == 1


class TestEquality:
    def test_equal_trees(self):
        a = element("c", element("t", "x"), k="1")
        b = element("c", element("t", "x"), k="1")
        assert a == b
        assert hash(a) == hash(b)

    def test_adjacent_text_runs_merge_for_equality(self):
        a = XmlElement("t").extend(["ab"])
        b = XmlElement("t").extend(["a", "b"])
        assert a == b

    def test_empty_text_runs_ignored(self):
        a = XmlElement("t").extend(["", "x", ""])
        b = XmlElement("t").extend(["x"])
        assert a == b

    def test_tag_mismatch(self):
        assert element("a") != element("b")

    def test_attribute_mismatch(self):
        assert element("a", k="1") != element("a", k="2")

    def test_child_order_matters(self):
        a = element("r", element("a"), element("b"))
        b = element("r", element("b"), element("a"))
        assert a != b

    def test_not_equal_to_other_types(self):
        assert element("a") != "a"

    def test_copy_is_deep_and_equal(self):
        a = element("c", element("t", "x"), k="1")
        b = a.copy()
        assert a == b
        b.find("t").children[0] = "y"
        assert a != b


class TestDocument:
    def test_document_requires_element_root(self):
        with pytest.raises(TypeError):
            XmlDocument("not an element")

    def test_document_equality_ignores_source_name(self):
        a = XmlDocument(element("r"), source_name="brown")
        b = XmlDocument(element("r"), source_name="cmu")
        assert a == b

    def test_document_copy(self):
        doc = XmlDocument(element("r", element("x")), source_name="brown")
        dup = doc.copy()
        assert dup == doc
        assert dup.source_name == "brown"
        assert dup.root is not doc.root

    def test_repr_mentions_source(self):
        doc = XmlDocument(element("r"), source_name="brown")
        assert "brown" in repr(doc)
