"""DocumentIndex: lookups must match the naive tree scans exactly."""

import pytest

from repro.xmlmodel import DocumentIndex, XmlDocument, element


@pytest.fixture()
def tree():
    return element(
        "uni",
        element("Course",
                element("Title", "  Databases  "),
                element("Units", "3"),
                code="CS145"),
        element("Course",
                element("Title", "Systems"),
                element("Detail", element("Units", "4"))),
        element("Note", "plain"),
    )


@pytest.fixture()
def index(tree):
    return DocumentIndex(tree)


class TestConstruction:
    def test_counts_every_element(self, index):
        assert index.element_count == 9

    def test_tags_and_attributes(self, index):
        assert index.tags == ["Course", "Detail", "Note", "Title",
                              "Units", "uni"]
        assert index.attribute_names == ["code"]
        assert index.has_tag("Units")
        assert not index.has_tag("Instructor")
        assert index.has_attribute("code")
        assert not index.has_attribute("href")

    def test_covers_only_indexed_nodes(self, tree, index):
        assert index.covers(tree)
        for node in tree.iter():
            assert index.covers(node)
        assert not index.covers(element("Course"))

    def test_lazy_build_is_cached_on_document(self, tree):
        doc = XmlDocument(tree)
        assert doc.index() is doc.index()


class TestLookups:
    def test_elements_matches_preorder_scan(self, tree, index):
        for tag in index.tags:
            scanned = [node for node in tree.iter() if node.tag == tag]
            assert index.elements(tag) == scanned

    def test_children_of_matches_child_scan(self, tree, index):
        for parent in tree.iter():
            for tag in index.tags:
                scanned = [c for c in parent.element_children
                           if c.tag == tag]
                assert index.children_of(parent, tag) == scanned

    def test_children_of_uncovered_parent_is_none(self, index):
        assert index.children_of(element("stranger"), "Course") is None

    def test_descendants_of_matches_descendant_scan(self, tree, index):
        for node in tree.iter():
            for tag in index.tags:
                scanned = [d for child in node.element_children
                           for d in child.iter() if d.tag == tag]
                assert index.descendants_of(node, tag) == scanned

    def test_descendants_of_uncovered_node_is_none(self, index):
        assert index.descendants_of(element("stranger"), "Units") is None

    def test_descendants_excludes_self(self, tree, index):
        outer = index.elements("Course")[1]
        assert index.descendants_of(outer, "Course") == []

    def test_unknown_tag_lookups_are_empty(self, tree, index):
        assert index.elements("Instructor") == []
        assert index.children_of(tree, "Instructor") == []
        assert index.descendants_of(tree, "Instructor") == []


class TestStringCache:
    def test_string_of_normalizes_and_caches(self, tree, index):
        title = index.elements("Title")[0]
        assert index.string_of(title) == "Databases"
        assert index.string_of(title) == title.normalized_text

    def test_string_of_uncovered_node_is_none(self, index):
        assert index.string_of(element("free", "text")) is None
