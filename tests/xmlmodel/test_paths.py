"""Unit tests for the simple-path engine."""

import pytest

from repro.xmlmodel import (
    XmlPathError,
    element,
    parse_path,
    select,
    select_elements,
    select_first,
    select_text,
)


@pytest.fixture()
def catalog():
    return element(
        "umd",
        element(
            "Course",
            element("CourseName", "Software Engineering"),
            element("Section",
                    element("time", "MW 10:00", room="CHM 1407"),
                    id="0101"),
            element("Section",
                    element("time", "TT 14:00", room="EGR 2154"),
                    id="0201"),
            code="CMSC435",
        ),
        element(
            "Course",
            element("CourseName", "Data Structures"),
            element("Section", element("time", "F 9:00"), id="0101"),
            code="CMSC420",
        ),
    )


class TestParsePath:
    def test_rejects_empty(self):
        with pytest.raises(XmlPathError):
            parse_path("")

    def test_rejects_blank(self):
        with pytest.raises(XmlPathError):
            parse_path("   ")

    def test_rejects_trailing_descendant(self):
        with pytest.raises(XmlPathError):
            parse_path("Course//")

    def test_rejects_attribute_mid_path(self):
        with pytest.raises(XmlPathError):
            parse_path("@code/Section")

    def test_rejects_unbalanced_brackets(self):
        with pytest.raises(XmlPathError):
            parse_path("Course[@code='x'")

    def test_rejects_empty_predicate(self):
        with pytest.raises(XmlPathError):
            parse_path("Course[]")

    def test_rejects_zero_position(self):
        with pytest.raises(XmlPathError):
            parse_path("Course[0]")

    def test_rejects_garbage_predicate(self):
        with pytest.raises(XmlPathError):
            parse_path("Course[a b c]")

    def test_rejects_predicate_on_text(self):
        with pytest.raises(XmlPathError):
            parse_path("Course/text()[1]")


class TestSelect:
    def test_child_step(self, catalog):
        assert len(select(catalog, "Course")) == 2

    def test_nested_steps(self, catalog):
        sections = select(catalog, "Course/Section")
        assert [s.get("id") for s in sections] == ["0101", "0201", "0101"]

    def test_leading_slash_equivalent(self, catalog):
        assert select(catalog, "/Course") == select(catalog, "Course")

    def test_wildcard(self, catalog):
        children = select(catalog.find("Course"), "*")
        assert [c.tag for c in children] == \
            ["CourseName", "Section", "Section"]

    def test_descendant_axis(self, catalog):
        times = select(catalog, "//time")
        assert len(times) == 3

    def test_descendant_mid_path(self, catalog):
        rooms = select(catalog, "Course//time/@room")
        assert rooms == ["CHM 1407", "EGR 2154"]

    def test_position_predicate(self, catalog):
        second = select(catalog, "Course[2]/CourseName")
        assert second[0].text == "Data Structures"

    def test_attribute_predicate(self, catalog):
        matches = select(catalog, "Course[@code='CMSC420']")
        assert len(matches) == 1

    def test_child_text_predicate(self, catalog):
        matches = select(catalog, "Course[CourseName='Data Structures']")
        assert matches[0].get("code") == "CMSC420"

    def test_attribute_selection(self, catalog):
        codes = select(catalog, "Course/@code")
        assert codes == ["CMSC435", "CMSC420"]

    def test_missing_attribute_contributes_nothing(self, catalog):
        assert select(catalog, "Course/Section/@missing") == []

    def test_text_step(self, catalog):
        names = select(catalog, "Course/CourseName/text()")
        assert names == ["Software Engineering", "Data Structures"]

    def test_no_match_returns_empty(self, catalog):
        assert select(catalog, "Lecture") == []

    def test_chained_predicates(self, catalog):
        matches = select(
            catalog, "Course[CourseName='Software Engineering']/Section[2]")
        assert matches[0].get("id") == "0201"


class TestHelpers:
    def test_select_elements_rejects_attribute_paths(self, catalog):
        with pytest.raises(XmlPathError):
            select_elements(catalog, "Course/@code")

    def test_select_elements(self, catalog):
        assert len(select_elements(catalog, "Course")) == 2

    def test_select_first(self, catalog):
        first = select_first(catalog, "Course/CourseName")
        assert first.text == "Software Engineering"

    def test_select_first_none(self, catalog):
        assert select_first(catalog, "Nope") is None

    def test_select_text(self, catalog):
        assert select_text(catalog, "Course/CourseName") == \
            "Software Engineering"

    def test_select_text_attribute(self, catalog):
        assert select_text(catalog, "Course/@code") == "CMSC435"

    def test_select_text_default(self, catalog):
        assert select_text(catalog, "Nope", default="n/a") == "n/a"
