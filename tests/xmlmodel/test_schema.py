"""Schema inference, rendering and validation tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.xmlmodel import (
    UNBOUNDED,
    XmlElement,
    XmlSchemaError,
    XmlValidationError,
    element,
    infer_schema,
    serialize,
)


def _two_course_catalog():
    return element(
        "brown",
        element("Course",
                element("Title", "Networks"),
                element("Room", "CIT 165"),
                code="CS168"),
        element("Course",
                element("Title", "Databases"),
                code="CS127"),
    )


class TestInference:
    def test_root_declaration(self):
        schema = infer_schema(_two_course_catalog())
        assert schema.root.name == "brown"
        course = schema.root.child("Course")
        assert course.max_occurs == UNBOUNDED

    def test_optional_child_detected(self):
        schema = infer_schema(_two_course_catalog())
        room = schema.root.child("Course").child("Room")
        assert room.min_occurs == 0

    def test_required_child_detected(self):
        schema = infer_schema(_two_course_catalog())
        title = schema.root.child("Course").child("Title")
        assert title.min_occurs == 1

    def test_optional_child_absent_in_earlier_instance(self):
        root = element(
            "r",
            element("Course", element("Title", "A")),
            element("Course", element("Title", "B"), element("Lab", "L1")),
        )
        schema = infer_schema(root)
        assert schema.root.child("Course").child("Lab").min_occurs == 0

    def test_required_attribute(self):
        schema = infer_schema(_two_course_catalog())
        assert schema.root.child("Course").attributes["code"] is True

    def test_optional_attribute(self):
        root = element("r", element("c", k="1"), element("c"))
        schema = infer_schema(root)
        assert schema.root.child("c").attributes["k"] is False

    def test_mixed_content_detected(self):
        root = element("r", element("t", element("a", "link"), " tail"))
        schema = infer_schema(root)
        assert schema.root.child("t").mixed

    def test_unknown_child_lookup_raises(self):
        schema = infer_schema(_two_course_catalog())
        with pytest.raises(XmlSchemaError):
            schema.root.child("Nope")

    def test_source_name_carried_from_document(self):
        from repro.xmlmodel import XmlDocument
        doc = XmlDocument(_two_course_catalog(), source_name="brown")
        assert infer_schema(doc).source_name == "brown"


class TestValidation:
    def test_document_validates_against_own_schema(self):
        doc = _two_course_catalog()
        infer_schema(doc).validate(doc)

    def test_is_valid_boolean(self):
        doc = _two_course_catalog()
        assert infer_schema(doc).is_valid(doc)

    def test_wrong_root_rejected(self):
        schema = infer_schema(_two_course_catalog())
        with pytest.raises(XmlValidationError):
            schema.validate(element("cmu"))

    def test_undeclared_element_rejected(self):
        schema = infer_schema(_two_course_catalog())
        bad = _two_course_catalog()
        bad.find("Course").append(element("Surprise"))
        with pytest.raises(XmlValidationError, match="Surprise"):
            schema.validate(bad)

    def test_missing_required_child_rejected(self):
        schema = infer_schema(_two_course_catalog())
        bad = element("brown", element("Course", code="X"))
        with pytest.raises(XmlValidationError, match="Title"):
            schema.validate(bad)

    def test_occurrence_above_max_rejected(self):
        root = element("r", element("c", element("t", "one")))
        schema = infer_schema(root)
        bad = element("r", element("c", element("t", "a"), element("t", "b")))
        with pytest.raises(XmlValidationError, match="maxOccurs"):
            schema.validate(bad)

    def test_missing_required_attribute_rejected(self):
        schema = infer_schema(_two_course_catalog())
        bad = _two_course_catalog()
        del bad.find("Course").attrib["code"]
        with pytest.raises(XmlValidationError, match="code"):
            schema.validate(bad)

    def test_undeclared_attribute_rejected(self):
        schema = infer_schema(_two_course_catalog())
        bad = _two_course_catalog()
        bad.find("Course").set("extra", "x")
        with pytest.raises(XmlValidationError, match="extra"):
            schema.validate(bad)

    def test_text_in_non_mixed_complex_element_rejected(self):
        schema = infer_schema(element("r", element("c", element("t", "x"))))
        bad = element("r", element("c", element("t", "x"), "stray"))
        with pytest.raises(XmlValidationError, match="mixed"):
            schema.validate(bad)

    def test_error_reports_path(self):
        schema = infer_schema(_two_course_catalog())
        bad = _two_course_catalog()
        bad.find("Course").append(element("Surprise"))
        with pytest.raises(XmlValidationError) as exc:
            schema.validate(bad)
        assert "brown/Course" in str(exc.value)


class TestXsdRendering:
    def test_renders_xs_schema_root(self):
        xsd = infer_schema(_two_course_catalog()).to_xsd()
        assert xsd.root.tag == "xs:schema"
        assert xsd.root.get("xmlns:xs") == "http://www.w3.org/2001/XMLSchema"

    def test_unbounded_rendered(self):
        xsd = infer_schema(_two_course_catalog()).to_xsd()
        text = serialize(xsd)
        assert 'maxOccurs="unbounded"' in text

    def test_optional_rendered(self):
        xsd = infer_schema(_two_course_catalog()).to_xsd()
        text = serialize(xsd)
        assert 'minOccurs="0"' in text

    def test_simple_elements_typed_as_string(self):
        xsd = infer_schema(_two_course_catalog()).to_xsd()
        assert 'type="xs:string"' in serialize(xsd)

    def test_attribute_declared(self):
        xsd = infer_schema(_two_course_catalog()).to_xsd()
        text = serialize(xsd)
        assert '<xs:attribute name="code" type="xs:string" use="required"/>' \
            in text

    def test_mixed_flag_rendered(self):
        root = element("r", element("t", element("a", "x"), " tail"))
        assert 'mixed="true"' in serialize(infer_schema(root).to_xsd())


# --------------------------------------------------------------------------- #
# Property: every generated document validates against its inferred schema
# --------------------------------------------------------------------------- #

_tag = st.sampled_from(["Course", "Title", "Section", "Room", "a", "b"])
_txt = st.text(alphabet="abc äü", max_size=8)


@st.composite
def _docs(draw, depth: int = 0):
    node = XmlElement(draw(_tag))
    for key in draw(st.sets(st.sampled_from(["k", "code"]), max_size=2)):
        node.set(key, draw(_txt))
    if depth < 2:
        node.extend(draw(st.lists(_docs(depth=depth + 1), max_size=3)))
    if not node.element_children:
        node.append(draw(_txt))
    return node


class TestSchemaProperty:
    @settings(max_examples=100, deadline=None)
    @given(_docs())
    def test_self_validation(self, doc):
        infer_schema(doc).validate(doc)

    @settings(max_examples=50, deadline=None)
    @given(_docs())
    def test_xsd_is_well_formed(self, doc):
        from repro.xmlmodel import parse_element
        xsd = infer_schema(doc).to_xsd()
        parse_element(serialize(xsd))


class TestXsdParsing:
    def test_round_trip_structural(self):
        from repro.xmlmodel import parse_xsd, serialize
        schema = infer_schema(_two_course_catalog())
        parsed = parse_xsd(schema.to_xsd())
        assert serialize(parsed.to_xsd()) == serialize(schema.to_xsd())

    def test_parsed_schema_validates_original_document(self):
        from repro.xmlmodel import parse_xsd
        doc = _two_course_catalog()
        parsed = parse_xsd(infer_schema(doc).to_xsd())
        parsed.validate(doc)

    def test_parse_from_serialized_text(self):
        from repro.xmlmodel import parse_xml, parse_xsd, serialize_pretty
        schema = infer_schema(_two_course_catalog())
        text = serialize_pretty(schema.to_xsd())
        parsed = parse_xsd(parse_xml(text, strip_whitespace=True))
        parsed.validate(_two_course_catalog())

    def test_occurrence_bounds_preserved(self):
        from repro.xmlmodel import parse_xsd
        schema = infer_schema(_two_course_catalog())
        parsed = parse_xsd(schema.to_xsd())
        course = parsed.root.child("Course")
        assert course.max_occurs == UNBOUNDED
        assert course.child("Room").min_occurs == 0
        assert course.attributes["code"] is True

    def test_mixed_flag_preserved(self):
        from repro.xmlmodel import parse_xsd
        root = element("r", element("t", element("a", "x"), " tail"))
        parsed = parse_xsd(infer_schema(root).to_xsd())
        assert parsed.root.child("t").mixed
        parsed.validate(root)

    def test_rejects_non_schema_root(self):
        from repro.xmlmodel import parse_xsd
        with pytest.raises(XmlSchemaError, match="xs:schema"):
            parse_xsd(element("catalog"))

    def test_rejects_multiple_roots(self):
        from repro.xmlmodel import parse_xsd
        bad = element("xs:schema",
                      element("xs:element", name="a", type="xs:string"),
                      element("xs:element", name="b", type="xs:string"))
        with pytest.raises(XmlSchemaError, match="exactly one"):
            parse_xsd(bad)

    def test_rejects_unsupported_simple_type(self):
        from repro.xmlmodel import parse_xsd
        bad = element("xs:schema",
                      element("xs:element", name="a", type="xs:integer"))
        with pytest.raises(XmlSchemaError, match="unsupported"):
            parse_xsd(bad)

    @settings(max_examples=60, deadline=None)
    @given(_docs())
    def test_round_trip_property(self, doc):
        from repro.xmlmodel import parse_xsd, serialize
        schema = infer_schema(doc)
        parsed = parse_xsd(schema.to_xsd())
        assert serialize(parsed.to_xsd()) == serialize(schema.to_xsd())
        parsed.validate(doc)

    def test_bundle_xsds_loadable(self, paper_testbed):
        """The shipped catalog XSDs are consumable by parse_xsd."""
        from repro.xmlmodel import parse_xsd
        for bundle in paper_testbed:
            parsed = parse_xsd(bundle.schema.to_xsd())
            parsed.validate(bundle.document)
