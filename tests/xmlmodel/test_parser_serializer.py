"""Parser/serializer tests, including the hypothesis round-trip invariant."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.xmlmodel import (
    XmlDocument,
    XmlElement,
    XmlParseError,
    element,
    parse_element,
    parse_xml,
    serialize,
    serialize_pretty,
)


class TestParse:
    def test_simple_document(self):
        doc = parse_xml("<brown><Course><Title>DB</Title></Course></brown>",
                        source_name="brown")
        assert doc.source_name == "brown"
        assert doc.root.find("Course").find("Title").text == "DB"

    def test_attributes(self):
        root = parse_element('<Course code="CS145" units="4"/>')
        assert root.get("code") == "CS145"
        assert root.get("units") == "4"

    def test_mixed_content_preserved(self):
        root = parse_element('<t><a href="u">Intro</a> D hr. MWF</t>')
        assert root.text == "Intro D hr. MWF"
        assert isinstance(root.children[0], XmlElement)
        assert root.children[1] == " D hr. MWF"

    def test_entities_decoded(self):
        root = parse_element("<t>Algorithms &amp; Data &lt;Structures&gt;</t>")
        assert root.text == "Algorithms & Data <Structures>"

    def test_bytes_payload(self):
        root = parse_element("<t>Zürich</t>".encode("utf-8"))
        assert root.text == "Zürich"

    def test_strip_whitespace(self):
        root = parse_element("<r>\n  <a/>\n  <b/>\n</r>", strip_whitespace=True)
        assert root.children == [XmlElement("a"), XmlElement("b")]

    def test_whitespace_kept_by_default(self):
        root = parse_element("<r> <a/> </r>")
        assert root.children[0] == " "

    def test_malformed_raises_with_location(self):
        with pytest.raises(XmlParseError) as exc:
            parse_xml("<a><b></a>")
        assert exc.value.line == 1

    def test_unterminated_raises(self):
        with pytest.raises(XmlParseError):
            parse_xml("<a>")

    def test_empty_payload_raises(self):
        with pytest.raises(XmlParseError):
            parse_xml("")

    def test_xml_declaration_accepted(self):
        doc = parse_xml('<?xml version="1.0" encoding="UTF-8"?><r/>')
        assert doc.root.tag == "r"


class TestSerialize:
    def test_self_closing_empty_element(self):
        assert serialize(element("a")) == "<a/>"

    def test_attributes_escaped(self):
        out = serialize(element("a", href='x"<&>'))
        assert out == '<a href="x&quot;&lt;&amp;&gt;"/>'

    def test_text_escaped(self):
        assert serialize(element("a", "1 < 2 & 3 > 2")) == \
            "<a>1 &lt; 2 &amp; 3 &gt; 2</a>"

    def test_declaration(self):
        assert serialize(element("a"), xml_declaration=True).startswith(
            '<?xml version="1.0"')

    def test_document_serialization(self):
        doc = XmlDocument(element("r", element("x")))
        assert serialize(doc) == "<r><x/></r>"

    def test_pretty_text_only_inline(self):
        out = serialize_pretty(element("r", element("t", "x")),
                               xml_declaration=False)
        assert "<t>x</t>" in out

    def test_pretty_indents_children(self):
        out = serialize_pretty(
            element("r", element("Course", element("Title", "DB"))),
            xml_declaration=False)
        lines = out.strip().splitlines()
        assert lines[0] == "<r>"
        assert lines[1].startswith("  <Course>")
        assert lines[2].startswith("    <Title>")

    def test_pretty_parses_back(self):
        node = element("r", element("Course", element("Title", "DB & more")))
        reparsed = parse_element(serialize_pretty(node), strip_whitespace=True)
        assert reparsed == node


# --------------------------------------------------------------------------- #
# Property-based round-trip
# --------------------------------------------------------------------------- #

_names = st.sampled_from(
    ["Course", "Title", "Instructor", "Room", "Time", "Section", "a", "b2",
     "Umfang", "Vorlesung"])
_text = st.text(
    alphabet=st.characters(codec="utf-8",
                           exclude_categories=("Cs", "Cc", "Co")),
    min_size=1, max_size=30)
_attrs = st.dictionaries(_names, _text, max_size=3)


@st.composite
def _elements(draw, depth: int = 0):
    tag = draw(_names)
    attrib = draw(_attrs)
    node = XmlElement(tag, attrib)
    if depth < 3:
        children = draw(st.lists(
            st.one_of(_text, _elements(depth=depth + 1)), max_size=4))
        node.extend(children)
    else:
        node.extend(draw(st.lists(_text, max_size=2)))
    return node


class TestRoundTripProperty:
    @settings(max_examples=150, deadline=None)
    @given(_elements())
    def test_parse_serialize_round_trip(self, node):
        assert parse_element(serialize(node)) == node

    @settings(max_examples=60, deadline=None)
    @given(_elements())
    def test_serialization_is_deterministic(self, node):
        assert serialize(node) == serialize(node.copy())

    @settings(max_examples=60, deadline=None)
    @given(_elements())
    def test_text_survives_round_trip(self, node):
        assert parse_element(serialize(node)).text == node.text
