"""``thalia gen`` end to end: exit codes, output, cross-process determinism."""

import json
import os
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]
SRC = REPO / "src"


def run_gen(*argv, check=True):
    env = os.environ.copy()
    env["PYTHONPATH"] = str(SRC) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    result = subprocess.run(
        [sys.executable, "-m", "repro.cli", "gen", *argv],
        capture_output=True, text=True, cwd=REPO, env=env, timeout=300,
    )
    if check:
        assert result.returncode == 0, result.stderr
    return result


class TestGenCommand:
    def test_pack_is_byte_identical_across_processes(self, tmp_path):
        """The issue's determinism bar, in miniature: two fresh processes,
        same seed, byte-identical packs."""
        first, second = tmp_path / "one", tmp_path / "two"
        run_gen("--cases", "3", "--seed", "13", "--skip-validate",
                "--out", str(first))
        run_gen("--cases", "3", "--seed", "13", "--skip-validate",
                "--out", str(second))
        first_files = sorted(p.relative_to(first)
                             for p in first.rglob("*") if p.is_file())
        second_files = sorted(p.relative_to(second)
                              for p in second.rglob("*") if p.is_file())
        assert first_files == second_files
        for relpath in first_files:
            assert (first / relpath).read_bytes() == \
                (second / relpath).read_bytes(), str(relpath)

    def test_different_seeds_differ(self, tmp_path):
        one = run_gen("--cases", "2", "--seed", "1", "--skip-validate")
        two = run_gen("--cases", "2", "--seed", "2", "--skip-validate")
        assert one.stdout != two.stdout

    def test_gen_validates_and_reports_the_fingerprint(self, tmp_path):
        out = tmp_path / "pack"
        result = run_gen("--cases", "2", "--seed", "5", "--out", str(out))
        manifest = json.loads(
            (out / "manifest.json").read_text(encoding="utf-8"))
        assert manifest["fingerprint"] in result.stdout
        assert len(manifest["cases"]) == 2

    def test_tier_filter_reaches_the_manifest(self, tmp_path):
        out = tmp_path / "pack"
        run_gen("--cases", "2", "--seed", "3", "--tier", "easy",
                "--skip-validate", "--out", str(out))
        manifest = json.loads(
            (out / "manifest.json").read_text(encoding="utf-8"))
        assert manifest["tier"] == "easy"
        assert all(entry["tier"] == "easy" for entry in manifest["cases"])
