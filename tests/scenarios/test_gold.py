"""The gold-derivation invariant: two independent answer routes agree.

``derive_gold`` computes the answer from the canonical course model;
``ScenarioEvaluator`` computes it from mediator-integrated records; the
synthesized XQuery recovers the reference half by direct execution.  For
the full mediator all three must coincide on every generated case.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.integration import standard_mediator
from repro.scenarios import ScenarioSuite, derive_gold
from repro.scenarios.dsl import SCENARIO_NUMBER_BASE


def _integrated_answer(query, testbed):
    profiles = [testbed.source(slug).profile for slug in query.sources]
    mediator = standard_mediator(profiles)
    courses = mediator.integrate(testbed.documents, list(query.sources))
    return query.evaluate(courses, mediator.lexicon)


class TestRowShape:
    def test_rows_carry_source_code_plus_projections(
            self, scenario_suite, scenario_testbed):
        for query in scenario_suite.queries:
            spec = query.spec
            projections = sum(
                2 if kind.name == "DECOMPOSITION" else 1
                for kind in spec.kinds
                if kind.name not in ("VALUE_TRANSFORM", "COMPLEX_TRANSFORM",
                                     "TRANSLATION", "INFERENCE"))
            gold = derive_gold(spec, scenario_testbed)
            assert gold, f"{query.case_id} derived an empty gold answer"
            for row in gold:
                assert row[0] in (query.reference, query.challenge)
                assert len(row) == 2 + projections

    def test_hook_courses_always_present_on_both_sides(
            self, scenario_suite, scenario_testbed):
        """Every case keeps at least one matching course per source, so
        ablating a required capability always changes the answer."""
        for query in scenario_suite.queries:
            gold = derive_gold(query.spec, scenario_testbed)
            sides = {row[0] for row in gold}
            assert sides == {query.reference, query.challenge}


class TestEvaluatorAgreement:
    def test_full_mediator_reproduces_derived_gold(
            self, scenario_suite, scenario_testbed):
        for query in scenario_suite.queries:
            produced = _integrated_answer(query, scenario_testbed)
            expected = derive_gold(query.spec, scenario_testbed)
            assert produced == expected, query.spec.describe()


class TestQueryAgreement:
    def test_synthesized_query_recovers_reference_half(
            self, scenario_suite, scenario_testbed):
        assert scenario_suite.check_query_agreement(scenario_testbed) == []


@settings(max_examples=5, deadline=None)
@given(seed=st.integers(min_value=0, max_value=50_000))
def test_gold_invariants_hold_for_sampled_seeds(seed):
    """Property: for arbitrary seeds, every generated case satisfies the
    executed-query ≡ derived-gold equivalence and the evaluator route
    matches the canonical route under the full mediator."""
    suite = ScenarioSuite.generate(seed=seed, cases=2)
    testbed = suite.build_testbed()
    assert suite.check_query_agreement(testbed) == []
    for query in suite.queries:
        assert query.number >= SCENARIO_NUMBER_BASE
        produced = _integrated_answer(query, testbed)
        assert produced == derive_gold(query.spec, testbed), \
            query.spec.describe()
