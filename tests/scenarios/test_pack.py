"""Packs: layout, fingerprinting, write/load round trip."""

import json

import pytest

from repro.scenarios import (
    build_pack,
    load_pack,
    pack_fingerprint,
    write_pack,
)
from repro.scenarios.pack import MANIFEST_NAME, PACK_VERSION
from repro.xquery import compile_query


class TestLayout:
    def test_every_case_ships_six_files(self, scenario_suite, scenario_pack):
        for query in scenario_suite.queries:
            base = f"cases/{query.case_id}"
            for name in ("reference.xml", "reference.xsd", "challenge.xml",
                         "challenge.xsd", "query.xq", "gold.json"):
                assert f"{base}/{name}" in scenario_pack.files

    def test_manifest_indexes_every_case(self, scenario_suite, scenario_pack):
        manifest = scenario_pack.manifest
        assert manifest["version"] == PACK_VERSION
        assert manifest["seed"] == scenario_suite.seed
        assert manifest["fingerprint"] == scenario_pack.fingerprint
        assert [entry["case_id"] for entry in manifest["cases"]] == \
            [query.case_id for query in scenario_suite.queries]

    def test_bundle_json_carries_the_whole_pack(self, scenario_pack):
        bundle = json.loads(scenario_pack.bundle_json())
        assert bundle == scenario_pack.files


class TestFingerprint:
    def test_fingerprint_ignores_the_manifest(self, scenario_pack):
        files = dict(scenario_pack.files)
        assert pack_fingerprint(files) == scenario_pack.fingerprint
        files[MANIFEST_NAME] = "{}"
        assert pack_fingerprint(files) == scenario_pack.fingerprint

    def test_fingerprint_tracks_content(self, scenario_pack):
        files = dict(scenario_pack.files)
        path = next(p for p in sorted(files) if p.endswith("query.xq"))
        files[path] = files[path] + " "
        assert pack_fingerprint(files) != scenario_pack.fingerprint

    def test_rebuild_is_byte_identical(self, scenario_suite, scenario_testbed,
                                       scenario_pack):
        again = build_pack(scenario_suite, scenario_testbed)
        assert again.files == scenario_pack.files
        assert again.fingerprint == scenario_pack.fingerprint


class TestRoundTrip:
    @pytest.fixture(scope="class")
    def pack_dir(self, scenario_pack, tmp_path_factory):
        directory = tmp_path_factory.mktemp("pack")
        write_pack(scenario_pack, directory)
        return directory

    def test_loaded_pack_mirrors_the_suite(self, scenario_suite,
                                           scenario_pack, pack_dir):
        loaded = load_pack(pack_dir)
        assert loaded.fingerprint == scenario_pack.fingerprint
        assert loaded.seed == scenario_suite.seed
        assert len(loaded.cases) == len(scenario_suite.queries)
        for case, query in zip(loaded.cases, scenario_suite.queries):
            assert case.case_id == query.case_id
            assert case.number == query.number
            assert case.xquery == query.xquery
            assert case.spec == query.spec
            assert set(case.documents) == set(query.sources)

    def test_loaded_gold_matches_derived_gold(self, scenario_suite,
                                              scenario_testbed, pack_dir):
        loaded = load_pack(pack_dir)
        for case, query in zip(loaded.cases, scenario_suite.queries):
            assert case.gold == query.derive_gold(scenario_testbed)

    def test_loaded_queries_execute_over_loaded_documents(self, pack_dir):
        for case in load_pack(pack_dir).cases:
            reference = case.spec.reference_slug
            result = compile_query(case.xquery).execute(
                {reference: case.documents[reference]})
            produced = {item.findtext("Code") for item in result}
            expected = {row[1] for row in case.gold if row[0] == reference}
            assert produced == expected

    def test_missing_manifest_is_rejected(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_pack(tmp_path)

    def test_unknown_version_is_rejected(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text(
            json.dumps({"version": 99, "cases": []}), encoding="utf-8")
        with pytest.raises(ValueError):
            load_pack(tmp_path)
