"""The scenario DSL: composition rules, tiers, determinism."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.integration import Capability
from repro.scenarios import CompositionError, ScenarioSpec, generate_specs
from repro.scenarios.dsl import FACETS, TIERS, TOPIC_POOL


def spec_of(*kinds, topic="Database", seed=1):
    return ScenarioSpec(kinds=tuple(kinds), topic=topic, seed=seed)


class TestComposition:
    def test_single_kind_composes(self):
        spec = spec_of(Capability.TRANSLATION)
        assert spec.tier == "easy"
        assert spec.primary is Capability.TRANSLATION

    def test_empty_composition_rejected(self):
        with pytest.raises(CompositionError):
            spec_of()

    def test_duplicate_kinds_rejected(self):
        with pytest.raises(CompositionError):
            spec_of(Capability.RENAME, Capability.RENAME)

    @pytest.mark.parametrize("first, second", [
        (Capability.UNION_TYPE, Capability.TRANSLATION),    # both: title
        (Capability.RENAME, Capability.SET_HANDLING),       # instructors
        (Capability.SET_HANDLING, Capability.COLUMN_SEMANTICS),
        (Capability.DECOMPOSITION, Capability.VALUE_TRANSFORM),  # time
        (Capability.DECOMPOSITION, Capability.RESTRUCTURE),      # rooms
        (Capability.DECOMPOSITION, Capability.UNION_TYPE),       # title
    ])
    def test_same_facet_kinds_cannot_compose(self, first, second):
        with pytest.raises(CompositionError):
            spec_of(first, second)

    def test_translation_needs_lexicon_entry(self):
        with pytest.raises(CompositionError):
            spec_of(Capability.TRANSLATION, topic="Underwater Welding")

    def test_every_topic_in_pool_supports_translation(self):
        for topic in TOPIC_POOL:
            spec = spec_of(Capability.TRANSLATION, topic=topic)
            assert spec.topic == topic


class TestTier:
    def test_one_kind_is_easy(self):
        assert spec_of(Capability.RESTRUCTURE).tier == "easy"

    def test_two_kinds_same_group_is_medium(self):
        spec = spec_of(Capability.RENAME, Capability.VALUE_TRANSFORM)
        assert spec.tier == "medium"
        assert spec.groups == ("attribute",)

    def test_all_three_groups_is_hard(self):
        spec = spec_of(Capability.RENAME, Capability.NULL_HANDLING,
                       Capability.RESTRUCTURE)
        assert spec.tier == "hard"
        assert set(spec.groups) == {"attribute", "missing-data",
                                    "structural"}

    def test_four_kinds_is_hard(self):
        spec = spec_of(Capability.UNION_TYPE, Capability.VALUE_TRANSFORM,
                       Capability.COMPLEX_TRANSFORM, Capability.RENAME)
        assert spec.tier == "hard"


class TestRequiredCapabilities:
    def test_rename_is_always_required(self):
        spec = spec_of(Capability.SEMANTIC_NULL)
        assert Capability.RENAME in spec.required_capabilities

    def test_decomposition_implies_value_transform(self):
        spec = spec_of(Capability.DECOMPOSITION)
        assert Capability.VALUE_TRANSFORM in spec.required_capabilities

    def test_composed_kinds_come_first(self):
        spec = spec_of(Capability.UNION_TYPE, Capability.INFERENCE)
        assert spec.required_capabilities[:2] == (
            Capability.UNION_TYPE, Capability.INFERENCE)


class TestIdentity:
    def test_equal_specs_share_digest_and_slugs(self):
        one, two = spec_of(Capability.RENAME), spec_of(Capability.RENAME)
        assert one.digest == two.digest
        assert one.reference_slug == two.reference_slug
        assert one.challenge_slug == two.challenge_slug

    def test_slugs_differ_between_roles(self):
        spec = spec_of(Capability.RENAME)
        assert spec.reference_slug != spec.challenge_slug

    def test_seed_topic_and_kinds_all_feed_the_digest(self):
        base = spec_of(Capability.RENAME)
        assert spec_of(Capability.RENAME, seed=2).digest != base.digest
        assert spec_of(Capability.RENAME,
                       topic="Algorithms").digest != base.digest
        assert spec_of(Capability.SET_HANDLING).digest != base.digest

    def test_dict_round_trip(self):
        spec = spec_of(Capability.UNION_TYPE, Capability.INFERENCE,
                       topic="Algorithms", seed=42)
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec


class TestGenerateSpecs:
    def test_same_seed_same_stream(self):
        assert generate_specs(5, 20) == generate_specs(5, 20)

    def test_different_seeds_differ(self):
        assert generate_specs(5, 10) != generate_specs(6, 10)

    def test_digests_are_unique_within_a_pack(self):
        specs = generate_specs(3, 40)
        digests = [spec.digest for spec in specs]
        assert len(set(digests)) == len(digests)

    def test_tier_filter(self):
        for tier in TIERS:
            specs = generate_specs(9, 5, tier=tier)
            assert [spec.tier for spec in specs] == [tier] * 5

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            generate_specs(1, 0)
        with pytest.raises(ValueError):
            generate_specs(1, 3, tier="impossible")

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000),
           st.integers(min_value=1, max_value=8))
    def test_sampled_specs_are_always_valid(self, seed, count):
        """Whatever the generator draws composes legally: the spec
        constructor re-validates facet disjointness on every sample."""
        for spec in generate_specs(seed, count):
            facets = [facet for kind in spec.kinds
                      for facet in FACETS[kind]]
            assert len(facets) == len(set(facets))
            assert spec.tier in TIERS
            assert spec.topic in TOPIC_POOL
