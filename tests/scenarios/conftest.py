"""Shared scenario-suite build for the generator tests.

Rendering + TESS extraction is the expensive part of a scenario case, so
the modules share one generated suite, its testbed and its pack instead
of each regenerating them.
"""

import pytest

from repro.scenarios import ScenarioSuite, build_pack

SUITE_SEED = 7
SUITE_CASES = 6


@pytest.fixture(scope="session")
def scenario_suite():
    return ScenarioSuite.generate(seed=SUITE_SEED, cases=SUITE_CASES)


@pytest.fixture(scope="session")
def scenario_testbed(scenario_suite):
    return scenario_suite.build_testbed()


@pytest.fixture(scope="session")
def scenario_pack(scenario_suite, scenario_testbed):
    return build_pack(scenario_suite, scenario_testbed)
