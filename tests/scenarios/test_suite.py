"""Scenario suites: query synthesis, runner compatibility, scoring."""

from repro.integration import Capability, capabilities_for_query
from repro.scenarios import ScenarioSuite, scenario_query, synthesize_xquery
from repro.scenarios.dsl import SCENARIO_NUMBER_BASE, ScenarioSpec
from repro.systems import cohera, iwiz, thalia_mediator
from repro.xquery import compile_query


def spec_of(*kinds, topic="Database", seed=1):
    return ScenarioSpec(kinds=tuple(kinds), topic=topic, seed=seed)


class TestSynthesis:
    def test_query_compiles_and_names_the_reference(self):
        spec = spec_of(Capability.RENAME)
        text = synthesize_xquery(spec)
        compile_query(text)
        assert spec.reference_slug in text
        assert f"%{spec.topic}%" in text

    def test_filter_kinds_add_predicates(self):
        spec = spec_of(Capability.VALUE_TRANSFORM,
                       Capability.COMPLEX_TRANSFORM,
                       Capability.INFERENCE)
        text = synthesize_xquery(spec)
        assert "%10:00 - %" in text
        assert "Credits" in text
        assert "Prerequisite" in text

    def test_projection_kinds_add_no_predicates(self):
        spec = spec_of(Capability.RESTRUCTURE)
        text = synthesize_xquery(spec)
        assert "Credits" not in text
        assert "Prerequisite" not in text


class TestScenarioQuery:
    def test_query_mirrors_spec(self):
        spec = spec_of(Capability.SEMANTIC_NULL, Capability.UNION_TYPE)
        query = scenario_query(spec, 3)
        assert query.number == SCENARIO_NUMBER_BASE + 3
        assert query.case_id == "S0003"
        assert query.tier == spec.tier
        assert query.sources == (spec.reference_slug, spec.challenge_slug)
        assert query.required_capabilities == spec.required_capabilities
        assert query.capability is spec.required_capabilities[0]

    def test_canonical_twelve_keep_their_numbers(self):
        """Generated numbers can never shadow the paper's queries."""
        suite = ScenarioSuite.generate(seed=1, cases=3)
        assert min(suite.numbers) >= SCENARIO_NUMBER_BASE
        for number in range(1, 13):
            assert number not in suite.numbers
            assert capabilities_for_query(number)  # canonical lookup intact


class TestSuite:
    def test_histogram_covers_every_query(self, scenario_suite):
        histogram = scenario_suite.tier_histogram()
        assert sum(histogram.values()) == len(scenario_suite.queries)
        assert set(histogram) <= {"easy", "medium", "hard"}

    def test_numbers_are_unique_and_ordered(self, scenario_suite):
        numbers = scenario_suite.numbers
        assert numbers == sorted(numbers)
        assert len(set(numbers)) == len(numbers)

    def test_testbed_holds_both_sources_per_case(
            self, scenario_suite, scenario_testbed):
        for query in scenario_suite.queries:
            for slug in query.sources:
                assert scenario_testbed.source(slug).document is not None

    def test_regenerating_from_the_suite_seed_is_stable(self, scenario_suite):
        again = ScenarioSuite.generate(seed=scenario_suite.seed,
                                       cases=len(scenario_suite.queries))
        assert [q.spec for q in again.queries] == \
            [q.spec for q in scenario_suite.queries]


class TestCapabilityScoring:
    def test_prediction_matches_execution_for_all_systems(
            self, scenario_suite, scenario_testbed):
        """The issue's core acceptance bar: for the full mediator and both
        ablated capability models, supported ⇔ correct on every generated
        case, and validate_claims passes with the suite's numbers."""
        problems = scenario_suite.check_system_agreement(
            [thalia_mediator(), cohera(), iwiz()], scenario_testbed)
        assert problems == []

    def test_full_mediator_answers_everything(
            self, scenario_suite, scenario_testbed):
        card = scenario_suite.run(thalia_mediator(), scenario_testbed)
        for query in scenario_suite.queries:
            outcome = card.outcome(query.number)
            assert outcome.supported and outcome.correct

    def test_ablated_system_fails_exactly_the_unsupported_cases(
            self, scenario_suite, scenario_testbed):
        system = cohera()
        card = scenario_suite.run(system, scenario_testbed)
        for query in scenario_suite.queries:
            outcome = card.outcome(query.number)
            assert outcome.supported == system.supports(query)
            assert outcome.correct == outcome.supported
