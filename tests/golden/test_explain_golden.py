"""Golden snapshots of ``Plan.explain()`` for the 12 benchmark queries.

``explain()`` is part of the query-plan API contract: deterministic,
stable text.  A diff here means the planner changed what it actually
runs — review it, then regenerate with::

    PYTHONPATH=src python - <<'PY'
    from pathlib import Path
    from repro.core.queries import QUERIES
    from repro.xquery import compile_query
    out = Path("tests/golden/explain")
    for q in QUERIES:
        (out / f"q{q.number:02d}.txt").write_text(
            compile_query(q.xquery).explain() + "\n", encoding="utf-8")
    PY
"""

from pathlib import Path

import pytest

from repro.core.queries import QUERIES
from repro.xquery import compile_query

GOLDEN_DIR = Path(__file__).parent / "explain"


class TestExplainGolden:
    @pytest.mark.parametrize("query", QUERIES,
                             ids=[f"q{q.number:02d}" for q in QUERIES])
    def test_explain_matches_snapshot(self, query):
        golden = (GOLDEN_DIR / f"q{query.number:02d}.txt").read_text(
            encoding="utf-8")
        assert compile_query(query.xquery).explain() + "\n" == golden

    @pytest.mark.parametrize("query", QUERIES,
                             ids=[f"q{q.number:02d}" for q in QUERIES])
    def test_explain_is_deterministic(self, query):
        assert compile_query(query.xquery).explain() == \
            compile_query(query.xquery).explain()

    def test_every_benchmark_plan_is_index_backed(self):
        for query in QUERIES:
            plan = compile_query(query.xquery)
            assert plan.rewrites["index-paths"] >= 1, query.number

    def test_every_benchmark_where_is_fused(self):
        for query in QUERIES:
            plan = compile_query(query.xquery)
            assert plan.rewrites["where-to-predicate"] >= 1, query.number
