"""Golden-snapshot conformance suite.

``fingerprints.json`` pins a sha256 for every artifact of the
default-seed testbed — snapshot HTML, wrapper config, exact XML
serialization, pretty XSD — per source.  These tests fail on *any*
byte-level drift in rendering, scraping, serialization or schema
inference.  If a change is intentional, regenerate the pins::

    PYTHONPATH=src python -m repro.tools.regen_golden

and commit the JSON diff alongside the change.

The equivalence tests then assert the tentpole invariant: a serial cold
build, a parallel build, and a cache-warm build produce byte-identical
artifacts — so the pins above cover every build flavor, not just the
one that happened to produce them.
"""

import json
from pathlib import Path

import pytest

from repro.catalogs import DEFAULT_SEED, build_testbed
from repro.tools.regen_golden import source_fingerprints
from repro.xmlmodel import serialize, serialize_pretty

GOLDEN_FILE = Path(__file__).resolve().parent / "fingerprints.json"


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN_FILE.read_text(encoding="utf-8"))


class TestGoldenFingerprints:
    def test_golden_seed_matches_default(self, golden):
        assert golden["seed"] == DEFAULT_SEED

    def test_golden_covers_every_source(self, golden, testbed):
        assert sorted(golden["sources"]) == sorted(testbed.slugs)

    def test_testbed_matches_golden(self, golden, testbed):
        actual = source_fingerprints(testbed)
        drifted = {slug: sorted(
            kind for kind in actual[slug]
            if actual[slug][kind] != golden["sources"][slug].get(kind))
            for slug in actual
            if actual[slug] != golden["sources"].get(slug)}
        assert not drifted, (
            f"artifact drift vs tests/golden/fingerprints.json: {drifted}; "
            "if intentional, run: PYTHONPATH=src python -m "
            "repro.tools.regen_golden")

    def test_every_artifact_kind_is_pinned(self, golden):
        for slug, prints in golden["sources"].items():
            assert sorted(prints) == ["config", "snapshot", "xml", "xsd"], slug


def artifact_bytes(testbed):
    """Every artifact of every source, as comparable text."""
    out = {}
    for bundle in testbed:
        out[bundle.slug] = {
            "snapshot": bundle.snapshot,
            "config": bundle.config.to_text(),
            "xml": serialize(bundle.document, xml_declaration=True),
            "xsd": serialize_pretty(bundle.schema.to_xsd()),
        }
    return out


class TestBuildEquivalence:
    """Serial == parallel == cache-warm, byte for byte."""

    def test_parallel_build_is_byte_identical(self, testbed):
        parallel = build_testbed(workers=4)
        assert artifact_bytes(parallel) == artifact_bytes(testbed)

    def test_cache_warm_build_is_byte_identical(self, testbed, tmp_path):
        cold = build_testbed(cache_dir=tmp_path)
        assert cold.build_report.cache_misses == len(cold)
        warm = build_testbed(cache_dir=tmp_path)
        assert warm.build_report.cache_hits == len(warm)
        assert artifact_bytes(warm) == artifact_bytes(testbed)

    def test_parallel_cached_build_is_byte_identical(self, testbed, tmp_path):
        build_testbed(workers=4, cache_dir=tmp_path)
        warm = build_testbed(workers=4, cache_dir=tmp_path)
        assert warm.build_report.cache_hits == len(warm)
        assert artifact_bytes(warm) == artifact_bytes(testbed)

    def test_source_order_is_stable_across_flavors(self, testbed, tmp_path):
        parallel = build_testbed(workers=4, cache_dir=tmp_path)
        assert parallel.slugs == testbed.slugs
