"""Testbed assembly tests: the full snapshot → XML pipeline."""

import pytest

from repro.catalogs import build_testbed, paper_universities
from repro.xmlmodel import select_text


class TestAssembly:
    def test_twenty_five_sources(self, testbed):
        assert len(testbed) == 25

    def test_every_source_extracted_records(self, testbed):
        for bundle in testbed:
            assert bundle.stats.records >= 8, bundle.slug

    def test_every_document_validates_against_schema(self, testbed):
        for bundle in testbed:
            bundle.schema.validate(bundle.document)

    def test_course_codes_unique_within_each_source(self, testbed):
        """Filler must never collide with pinned codes (regression:
        umich filler once generated EECS484 on top of the pinned one)."""
        for bundle in testbed:
            codes = [course.code for course in bundle.courses]
            assert len(codes) == len(set(codes)), bundle.slug

    def test_documents_keyed_by_slug(self, testbed):
        docs = testbed.documents
        assert set(docs) == set(testbed.slugs)
        assert docs["cmu"].root.tag == "cmu"

    def test_unknown_source_raises(self, testbed):
        with pytest.raises(KeyError, match="no source"):
            testbed.source("hogwarts")

    def test_contains(self, testbed):
        assert "brown" in testbed
        assert "hogwarts" not in testbed

    def test_determinism(self):
        a = build_testbed(seed=7, universities=paper_universities())
        b = build_testbed(seed=7, universities=paper_universities())
        assert a.source("cmu").document == b.source("cmu").document
        assert a.source("brown").snapshot == b.source("brown").snapshot

    def test_seed_changes_filler_not_pinned(self):
        a = build_testbed(seed=1, universities=[paper_universities()[1]])
        b = build_testbed(seed=2, universities=[paper_universities()[1]])
        # pinned CMU courses identical under any seed
        first_a = a.source("cmu").document.root.find("Course")
        first_b = b.source("cmu").document.root.find("Course")
        assert first_a == first_b
        assert a.source("cmu").document != b.source("cmu").document


class TestPaperSamples:
    """The sample elements quoted in the paper exist in the extracted XML."""

    def test_q1_gatech_instructor_mark(self, testbed):
        root = testbed.source("gatech").document.root
        assert select_text(root, "Course[Instructor='Mark']/CourseNum") == \
            "20381"

    def test_q1_cmu_lecturer_mark(self, testbed):
        root = testbed.source("cmu").document.root
        assert select_text(root, "Course[Lecturer='Mark']/CourseNum") == \
            "15-567*"

    def test_q2_cmu_time_twelve_hour(self, testbed):
        root = testbed.source("cmu").document.root
        assert select_text(
            root, "Course[CourseNum='15-415']/Time") == "1:30 - 2:50"

    def test_q2_umass_time_twenty_four_hour(self, testbed):
        root = testbed.source("umass").document.root
        assert select_text(
            root, "Course[CourseNum='CS430']/Time") == "16:00-17:15"

    def test_q3_umd_plain_string_title(self, testbed):
        root = testbed.source("umd").document.root
        assert select_text(
            root, "Course[CourseNum='CMSC420']/CourseName") == \
            "Data Structures;"

    def test_q3_brown_union_type_title(self, testbed):
        root = testbed.source("brown").document.root
        course = root.find("Course")
        title = course.find("Title")
        anchor = title.find("a")
        assert anchor.get("href") == "http://www.cs.brown.edu/courses/cs016/"
        assert "Data Structures" in title.normalized_text

    def test_q4_cmu_numeric_units(self, testbed):
        root = testbed.source("cmu").document.root
        assert select_text(root, "Course[CourseNum='15-415']/Units") == "12"

    def test_q4_eth_umfang(self, testbed):
        root = testbed.source("eth").document.root
        assert select_text(
            root, "Vorlesung[Titel='XML und Datenbanken']/Umfang") == "2V1U"

    def test_q5_eth_german_tags(self, testbed):
        root = testbed.source("eth").document.root
        first = root.find("Vorlesung")
        assert first.find("Titel") is not None
        assert first.find("Dozent") is not None

    def test_q6_toronto_textbook(self, testbed):
        root = testbed.source("toronto").document.root
        book = select_text(
            root, "course[title='Automated Verification']/text")
        assert book.startswith("'Model Checking', by Clarke")

    def test_q6_toronto_empty_textbook(self, testbed):
        root = testbed.source("toronto").document.root
        courses = root.findall("course")
        empty = [c for c in courses
                 if c.find("text") is not None
                 and c.find("text").normalized_text == ""]
        assert empty, "expected a course with an empty textbook value"

    def test_q6_cmu_has_no_textbook_field(self, testbed):
        root = testbed.source("cmu").document.root
        assert all(c.find("Textbook") is None and c.find("text") is None
                   for c in root.findall("Course"))

    def test_q7_umich_explicit_none(self, testbed):
        root = testbed.source("umich").document.root
        matches = [c for c in root.findall("Course")
                   if "Database Management Systems" in
                   (c.findtext("title") or "")]
        assert matches[0].findtext("prerequisite").strip() == "None"

    def test_q7_cmu_comment(self, testbed):
        root = testbed.source("cmu").document.root
        assert select_text(
            root, "Course[CourseNum='15-415']/Comment") == \
            "First course in sequence"

    def test_q8_gatech_restricted(self, testbed):
        root = testbed.source("gatech").document.root
        assert select_text(
            root, "Course[CourseNum='20422']/Restricted") == "JR or SR"

    def test_q8_eth_semester_note(self, testbed):
        root = testbed.source("eth").document.root
        titles = [v.findtext("Titel") for v in root.findall("Vorlesung")]
        assert "Vernetzte Systeme (3. Semester)" in titles

    def test_q9_brown_room_on_course(self, testbed):
        root = testbed.source("brown").document.root
        assert select_text(
            root, "Course[CourseNum='CS032']/Room") == \
            "CIT 165, Labs in Sunlab"

    def test_q9_umd_room_inside_section_time(self, testbed):
        root = testbed.source("umd").document.root
        time_text = select_text(
            root, "Course[CourseNum='CMSC435']/Sections/Section/time")
        assert "CHM 1407" in time_text

    def test_q10_cmu_set_valued_lecturer(self, testbed):
        root = testbed.source("cmu").document.root
        assert select_text(
            root, "Course[CourseNum='15-610']/Lecturer") == "Song/Wing"

    def test_q10_umd_instructor_in_section_title(self, testbed):
        root = testbed.source("umd").document.root
        titles = [t.text for t in root.iter("title")]
        assert any("Singh, H." in t for t in titles)
        assert any("Memon, A." in t for t in titles)

    def test_q11_ucsd_term_columns(self, testbed):
        root = testbed.source("ucsd").document.root
        course = [c for c in root.findall("Course")
                  if c.findtext("CourseTitle") ==
                  "Database System Implementation"][0]
        assert course.findtext("Fall2003") == "Yannis"
        assert course.findtext("Winter2004") == "Deutsch"

    def test_q12_cmu_separate_day_attribute(self, testbed):
        root = testbed.source("cmu").document.root
        assert select_text(
            root, "Course[CourseTitle='Computer Networks']/Day") == "F"

    def test_q12_brown_composite_title(self, testbed):
        root = testbed.source("brown").document.root
        titles = [c.find("Title").normalized_text
                  for c in root.findall("Course")]
        assert "Computer NetworksM hr. M 3-5:30" in titles


class TestPersistence:
    def test_save_writes_bundle_files(self, testbed, tmp_path):
        out = testbed.save(tmp_path / "testbed")
        brown = out / "brown"
        assert (brown / "snapshot.html").exists()
        assert (brown / "wrapper.cfg").exists()
        assert (brown / "brown.xml").exists()
        assert (brown / "brown.xsd").exists()

    def test_saved_config_parses_back(self, testbed, tmp_path):
        from repro.tess import WrapperConfig
        out = testbed.save(tmp_path / "testbed")
        text = (out / "umd" / "wrapper.cfg").read_text()
        config = WrapperConfig.from_text(text)
        assert config.has_nested_fields

    def test_saved_xml_parses_back(self, testbed, tmp_path):
        from repro.xmlmodel import parse_xml
        out = testbed.save(tmp_path / "testbed")
        doc = parse_xml((out / "cmu" / "cmu.xml").read_text(),
                        strip_whitespace=True)
        assert doc.root.tag == "cmu"
