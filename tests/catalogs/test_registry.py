"""Registry tests: the 25-source testbed and the 45-source roadmap."""

import pytest

from repro.catalogs import (
    all_universities,
    build_testbed,
    extended_universities,
    future_universities,
    generic_universities,
    get_university,
    paper_universities,
)


class TestRegistry:
    def test_paper_sources(self):
        slugs = [p.slug for p in paper_universities()]
        assert len(slugs) == 9
        for required in ("brown", "cmu", "eth", "gatech", "umich",
                         "toronto", "ucsd", "umd", "umass"):
            assert required in slugs

    def test_twenty_five_sources(self):
        profiles = all_universities()
        assert len(profiles) == 25
        assert len({p.slug for p in profiles}) == 25

    def test_roadmap_reaches_forty_five(self):
        """Footnote 3: 'Expected to reach 45 sources by August 2004.'"""
        profiles = extended_universities()
        assert len(profiles) == 45
        assert len({p.slug for p in profiles}) == 45

    def test_future_sources_are_generic(self):
        from repro.catalogs.universities import GenericUniversity
        assert len(future_universities()) == 20
        assert all(isinstance(p, GenericUniversity)
                   for p in future_universities())

    def test_international_coverage(self):
        countries = {p.country for p in extended_universities()}
        assert {"USA", "Canada", "Germany", "Switzerland", "UK",
                "Austria", "Australia", "Singapore", "Israel"} <= countries

    def test_german_sources_exist(self):
        german = [p for p in extended_universities() if p.language == "de"]
        assert len(german) >= 4

    def test_get_university_covers_extended(self):
        assert get_university("vienna").country == "Austria"
        assert get_university("cmu").name == "Carnegie Mellon University"

    def test_get_university_unknown(self):
        with pytest.raises(KeyError):
            get_university("hogwarts")

    def test_generic_vocabulary_variety(self):
        """The synonym surface the matcher must handle is genuinely wide."""
        tags = {p.spec.instructor_tag for p in generic_universities()}
        assert len(tags) >= 6


class TestExtendedBuild:
    def test_forty_five_source_testbed_builds_and_validates(
            self, extended_testbed):
        assert len(extended_testbed) == 45
        for bundle in extended_testbed:
            assert bundle.stats.records >= 8, bundle.slug
            bundle.schema.validate(bundle.document)

    def test_extended_mediator_integrates_everything(self, extended_testbed):
        from repro.integration import standard_mediator
        mediator = standard_mediator(extended_universities())
        courses = mediator.integrate(extended_testbed.documents)
        assert {c.source for c in courses} == set(extended_testbed.slugs)
        assert all(not r.errors for r in mediator.last_reports)

    def test_gold_answers_unchanged_by_extension(self, paper_testbed,
                                                 extended_testbed):
        """Growing the testbed must not disturb the benchmark queries."""
        from repro.core import QUERIES, gold_answer
        for query in QUERIES:
            assert gold_answer(query, paper_testbed) == \
                gold_answer(query, extended_testbed)
