"""Build pipeline: cache correctness, build reports, determinism."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalogs import (
    ArtifactCache,
    all_universities,
    build_testbed,
    clear_shared_testbeds,
    load_testbed,
    profile_fingerprint,
    shared_testbed,
)
from repro.catalogs import pipeline
from repro.catalogs.pipeline import (
    CONFIG_FILE,
    DOCUMENT_FILE,
    META_FILE,
    PIPELINE_VERSION,
    SCHEMA_FILE,
    SNAPSHOT_FILE,
)
from repro.tess import TessScraper
from repro.xmlmodel import serialize, serialize_pretty


@pytest.fixture(scope="module")
def subset():
    """Three sources: enough to exercise the pipeline, cheap to rebuild."""
    return all_universities()[:3]


def artifact_texts(testbed):
    return {
        bundle.slug: {
            "snapshot": bundle.snapshot,
            "config": bundle.config.to_text(),
            "xml": serialize(bundle.document, xml_declaration=True),
            "xsd": serialize_pretty(bundle.schema.to_xsd()),
        }
        for bundle in testbed
    }


class TestArtifactCache:
    def test_cold_build_is_all_misses_and_populates(self, subset, tmp_path):
        built = build_testbed(universities=subset, cache_dir=tmp_path)
        assert built.build_report.cache_misses == len(subset)
        cache = ArtifactCache(tmp_path)
        for profile in subset:
            entry = cache.entry_dir(profile, built.seed)
            for name in (SNAPSHOT_FILE, CONFIG_FILE, DOCUMENT_FILE,
                         SCHEMA_FILE, META_FILE):
                assert (entry / name).is_file(), f"{profile.slug}/{name}"

    def test_warm_build_is_all_hits_and_identical(self, subset, tmp_path):
        cold = build_testbed(universities=subset, cache_dir=tmp_path)
        warm = build_testbed(universities=subset, cache_dir=tmp_path)
        assert warm.build_report.cache_hits == len(subset)
        assert artifact_texts(warm) == artifact_texts(cold)
        for cold_b, warm_b in zip(cold, warm):
            assert warm_b.stats == cold_b.stats
            assert warm_b.courses == cold_b.courses

    def test_corrupt_artifact_is_rebuilt_and_repaired(self, subset, tmp_path):
        built = build_testbed(universities=subset[:1], cache_dir=tmp_path)
        entry = ArtifactCache(tmp_path).entry_dir(subset[0], built.seed)
        good = (entry / DOCUMENT_FILE).read_text(encoding="utf-8")
        (entry / DOCUMENT_FILE).write_text("<garbage", encoding="utf-8")

        again = build_testbed(universities=subset[:1], cache_dir=tmp_path)
        assert again.build_report.cache_misses == 1
        assert artifact_texts(again) == artifact_texts(built)
        # the rebuild re-stored the entry, repairing the corrupted file
        assert (entry / DOCUMENT_FILE).read_text(encoding="utf-8") == good
        repaired = build_testbed(universities=subset[:1], cache_dir=tmp_path)
        assert repaired.build_report.cache_hits == 1

    def test_truncated_artifact_is_a_miss(self, subset, tmp_path):
        built = build_testbed(universities=subset[:1], cache_dir=tmp_path)
        entry = ArtifactCache(tmp_path).entry_dir(subset[0], built.seed)
        snapshot = (entry / SNAPSHOT_FILE).read_text(encoding="utf-8")
        (entry / SNAPSHOT_FILE).write_text(snapshot[:len(snapshot) // 2],
                                           encoding="utf-8")
        assert ArtifactCache(tmp_path).load(subset[0], built.seed) is None

    def test_tampered_meta_fingerprint_is_a_miss(self, subset, tmp_path):
        built = build_testbed(universities=subset[:1], cache_dir=tmp_path)
        entry = ArtifactCache(tmp_path).entry_dir(subset[0], built.seed)
        meta = json.loads((entry / META_FILE).read_text(encoding="utf-8"))
        meta["fingerprint"] = "0" * 64
        (entry / META_FILE).write_text(json.dumps(meta), encoding="utf-8")
        assert ArtifactCache(tmp_path).load(subset[0], built.seed) is None

    def test_missing_meta_is_a_miss(self, subset, tmp_path):
        built = build_testbed(universities=subset[:1], cache_dir=tmp_path)
        entry = ArtifactCache(tmp_path).entry_dir(subset[0], built.seed)
        (entry / META_FILE).unlink()
        assert ArtifactCache(tmp_path).load(subset[0], built.seed) is None

    def test_code_change_invalidates_entries(self, subset, tmp_path,
                                             monkeypatch):
        build_testbed(universities=subset[:1], cache_dir=tmp_path)
        monkeypatch.setattr(pipeline, "_code_fingerprint_cache", "f" * 64)
        rebuilt = build_testbed(universities=subset[:1], cache_dir=tmp_path)
        assert rebuilt.build_report.cache_misses == 1
        # both generations coexist under the source's directory
        slug_dir = tmp_path / f"v{PIPELINE_VERSION}" / subset[0].slug
        assert len(list(slug_dir.iterdir())) == 2

    def test_seed_addresses_distinct_entries(self, subset):
        prints = {profile_fingerprint(subset[0], seed)
                  for seed in (2004, 2005, 2006)}
        assert len(prints) == 3

    def test_no_cache_neither_reads_nor_writes(self, subset, tmp_path):
        warmed = build_testbed(universities=subset[:1], cache_dir=tmp_path)
        entry = ArtifactCache(tmp_path).entry_dir(subset[0], warmed.seed)
        before = {p.name: p.stat().st_mtime_ns for p in entry.iterdir()}

        bypass = build_testbed(universities=subset[:1], cache_dir=tmp_path,
                               use_cache=False)
        assert bypass.build_report.cache_hits == 0  # warm cache not read
        after = {p.name: p.stat().st_mtime_ns for p in entry.iterdir()}
        assert after == before  # and not rewritten

    def test_without_cache_dir_nothing_is_written(self, subset, tmp_path):
        build_testbed(universities=subset[:1])
        assert list(tmp_path.iterdir()) == []


class TestBuildReport:
    def test_report_shape(self, subset, tmp_path):
        built = build_testbed(universities=subset, cache_dir=tmp_path,
                              workers=2)
        report = built.build_report
        assert report.workers == 2
        assert report.cache_root == str(tmp_path)
        assert [r.slug for r in report.records] == [p.slug for p in subset]
        assert report.cache_hits + report.cache_misses == len(subset)
        assert report.wall_s > 0

    def test_miss_records_have_stage_timings(self, subset):
        built = build_testbed(universities=subset)
        for record in built.build_report.records:
            assert not record.cache_hit
            assert record.render_s > 0
            assert record.scrape_s > 0
            assert record.infer_s > 0
            assert record.load_s == 0

    def test_hit_records_time_the_load_only(self, subset, tmp_path):
        build_testbed(universities=subset, cache_dir=tmp_path)
        warm = build_testbed(universities=subset, cache_dir=tmp_path)
        for record in warm.build_report.records:
            assert record.cache_hit
            assert record.load_s > 0
            assert record.render_s == record.scrape_s == record.infer_s == 0

    def test_render_is_readable(self, subset, tmp_path):
        built = build_testbed(universities=subset, cache_dir=tmp_path)
        text = built.build_report.render()
        for profile in subset:
            assert profile.slug in text
        assert "miss" in text
        assert f"{len(subset)} sources" in text

    def test_explicit_scraper_forces_serial_uncached(self, subset, tmp_path):
        built = build_testbed(universities=subset, scraper=TessScraper(),
                              workers=4, cache_dir=tmp_path)
        assert built.build_report.workers == 1
        assert built.build_report.cache_root is None
        assert list(tmp_path.iterdir()) == []


class TestDeterminism:
    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10**6))
    def test_same_seed_builds_identical_artifacts(self, seed):
        profiles = all_universities()[:2]
        first = build_testbed(seed=seed, universities=profiles)
        second = build_testbed(seed=seed, universities=profiles)
        assert artifact_texts(first) == artifact_texts(second)

    def test_different_seeds_build_different_artifacts(self, subset):
        one = build_testbed(seed=2004, universities=subset[:1])
        other = build_testbed(seed=2005, universities=subset[:1])
        slug = subset[0].slug
        assert artifact_texts(one)[slug]["snapshot"] != \
            artifact_texts(other)[slug]["snapshot"]
        assert artifact_texts(one)[slug]["xml"] != \
            artifact_texts(other)[slug]["xml"]


class TestSharedTestbed:
    def test_shared_build_is_memoized_per_seed(self):
        clear_shared_testbeds()
        try:
            first = shared_testbed(977)
            assert shared_testbed(977) is first
            assert shared_testbed(978) is not first
        finally:
            clear_shared_testbeds()


class TestSaveLoadRoundTrip:
    def test_round_trip_preserves_artifacts(self, subset, tmp_path):
        built = build_testbed(universities=subset)
        built.save(tmp_path)
        loaded = load_testbed(tmp_path)
        assert loaded.seed == built.seed
        assert loaded.slugs == built.slugs
        assert artifact_texts(loaded) == artifact_texts(built)
        for orig, back in zip(built, loaded):
            assert back.stats == orig.stats
