"""Generic-university profile tests: all three layouts, spec validation."""

import pytest

from repro.catalogs import build_source
from repro.catalogs.universities import GenericSpec, GenericUniversity
from repro.integration import Mediator, generic_mapping


def make_spec(**overrides):
    params = dict(
        slug="testu", name="Test University", layout="table",
        code_tag="Code", title_tag="Title", instructor_tag="Teacher",
        time_tag="Meets", room_tag="Where", units_tag="Credits",
        code_prefix="T", code_start=100, course_count=6)
    params.update(overrides)
    return GenericSpec(**params)


class TestSpecValidation:
    def test_unknown_layout_rejected(self):
        with pytest.raises(ValueError, match="layout"):
            make_spec(layout="iframe-soup")

    def test_unknown_clock_rejected(self):
        with pytest.raises(ValueError, match="clock"):
            make_spec(clock="13h")

    def test_profile_adopts_spec_identity(self):
        profile = GenericUniversity(make_spec(country="Atlantis"))
        assert profile.slug == "testu"
        assert profile.country == "Atlantis"
        assert profile.language == "en"

    def test_german_spec_sets_language(self):
        profile = GenericUniversity(make_spec(german=True))
        assert profile.language == "de"


@pytest.mark.parametrize("layout", ["table", "blocks", "dl"])
class TestLayouts:
    def test_pipeline_round_trip(self, layout):
        profile = GenericUniversity(make_spec(layout=layout))
        bundle = build_source(profile, seed=11)
        assert bundle.stats.records == 6
        first = bundle.document.root.find("Course")
        assert first.find("Code") is not None
        assert first.find("Title") is not None
        assert first.find("Teacher") is not None

    def test_schema_valid(self, layout):
        profile = GenericUniversity(make_spec(layout=layout))
        bundle = build_source(profile, seed=11)
        bundle.schema.validate(bundle.document)

    def test_mediator_integration(self, layout):
        profile = GenericUniversity(make_spec(layout=layout))
        bundle = build_source(profile, seed=11)
        mediator = Mediator({profile.slug: generic_mapping(profile)})
        courses = mediator.integrate_document(bundle.document)
        assert len(courses) == 6
        assert all(c.title and c.instructors for c in courses)
        assert all(c.start_minute is not None for c in courses)


class TestClockConventions:
    def test_24h_rendering(self):
        profile = GenericUniversity(make_spec(clock="24h"))
        courses = profile.build_courses(seed=3)
        page = profile.render(courses)
        # 24-hour pages never carry am/pm suffixes in the time cells.
        import re
        times = re.findall(r'class="c-time">([^<]*)<', page)
        assert times
        assert all("am" not in t and "pm" not in t for t in times)

    def test_units_omitted_when_unconfigured(self):
        profile = GenericUniversity(make_spec(units_tag=None))
        bundle = build_source(profile, seed=3)
        assert all(c.find("Credits") is None
                   for c in bundle.document.root.findall("Course"))

    def test_german_units_render_workload(self):
        profile = GenericUniversity(make_spec(
            german=True, units_tag="Umfang", units_choices=(9,)))
        bundle = build_source(profile, seed=3)
        values = {c.findtext("Umfang")
                  for c in bundle.document.root.findall("Course")}
        assert values == {"2V1U"}
