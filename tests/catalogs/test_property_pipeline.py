"""Property tests over randomized source profiles.

The pipeline must hold for *any* valid source description, not just the
25 registered ones: random tag vocabularies, layouts and clocks all
round-trip through render → TESS → XML → mediator.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.catalogs import build_source
from repro.catalogs.universities import GenericSpec, GenericUniversity
from repro.integration import Mediator, generic_mapping
from repro.xmlmodel import is_valid_name

_tag_names = st.from_regex(r"[A-Za-z][A-Za-z0-9_]{1,14}", fullmatch=True) \
    .filter(is_valid_name)


@st.composite
def _specs(draw):
    tags = draw(st.lists(_tag_names, min_size=6, max_size=6,
                         unique_by=lambda t: t.lower()))
    return GenericSpec(
        slug="prop",
        name="Property University",
        layout=draw(st.sampled_from(["table", "blocks", "dl"])),
        code_tag=tags[0], title_tag=tags[1], instructor_tag=tags[2],
        time_tag=tags[3], room_tag=tags[4],
        units_tag=draw(st.one_of(st.none(), st.just(tags[5]))),
        clock=draw(st.sampled_from(["12h", "24h"])),
        code_prefix=draw(st.sampled_from(["CS", "X-", "6."])),
        code_start=draw(st.integers(min_value=100, max_value=900)),
        course_count=draw(st.integers(min_value=1, max_value=8)),
    )


class TestPipelineProperties:
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(_specs(), st.integers(min_value=0, max_value=9999))
    def test_render_extract_round_trip(self, spec, seed):
        profile = GenericUniversity(spec)
        bundle = build_source(profile, seed)
        records = bundle.document.root.findall("Course")
        assert len(records) == spec.course_count
        # Every record carries the configured tags with content.
        for record, course in zip(records, bundle.courses):
            assert record.findtext(spec.code_tag) == course.code
            assert record.findtext(spec.title_tag) == course.title
            assert record.findtext(spec.instructor_tag) == \
                course.instructors[0]

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(_specs(), st.integers(min_value=0, max_value=9999))
    def test_schema_self_validates(self, spec, seed):
        bundle = build_source(GenericUniversity(spec), seed)
        bundle.schema.validate(bundle.document)

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(_specs(), st.integers(min_value=0, max_value=9999))
    def test_mediator_recovers_meetings(self, spec, seed):
        profile = GenericUniversity(spec)
        bundle = build_source(profile, seed)
        mediator = Mediator({spec.slug: generic_mapping(profile)})
        courses = mediator.integrate_document(bundle.document)
        assert len(courses) == spec.course_count
        canonical = {c.code: c for c in bundle.courses}
        for course in courses:
            origin = canonical[course.code]
            assert course.start_minute == origin.meeting.start_minute
            assert course.end_minute == origin.meeting.end_minute
