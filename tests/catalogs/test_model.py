"""Canonical model tests: meetings, time formatting, workload mapping."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.catalogs import (
    CanonicalCourse,
    Meeting,
    SectionInfo,
    fmt_12h,
    fmt_24h,
    fmt_range_12h,
    fmt_range_24h,
    units_to_workload,
    workload_to_units,
)


class TestMeeting:
    def test_valid_meeting(self):
        meeting = Meeting(("M", "W", "F"), 11 * 60, 12 * 60)
        assert meeting.day_string == "MWF"

    def test_rejects_unknown_day(self):
        with pytest.raises(ValueError, match="unknown day"):
            Meeting(("X",), 600, 660)

    def test_rejects_end_before_start(self):
        with pytest.raises(ValueError):
            Meeting(("M",), 660, 600)

    def test_rejects_negative_start(self):
        with pytest.raises(ValueError):
            Meeting(("M",), -5, 600)


class TestTimeFormatting:
    def test_fmt_12h_afternoon(self):
        assert fmt_12h(13 * 60 + 30) == "1:30"

    def test_fmt_12h_with_suffix(self):
        assert fmt_12h(13 * 60 + 30, with_suffix=True) == "1:30pm"
        assert fmt_12h(9 * 60, with_suffix=True) == "9:00am"

    def test_fmt_12h_noon_and_midnight(self):
        assert fmt_12h(12 * 60, with_suffix=True) == "12:00pm"
        assert fmt_12h(0, with_suffix=True) == "12:00am"

    def test_fmt_24h(self):
        assert fmt_24h(13 * 60 + 30) == "13:30"
        assert fmt_24h(16 * 60) == "16:00"

    def test_ranges_match_paper_samples(self):
        cmu = Meeting(("T", "Th"), 13 * 60 + 30, 14 * 60 + 50)
        assert fmt_range_12h(cmu) == "1:30 - 2:50"
        umass = Meeting(("M", "W", "F"), 16 * 60, 17 * 60 + 15)
        assert fmt_range_24h(umass) == "16:00-17:15"


class TestWorkloadMapping:
    def test_paper_sample(self):
        # "XML und Datenbanken" carries Umfang 2V1U in the paper.
        assert units_to_workload(9) == "2V1U"
        assert workload_to_units("2V1U") == 9

    def test_lecture_only(self):
        assert units_to_workload(6) == "2V"
        assert workload_to_units("2V") == 6

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            units_to_workload(0)

    def test_rejects_garbage_workload(self):
        with pytest.raises(ValueError, match="unparseable"):
            workload_to_units("viele Stunden")

    @given(st.integers(min_value=1, max_value=10).map(lambda k: 3 * k))
    def test_round_trip_on_multiples_of_three(self, units):
        assert workload_to_units(units_to_workload(units)) == units


class TestCanonicalCourse:
    def _course(self, **overrides):
        params = dict(
            university="cmu", code="15-415", title="Databases",
            instructors=("Ailamaki",),
            meeting=Meeting(("T",), 600, 660), room="WEH", units=12)
        params.update(overrides)
        return CanonicalCourse(**params)

    def test_key(self):
        assert self._course().key == ("cmu", "15-415")

    def test_entry_level(self):
        assert self._course().is_entry_level
        assert not self._course(prerequisites=("15-213",)).is_entry_level

    def test_instructor_names_plain(self):
        course = self._course(instructors=("Song", "Wing"))
        assert course.instructor_names() == ("Song", "Wing")

    def test_instructor_names_from_sections(self):
        sections = (
            SectionInfo("0101", "Singh, H.", Meeting(("M",), 600, 660), "A"),
            SectionInfo("0201", "Memon, A.", Meeting(("T",), 600, 660), "B"),
            SectionInfo("0301", "Singh, H.", Meeting(("W",), 600, 660), "C"),
        )
        course = self._course(sections=sections)
        assert course.instructor_names() == ("Singh, H.", "Memon, A.")
