"""Testbed statistics tests."""

import pytest

from repro.catalogs import (
    build_testbed,
    coverage_report,
    paper_universities,
    source_stats,
)


class TestSourceStats:
    def test_cmu_numbers(self, testbed):
        stats = source_stats(testbed, "cmu")
        assert stats.record_tag == "Course"
        assert stats.records == 15
        assert "Lecturer" in stats.tags
        # The Comment field is absent from comment-free courses.
        assert "Comment" in stats.optional_tags
        assert stats.max_depth == 1

    def test_umd_is_the_deep_source(self, testbed):
        stats = source_stats(testbed, "umd")
        assert stats.max_depth == 3  # Course > Sections > Section > field

    def test_eth_language(self, testbed):
        stats = source_stats(testbed, "eth")
        assert stats.language == "de"
        assert "Umfang" in stats.tags

    def test_heterogeneities_from_profile(self, testbed):
        assert source_stats(testbed, "umass").heterogeneities == (2,)


class TestCoverageReport:
    def test_full_coverage(self, testbed):
        report = coverage_report(testbed)
        assert report.fully_covered
        assert report.by_query[4] == ["cmu", "eth"]
        assert report.by_query[9] == ["brown", "umd"]

    def test_every_query_has_exactly_its_pairing(self, testbed):
        from repro.core import QUERIES
        report = coverage_report(testbed)
        for query in QUERIES:
            assert set(report.by_query[query.number]) == \
                set(query.sources)

    def test_vocabulary_is_wide(self, testbed):
        report = coverage_report(testbed)
        assert len(report.tag_vocabulary) >= 60
        assert report.languages == {"en", "de"}

    def test_render(self, testbed):
        text = coverage_report(testbed).render()
        assert "Q 1: cmu, gatech" in text
        assert "brown" in text

    def test_partial_coverage_detected(self):
        bed = build_testbed(universities=paper_universities()[:2])
        report = coverage_report(bed)
        assert not report.fully_covered

    def test_cli_stats_command(self, capsys):
        from repro.cli import main
        assert main(["stats"]) == 0
        out = capsys.readouterr().out
        assert "heterogeneity coverage" in out

    def test_cli_stats_partial_exit_code(self):
        # stats over the full testbed is covered; nothing to check here
        # beyond the happy path, but the extended flag must work too.
        from repro.cli import main
        assert main(["stats", "--extended"]) == 0
