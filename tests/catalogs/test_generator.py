"""Filler-course generator tests."""

import pytest

from repro.catalogs import CourseFactory, FillerStyle, INSTRUCTOR_SURNAMES


class TestDeterminism:
    def test_same_seed_same_courses(self):
        a = CourseFactory("mit", 2004).fill(8)
        b = CourseFactory("mit", 2004).fill(8)
        assert [c.key for c in a] == [c.key for c in b]
        assert [c.title for c in a] == [c.title for c in b]
        assert [c.meeting for c in a] == [c.meeting for c in b]

    def test_different_seed_differs(self):
        a = CourseFactory("mit", 2004).fill(8)
        b = CourseFactory("mit", 2005).fill(8)
        assert [c.title for c in a] != [c.title for c in b]

    def test_different_university_differs(self):
        a = CourseFactory("mit", 2004).fill(8)
        b = CourseFactory("stanford", 2004).fill(8)
        assert [c.title for c in a] != [c.title for c in b]


class TestGuards:
    def test_no_filler_instructor_named_mark(self):
        # Q1's gold answer depends on pinned "Mark" courses only.
        assert "Mark" not in INSTRUCTOR_SURNAMES

    def test_exclusion_respected(self):
        courses = CourseFactory("cmu", 2004).fill(
            10, exclude_topics={"verification"})
        assert all("Verification" not in c.title for c in courses)

    def test_no_database_topic_exists(self):
        # The filler pool must never produce a title matching '%Database%'.
        courses = CourseFactory("any", 1).fill(20)
        assert all("Database" not in c.title for c in courses)
        assert all("Data Structures" not in c.title for c in courses)

    def test_topics_not_repeated_within_factory(self):
        factory = CourseFactory("mit", 2004)
        first = factory.fill(10)
        second = factory.fill(10)
        titles = [c.title for c in first + second]
        assert len(titles) == len(set(titles))

    def test_over_requesting_raises(self):
        with pytest.raises(ValueError, match="only"):
            CourseFactory("mit", 2004).fill(100)


class TestStyles:
    def test_code_prefix_and_step(self):
        style = FillerStyle(code_prefix="CS", code_start=100, code_step=10)
        courses = CourseFactory("x", 1, style).fill(3)
        assert [c.code for c in courses] == ["CS100", "CS110", "CS120"]

    def test_german_style_sets_title_and_workload(self):
        style = FillerStyle(german=True, units_choices=(9,))
        course = CourseFactory("eth", 1, style).fill(1)[0]
        assert course.title_de is not None
        assert course.workload == "2V1U"

    def test_english_style_has_no_german_fields(self):
        course = CourseFactory("mit", 1).fill(1)[0]
        assert course.title_de is None
        assert course.workload is None

    def test_sections_style(self):
        style = FillerStyle(with_sections=True)
        courses = CourseFactory("umd", 1, style).fill(5)
        assert all(c.sections for c in courses)
        # Lead section always taught by the course's instructor.
        assert all(c.sections[0].instructor == c.instructors[0]
                   for c in courses)

    def test_classification_style(self):
        style = FillerStyle(with_classification=True)
        courses = CourseFactory("gatech", 7, style).fill(10)
        assert any(c.open_to for c in courses)

    def test_textbook_style(self):
        style = FillerStyle(with_textbooks=True)
        courses = CourseFactory("toronto", 3, style).fill(10)
        assert any(c.textbook for c in courses)

    def test_units_choices_respected(self):
        style = FillerStyle(units_choices=(9, 12))
        courses = CourseFactory("cmu", 1, style).fill(10)
        assert set(c.units for c in courses) <= {9, 12}
