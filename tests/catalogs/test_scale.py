"""Scale-tier testbed tests.

The ``scale=N`` dimension multiplies every source's filler catalog while
keeping two invariants: a ``scale=1`` build is byte-identical to a build
from before the parameter existed (the golden fingerprints pin this),
and every benchmark query's answer is identical at every scale (scaled
filler matches none of the twelve predicates).
"""

import json
from pathlib import Path

import pytest

from repro import xquery
from repro.catalogs import (
    ArtifactCache,
    CourseFactory,
    build_testbed,
    paper_universities,
    profile_fingerprint,
)
from repro.catalogs.testbed import load_testbed
from repro.core.answers import gold_answer
from repro.core.queries import QUERIES
from repro.tools.regen_golden import source_fingerprints
from repro.xmlmodel import serialize

GOLDEN_FILE = (Path(__file__).resolve().parent.parent
               / "golden" / "fingerprints.json")


@pytest.fixture(scope="module")
def scaled_paper_testbed():
    return build_testbed(universities=paper_universities(), scale=3)


class TestGeneratorScale:
    def test_scale_multiplies_filler(self):
        base = CourseFactory("mit", 2004).fill(8)
        scaled = CourseFactory("mit", 2004).fill(8, scale=4)
        assert len(base) == 8
        assert len(scaled) == 32

    def test_round_zero_is_byte_identical(self):
        base = CourseFactory("mit", 2004).fill(8)
        scaled = CourseFactory("mit", 2004).fill(8, scale=4)
        assert scaled[:8] == base

    def test_variant_titles_are_suffixed(self):
        scaled = CourseFactory("mit", 2004).fill(8, scale=2)
        assert all(title.endswith(" II")
                   for title in (c.title for c in scaled[8:]))

    def test_variant_codes_are_unique(self):
        scaled = CourseFactory("mit", 2004).fill(8, scale=4)
        codes = [c.code for c in scaled]
        assert len(set(codes)) == len(codes)

    def test_exclusions_cover_variants(self):
        scaled = CourseFactory("cmu", 2004).fill(
            10, exclude_topics={"verification"}, scale=5)
        assert all("Verification" not in c.title for c in scaled)

    def test_no_database_variant_exists(self):
        scaled = CourseFactory("any", 1).fill(20, scale=8)
        assert all("Database" not in c.title for c in scaled)

    def test_scale_below_one_rejected(self):
        with pytest.raises(ValueError):
            CourseFactory("mit", 2004).fill(8, scale=0)


class TestBuildScale:
    def test_scale_one_matches_golden_fingerprints(self):
        golden = json.loads(GOLDEN_FILE.read_text(encoding="utf-8"))
        built = build_testbed(seed=golden["seed"], scale=1)
        assert source_fingerprints(built) == golden["sources"]

    def test_scale_multiplies_every_source(self):
        subset = paper_universities()[:3]
        base = build_testbed(universities=subset)
        scaled = build_testbed(universities=subset, scale=4)
        for slug in base.slugs:
            pinned = len(base.courses(slug)) - _filler_count(base, slug)
            assert (len(scaled.courses(slug))
                    == pinned + 4 * _filler_count(base, slug))

    def test_scaled_build_is_deterministic(self):
        subset = paper_universities()[:2]
        a = build_testbed(universities=subset, scale=3)
        b = build_testbed(universities=subset, scale=3)
        for slug in a.slugs:
            assert (serialize(a.source(slug).document)
                    == serialize(b.source(slug).document))

    def test_scale_changes_content_fingerprint(self):
        subset = paper_universities()[:2]
        base = build_testbed(universities=subset)
        scaled = build_testbed(universities=subset, scale=2)
        assert base.content_fingerprint() != scaled.content_fingerprint()

    def test_scale_recorded_on_report(self):
        bed = build_testbed(universities=paper_universities()[:1], scale=2)
        assert bed.scale == 2
        assert bed.build_report.scale == 2


class TestAnswerInvariance:
    def test_gold_answers_identical_across_scales(self, paper_testbed,
                                                  scaled_paper_testbed):
        for query in QUERIES:
            assert (gold_answer(query, paper_testbed)
                    == gold_answer(query, scaled_paper_testbed)), \
                f"query {query.number} diverged at scale 3"

    def test_reference_plans_identical_across_scales(self, paper_testbed,
                                                     scaled_paper_testbed):
        cache = xquery.PlanCache()
        for query in QUERIES:
            plan = cache.get(query.xquery)
            base = plan.execute(paper_testbed.documents)
            scaled = plan.execute(scaled_paper_testbed.documents)
            assert base == scaled, \
                f"query {query.number} plan diverged at scale 3"


class TestScaleCaching:
    def test_cache_entries_keyed_by_scale(self, tmp_path):
        subset = paper_universities()[:1]
        build_testbed(universities=subset, cache_dir=tmp_path)
        scaled = build_testbed(universities=subset, cache_dir=tmp_path,
                               scale=2)
        # A scaled build never hits a scale=1 entry (and vice versa).
        assert scaled.build_report.cache_misses == 1
        warm = build_testbed(universities=subset, cache_dir=tmp_path,
                             scale=2)
        assert warm.build_report.cache_hits == 1
        assert (serialize(warm.source(subset[0].slug).document)
                == serialize(scaled.source(subset[0].slug).document))

    def test_scale_one_fingerprint_is_unchanged(self):
        # scale=1 must address the same cache entries as builds from
        # before the scale parameter existed.
        profile = paper_universities()[0]
        assert (profile_fingerprint(profile, 2004)
                == profile_fingerprint(profile, 2004, scale=1))
        assert (profile_fingerprint(profile, 2004)
                != profile_fingerprint(profile, 2004, scale=2))

    def test_cached_scaled_load_regenerates_courses(self, tmp_path):
        subset = paper_universities()[:1]
        first = build_testbed(universities=subset, cache_dir=tmp_path,
                              scale=3)
        warm = build_testbed(universities=subset, cache_dir=tmp_path,
                             scale=3)
        slug = subset[0].slug
        assert warm.courses(slug) == first.courses(slug)

    def test_primed_document_hash_matches_recomputed(self, tmp_path):
        subset = paper_universities()[:2]
        build_testbed(universities=subset, cache_dir=tmp_path, scale=2)
        warm = build_testbed(universities=subset, cache_dir=tmp_path,
                             scale=2)
        fresh = build_testbed(universities=subset, scale=2)
        for slug in warm.slugs:
            assert warm.document_hash(slug) == fresh.document_hash(slug)

    def test_entry_dirs_differ_by_scale(self, tmp_path):
        profile = paper_universities()[0]
        cache = ArtifactCache(tmp_path)
        assert (cache.entry_dir(profile, 2004)
                != cache.entry_dir(profile, 2004, scale=2))


class TestScalePersistence:
    def test_save_load_round_trips_scale(self, tmp_path):
        subset = paper_universities()[:2]
        bed = build_testbed(universities=subset, scale=2)
        loaded = load_testbed(bed.save(tmp_path))
        assert loaded.scale == 2
        assert loaded.content_fingerprint() == bed.content_fingerprint()
        for slug in bed.slugs:
            assert (serialize(loaded.source(slug).document)
                    == serialize(bed.source(slug).document))
            assert loaded.courses(slug) == bed.courses(slug)

    def test_scale_one_manifest_has_no_scale_key(self, tmp_path):
        subset = paper_universities()[:1]
        bed = build_testbed(universities=subset)
        root = bed.save(tmp_path)
        manifest = json.loads((root / "testbed.json").read_text())
        assert "scale" not in manifest
        assert load_testbed(root).scale == 1


def _filler_count(testbed, slug):
    base_titles = {c.title for c in testbed.courses(slug)}
    # Filler and pinned courses are disjoint by topic; recover the filler
    # count from a scale=2 build of the same source instead of peeking at
    # profile internals.
    doubled = build_testbed(universities=[testbed.source(slug).profile],
                            scale=2)
    return len(doubled.courses(slug)) - len(base_titles)
