"""Cleansing-pass tests."""

from repro.integration import GlobalCourse, INAPPLICABLE, MISSING
from repro.integration.cleansing import (
    clean_text,
    cleanse,
    merge_duplicates,
    normalize_name,
)


def course(code="C1", **overrides):
    params = dict(source="s", code=code, title="Databases")
    params.update(overrides)
    return GlobalCourse(**params)


class TestNameNormalization:
    def test_comma_initial_kept(self):
        assert normalize_name("Singh, H.") == "Singh, H."

    def test_comma_initial_without_dot(self):
        assert normalize_name("Singh, H") == "Singh, H."

    def test_initial_first_flipped(self):
        assert normalize_name("H. Singh") == "Singh, H."

    def test_bare_surname(self):
        assert normalize_name("Ailamaki") == "Ailamaki"

    def test_lowercase_initial_uppercased(self):
        assert normalize_name("memon, a") == "memon, A."

    def test_whitespace_stripped(self):
        assert normalize_name("  Klein  ") == "Klein"


class TestCleanText:
    def test_trailing_semicolon(self):
        assert clean_text("Data Structures;") == "Data Structures"

    def test_collapsed_whitespace(self):
        assert clean_text("Database   Design") == "Database Design"

    def test_already_clean(self):
        assert clean_text("Computer Networks") == "Computer Networks"


class TestMergeDuplicates:
    def test_distinct_records_untouched(self):
        courses = [course("A"), course("B")]
        assert merge_duplicates(courses) == courses

    def test_duplicate_collapsed(self):
        merged = merge_duplicates([course("A"), course("A")])
        assert len(merged) == 1

    def test_non_null_wins(self):
        first = course("A", textbook=MISSING)
        second = course("A", textbook="'Model Checking'")
        merged = merge_duplicates([first, second])[0]
        assert merged.textbook == "'Model Checking'"

    def test_null_preserved_when_no_value_exists(self):
        merged = merge_duplicates(
            [course("A", open_to=INAPPLICABLE),
             course("A", open_to=INAPPLICABLE)])[0]
        assert merged.open_to is INAPPLICABLE

    def test_tuples_unioned_in_order(self):
        first = course("A", instructors=("Song",))
        second = course("A", instructors=("Wing", "Song"))
        merged = merge_duplicates([first, second])[0]
        assert merged.instructors == ("Song", "Wing")

    def test_times_filled_from_later_record(self):
        first = course("A")
        second = course("A", start_minute=600, end_minute=660)
        merged = merge_duplicates([first, second])[0]
        assert merged.start_minute == 600

    def test_order_preserved(self):
        merged = merge_duplicates([course("B"), course("A"), course("B")])
        assert [c.code for c in merged] == ["B", "A"]


class TestCleansePass:
    def test_full_pass(self):
        dirty = [
            course("A", title="Data Structures;",
                   instructors=("H. Singh", "Memon, A")),
            course("A", rooms=("CHM  1407 ",)),
        ]
        cleaned = cleanse(dirty)
        assert len(cleaned) == 1
        record = cleaned[0]
        assert record.title == "Data Structures"
        assert record.instructors == ("Singh, H.", "Memon, A.")
        assert record.rooms == ("CHM 1407",)

    def test_cleanse_on_real_integration(self, paper_testbed):
        from repro.catalogs import paper_universities
        from repro.integration import standard_mediator
        mediator = standard_mediator(paper_universities())
        courses = mediator.integrate(paper_testbed.documents, ["umd"])
        cleaned = cleanse(courses)
        assert len(cleaned) == len(courses)
        software = [c for c in cleaned if c.code == "CMSC435"][0]
        assert software.instructors == ("Singh, H.", "Memon, A.")
