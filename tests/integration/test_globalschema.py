"""Global schema (GlobalCourse) tests."""

from repro.integration import GlobalCourse, INAPPLICABLE, MISSING
from repro.xmlmodel import serialize


def course(**overrides):
    params = dict(source="cmu", code="15-415", title="Database Systems")
    params.update(overrides)
    return GlobalCourse(**params)


class TestMatching:
    def test_title_matches_english(self):
        assert course().title_matches("database")
        assert not course().title_matches("compiler")

    def test_title_matches_german_when_language_de(self):
        c = course(title="XML und Datenbanken", language="de")
        assert c.title_matches("database")

    def test_german_not_consulted_for_english_sources(self):
        c = course(title="XML und Datenbanken", language="en")
        assert not c.title_matches("database")

    def test_taught_by(self):
        c = course(instructors=("Song", "Wing"))
        assert c.taught_by("Wing")
        assert not c.taught_by("Ailamaki")

    def test_meets_at(self):
        c = course(start_minute=810, end_minute=890)
        assert c.meets_at(810)
        assert not c.meets_at(811)

    def test_open_to_classification_value(self):
        c = course(open_to=("JR", "SR"))
        assert c.open_to_classification("JR") is True
        assert c.open_to_classification("FR") is False

    def test_open_to_classification_null_propagates(self):
        c = course(open_to=INAPPLICABLE)
        assert c.open_to_classification("JR") is INAPPLICABLE


class TestRendering:
    def test_time_range(self):
        c = course(start_minute=810, end_minute=890)
        assert c.time_range_24h() == "13:30-14:50"

    def test_time_range_none_when_unknown(self):
        assert course().time_range_24h() is None

    def test_to_xml_basics(self):
        c = course(instructors=("Ailamaki",), days="TTh",
                   start_minute=810, end_minute=890,
                   rooms=("WEH 7500",), units=12.0)
        xml = serialize(c.to_xml())
        assert '<Course source="cmu" code="15-415">' in xml
        assert "<Instructor>Ailamaki</Instructor>" in xml
        assert "<Time>13:30-14:50</Time>" in xml
        assert "<Units>12</Units>" in xml

    def test_to_xml_null_marker(self):
        c = course(textbook=MISSING)
        xml = serialize(c.to_xml())
        assert '<Textbook><null kind="missing"/></Textbook>' in xml

    def test_to_xml_inapplicable_open_to(self):
        c = course(open_to=INAPPLICABLE)
        xml = serialize(c.to_xml())
        assert '<OpenTo><null kind="inapplicable"/></OpenTo>' in xml

    def test_to_xml_boolean(self):
        xml = serialize(course(entry_level=True).to_xml())
        assert "<EntryLevel>true</EntryLevel>" in xml

    def test_to_xml_omits_unknowns(self):
        xml = serialize(course().to_xml())
        assert "Units" not in xml
        assert "Textbook" not in xml

    def test_key(self):
        assert course().key == ("cmu", "15-415")
