"""Mediator and standard-mapping integration tests."""

import pytest

from repro.catalogs import build_testbed, paper_universities
from repro.integration import (
    Capability,
    CopyText,
    INAPPLICABLE,
    MISSING,
    MappingError,
    Mediator,
    SourceMapping,
    is_null,
    standard_mediator,
)
from repro.xmlmodel import XmlDocument, element


@pytest.fixture(scope="module")
def testbed(paper_testbed):
    return paper_testbed


@pytest.fixture(scope="module")
def integrated(testbed):
    mediator = standard_mediator(paper_universities())
    return mediator.integrate(testbed.documents)


def by_key(courses, source, code):
    for course in courses:
        if course.key == (source, code):
            return course
    raise AssertionError(f"({source}, {code}) not integrated")


class TestMediatorMechanics:
    def test_unregistered_source_raises(self):
        mediator = Mediator()
        doc = XmlDocument(element("x"), source_name="x")
        with pytest.raises(MappingError, match="no mapping"):
            mediator.integrate_document(doc)

    def test_document_without_source_name(self):
        mediator = Mediator()
        with pytest.raises(MappingError, match="no source name"):
            mediator.integrate_document(XmlDocument(element("x")))

    def test_missing_document_raises(self, testbed):
        mediator = standard_mediator(paper_universities())
        with pytest.raises(MappingError, match="not provided"):
            mediator.integrate({}, ["cmu"])

    def test_record_errors_reported_not_fatal(self):
        mapping = SourceMapping("x", "Course", [
            CopyText("Title", "title")])
        mediator = Mediator({"x": mapping})
        doc = XmlDocument(element(
            "x",
            element("Course", element("Title", "ok"),
                    element("CourseNum", "1")),
        ), source_name="x")
        courses = mediator.integrate_document(doc)
        assert len(courses) == 1
        assert mediator.last_reports[-1].errors == []

    def test_fallback_code_when_unidentifiable(self):
        mapping = SourceMapping("x", "Course", [CopyText("Title", "title")])
        mediator = Mediator({"x": mapping})
        doc = XmlDocument(
            element("x", element("Course", element("Title", "t"))),
            source_name="x")
        course = mediator.integrate_document(doc)[0]
        assert course.code == "x-0"

    def test_capabilities_of_mapping(self):
        from repro.integration.standard import cmu_mapping
        caps = cmu_mapping().capabilities
        assert Capability.VALUE_TRANSFORM in caps
        assert Capability.SET_HANDLING in caps
        assert Capability.COLUMN_SEMANTICS not in caps

    def test_without_capability_removes_ops(self):
        from repro.integration.standard import cmu_mapping
        ablated = cmu_mapping().without_capability(
            Capability.VALUE_TRANSFORM)
        assert Capability.VALUE_TRANSFORM not in ablated.capabilities

    def test_mediator_without_capability_is_new_instance(self):
        mediator = standard_mediator(paper_universities())
        ablated = mediator.without_capability(Capability.TRANSLATION)
        assert ablated is not mediator
        assert Capability.TRANSLATION not in \
            ablated.mapping_for("eth").capabilities
        assert Capability.TRANSLATION in \
            mediator.mapping_for("eth").capabilities


class TestStandardIntegration:
    def test_all_paper_sources_integrate_cleanly(self, testbed):
        mediator = standard_mediator(paper_universities())
        mediator.integrate(testbed.documents)
        assert all(not report.errors for report in mediator.last_reports)

    def test_cmu_database_course(self, integrated):
        course = by_key(integrated, "cmu", "15-415")
        assert course.title == "Database System Design and Implementation"
        assert course.units == 12.0
        assert course.start_minute == 810
        assert course.entry_level is True
        assert course.textbook is MISSING

    def test_brown_decomposed_composite(self, integrated):
        course = by_key(integrated, "brown", "CS168")
        assert course.title == "Computer Networks"
        assert course.days == "M"
        assert course.time_range_24h() == "15:00-17:30"

    def test_brown_union_title_url(self, integrated):
        course = by_key(integrated, "brown", "CS016")
        assert course.title_url == "http://www.cs.brown.edu/courses/cs016/"
        assert "Data Structures" in course.title

    def test_umd_sections(self, integrated):
        course = by_key(integrated, "umd", "CMSC435")
        assert course.title == "Software Engineering"
        assert course.instructors == ("Singh, H.", "Memon, A.")
        assert course.rooms == ("CHM 1407", "EGR 2154")

    def test_eth_language_and_units(self, integrated):
        course = by_key(integrated, "eth", "251-0317")
        assert course.language == "de"
        assert course.title == "XML und Datenbanken"
        assert course.units == 9.0
        assert course.open_to is INAPPLICABLE
        assert course.title_matches("database")

    def test_gatech_classification(self, integrated):
        course = by_key(integrated, "gatech", "20422")
        assert course.open_to == ("JR", "SR")

    def test_umich_code_split(self, integrated):
        course = by_key(integrated, "umich", "EECS484")
        assert course.title == "Database Management Systems"
        assert course.entry_level is True
        assert course.rooms == ("1013 DOW",)

    def test_toronto_null_kinds(self, integrated):
        with_book = by_key(integrated, "toronto", "CSC410")
        assert isinstance(with_book.textbook, str)
        empty = by_key(integrated, "toronto", "CSC465")
        assert empty.textbook is MISSING

    def test_umass_24h_time(self, integrated):
        course = by_key(integrated, "umass", "CS445")
        assert course.start_minute == 13 * 60 + 30

    def test_ucsd_term_instructors(self, integrated):
        course = by_key(integrated, "ucsd", "CSE232")
        assert course.instructors == ("Yannis", "Deutsch")

    def test_every_integrated_course_has_identity(self, integrated):
        assert all(c.source and c.code for c in integrated)

    def test_textbook_policy_is_universal(self, integrated):
        assert all(c.textbook is not None or is_null(c.textbook)
                   for c in integrated)

    def test_full_testbed_mediator_covers_all_sources(self, full_testbed):
        testbed = full_testbed
        mediator = standard_mediator()
        courses = mediator.integrate(testbed.documents)
        assert {c.source for c in courses} == set(testbed.slugs)
        assert all(not r.errors for r in mediator.last_reports)
