"""EN↔DE lexicon tests (the Q5 capability)."""

from repro.integration import DEFAULT_LEXICON, Lexicon


class TestValueLexicon:
    def test_paper_example(self):
        germans = DEFAULT_LEXICON.german_equivalents("database")
        assert "Datenbank" in germans
        assert "Datenbanksystem" in germans

    def test_unknown_term_is_empty(self):
        assert DEFAULT_LEXICON.german_equivalents("underwater basket") == ()

    def test_case_insensitive_lookup(self):
        assert DEFAULT_LEXICON.german_equivalents("Database") != ()

    def test_english_equivalent(self):
        assert DEFAULT_LEXICON.english_equivalent("Datenbanken") == "database"

    def test_english_equivalent_by_compound(self):
        assert DEFAULT_LEXICON.english_equivalent(
            "Datenbanksysteme") == "database"

    def test_english_equivalent_unknown(self):
        assert DEFAULT_LEXICON.english_equivalent("Quatsch") is None


class TestMatching:
    def test_matches_english_directly(self):
        assert DEFAULT_LEXICON.text_matches_term(
            "Database Design", "database")

    def test_matches_german_via_lexicon(self):
        # The Q5 example: 'XML und Datenbanken' matches 'database'.
        assert DEFAULT_LEXICON.text_matches_term(
            "XML und Datenbanken", "database")

    def test_matches_compound(self):
        assert DEFAULT_LEXICON.text_matches_term(
            "Datenbanksysteme", "database")

    def test_no_match(self):
        assert not DEFAULT_LEXICON.text_matches_term(
            "Vernetzte Systeme", "database")

    def test_case_insensitive_match(self):
        assert DEFAULT_LEXICON.text_matches_term(
            "EINFÜHRUNG IN DATENBANKEN", "database")


class TestTagLexicon:
    def test_eth_tags(self):
        assert DEFAULT_LEXICON.translate_tag("Titel") == "Title"
        assert DEFAULT_LEXICON.translate_tag("Dozent") == "Instructor"
        assert DEFAULT_LEXICON.translate_tag("Umfang") == "Units"
        assert DEFAULT_LEXICON.translate_tag("Vorlesung") == "Course"

    def test_unknown_tag_passes_through(self):
        assert DEFAULT_LEXICON.translate_tag("CourseNum") == "CourseNum"


class TestExtension:
    def test_add_term(self):
        lexicon = Lexicon()
        lexicon.add_term("quantum computing", "Quantenrechnen")
        assert lexicon.text_matches_term(
            "Einführung in Quantenrechnen", "quantum computing")

    def test_known_terms_sorted(self):
        terms = DEFAULT_LEXICON.known_terms()
        assert terms == sorted(terms)
        assert "database" in terms
