"""The capability taxonomy's query lookup stays consistent with the
declared benchmark queries — the multi-capability fix's contract."""

import pytest

from repro.core.queries import QUERIES
from repro.integration import (
    ATTRIBUTE_HETEROGENEITIES,
    Capability,
    MISSING_DATA_HETEROGENEITIES,
    capabilities_for_query,
    capability_for_query,
)


class TestCapabilitiesForQuery:
    def test_lookup_matches_every_declared_query(self):
        """Single source of truth: the taxonomy table and the query
        declarations must name exactly the same capability tuples."""
        for query in QUERIES:
            assert capabilities_for_query(query.number) == \
                query.required_capabilities, f"Q{query.number}"

    def test_primary_comes_first(self):
        for query in QUERIES:
            assert capability_for_query(query.number) is query.capability
            assert capabilities_for_query(query.number)[0] is \
                query.capability

    def test_every_number_maps_to_its_namesake(self):
        for number in range(1, 13):
            primary = capabilities_for_query(number)[0]
            assert primary.value == number

    def test_secondaries_never_repeat_the_primary(self):
        for number in range(1, 13):
            capabilities = capabilities_for_query(number)
            assert len(set(capabilities)) == len(capabilities)

    @pytest.mark.parametrize("number", [0, 13, -1, 1000])
    def test_out_of_range_numbers_are_rejected(self, number):
        with pytest.raises(ValueError):
            capabilities_for_query(number)


class TestGroups:
    def test_the_three_groups_partition_the_taxonomy(self):
        attribute = set(ATTRIBUTE_HETEROGENEITIES)
        missing = set(MISSING_DATA_HETEROGENEITIES)
        assert not attribute & missing
        assert attribute | missing < set(Capability)
