"""Mapping operator unit tests."""

import pytest

from repro.integration import (
    Capability,
    ClassificationList,
    CodeFromTitle,
    CopyInstructor,
    CopyRoom,
    CopyText,
    DecomposeCompositeTitle,
    EntryLevelExplicit,
    EntryLevelFromComment,
    FlattenUnionTitle,
    GermanSource,
    InstructorsFromSectionTitles,
    InstructorsFromTermColumns,
    MappingContext,
    MappingError,
    NullableField,
    NumericUnits,
    ParseTimeRange,
    RoomFromText,
    SectionStructure,
    SplitInstructors,
    WorkloadUnits,
    MISSING,
    INAPPLICABLE,
    DEFAULT_LEXICON,
)
from repro.xmlmodel import element


@pytest.fixture()
def ctx():
    return MappingContext(source="test", lexicon=DEFAULT_LEXICON)


def apply(op, record, ctx):
    out = {}
    op.apply(record, out, ctx)
    return out


class TestCopyOps:
    def test_copy_text(self, ctx):
        record = element("Course", element("CourseTitle", "  DB  Systems "))
        out = apply(CopyText("CourseTitle", "title"), record, ctx)
        assert out == {"title": "DB Systems"}

    def test_copy_text_rstrip(self, ctx):
        record = element("Course", element("CourseName", "Data Structures;"))
        out = apply(CopyText("CourseName", "title", rstrip=";"), record, ctx)
        assert out["title"] == "Data Structures"

    def test_copy_text_absent_leaves_out_empty(self, ctx):
        out = apply(CopyText("Nope", "title"), element("Course"), ctx)
        assert out == {}

    def test_copy_instructor_appends(self, ctx):
        record = element("Course", element("Instructor", "Mark"))
        out = {"instructors": ("Prior",)}
        CopyInstructor("Instructor").apply(record, out, ctx)
        assert out["instructors"] == ("Prior", "Mark")

    def test_copy_room(self, ctx):
        record = element("Course", element("Room", "CIT 165"))
        out = apply(CopyRoom("Room"), record, ctx)
        assert out["rooms"] == ("CIT 165",)

    def test_code_from_title(self, ctx):
        record = element(
            "Course", element("title", "EECS484 Database Management Systems"))
        out = apply(CodeFromTitle("title"), record, ctx)
        assert out == {"code": "EECS484",
                       "title": "Database Management Systems"}

    def test_code_from_title_no_code(self, ctx):
        record = element("Course", element("title", "Databases"))
        out = apply(CodeFromTitle("title"), record, ctx)
        assert out == {"title": "Databases"}

    def test_numeric_units(self, ctx):
        record = element("Course", element("Units", "12"))
        assert apply(NumericUnits("Units"), record, ctx) == {"units": 12.0}

    def test_numeric_units_garbage_raises(self, ctx):
        record = element("Course", element("Units", "viele"))
        with pytest.raises(MappingError):
            apply(NumericUnits("Units"), record, ctx)


class TestTimeOps:
    def test_cmu_style(self, ctx):
        record = element("Course", element("Time", "1:30 - 2:50"),
                         element("Day", "TTh"))
        out = apply(ParseTimeRange("Time", days_path="Day"), record, ctx)
        assert out == {"start_minute": 810, "end_minute": 890, "days": "TTh"}

    def test_leading_days_in_value(self, ctx):
        record = element("Course", element("Time", "MWF 16:00-17:15"))
        out = apply(ParseTimeRange("Time", clock="24h"), record, ctx)
        assert out["days"] == "MWF"
        assert out["start_minute"] == 960

    def test_trailing_room_ignored(self, ctx):
        record = element("Course",
                         element("meets", "MW 10:30 - 12:00, 1013 DOW"))
        out = apply(ParseTimeRange("meets"), record, ctx)
        assert out["start_minute"] == 630
        assert out["end_minute"] == 720

    def test_no_range_raises(self, ctx):
        record = element("Course", element("Time", "by arrangement"))
        with pytest.raises(MappingError, match="no time range"):
            apply(ParseTimeRange("Time"), record, ctx)

    def test_room_from_text(self, ctx):
        record = element("Course",
                         element("meets", "MW 10:30 - 12:00, 1013 DOW"))
        out = apply(RoomFromText("meets"), record, ctx)
        assert out["rooms"] == ("1013 DOW",)


class TestUnionAndComposite:
    def _brown_title(self, text, href=None):
        title = element("Title")
        if href:
            title.append(element("a", text, href=href))
            title.append(" D hr. MWF 11-12")
        else:
            title.append(text)
        return element("Course", title)

    def test_flatten_union_title_with_anchor(self, ctx):
        record = self._brown_title("Intro to Algorithms",
                                   href="http://x/cs016")
        out = apply(FlattenUnionTitle("Title"), record, ctx)
        assert out["title_url"] == "http://x/cs016"
        assert out["title"] == "Intro to Algorithms D hr. MWF 11-12"

    def test_flatten_union_title_plain(self, ctx):
        record = self._brown_title("Plain Title")
        out = apply(FlattenUnionTitle("Title"), record, ctx)
        assert out == {"title": "Plain Title"}

    def test_decompose_composite(self, ctx):
        record = self._brown_title("Computer NetworksM hr. M 3-5:30")
        out = apply(DecomposeCompositeTitle("Title"), record, ctx)
        assert out["title"] == "Computer Networks"
        assert out["days"] == "M"
        assert out["start_minute"] == 900
        assert out["end_minute"] == 1050
        assert out["extras"]["hour_block"] == "M"

    def test_decompose_with_comma_days(self, ctx):
        record = self._brown_title("Software EngK hr. T,Th 2:30-4")
        out = apply(DecomposeCompositeTitle("Title"), record, ctx)
        assert out["days"] == "TTh"
        assert out["title"] == "Software Eng"

    def test_decompose_failure_raises(self, ctx):
        record = self._brown_title("No schedule here")
        with pytest.raises(MappingError, match="does not decompose"):
            apply(DecomposeCompositeTitle("Title"), record, ctx)

    def test_workload_units_paper_value(self, ctx):
        record = element("Vorlesung", element("Umfang", "2V1U"))
        assert apply(WorkloadUnits("Umfang"), record, ctx) == {"units": 9.0}

    def test_workload_units_garbage(self, ctx):
        record = element("Vorlesung", element("Umfang", "nach Absprache"))
        with pytest.raises(MappingError):
            apply(WorkloadUnits("Umfang"), record, ctx)

    def test_german_source_marks_language(self, ctx):
        assert apply(GermanSource(), element("Vorlesung"), ctx) == \
            {"language": "de"}


class TestNullOps:
    def test_nullable_field_value(self, ctx):
        record = element("course", element("text", "'Model Checking'"))
        out = apply(NullableField("textbook", "text", MISSING), record, ctx)
        assert out["textbook"] == "'Model Checking'"

    def test_nullable_field_empty_value(self, ctx):
        record = element("course", element("text"))
        out = apply(NullableField("textbook", "text", MISSING), record, ctx)
        assert out["textbook"] is MISSING

    def test_nullable_field_absent_element(self, ctx):
        out = apply(NullableField("textbook", "text", MISSING),
                    element("course"), ctx)
        assert out["textbook"] is MISSING

    def test_nullable_field_schema_wide(self, ctx):
        out = apply(NullableField("open_to", None, INAPPLICABLE),
                    element("Vorlesung"), ctx)
        assert out["open_to"] is INAPPLICABLE

    def test_capability_depends_on_kind(self):
        assert NullableField("x", None, MISSING).capability is \
            Capability.NULL_HANDLING
        assert NullableField("x", None, INAPPLICABLE).capability is \
            Capability.SEMANTIC_NULL


class TestInferenceOps:
    def test_entry_level_explicit_none(self, ctx):
        record = element("Course", element("prerequisite", "None"))
        out = apply(EntryLevelExplicit("prerequisite"), record, ctx)
        assert out["entry_level"] is True

    def test_entry_level_explicit_prereq(self, ctx):
        record = element("Course", element("prerequisite", "EECS281"))
        out = apply(EntryLevelExplicit("prerequisite"), record, ctx)
        assert out["entry_level"] is False

    def test_entry_level_from_comment_marker(self, ctx):
        record = element("Course",
                         element("Comment", "First course in sequence"))
        out = apply(EntryLevelFromComment("Comment"), record, ctx)
        assert out["entry_level"] is True

    def test_entry_level_from_comment_prereq(self, ctx):
        record = element("Course",
                         element("Comment", "Prerequisite: 15-213"))
        out = apply(EntryLevelFromComment("Comment"), record, ctx)
        assert out["entry_level"] is False

    def test_entry_level_no_comment_defaults_true(self, ctx):
        out = apply(EntryLevelFromComment("Comment"), element("Course"), ctx)
        assert out["entry_level"] is True

    def test_classification_list(self, ctx):
        record = element("Course", element("Restricted", "JR or SR"))
        out = apply(ClassificationList("Restricted"), record, ctx)
        assert out["open_to"] == ("JR", "SR")

    def test_classification_empty_is_unrestricted(self, ctx):
        record = element("Course", element("Restricted"))
        out = apply(ClassificationList("Restricted"), record, ctx)
        assert out["open_to"] == ()


class TestStructuralOps:
    def _umd_course(self):
        return element(
            "Course",
            element("Sections",
                    element("Section",
                            element("title", "0101(13795) Singh, H."),
                            element("time", "MW 10:00am-11:15am CHM 1407")),
                    element("Section",
                            element("title", "0201(13796) Memon, A."),
                            element("time", "TTh 2:00pm-3:15pm EGR 2154"))))

    def test_section_structure_rooms(self, ctx):
        out = apply(SectionStructure("Sections/Section/time"),
                    self._umd_course(), ctx)
        assert out["rooms"] == ("CHM 1407", "EGR 2154")

    def test_section_structure_first_section_meeting(self, ctx):
        out = apply(SectionStructure("Sections/Section/time"),
                    self._umd_course(), ctx)
        assert out["days"] == "MW"
        assert out["start_minute"] == 600

    def test_section_structure_bad_time_raises(self, ctx):
        record = element(
            "Course", element("Sections", element(
                "Section", element("time", "whenever"))))
        with pytest.raises(MappingError, match="unrecognized"):
            apply(SectionStructure("Sections/Section/time"), record, ctx)

    def test_split_instructors(self, ctx):
        record = element("Course", element("Lecturer", "Song/Wing"))
        out = apply(SplitInstructors("Lecturer"), record, ctx)
        assert out["instructors"] == ("Song", "Wing")

    def test_split_single_instructor(self, ctx):
        record = element("Course", element("Lecturer", "Ailamaki"))
        out = apply(SplitInstructors("Lecturer"), record, ctx)
        assert out["instructors"] == ("Ailamaki",)

    def test_instructors_from_section_titles(self, ctx):
        out = apply(InstructorsFromSectionTitles("Sections/Section/title"),
                    self._umd_course(), ctx)
        assert out["instructors"] == ("Singh, H.", "Memon, A.")

    def test_instructors_from_section_titles_dedup(self, ctx):
        record = element(
            "Course", element("Sections",
                              element("Section",
                                      element("title", "0101 Singh, H.")),
                              element("Section",
                                      element("title", "0201 Singh, H."))))
        out = apply(InstructorsFromSectionTitles("Sections/Section/title"),
                    record, ctx)
        assert out["instructors"] == ("Singh, H.",)

    def test_instructors_from_term_columns(self, ctx):
        record = element("Course",
                         element("Fall2003", "Yannis"),
                         element("Winter2004", "Deutsch"),
                         element("Spring2004"))
        out = apply(InstructorsFromTermColumns(
            ("Fall2003", "Winter2004", "Spring2004")), record, ctx)
        assert out["instructors"] == ("Yannis", "Deutsch")
