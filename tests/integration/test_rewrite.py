"""Query-rewriter tests: reference queries retargeted at challenge schemas."""

import pytest

from repro.catalogs import build_testbed, paper_universities
from repro.core import get_query
from repro.integration import QueryRewriter, RewriteRules, q1_rules, q5_rules
from repro.xquery import run_query


@pytest.fixture(scope="module")
def documents(paper_testbed):
    return paper_testbed.documents


class TestRules:
    def test_tag_map(self):
        rules = RewriteRules(tag_map={"Instructor": "Lecturer"})
        assert rules.map_tag("Instructor") == "Lecturer"
        assert rules.map_tag("Title") == "Title"

    def test_doc_map_with_and_without_extension(self):
        rules = RewriteRules(doc_map={"gatech": "cmu"})
        assert rules.map_doc("gatech.xml") == "cmu.xml"
        assert rules.map_doc("gatech") == "cmu"
        assert rules.map_doc("brown.xml") == "brown.xml"


class TestQ1Rewrite:
    """Q1 (synonyms) is exactly the rename-rewritable case."""

    def test_rewritten_query_targets_cmu(self):
        rewritten = QueryRewriter(q1_rules()).rewrite(get_query(1).xquery)
        assert "cmu.xml" in rewritten
        assert "Lecturer" in rewritten
        assert "Instructor" not in rewritten

    def test_rewritten_query_finds_the_cmu_course(self, documents):
        rewritten = QueryRewriter(q1_rules()).rewrite(get_query(1).xquery)
        results = run_query(rewritten, documents)
        assert len(results) == 1
        assert results[0].findtext("CourseNum") == "15-567*"

    def test_union_of_original_and_rewritten_is_the_gold_answer(
            self, documents):
        from repro.core import gold_answer
        testbed = build_testbed(universities=paper_universities())
        original = run_query(get_query(1).xquery, documents)
        rewritten = run_query(
            QueryRewriter(q1_rules()).rewrite(get_query(1).xquery),
            documents)
        keys = {("gatech", c.findtext("CourseNum")) for c in original} | \
               {("cmu", c.findtext("CourseNum")) for c in rewritten}
        assert keys == gold_answer(1, testbed)


class TestQ5Rewrite:
    """Q5 (language) needs tag translation *and* pattern translation."""

    def test_variants_cover_german_equivalents(self):
        variants = QueryRewriter(q5_rules()).rewrite_all(
            get_query(5).xquery)
        assert len(variants) >= 3  # untranslated + Datenbank forms
        assert any("%Datenbank%" in v for v in variants)
        assert all("Vorlesung" in v for v in variants)
        assert all("Titel" in v for v in variants)

    def test_translated_variant_finds_eth_courses(self, documents):
        variants = QueryRewriter(q5_rules()).rewrite_all(
            get_query(5).xquery)
        found = set()
        for variant in variants:
            for result in run_query(variant, documents):
                found.add(result.findtext("Nummer"))
        assert found == {"251-0317", "251-0312"}

    def test_untranslated_pattern_finds_nothing(self, documents):
        first = QueryRewriter(q5_rules()).rewrite(get_query(5).xquery)
        assert "%Database%" in first
        assert run_query(first, documents) == []


class TestRewritePreservesStructure:
    def test_predicates_rewritten(self):
        rules = RewriteRules(tag_map={"Title": "Titel"})
        rewritten = QueryRewriter(rules).rewrite(
            "$b/Course[Title = 'X']/Title")
        assert rewritten == "$b/Course[Titel = 'X']/Titel"

    def test_attributes_rewritten(self):
        rules = RewriteRules(tag_map={"code": "Kennung"})
        assert QueryRewriter(rules).rewrite("$b/@code") == "$b/@Kennung"

    def test_wildcards_untouched(self):
        rules = RewriteRules(tag_map={"Course": "Vorlesung"})
        assert QueryRewriter(rules).rewrite("$b/*") == "$b/*"

    def test_non_doc_functions_untouched(self):
        rules = RewriteRules(doc_map={"x": "y"})
        assert QueryRewriter(rules).rewrite("contains('x', 'y')") == \
            "contains('x', 'y')"

    def test_if_and_let_survive(self):
        rules = RewriteRules(tag_map={"A": "B"})
        source = "let $t := $c/A return if (empty($t)) then 'n' else $t"
        rewritten = QueryRewriter(rules).rewrite(source)
        assert "$c/B" in rewritten
        from repro.xquery.parser import parse_query
        parse_query(rewritten)
