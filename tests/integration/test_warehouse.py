"""Warehouse tests + GlobalCourse XML round-trip property."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalogs import build_testbed, paper_universities
from repro.integration import (
    GlobalCourse,
    INAPPLICABLE,
    MISSING,
    Warehouse,
    standard_mediator,
)


@pytest.fixture(scope="module")
def testbed(paper_testbed):
    return paper_testbed


@pytest.fixture(scope="module")
def warehouse(testbed):
    return Warehouse(standard_mediator(paper_universities()),
                     testbed.documents)


class TestMaterialization:
    def test_one_course_element_per_record(self, warehouse, testbed):
        total = sum(len(testbed.courses(slug)) for slug in testbed.slugs)
        assert len(warehouse) == total
        assert len(warehouse.document.root.findall("Course")) == total

    def test_document_name(self, warehouse):
        assert warehouse.document.source_name == "warehouse"

    def test_cleansing_applied(self, warehouse):
        umd = [c for c in warehouse.courses
               if c.key == ("umd", "CMSC435")][0]
        assert umd.instructors == ("Singh, H.", "Memon, A.")
        assert umd.title == "Software Engineering"

    def test_cleansing_can_be_disabled(self, testbed):
        raw = Warehouse(standard_mediator(paper_universities()),
                        testbed.documents, apply_cleansing=False)
        assert len(raw) == len(raw.courses)

    def test_refresh_rebuilds(self, testbed):
        wh = Warehouse(standard_mediator(paper_universities()),
                       {"cmu": testbed.source("cmu").document})
        first = len(wh)
        wh.refresh(testbed.documents)
        assert len(wh) > first


class TestQuerying:
    def test_plain_xquery(self, warehouse):
        result = warehouse.query(
            "count(doc('warehouse')/warehouse/Course)")
        assert result == [float(len(warehouse))]

    def test_udfs_preregistered(self, warehouse):
        result = warehouse.query(
            "for $c in doc('warehouse')/warehouse/Course "
            "where udf:matches-term($c/Title, 'database') "
            "and $c/@source = 'eth' return $c/@code")
        assert sorted(result) == ["251-0312", "251-0317"]

    def test_query_courses_lifts_records(self, warehouse):
        courses = warehouse.query_courses(
            "for $c in doc('warehouse')/warehouse/Course "
            "where $c/@code = '15-415' return $c")
        assert len(courses) == 1
        course = courses[0]
        assert isinstance(course, GlobalCourse)
        assert course.units == 12.0
        assert course.start_minute == 810

    def test_query_courses_rejects_atomics(self, warehouse):
        with pytest.raises(ValueError, match="non-element"):
            warehouse.query_courses(
                "doc('warehouse')/warehouse/Course[1]/Title/text()")

    def test_null_kinds_queryable(self, warehouse):
        kinds = warehouse.query(
            "for $c in doc('warehouse')/warehouse/Course "
            "where $c/@source = 'eth' "
            "return $c/OpenTo/null/@kind")
        assert set(kinds) == {"inapplicable"}


# --------------------------------------------------------------------------- #
# GlobalCourse XML round-trip
# --------------------------------------------------------------------------- #

# Lifting goes through whitespace-normalized text, so generated values are
# normalized up front (the documented lossy dimension of the rendering).
_names = st.text(alphabet="abcdefgh ÄÖü,.", min_size=1, max_size=12) \
    .map(lambda s: " ".join(s.split())).filter(bool)
_nullable_text = st.one_of(st.none(), st.just(MISSING), _names)


@st.composite
def _global_courses(draw):
    start = draw(st.one_of(st.none(),
                           st.integers(min_value=0, max_value=1300)))
    end = None if start is None else \
        draw(st.integers(min_value=start + 1, max_value=1439))
    return GlobalCourse(
        source=draw(st.sampled_from(["cmu", "eth", "umd"])),
        code=draw(st.from_regex(r"[A-Z]{2}[0-9]{2,3}", fullmatch=True)),
        title=draw(_names),
        language=draw(st.sampled_from(["en", "de"])),
        title_url=draw(st.one_of(st.none(), st.just("http://x/y"))),
        instructors=tuple(draw(st.lists(_names, max_size=3))),
        days=draw(st.one_of(st.none(), st.sampled_from(["MWF", "TTh"]))),
        start_minute=start,
        end_minute=end,
        rooms=draw(st.one_of(st.just(INAPPLICABLE),
                             st.lists(_names, max_size=2).map(tuple))),
        units=draw(st.one_of(st.none(), st.just(MISSING),
                             st.integers(1, 18).map(float))),
        entry_level=draw(st.one_of(st.none(), st.booleans(),
                                   st.just(MISSING))),
        textbook=draw(_nullable_text),
        open_to=draw(st.one_of(st.just(INAPPLICABLE),
                               st.sampled_from([(), ("JR", "SR")]))),
        description=draw(st.one_of(st.just(""), _names)),
        extras=draw(st.dictionaries(
            st.sampled_from(["hour_block", "note"]), _names, max_size=2)),
    )


class TestXmlRoundTripProperty:
    @settings(max_examples=150, deadline=None)
    @given(_global_courses())
    def test_round_trip(self, course):
        lifted = GlobalCourse.from_xml(course.to_xml())
        assert lifted == course

    def test_from_xml_rejects_foreign_elements(self):
        from repro.xmlmodel import element
        with pytest.raises(ValueError):
            GlobalCourse.from_xml(element("NotACourse"))

    def test_every_warehouse_element_lifts(self, warehouse):
        for node in warehouse.document.root.findall("Course"):
            lifted = GlobalCourse.from_xml(node)
            assert lifted.source and lifted.code
