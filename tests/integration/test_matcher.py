"""Automatic schema matcher tests."""

import pytest

from repro.catalogs import build_testbed, paper_universities
from repro.integration import (
    MISSING,
    Mediator,
    auto_match,
    match_source,
    observed_tags,
)
from repro.integration.matcher import mapping_from_report
from repro.xmlmodel import XmlDocument, element


@pytest.fixture(scope="module")
def testbed(paper_testbed):
    return paper_testbed


class TestObservedTags:
    def test_infers_record_tag_and_child_union(self, testbed):
        record_path, tags = observed_tags(testbed.source("cmu").document)
        assert record_path == "Course"
        assert "CourseTitle" in tags
        assert "Comment" in tags  # present on some records only

    def test_eth_record_tag(self, testbed):
        record_path, tags = observed_tags(testbed.source("eth").document)
        assert record_path == "Vorlesung"
        assert "Titel" in tags

    def test_empty_document(self):
        record_path, tags = observed_tags(XmlDocument(element("empty")))
        assert tags == []


class TestMatching:
    def test_cmu_synonyms(self, testbed):
        report = match_source(testbed.source("cmu").document)
        assert report.target_of("Lecturer") == "instructor"
        assert report.target_of("CourseTitle") == "title"
        assert report.target_of("Units") == "units"
        assert report.target_of("CourseNum") == "code"

    def test_gatech_instructor(self, testbed):
        report = match_source(testbed.source("gatech").document)
        assert report.target_of("Instructor") == "instructor"
        assert report.target_of("Restricted") == "restriction"

    def test_eth_german_tags_match(self, testbed):
        report = match_source(testbed.source("eth").document)
        assert report.target_of("Titel") == "title"
        assert report.target_of("Dozent") == "instructor"
        assert report.target_of("Umfang") == "units"

    def test_umd_sections_unmatched(self, testbed):
        """The structural heterogeneity is invisible to name matching."""
        report = match_source(testbed.source("umd").document)
        assert "Sections" in report.unmatched

    def test_ucsd_term_columns_unmatched(self, testbed):
        report = match_source(testbed.source("ucsd").document)
        assert "Fall2003" in report.unmatched
        assert "Winter2004" in report.unmatched

    def test_each_target_claimed_once(self, testbed):
        for slug in testbed.slugs:
            report = match_source(testbed.source(slug).document)
            targets = [m.target for m in report.matches]
            assert len(targets) == len(set(targets)), slug

    def test_similarity_matching(self):
        doc = XmlDocument(
            element("u", element("Course",
                                 element("Lecturers", "X"),
                                 element("CourseNum", "1"))),
            source_name="u")
        report = match_source(doc)
        match = [m for m in report.matches if m.tag == "Lecturers"][0]
        assert match.target == "instructor"
        assert match.method == "similarity"
        assert match.confidence < 1.0


class TestGeneratedMapping:
    def test_toronto_textbook_null_policy(self, testbed):
        mapping = auto_match(testbed.source("toronto").document)
        mediator = Mediator({"toronto": mapping})
        courses = mediator.integrate_document(
            testbed.source("toronto").document)
        by_code = {c.code: c for c in courses}
        assert by_code["CSC410"].textbook.startswith("'Model Checking'")
        assert by_code["CSC465"].textbook is MISSING

    def test_cmu_time_parsed(self, testbed):
        mapping = auto_match(testbed.source("cmu").document)
        mediator = Mediator({"cmu": mapping})
        courses = mediator.integrate_document(
            testbed.source("cmu").document)
        db = [c for c in courses if c.code == "15-415"][0]
        assert db.start_minute == 13 * 60 + 30

    def test_eth_units_lenient(self, testbed):
        """'2V1U' is not numeric: the auto mapping yields no units
        rather than crashing (the honest automatic behavior)."""
        mapping = auto_match(testbed.source("eth").document)
        mediator = Mediator({"eth": mapping})
        courses = mediator.integrate_document(
            testbed.source("eth").document)
        assert all(c.units is None for c in courses)
        assert mediator.last_reports[-1].errors == []

    def test_missing_textbook_tag_gets_schema_wide_null(self, testbed):
        mapping = auto_match(testbed.source("cmu").document)
        mediator = Mediator({"cmu": mapping})
        courses = mediator.integrate_document(
            testbed.source("cmu").document)
        assert all(c.textbook is MISSING for c in courses)

    def test_mapping_from_report_uses_code_tag(self, testbed):
        report = match_source(testbed.source("eth").document)
        mapping = mapping_from_report(report)
        assert mapping.code_path == "Nummer"


class TestAutoMatchSystem:
    def test_scores_exactly_the_name_level_queries(self, testbed):
        from repro.core import run_benchmark
        from repro.systems import automatch
        card = run_benchmark(automatch(), testbed)
        correct = sorted(o.number for o in card.outcomes if o.correct)
        assert correct == [1, 2, 3, 6]
        assert card.complexity_score == 0

    def test_ranks_below_cohera_and_iwiz(self, testbed):
        from repro.core import rank, run_all
        from repro.systems import automatch, cohera, iwiz
        cards = run_all([automatch(), cohera(), iwiz()], testbed)
        ordered = [card.system for card in rank(cards)]
        assert ordered.index("AutoMatch") == 2
