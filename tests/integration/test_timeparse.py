"""Meeting-time parsing tests, including the round-trip property."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.integration import (
    TimeParseError,
    parse_time,
    parse_time_range,
    to_12h,
    to_24h,
)


class TestParseTime:
    def test_24h(self):
        assert parse_time("13:30") == 13 * 60 + 30
        assert parse_time("16:00") == 16 * 60

    def test_12h_with_suffix(self):
        assert parse_time("1:30pm") == 13 * 60 + 30
        assert parse_time("9:00am") == 9 * 60

    def test_noon_midnight(self):
        assert parse_time("12:00pm") == 12 * 60
        assert parse_time("12:00am") == 0

    def test_academic_heuristic(self):
        # 1:30 without a suffix is an afternoon class.
        assert parse_time("1:30") == 13 * 60 + 30
        # 9:00 without a suffix stays morning.
        assert parse_time("9:00") == 9 * 60

    def test_academic_heuristic_disabled(self):
        assert parse_time("1:30", assume_academic=False) == 90

    def test_bare_hour(self):
        assert parse_time("3") == 15 * 60
        assert parse_time("11") == 11 * 60

    def test_garbage_rejected(self):
        for bad in ("", "mittags", "25:00", "9:75", "13pm"):
            with pytest.raises(TimeParseError):
                parse_time(bad)


class TestParseRange:
    def test_cmu_style(self):
        assert parse_time_range("1:30 - 2:50") == (810, 890)

    def test_umass_style(self):
        assert parse_time_range("16:00-17:15") == (960, 1035)

    def test_umd_style(self):
        assert parse_time_range("10:00am-11:15am") == (600, 675)

    def test_brown_style(self):
        assert parse_time_range("3-5:30") == (900, 1050)
        assert parse_time_range("11-12") == (660, 720)
        assert parse_time_range("2:30-4") == (870, 960)

    def test_end_inherits_afternoon(self):
        # 11-12:15 must not wrap to midnight.
        assert parse_time_range("11-12:15") == (660, 735)

    def test_single_time_rejected(self):
        with pytest.raises(TimeParseError):
            parse_time_range("1:30")

    def test_impossible_range_rejected(self):
        with pytest.raises(TimeParseError):
            parse_time_range("23:00-23:00")


class TestRendering:
    def test_to_24h(self):
        assert to_24h(13 * 60 + 30) == "13:30"
        assert to_24h(0) == "00:00"

    def test_to_12h(self):
        assert to_12h(13 * 60 + 30) == "1:30pm"
        assert to_12h(0) == "12:00am"
        assert to_12h(12 * 60) == "12:00pm"

    def test_out_of_range_rejected(self):
        with pytest.raises(TimeParseError):
            to_24h(-1)
        with pytest.raises(TimeParseError):
            to_12h(24 * 60)


class TestRoundTripProperty:
    @given(st.integers(min_value=0, max_value=24 * 60 - 1))
    def test_24h_round_trip(self, minute):
        assert parse_time(to_24h(minute), assume_academic=False) == minute

    @given(st.integers(min_value=0, max_value=24 * 60 - 1))
    def test_12h_round_trip(self, minute):
        assert parse_time(to_12h(minute)) == minute

    @given(st.integers(min_value=8 * 60, max_value=19 * 60))
    def test_q2_transformation(self, minute):
        """The Q2 mapping: a 12h rendering equals its 24h rendering."""
        twelve = to_12h(minute).replace("am", "").replace("pm", "")
        assert parse_time(twelve) == parse_time(to_24h(minute))
