"""Two-kind NULL semantics tests."""

import pytest

from repro.integration import INAPPLICABLE, MISSING, Null, is_null


class TestNullKinds:
    def test_interned(self):
        assert Null("missing") is MISSING
        assert Null("inapplicable") is INAPPLICABLE

    def test_kinds_distinct(self):
        assert MISSING != INAPPLICABLE
        assert MISSING is not INAPPLICABLE

    def test_falsy(self):
        assert not MISSING
        assert not INAPPLICABLE

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            Null("unknown")

    def test_is_null(self):
        assert is_null(MISSING)
        assert is_null(INAPPLICABLE)
        assert not is_null(None)
        assert not is_null("")
        assert not is_null(0)

    def test_repr(self):
        assert repr(MISSING) == "<NULL:missing>"

    def test_equality_only_with_self(self):
        assert MISSING == MISSING
        assert MISSING != "missing"
        assert MISSING != None  # noqa: E711 - deliberate comparison

    def test_hashable(self):
        assert len({MISSING, INAPPLICABLE, MISSING}) == 2


class TestXmlRoundTrip:
    def test_to_xml(self):
        node = INAPPLICABLE.to_xml()
        assert node.tag == "null"
        assert node.get("kind") == "inapplicable"

    def test_round_trip(self):
        for null in (MISSING, INAPPLICABLE):
            assert Null.from_xml(null.to_xml()) is null

    def test_from_xml_rejects_other_elements(self):
        from repro.xmlmodel import element
        with pytest.raises(ValueError):
            Null.from_xml(element("Course"))

    def test_from_xml_rejects_missing_kind(self):
        from repro.xmlmodel import element
        with pytest.raises(ValueError):
            Null.from_xml(element("null"))
