"""UDF library tests: external functions answering challenge queries."""

import pytest

from repro.catalogs import build_testbed, paper_universities
from repro.integration import Effort
from repro.integration.udfs import UDF_EFFORTS, efforts_used, udf_registry
from repro.xquery import XQueryTypeError, run_query


@pytest.fixture(scope="module")
def documents(paper_testbed):
    return paper_testbed.documents


@pytest.fixture(scope="module")
def registry():
    return udf_registry()


class TestTimeUdfs:
    def test_to_24h(self, registry):
        assert run_query("udf:to-24h('1:30pm')", {}, functions=registry) \
            == ["13:30"]

    def test_to_24h_academic_heuristic(self, registry):
        assert run_query("udf:to-24h('1:30')", {}, functions=registry) \
            == ["13:30"]

    def test_to_12h(self, registry):
        assert run_query("udf:to-12h('16:00')", {}, functions=registry) \
            == ["4:00pm"]

    def test_unparseable_raises(self, registry):
        with pytest.raises(XQueryTypeError):
            run_query("udf:to-24h('mittags')", {}, functions=registry)

    def test_q2_answerable_with_udf(self, documents, registry):
        """The paper's Cohera verdict on Q2: 'supportable with a
        user-defined function - small amount of code'. Here it is."""
        source = (
            "for $b in doc('umass.xml')/umass/Course "
            "where udf:to-24h('1:30pm') = substring-before($b/Time, '-') "
            "and $b/Name = '%Database%' "
            "return $b")
        results = run_query(source, documents, functions=registry)
        assert len(results) == 1
        assert results[0].findtext("CourseNum") == "CS445"


class TestWorkloadUdf:
    def test_paper_value(self, registry):
        assert run_query("udf:workload-units('2V1U')", {},
                         functions=registry) == [9.0]

    def test_q4_answerable_with_udf(self, documents, registry):
        source = (
            "for $b in doc('eth.xml')/eth/Vorlesung "
            "where udf:workload-units($b/Umfang) > 10 "
            "and udf:matches-term($b/Titel, 'database') "
            "return $b")
        results = run_query(source, documents, functions=registry)
        assert [r.findtext("Nummer") for r in results] == ["251-0312"]

    def test_garbage_raises(self, registry):
        with pytest.raises(XQueryTypeError):
            run_query("udf:workload-units('nach Absprache')", {},
                      functions=registry)


class TestTranslationUdfs:
    def test_translate_term_sequence(self, registry):
        result = run_query("udf:translate-term('database')", {},
                           functions=registry)
        assert "Datenbank" in result

    def test_matches_term(self, registry):
        assert run_query(
            "udf:matches-term('XML und Datenbanken', 'database')", {},
            functions=registry) == [True]

    def test_q5_answerable_with_udf(self, documents, registry):
        source = (
            "for $b in doc('eth.xml')/eth/Vorlesung "
            "where udf:matches-term($b/Titel, 'database') "
            "return $b/Nummer")
        results = run_query(source, documents, functions=registry)
        assert sorted(r.text for r in results) == \
            ["251-0312", "251-0317"]


class TestEntryLevelUdf:
    def test_marker(self, registry):
        assert run_query("udf:entry-level('First course in sequence')",
                         {}, functions=registry) == [True]

    def test_prerequisite(self, registry):
        assert run_query("udf:entry-level('Prerequisite: 15-213')",
                         {}, functions=registry) == [False]

    def test_q7_answerable_with_udf(self, documents, registry):
        source = (
            "for $b in doc('cmu.xml')/cmu/Course "
            "where $b/CourseTitle = '%Database%' "
            "and udf:entry-level($b/Comment) "
            "return $b/CourseNum")
        results = run_query(source, documents, functions=registry)
        assert [r.text for r in results] == ["15-415"]


class TestEffortAccounting:
    def test_every_udf_has_an_effort(self, registry):
        for name in UDF_EFFORTS:
            assert name in registry

    def test_efforts_used_detects_calls(self):
        used = efforts_used(
            "for $b in $s where udf:to-24h($b/Time) = '13:30' return $b")
        assert used == [("udf:to-24h", Effort.LOW)]

    def test_efforts_used_ignores_absent(self):
        assert efforts_used("for $b in $s return $b") == []

    def test_complexity_scale_matches_paper(self):
        assert UDF_EFFORTS["udf:to-24h"] == Effort.LOW        # Q2 small
        assert UDF_EFFORTS["udf:workload-units"] == Effort.HIGH  # Q4 large
        assert UDF_EFFORTS["udf:translate-term"] == Effort.HIGH  # Q5 large

    def test_base_registry_not_mutated(self):
        from repro.xquery import builtin_registry
        base = builtin_registry()
        udf_registry(base=base)
        assert "udf:to-24h" not in base
