"""Closed-loop properties: canonical data → snapshot → XML → global schema.

The reproduction's central invariant: what the renderers embed, the
scraper + mediator recover. These tests sweep every source (including the
45-source roadmap) and random seeds.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.catalogs import (
    build_source,
    build_testbed,
    extended_universities,
    paper_universities,
)
from repro.integration import is_null, standard_mediator


@pytest.fixture(scope="module")
def integrated(extended_testbed):
    mediator = standard_mediator(extended_universities())
    courses = mediator.integrate(extended_testbed.documents)
    by_source: dict[str, list] = {}
    for course in courses:
        by_source.setdefault(course.source, []).append(course)
    return by_source


class TestRecordRecovery:
    def test_course_counts_match_canonical(self, extended_testbed,
                                            integrated):
        for bundle in extended_testbed:
            assert len(integrated[bundle.slug]) == len(bundle.courses), \
                bundle.slug

    def test_codes_match_canonical(self, extended_testbed, integrated):
        for bundle in extended_testbed:
            canonical = {course.code for course in bundle.courses}
            recovered = {course.code for course in integrated[bundle.slug]}
            assert recovered == canonical, bundle.slug

    def test_first_instructor_recovered(self, extended_testbed, integrated):
        for bundle in extended_testbed:
            canonical = {c.code: c.instructor_names()[0]
                         for c in bundle.courses}
            for course in integrated[bundle.slug]:
                assert course.instructors, (bundle.slug, course.code)
                assert course.instructors[0] == canonical[course.code], \
                    (bundle.slug, course.code)

    def test_titles_recovered_modulo_language(self, extended_testbed,
                                              integrated):
        for bundle in extended_testbed:
            canonical = {c.code: c for c in bundle.courses}
            for course in integrated[bundle.slug]:
                origin = canonical[course.code]
                expected = (origin.title_de
                            if course.language == "de" and origin.title_de
                            else origin.title)
                assert course.title.startswith(expected.split("(")[0].strip()
                                               [:10]), \
                    (bundle.slug, course.code, course.title, expected)

    def test_meeting_times_recovered_where_rendered(self, extended_testbed,
                                                    integrated):
        """Every source that renders a course-level or section-level time
        must yield the canonical start minute after integration."""
        for bundle in extended_testbed:
            if bundle.slug in ("toronto", "ucsd", "umich"):
                continue  # no time surface, or time not in the schema
            canonical = {c.code: c for c in bundle.courses}
            for course in integrated[bundle.slug]:
                origin = canonical[course.code]
                meeting = (origin.sections[0].meeting if origin.sections
                           else origin.meeting)
                if meeting is None:
                    continue
                assert course.start_minute == meeting.start_minute, \
                    (bundle.slug, course.code)

    def test_textbook_policy_everywhere(self, integrated):
        for courses in integrated.values():
            for course in courses:
                assert isinstance(course.textbook, str) or \
                    is_null(course.textbook)


class TestSeedSweepProperty:
    @settings(max_examples=5, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(min_value=0, max_value=10_000))
    def test_gold_answers_seed_invariant(self, seed):
        from repro.core import QUERIES, gold_answer
        reference = build_testbed(universities=paper_universities())
        seeded = build_testbed(seed=seed,
                               universities=paper_universities())
        for query in QUERIES:
            assert gold_answer(query, seeded) == \
                gold_answer(query, reference), f"Q{query.number}@{seed}"

    @settings(max_examples=5, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(min_value=0, max_value=10_000))
    def test_mediator_score_seed_invariant(self, seed):
        from repro.core import run_benchmark
        from repro.systems import thalia_mediator
        testbed = build_testbed(seed=seed,
                                universities=paper_universities())
        card = run_benchmark(thalia_mediator(), testbed)
        assert card.correct_count == 12, f"seed {seed}"

    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(min_value=0, max_value=10_000),
           st.sampled_from([p.slug for p in extended_universities()]))
    def test_extraction_count_matches_canonical(self, seed, slug):
        from repro.catalogs import get_university
        bundle = build_source(get_university(slug), seed)
        assert bundle.stats.records == len(bundle.courses)
