"""Parallel runner determinism: workers=N is byte-identical to serial."""

from repro.core import run_all, run_benchmark
from repro.core.queries import QUERIES
from repro.systems import cohera, iwiz, thalia_mediator
from repro.xquery import shared_result_cache


def _systems():
    return [cohera(), iwiz(), thalia_mediator()]


class TestParallelDeterminism:
    def test_run_all_workers4_byte_identical_to_serial(self, paper_testbed):
        serial = run_all(_systems(), paper_testbed, workers=1)
        parallel = run_all(_systems(), paper_testbed, workers=4)
        assert [card.to_json() for card in serial] == \
            [card.to_json() for card in parallel]

    def test_cold_cache_parallel_matches_warm_serial(self, paper_testbed):
        serial = run_all(_systems(), paper_testbed, workers=1)
        shared_result_cache().clear()
        parallel = run_all(_systems(), paper_testbed, workers=4)
        assert [card.to_json() for card in serial] == \
            [card.to_json() for card in parallel]

    def test_outcomes_in_query_order(self, paper_testbed):
        for card in run_all(_systems(), paper_testbed, workers=4):
            assert [outcome.number for outcome in card.outcomes] == \
                [query.number for query in QUERIES]

    def test_cards_in_input_system_order(self, paper_testbed):
        systems = _systems()
        cards = run_all(systems, paper_testbed, workers=4)
        assert [card.system for card in cards] == \
            [system.name for system in systems]

    def test_run_benchmark_workers_matches_serial(self, paper_testbed):
        serial = run_benchmark(thalia_mediator(), paper_testbed, workers=1)
        parallel = run_benchmark(thalia_mediator(), paper_testbed, workers=4)
        assert serial.to_json() == parallel.to_json()

    def test_oversized_worker_count_is_harmless(self, paper_testbed):
        card = run_benchmark(thalia_mediator(), paper_testbed, workers=64)
        assert len(card.outcomes) == len(QUERIES)


class TestResultReuse:
    def test_gold_computed_once_per_query(self, paper_testbed):
        cache = shared_result_cache()
        cache.clear()
        run_all(_systems(), paper_testbed, workers=1)
        gold_misses = sum(
            1 for (task, _content) in cache._entries
            if task.startswith("gold:"))
        assert gold_misses == len(QUERIES)
        # A second full run over the same testbed recomputes nothing.
        misses_before = cache.misses
        run_all(_systems(), paper_testbed, workers=4)
        assert cache.misses == misses_before

    def test_integrations_shared_across_queries(self, paper_testbed):
        cache = shared_result_cache()
        cache.clear()
        run_benchmark(thalia_mediator(), paper_testbed)
        integrations = [task for (task, _content) in cache._entries
                        if task.startswith("integrate:")]
        # 12 queries × 2 sources = 24 integrations without reuse; the
        # paper set spans far fewer distinct sources.
        assert 0 < len(integrations) < 24
