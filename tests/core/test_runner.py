"""Runner module tests."""

import pytest

from repro.catalogs import build_testbed, paper_universities
from repro.core import QUERIES, get_query
from repro.core.runner import run_all, run_benchmark, run_query
from repro.systems import thalia_mediator


@pytest.fixture(scope="module")
def testbed(paper_testbed):
    return paper_testbed


class TestRunner:
    def test_run_query_outcome_fields(self, testbed):
        outcome = run_query(thalia_mediator(), get_query(1), testbed)
        assert outcome.number == 1
        assert outcome.supported and outcome.correct
        assert "no code" in outcome.note

    def test_run_benchmark_covers_all_queries(self, testbed):
        card = run_benchmark(thalia_mediator(), testbed)
        assert sorted(o.number for o in card.outcomes) == \
            list(range(1, 13))

    def test_run_benchmark_query_subset(self, testbed):
        card = run_benchmark(thalia_mediator(), testbed,
                             queries=[get_query(3), get_query(7)])
        assert sorted(o.number for o in card.outcomes) == [3, 7]

    def test_run_all_shares_one_testbed(self, testbed):
        cards = run_all([thalia_mediator(), thalia_mediator()], testbed)
        assert len(cards) == 2
        assert all(card.correct_count == 12 for card in cards)

    def test_queries_constant_is_complete(self):
        assert len(QUERIES) == 12
