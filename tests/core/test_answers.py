"""Gold-answer tests: the expected integrated results per query."""

import pytest

from repro.catalogs import build_testbed, paper_universities
from repro.core import QUERIES, get_query, gold_answer


@pytest.fixture(scope="module")
def testbed(paper_testbed):
    return paper_testbed


class TestGoldAnswers:
    def test_q1_mark_courses(self, testbed):
        assert gold_answer(1, testbed) == {
            ("gatech", "20381"), ("cmu", "15-567*")}

    def test_q2_database_at_one_thirty(self, testbed):
        assert gold_answer(2, testbed) == {
            ("cmu", "15-415"), ("umass", "CS445")}

    def test_q3_data_structures(self, testbed):
        assert gold_answer(3, testbed) == {
            ("umd", "CMSC420"), ("brown", "CS016")}

    def test_q4_units_above_ten(self, testbed):
        assert gold_answer(4, testbed) == {
            ("cmu", "15-415"), ("eth", "251-0312")}

    def test_q5_database_titles(self, testbed):
        assert gold_answer(5, testbed) == {
            ("umd", "CMSC424"), ("eth", "251-0317"), ("eth", "251-0312")}

    def test_q6_textbooks_with_null_kinds(self, testbed):
        gold = gold_answer(6, testbed)
        assert ("toronto", "CSC410",
                "'Model Checking', by Clarke, Grumberg, Peled, 1999, "
                "MIT Press.") in gold
        assert ("toronto", "CSC465", "null", "missing") in gold
        assert ("cmu", "15-817", "null", "missing") in gold
        assert len(gold) == 3

    def test_q7_entry_level_database(self, testbed):
        assert gold_answer(7, testbed) == {
            ("umich", "EECS484"), ("cmu", "15-415")}

    def test_q8_juniors_with_inapplicable(self, testbed):
        gold = gold_answer(8, testbed)
        assert ("gatech", "20422", "open") in gold
        assert ("eth", "251-0317", "inapplicable") in gold
        assert ("eth", "251-0312", "inapplicable") in gold
        # the SR-only gatech course must not appear
        assert not any(key[1] == "20461" for key in gold)

    def test_q9_software_engineering_rooms(self, testbed):
        assert gold_answer(9, testbed) == {
            ("brown", "CS032", "CIT 165, Labs in Sunlab"),
            ("umd", "CMSC435", "CHM 1407"),
            ("umd", "CMSC435", "EGR 2154")}

    def test_q10_software_instructors(self, testbed):
        gold = gold_answer(10, testbed)
        assert ("cmu", "15-610", "Song") in gold
        assert ("cmu", "15-610", "Wing") in gold
        assert ("umd", "CMSC435", "Singh, H.") in gold
        assert ("umd", "CMSC435", "Memon, A.") in gold

    def test_q11_database_instructors(self, testbed):
        assert gold_answer(11, testbed) == {
            ("cmu", "15-415", "Ailamaki"),
            ("ucsd", "CSE232", "Yannis"),
            ("ucsd", "CSE232", "Deutsch")}

    def test_q12_networks_title_day_time(self, testbed):
        assert gold_answer(12, testbed) == {
            ("cmu", "15-744", "Computer Networks", "F", "15:30-16:50"),
            ("brown", "CS168", "Computer Networks", "M", "15:00-17:30")}

    def test_every_gold_answer_nonempty(self, testbed):
        for query in QUERIES:
            assert gold_answer(query, testbed), f"Q{query.number} gold empty"

    def test_every_gold_answer_spans_both_sources(self, testbed):
        """Each query's answer draws on reference AND challenge source —
        otherwise the heterogeneity would be untested."""
        for query in QUERIES:
            sources = {entry[0] for entry in gold_answer(query, testbed)}
            assert sources == set(query.sources), f"Q{query.number}"

    def test_accepts_query_object_or_number(self, testbed):
        assert gold_answer(3, testbed) == gold_answer(get_query(3), testbed)

    def test_gold_stable_across_seeds(self):
        """Filler never contaminates the gold answers."""
        for seed in (1, 99):
            bed = build_testbed(seed=seed,
                                universities=paper_universities())
            assert gold_answer(1, bed) == {
                ("gatech", "20381"), ("cmu", "15-567*")}
            assert gold_answer(12, bed) == {
                ("cmu", "15-744", "Computer Networks", "F", "15:30-16:50"),
                ("brown", "CS168", "Computer Networks", "M", "15:00-17:30")}
