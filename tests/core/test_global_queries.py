"""Global-schema query tests: the warehouse route through the benchmark."""

import pytest

from repro.catalogs import build_testbed, paper_universities
from repro.core import QUERIES, gold_answer
from repro.core.global_queries import (
    global_query_text,
    run_global_query,
    selected_keys,
)
from repro.integration import Warehouse, standard_mediator
from repro.xquery.parser import parse_query


@pytest.fixture(scope="module")
def testbed(paper_testbed):
    return paper_testbed


@pytest.fixture(scope="module")
def warehouse(testbed):
    return Warehouse(standard_mediator(paper_universities()),
                     testbed.documents)


class TestGlobalQueryTexts:
    def test_all_parse(self):
        for query in QUERIES:
            parse_query(global_query_text(query))

    def test_restricted_to_query_sources(self):
        text = global_query_text(4)
        assert "'cmu'" in text and "'eth'" in text
        assert "'brown'" not in text

    def test_deterministic_ordering_clause(self):
        assert "order by" in global_query_text(1)


class TestSelectionInvariant:
    @pytest.mark.parametrize("number", range(1, 13))
    def test_xquery_selects_exactly_the_gold_keys(self, number, testbed,
                                                  warehouse):
        """The global-schema predicates alone pick the right records —
        this is real query processing, not post-hoc filtering."""
        gold_keys = frozenset(
            (entry[0], entry[1])
            for entry in gold_answer(number, testbed))
        assert selected_keys(number, warehouse) == gold_keys


class TestAnswers:
    @pytest.mark.parametrize("number", range(1, 13))
    def test_warehouse_answer_equals_gold(self, number, testbed,
                                          warehouse):
        assert run_global_query(number, warehouse) == \
            gold_answer(number, testbed)

    def test_q6_null_annotations_survive_the_warehouse(self, warehouse,
                                                       testbed):
        answer = run_global_query(6, warehouse)
        assert ("cmu", "15-817", "null", "missing") in answer
        assert ("toronto", "CSC465", "null", "missing") in answer

    def test_q8_inapplicable_annotation_survives(self, warehouse):
        answer = run_global_query(8, warehouse)
        assert ("eth", "251-0317", "inapplicable") in answer
