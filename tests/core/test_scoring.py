"""Scoring-function tests, including the monotonicity properties."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core import QueryOutcome, ScoreCard, rank
from repro.integration import Effort


def outcome(number, correct=True, effort=Effort.NONE, supported=True):
    return QueryOutcome(number=number, supported=supported,
                        correct=correct, effort=effort)


def card(name, outcomes):
    result = ScoreCard(system=name)
    result.outcomes.extend(outcomes)
    return result


class TestScoreCard:
    def test_correct_count(self):
        c = card("s", [outcome(1), outcome(2, correct=False), outcome(3)])
        assert c.correct_count == 2

    def test_complexity_counts_only_correct(self):
        c = card("s", [outcome(1, effort=Effort.HIGH),
                       outcome(2, correct=False, effort=Effort.HIGH)])
        assert c.complexity_score == 3

    def test_unsupported_charges_nothing(self):
        c = card("s", [outcome(1, correct=False, supported=False,
                               effort=None)])
        assert c.complexity_score == 0
        assert c.unsupported_numbers == [1]

    def test_no_code_count(self):
        c = card("s", [outcome(1, effort=Effort.NONE),
                       outcome(2, effort=Effort.LOW)])
        assert c.no_code_count == 1

    def test_effort_labels(self):
        assert outcome(1, effort=Effort.NONE).effort_label == "no code"
        assert outcome(1, supported=False, effort=None).effort_label == \
            "not supported"

    def test_outcome_lookup(self):
        c = card("s", [outcome(3)])
        assert c.outcome(3).number == 3

    def test_summary_format(self):
        c = card("sys", [outcome(n) for n in range(1, 13)])
        assert "12/12" in c.summary()


class TestRanking:
    def test_more_correct_wins(self):
        better = card("better", [outcome(n) for n in range(1, 11)])
        worse = card("worse", [outcome(n) for n in range(1, 9)])
        assert rank([worse, better])[0].system == "better"

    def test_ties_broken_by_complexity(self):
        cheap = card("cheap", [outcome(1, effort=Effort.NONE)])
        costly = card("costly", [outcome(1, effort=Effort.HIGH)])
        assert rank([costly, cheap])[0].system == "cheap"

    def test_paper_scenario(self):
        """Cohera and IWIZ both at 9 correct; Cohera's lower complexity
        ranks it first (§3.2's tie-break rule)."""
        cohera = card("Cohera", [
            outcome(n, effort=Effort.NONE) for n in (1, 6, 9, 10)
        ] + [outcome(2, effort=Effort.LOW)] + [
            outcome(n, effort=Effort.MEDIUM) for n in (3, 7, 11, 12)
        ] + [outcome(n, correct=False, supported=False, effort=None)
             for n in (4, 5, 8)])
        iwiz = card("IWIZ", [
            outcome(n, effort=Effort.LOW) for n in (1, 2, 9, 10)
        ] + [outcome(n, effort=Effort.MEDIUM) for n in (3, 6, 7, 11, 12)
             ] + [outcome(n, correct=False, supported=False, effort=None)
                  for n in (4, 5, 8)])
        assert cohera.correct_count == iwiz.correct_count == 9
        assert cohera.complexity_score == 9
        assert iwiz.complexity_score == 14
        assert [c.system for c in rank([iwiz, cohera])] == \
            ["Cohera", "IWIZ"]


# --------------------------------------------------------------------------- #
# Properties
# --------------------------------------------------------------------------- #

_outcomes = st.lists(
    st.builds(
        QueryOutcome,
        number=st.integers(1, 12),
        supported=st.booleans(),
        correct=st.booleans(),
        effort=st.sampled_from(list(Effort)),
    ),
    min_size=0, max_size=12)


class TestScoringProperties:
    @given(_outcomes)
    def test_adding_a_correct_answer_never_lowers_rank(self, outcomes):
        base = card("base", outcomes)
        extended = card("extended", outcomes + [
            QueryOutcome(number=99, supported=True, correct=True,
                         effort=Effort.HIGH)])
        ranked = rank([base, extended])
        assert ranked[0].system == "extended"

    @given(_outcomes)
    def test_complexity_never_negative(self, outcomes):
        assert card("c", outcomes).complexity_score >= 0

    @given(_outcomes)
    def test_correct_bounded_by_outcomes(self, outcomes):
        c = card("c", outcomes)
        assert 0 <= c.correct_count <= len(outcomes)

    @given(_outcomes, _outcomes)
    def test_rank_is_total_and_stable(self, first, second):
        cards = [card("a", first), card("b", second)]
        ranked = rank(cards)
        assert {c.system for c in ranked} == {"a", "b"}
        assert ranked[0].sort_key <= ranked[1].sort_key
