"""Report rendering tests."""

import pytest

from repro.core import QueryOutcome, ScoreCard, query_short_name
from repro.core.report import (
    render_query_description,
    render_query_matrix,
    render_scoreboard,
    render_system_table,
)
from repro.integration import Effort


def full_card(name, correct_numbers, effort=Effort.LOW):
    card = ScoreCard(system=name)
    for number in range(1, 13):
        correct = number in correct_numbers
        card.outcomes.append(QueryOutcome(
            number=number, supported=correct, correct=correct,
            effort=effort if correct else None))
    return card


class TestShortNames:
    def test_paper_labels(self):
        assert query_short_name(1) == "renaming columns"
        assert query_short_name(4) == "meaning of credits"
        assert query_short_name(12) == "run on columns"

    def test_unknown_number_raises(self):
        with pytest.raises(KeyError):
            query_short_name(13)


class TestSystemTable:
    def test_lists_all_queries(self):
        text = render_system_table(full_card("sys", {1, 2, 3}))
        for number in range(1, 13):
            assert f"Query {number:>2}" in text

    def test_verdicts(self):
        text = render_system_table(full_card("sys", {1}))
        assert "Query  1 (renaming columns): small amount of code -> " \
            "correct" in text
        assert "Query  2 (24 hour clock): not supported -> incorrect" \
            in text

    def test_summary_line(self):
        text = render_system_table(full_card("sys", set(range(1, 10))))
        assert "sys: 9/12 correct" in text


class TestScoreboard:
    def test_ranked_order(self):
        text = render_scoreboard([
            full_card("low", {1}),
            full_card("high", set(range(1, 13))),
        ])
        assert text.index("high") < text.index("low")

    def test_columns(self):
        text = render_scoreboard([full_card("sys", {1, 2})])
        assert "correct" in text and "complexity" in text
        assert "2/12" in text


class TestQueryMatrix:
    def test_cells(self):
        text = render_query_matrix([full_card("sys", {1})])
        row = text.splitlines()[-1]
        assert "+" in row and "x" in row

    def test_header_lists_queries(self):
        text = render_query_matrix([full_card("sys", set())])
        assert "Q1" in text and "Q12" in text


class TestQueryDescription:
    def test_contains_query_text_and_sources(self):
        text = render_query_description(4)
        assert "Complex Mappings" in text
        assert "cmu" in text and "eth" in text
        assert "Units > 10" in text
        assert "COMPLEX_TRANSFORM" in text
