"""Score-card (de)serialization: JSON round-trip and claim validation."""

import json

import pytest
from hypothesis import given, strategies as st

from repro.core import QueryOutcome, ScoreCard, validate_claims
from repro.integration import Effort

efforts = st.sampled_from([None, Effort.NONE, Effort.LOW, Effort.MEDIUM,
                           Effort.HIGH])


@st.composite
def outcomes(draw, number=None):
    supported = draw(st.booleans())
    return QueryOutcome(
        number=draw(st.integers(1, 12)) if number is None else number,
        supported=supported,
        correct=draw(st.booleans()) if supported else False,
        effort=draw(efforts) if supported else None,
        note=draw(st.text(max_size=40)),
    )


@st.composite
def cards(draw):
    numbers = draw(st.lists(st.integers(1, 12), unique=True, max_size=12))
    card = ScoreCard(system=draw(st.text(min_size=1, max_size=30)))
    for number in numbers:
        card.outcomes.append(draw(outcomes(number=number)))
    return card


class TestRoundTrip:
    @given(cards())
    def test_json_round_trip_is_identity(self, card):
        restored = ScoreCard.from_json(card.to_json())
        assert restored == card

    @given(cards())
    def test_round_trip_preserves_scores(self, card):
        restored = ScoreCard.from_dict(card.to_dict())
        assert restored.correct_count == card.correct_count
        assert restored.complexity_score == card.complexity_score
        assert restored.sort_key == card.sort_key

    @given(cards())
    def test_json_is_valid_and_stable(self, card):
        text = card.to_json()
        assert json.loads(text)["system"] == card.system
        assert ScoreCard.from_json(text).to_json() == text


class TestMalformed:
    def test_not_json(self):
        with pytest.raises(ValueError, match="not valid JSON"):
            ScoreCard.from_json("{nope")

    def test_missing_system(self):
        with pytest.raises(ValueError, match="system"):
            ScoreCard.from_dict({"outcomes": []})

    def test_missing_outcomes(self):
        with pytest.raises(ValueError, match="outcomes"):
            ScoreCard.from_dict({"system": "s"})

    def test_unknown_effort(self):
        with pytest.raises(ValueError, match="effort"):
            ScoreCard.from_dict({"system": "s", "outcomes": [
                {"number": 1, "supported": True, "correct": True,
                 "effort": "HEROIC"}]})

    def test_non_boolean_flags(self):
        with pytest.raises(ValueError, match="boolean"):
            ScoreCard.from_dict({"system": "s", "outcomes": [
                {"number": 1, "supported": "yes", "correct": True,
                 "effort": None}]})


def full_card(correct, effort=Effort.LOW):
    card = ScoreCard(system="sys")
    for number in range(1, 13):
        good = number <= correct
        card.outcomes.append(QueryOutcome(
            number=number, supported=good, correct=good,
            effort=effort if good else None))
    return card


class TestValidateClaims:
    def test_clean_card_passes(self):
        assert validate_claims(full_card(9)) == []

    def test_matching_claims_pass(self):
        assert validate_claims(full_card(9), claimed_correct=9,
                               claimed_complexity=9) == []

    def test_inflated_correct_detected(self):
        problems = validate_claims(full_card(9), claimed_correct=12)
        assert any("re-scores to 9" in p for p in problems)

    def test_deflated_complexity_detected(self):
        problems = validate_claims(full_card(9, effort=Effort.HIGH),
                                   claimed_complexity=0)
        assert any("complexity" in p for p in problems)

    def test_empty_card_rejected(self):
        assert validate_claims(ScoreCard(system="s")) != []

    def test_duplicate_numbers_rejected(self):
        card = ScoreCard(system="s")
        for _ in range(2):
            card.outcomes.append(QueryOutcome(
                number=3, supported=True, correct=True, effort=Effort.NONE))
        assert any("duplicate" in p for p in validate_claims(card))

    def test_out_of_range_number_rejected(self):
        card = ScoreCard(system="s")
        card.outcomes.append(QueryOutcome(
            number=13, supported=True, correct=True, effort=Effort.NONE))
        assert any("out of range" in p for p in validate_claims(card))

    def test_correct_but_unsupported_rejected(self):
        card = ScoreCard(system="s")
        card.outcomes.append(QueryOutcome(
            number=1, supported=False, correct=True, effort=None))
        assert any("unsupported" in p for p in validate_claims(card))

    def test_supported_without_effort_rejected(self):
        card = ScoreCard(system="s")
        card.outcomes.append(QueryOutcome(
            number=1, supported=True, correct=True, effort=None))
        assert any("effort" in p for p in validate_claims(card))

    @given(cards())
    def test_honest_claims_never_flagged_as_inflated(self, card):
        problems = validate_claims(
            card, claimed_correct=card.correct_count,
            claimed_complexity=card.complexity_score)
        assert not any("claims" in p for p in problems)
