"""Benchmark-query definition tests."""

import pytest

from repro.core import QUERIES, get_query
from repro.integration import Capability
from repro.xquery.parser import parse_query


class TestDefinitions:
    def test_twelve_queries(self):
        assert len(QUERIES) == 12
        assert [q.number for q in QUERIES] == list(range(1, 13))

    def test_capability_alignment(self):
        for query in QUERIES:
            assert query.capability.query_number == query.number

    def test_groups_match_paper_taxonomy(self):
        groups = {q.number: q.group for q in QUERIES}
        assert all(groups[n] == "attribute" for n in range(1, 6))
        assert all(groups[n] == "missing-data" for n in range(6, 9))
        assert all(groups[n] == "structural" for n in range(9, 13))

    def test_paper_source_pairings(self):
        pairings = {q.number: q.sources for q in QUERIES}
        assert pairings[1] == ("gatech", "cmu")
        assert pairings[2] == ("cmu", "umass")
        assert pairings[3] == ("umd", "brown")
        assert pairings[4] == ("cmu", "eth")
        assert pairings[5] == ("umd", "eth")
        assert pairings[6] == ("toronto", "cmu")
        assert pairings[7] == ("umich", "cmu")
        assert pairings[8] == ("gatech", "eth")
        assert pairings[9] == ("brown", "umd")
        assert pairings[10] == ("cmu", "umd")
        assert pairings[11] == ("cmu", "ucsd")
        assert pairings[12] == ("cmu", "brown")

    def test_q3_notes_secondary_synonym(self):
        assert Capability.RENAME in get_query(3).secondary_capabilities

    def test_cleaned_xquery_texts_parse(self):
        for query in QUERIES:
            parse_query(query.xquery)

    def test_get_query_bounds(self):
        with pytest.raises(ValueError):
            get_query(0)
        with pytest.raises(ValueError):
            get_query(13)

    def test_every_query_has_challenge_description(self):
        assert all(q.challenge_description for q in QUERIES)

    def test_repr(self):
        assert "Q1" in repr(get_query(1))


class TestRunnableOnTestbed:
    """The cleaned reference queries actually run on the extracted XML."""

    @pytest.fixture(scope="class")
    def documents(self, paper_testbed):
        return paper_testbed.documents

    def test_q1_reference_results(self, documents):
        from repro.xquery import run_query
        results = run_query(get_query(1).xquery, documents)
        assert len(results) == 1
        assert results[0].findtext("CourseNum") == "20381"

    def test_q1_naive_on_challenge_finds_nothing(self, documents):
        """The heterogeneity is real: the reference query, repointed at the
        challenge source, returns nothing (Lecturer, not Instructor)."""
        from repro.xquery import run_query
        naive = get_query(1).xquery.replace("gatech.xml", "cmu.xml") \
            .replace("/gatech/", "/cmu/")
        assert run_query(naive, documents) == []

    def test_q4_naive_on_challenge_type_error(self, documents):
        """Units > 10 against ETH's textual Umfang raises — the visible
        integration failure Q4 is designed to expose."""
        from repro.xquery import XQueryTypeError, run_query
        naive = ("FOR $b in doc('eth.xml')/eth/Vorlesung "
                 "WHERE $b/Umfang > 10 RETURN $b")
        with pytest.raises(XQueryTypeError):
            run_query(naive, documents)

    def test_q6_reference_returns_textbooks(self, documents):
        from repro.xquery import run_query
        results = run_query(get_query(6).xquery, documents)
        texts = [r.normalized_text for r in results]
        assert any("Model Checking" in t for t in texts)

    def test_all_reference_queries_return_nonempty(self, documents):
        from repro.xquery import run_query
        for query in QUERIES:
            results = run_query(query.xquery, documents)
            assert results, f"Q{query.number} returned nothing"
