"""Benchmark self-check tests."""

import pytest

from repro.catalogs import (
    build_testbed,
    extended_universities,
    paper_universities,
)
from repro.core import validate_benchmark


@pytest.fixture(scope="module")
def testbed(paper_testbed):
    return paper_testbed


class TestHealthyTestbed:
    def test_paper_testbed_validates(self, testbed):
        result = validate_benchmark(testbed)
        assert result.ok, result.render()
        assert result.checks_run >= 49

    def test_extended_testbed_validates(self):
        result = validate_benchmark(
            build_testbed(universities=extended_universities()))
        assert result.ok, result.render()

    def test_alternate_seed_validates(self):
        result = validate_benchmark(
            build_testbed(seed=777, universities=paper_universities()))
        assert result.ok, result.render()

    def test_render_mentions_all_clear(self, testbed):
        assert "all invariants hold" in validate_benchmark(testbed).render()


class TestBrokenTestbedDetected:
    def test_missing_source_reported(self):
        partial = build_testbed(
            universities=[p for p in paper_universities()
                          if p.slug != "eth"])
        result = validate_benchmark(partial)
        assert not result.ok
        checks = {issue.check for issue in result.issues}
        assert "sources" in checks

    def test_uncovered_heterogeneity_reported(self):
        # Dropping both Q8 sources leaves the case with no exhibitor.
        partial = build_testbed(
            universities=[p for p in paper_universities()
                          if p.slug not in ("eth", "gatech")])
        result = validate_benchmark(partial)
        assert any(issue.check == "coverage" and issue.query == 8
                   for issue in result.issues)

    def test_issue_names_the_query(self):
        partial = build_testbed(
            universities=[p for p in paper_universities()
                          if p.slug != "ucsd"])
        result = validate_benchmark(partial)
        affected = {issue.query for issue in result.issues
                    if issue.check == "sources"}
        assert 11 in affected

    def test_corrupted_document_reported(self, testbed):
        import copy
        broken = copy.deepcopy(testbed)
        # Corrupt CMU's extracted data: drop every Lecturer element, which
        # breaks Q1's gold reproduction by the mediator.
        root = broken.source("cmu").document.root
        for course in root.findall("Course"):
            course.children = [c for c in course.children
                               if not (hasattr(c, "tag")
                                       and c.tag == "Lecturer")]
        result = validate_benchmark(broken)
        assert not result.ok
        assert any(issue.check == "solvable" and issue.query == 1
                   for issue in result.issues)

    def test_issue_str_format(self):
        from repro.core import ValidationIssue
        issue = ValidationIssue("gold", 3, "empty")
        assert str(issue) == "[gold] Q3: empty"
        testbed_issue = ValidationIssue("coverage", None, "x")
        assert "testbed" in str(testbed_issue)
