"""Honor-roll persistence and ranking tests."""

import pytest

from repro.core import HonorRoll, QueryOutcome, ScoreCard
from repro.integration import Effort


def make_card(name, correct, effort=Effort.LOW):
    card = ScoreCard(system=name)
    for number in range(1, 13):
        is_correct = number <= correct
        card.outcomes.append(QueryOutcome(
            number=number, supported=is_correct, correct=is_correct,
            effort=effort if is_correct else None,
            note="test"))
    return card


class TestSubmission:
    def test_submit_and_rank(self):
        roll = HonorRoll()
        roll.submit(make_card("weak", 3), "alice")
        roll.submit(make_card("strong", 11), "bob")
        ranked = roll.ranked()
        assert [e.card.system for e in ranked] == ["strong", "weak"]

    def test_resubmission_replaces(self):
        roll = HonorRoll()
        roll.submit(make_card("sys", 3), "alice")
        roll.submit(make_card("sys", 10), "alice")
        assert len(roll) == 1
        assert roll.ranked()[0].card.correct_count == 10

    def test_complexity_tie_break(self):
        roll = HonorRoll()
        roll.submit(make_card("costly", 6, effort=Effort.HIGH), "a")
        roll.submit(make_card("cheap", 6, effort=Effort.NONE), "b")
        assert [e.card.system for e in roll.ranked()] == \
            ["cheap", "costly"]

    def test_render_empty(self):
        assert "no scores uploaded yet" in HonorRoll().render()

    def test_render_positions(self):
        roll = HonorRoll()
        roll.submit(make_card("first", 12), "a", date="2004-06-01")
        roll.submit(make_card("second", 6), "b", date="2004-07-01")
        text = roll.render()
        assert text.index("first") < text.index("second")
        assert "2004-06-01" in text


class TestPersistence:
    def test_save_load_round_trip(self, tmp_path):
        roll = HonorRoll()
        roll.submit(make_card("sys-a", 9, effort=Effort.MEDIUM), "alice",
                    date="2004-05-05")
        roll.submit(make_card("sys-b", 12, effort=Effort.LOW), "bob")
        path = roll.save(tmp_path / "roll.json")
        loaded = HonorRoll.load(path)
        assert len(loaded) == 2
        assert [e.card.system for e in loaded.ranked()] == \
            [e.card.system for e in roll.ranked()]
        entry = loaded.ranked()[1]
        assert entry.submitter == "alice"
        assert entry.date == "2004-05-05"
        assert entry.card.complexity_score == \
            roll.ranked()[1].card.complexity_score

    def test_loaded_outcomes_preserve_effort_and_notes(self, tmp_path):
        roll = HonorRoll()
        roll.submit(make_card("sys", 2, effort=Effort.HIGH), "x")
        loaded = HonorRoll.load(roll.save(tmp_path / "r.json"))
        outcome = loaded.ranked()[0].card.outcome(1)
        assert outcome.effort == Effort.HIGH
        assert outcome.note == "test"

    def test_unsupported_outcomes_round_trip(self, tmp_path):
        roll = HonorRoll()
        roll.submit(make_card("sys", 0), "x")
        loaded = HonorRoll.load(roll.save(tmp_path / "r.json"))
        outcome = loaded.ranked()[0].card.outcome(12)
        assert not outcome.supported
        assert outcome.effort is None

    def test_load_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            HonorRoll.load(tmp_path / "absent.json")
