"""Taxonomy rendering tests (the §3 classification artifact)."""

import pytest

from repro.catalogs import build_testbed, paper_universities
from repro.core import all_cases, render_case, render_taxonomy
from repro.integration import Capability


@pytest.fixture(scope="module")
def testbed(paper_testbed):
    return paper_testbed


class TestCases:
    def test_twelve_cases_in_paper_order(self):
        cases = all_cases()
        assert [case.number for case in cases] == list(range(1, 13))

    def test_group_assignment(self):
        cases = {case.number: case for case in all_cases()}
        assert cases[1].group == "Attribute Heterogeneities"
        assert cases[6].group == "Missing Data"
        assert cases[9].group == "Structural Heterogeneities"

    def test_case_binds_query_and_capability(self):
        case = all_cases()[3]
        assert case.capability is Capability.COMPLEX_TRANSFORM
        assert case.query.number == 4
        assert "Umfang" in case.challenge


class TestRendering:
    def test_render_without_samples(self):
        text = render_taxonomy()
        assert "Synonyms" in text
        assert "Attribute Heterogeneities" in text
        assert "Sample element" not in text

    def test_render_with_live_samples(self, testbed):
        text = render_taxonomy(testbed)
        # The paper's own sample values appear, regenerated live.
        assert "<Lecturer>Mark</Lecturer>" in text
        assert "<Time>1:30 - 2:50</Time>" in text
        assert "<Umfang>2V1U</Umfang>" in text
        assert "0101(13795) Singh, H." in text

    def test_sample_matches_the_query_answer(self, testbed):
        case = [c for c in all_cases() if c.number == 1][0]
        text = render_case(case, testbed)
        # Q1's samples are the gatech/cmu "Mark" courses, not arbitrary
        # records.
        assert "20381" in text
        assert "15-567*" in text

    def test_every_case_renders_both_samples(self, testbed):
        for case in all_cases():
            text = render_case(case, testbed)
            assert f"Reference sample element ({case.query.reference})" \
                in text
            assert f"Challenge sample element ({case.query.challenge})" \
                in text

    def test_cli_taxonomy(self, capsys):
        from repro.cli import main
        assert main(["taxonomy", "5", "--no-samples"]) == 0
        out = capsys.readouterr().out
        assert "Language Expression" in out

    def test_cli_taxonomy_full(self, capsys):
        from repro.cli import main
        assert main(["taxonomy", "--no-samples"]) == 0
        out = capsys.readouterr().out
        assert out.count("challenge:") >= 12
