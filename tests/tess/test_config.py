"""Wrapper configuration model tests."""

import pytest

from repro.tess import (
    FieldConfig,
    NestedConfig,
    TessConfigError,
    WrapperConfig,
)


def _simple_config():
    return WrapperConfig(
        source="brown",
        root_tag="brown",
        record_tag="Course",
        record_begin=r"<tr class=.course.>",
        record_end=r"</tr>",
        fields=[
            FieldConfig("CourseNum", r'<td class="num">', r"</td>"),
            FieldConfig("Title", r'<td class="title">', r"</td>",
                        mode="mixed"),
        ],
    )


def _nested_config():
    return WrapperConfig(
        source="umd",
        root_tag="umd",
        record_tag="Course",
        record_begin=r"<div class=.course.>",
        record_end=r"</div>",
        fields=[
            FieldConfig("CourseName", r'<span class="name">', r"</span>"),
            FieldConfig(
                "Sections", r'<table class="sections">', r"</table>",
                nested=NestedConfig(
                    record_tag="Section",
                    begin=r"<tr>",
                    end=r"</tr>",
                    fields=[
                        FieldConfig("id", r'<td class="id">', r"</td>"),
                        FieldConfig("time", r'<td class="time">', r"</td>"),
                    ],
                )),
        ],
    )


class TestValidation:
    def test_valid_config_constructs(self):
        assert _simple_config().source == "brown"

    def test_invalid_regex_rejected(self):
        with pytest.raises(TessConfigError, match="invalid regex"):
            WrapperConfig("x", "x", "Course", "(", "</tr>")

    def test_invalid_field_regex_rejected(self):
        with pytest.raises(TessConfigError):
            FieldConfig("f", "[", "</td>")

    def test_unknown_mode_rejected(self):
        with pytest.raises(TessConfigError, match="unknown mode"):
            FieldConfig("f", "a", "b", mode="fancy")

    def test_attribute_field_cannot_repeat(self):
        with pytest.raises(TessConfigError):
            FieldConfig("f", "a", "b", repeat=True, as_attribute=True)

    def test_duplicate_field_names_rejected(self):
        with pytest.raises(TessConfigError, match="duplicate"):
            WrapperConfig(
                "x", "x", "Course", "<tr>", "</tr>",
                fields=[FieldConfig("A", "a", "b"),
                        FieldConfig("A", "c", "d")])

    def test_has_nested_fields(self):
        assert _nested_config().has_nested_fields
        assert not _simple_config().has_nested_fields


class TestTextRoundTrip:
    def test_simple_round_trip(self):
        config = _simple_config()
        parsed = WrapperConfig.from_text(config.to_text())
        assert parsed.source == config.source
        assert parsed.record_begin == config.record_begin
        assert [f.name for f in parsed.fields] == ["CourseNum", "Title"]
        assert parsed.fields[1].mode == "mixed"

    def test_nested_round_trip(self):
        config = _nested_config()
        parsed = WrapperConfig.from_text(config.to_text())
        nested = parsed.fields[1].nested
        assert nested is not None
        assert nested.record_tag == "Section"
        assert [f.name for f in nested.fields] == ["id", "time"]

    def test_region_round_trip(self):
        config = _simple_config()
        config.region_begin = r"<table id=.catalog.>"
        config.region_end = r"</table>"
        parsed = WrapperConfig.from_text(config.to_text())
        assert parsed.region_begin == config.region_begin
        assert parsed.region_end == config.region_end

    def test_missing_wrapper_section(self):
        with pytest.raises(TessConfigError, match="wrapper"):
            WrapperConfig.from_text("[field X]\nbegin = a\nend = b\n")

    def test_missing_required_key(self):
        with pytest.raises(TessConfigError, match="record_begin"):
            WrapperConfig.from_text(
                "[wrapper]\nsource = x\nroot_tag = x\nrecord_tag = C\n"
                "record_end = e\n")

    def test_field_missing_begin(self):
        with pytest.raises(TessConfigError, match="begin"):
            WrapperConfig.from_text(
                "[wrapper]\nsource = x\nroot_tag = x\nrecord_tag = C\n"
                "record_begin = b\nrecord_end = e\n"
                "[field F]\nend = z\n")

    def test_nested_for_unknown_field(self):
        with pytest.raises(TessConfigError, match="unknown field"):
            WrapperConfig.from_text(
                "[wrapper]\nsource = x\nroot_tag = x\nrecord_tag = C\n"
                "record_begin = b\nrecord_end = e\n"
                "[nested Ghost]\nrecord_tag = S\nbegin = b\nend = e\n")

    def test_unparseable_text(self):
        with pytest.raises(TessConfigError, match="unparseable"):
            WrapperConfig.from_text("not an ini file at all [")

    def test_case_preserved_in_field_names(self):
        parsed = WrapperConfig.from_text(_simple_config().to_text())
        assert parsed.fields[0].name == "CourseNum"
