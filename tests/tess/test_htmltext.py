"""HTML text utility tests."""

from repro.tess import (
    decode_entities,
    first_anchor_href,
    normalize_whitespace,
    strip_tags,
    to_mixed_content,
)
from repro.xmlmodel import XmlElement


class TestBasics:
    def test_decode_entities(self):
        assert decode_entities("Algorithms &amp; Data") == "Algorithms & Data"

    def test_decode_numeric_entities(self):
        assert decode_entities("Z&#252;rich") == "Zürich"

    def test_normalize_whitespace(self):
        assert normalize_whitespace("  a \n b\t\tc ") == "a b c"

    def test_strip_tags(self):
        assert strip_tags("<td><b>CS016</b></td>") == "CS016"

    def test_strip_tags_inserts_spaces(self):
        assert strip_tags("<td>a</td><td>b</td>") == "a b"

    def test_strip_br_becomes_space(self):
        assert strip_tags("line1<br/>line2") == "line1 line2"

    def test_strip_tags_decodes(self):
        assert strip_tags("<i>A &amp; B</i>") == "A & B"


class TestMixedContent:
    def test_anchor_preserved_as_element(self):
        children = to_mixed_content(
            '<a href="http://cs.brown.edu/cs016">Intro to Algorithms</a>'
            ' D hr. MWF 11-12')
        assert isinstance(children[0], XmlElement)
        assert children[0].tag == "a"
        assert children[0].get("href") == "http://cs.brown.edu/cs016"
        assert children[0].text == "Intro to Algorithms"
        assert children[1].strip() == "D hr. MWF 11-12"

    def test_text_before_anchor(self):
        children = to_mixed_content('prefix <a href="u">label</a>')
        assert children[0].strip() == "prefix"
        assert isinstance(children[1], XmlElement)

    def test_plain_text_only(self):
        assert to_mixed_content("<b>just text</b>") == ["just text"]

    def test_empty_fragment(self):
        assert to_mixed_content("   ") == []

    def test_multiple_anchors(self):
        children = to_mixed_content(
            '<a href="u1">one</a> and <a href="u2">two</a>')
        anchors = [c for c in children if isinstance(c, XmlElement)]
        assert [a.get("href") for a in anchors] == ["u1", "u2"]

    def test_single_quoted_href(self):
        children = to_mixed_content("<a href='u'>x</a>")
        assert children[0].get("href") == "u"

    def test_entities_in_href_and_label(self):
        children = to_mixed_content(
            '<a href="u?a=1&amp;b=2">A &amp; B</a>')
        assert children[0].get("href") == "u?a=1&b=2"
        assert children[0].text == "A & B"


class TestFirstAnchor:
    def test_returns_first_href(self):
        assert first_anchor_href(
            '<a href="page1">x</a><a href="page2">y</a>') == "page1"

    def test_none_when_absent(self):
        assert first_anchor_href("no links here") is None
