"""Extraction engine tests, including the nested-structure (UMD) case."""

import pytest

from repro.tess import (
    FieldConfig,
    NestedConfig,
    TessExtractionError,
    TessScraper,
    WrapperConfig,
)

SIMPLE_PAGE = """
<html><body>
<h1>Course Catalog</h1>
<table id="catalog">
<tr class="course"><td class="num">CS016</td>
  <td class="title"><a href="http://cs.brown.edu/cs016">Intro to
  Algorithms &amp; Data Structures</a> D hr. MWF 11-12</td>
  <td class="room">CIT 165, Labs in Sunlab</td></tr>
<tr class="course"><td class="num">CS127</td>
  <td class="title">Databases B hr. TTh 2:30</td>
  <td class="room">CIT 368</td></tr>
</table>
<p>footer noise</p>
</body></html>
"""


def simple_config(**overrides):
    params = dict(
        source="brown",
        root_tag="brown",
        record_tag="Course",
        record_begin=r'<tr class="course">',
        record_end=r"</tr>",
        region_begin=r'<table id="catalog">',
        region_end=r"</table>",
        fields=[
            FieldConfig("CourseNum", r'<td class="num">', r"</td>"),
            FieldConfig("Title", r'<td class="title">', r"</td>",
                        mode="mixed"),
            FieldConfig("Room", r'<td class="room">', r"</td>"),
        ],
    )
    params.update(overrides)
    return WrapperConfig(**params)


NESTED_PAGE = """
<div class="course"><span class="name">Software Engineering;</span>
  <table class="sections">
  <tr><td class="id">0101(13795)</td><td class="inst">Singh, H.</td>
      <td class="time">MW 10:00 CHM 1407</td></tr>
  <tr><td class="id">0201(13796)</td><td class="inst">Memon, A.</td>
      <td class="time">TT 14:00 EGR 2154</td></tr>
  </table>
</div>
<div class="course"><span class="name">Data Structures;</span>
  <table class="sections">
  <tr><td class="id">0101</td><td class="inst">Shankar, A.</td>
      <td class="time">F 9:00 CSI 2117</td></tr>
  </table>
</div>
"""


def nested_config():
    return WrapperConfig(
        source="umd",
        root_tag="umd",
        record_tag="Course",
        record_begin=r'<div class="course">',
        record_end=r"</div>",
        fields=[
            FieldConfig("CourseName", r'<span class="name">', r"</span>"),
            FieldConfig(
                "Sections", r'<table class="sections">', r"</table>",
                nested=NestedConfig(
                    record_tag="Section",
                    begin=r"<tr>",
                    end=r"</tr>",
                    fields=[
                        FieldConfig("id", r'<td class="id">', r"</td>"),
                        FieldConfig("instructor", r'<td class="inst">',
                                    r"</td>"),
                        FieldConfig("time", r'<td class="time">', r"</td>"),
                    ],
                )),
        ],
    )


class TestSimpleExtraction:
    def test_record_count(self):
        doc = TessScraper().extract(SIMPLE_PAGE, simple_config())
        assert len(doc.root.findall("Course")) == 2

    def test_root_and_source(self):
        doc = TessScraper().extract(SIMPLE_PAGE, simple_config())
        assert doc.root.tag == "brown"
        assert doc.source_name == "brown"

    def test_text_field_stripped(self):
        doc = TessScraper().extract(SIMPLE_PAGE, simple_config())
        first = doc.root.find("Course")
        assert first.findtext("CourseNum") == "CS016"
        assert first.findtext("Room") == "CIT 165, Labs in Sunlab"

    def test_mixed_field_preserves_anchor(self):
        doc = TessScraper().extract(SIMPLE_PAGE, simple_config())
        title = doc.root.find("Course").find("Title")
        anchor = title.find("a")
        assert anchor is not None
        assert anchor.get("href") == "http://cs.brown.edu/cs016"
        assert "D hr. MWF 11-12" in title.text

    def test_mixed_field_entity_decoded(self):
        doc = TessScraper().extract(SIMPLE_PAGE, simple_config())
        title = doc.root.find("Course").find("Title")
        assert "Algorithms & Data Structures" in title.normalized_text

    def test_region_excludes_footer(self):
        config = simple_config(
            fields=[FieldConfig("Noise", r"<p>", r"</p>")])
        doc = TessScraper().extract(SIMPLE_PAGE, config)
        assert all(c.find("Noise") is None
                   for c in doc.root.findall("Course"))

    def test_missing_region_raises(self):
        config = simple_config(region_begin=r'<table id="nope">')
        with pytest.raises(TessExtractionError, match="region begin"):
            TessScraper().extract(SIMPLE_PAGE, config)

    def test_missing_region_end_raises(self):
        config = simple_config(region_end=r"</never>")
        with pytest.raises(TessExtractionError, match="region end"):
            TessScraper().extract(SIMPLE_PAGE, config)

    def test_record_without_end_marker_raises(self):
        config = simple_config(record_end=r"</xx>")
        with pytest.raises(TessExtractionError, match="no\\s+end marker"):
            TessScraper().extract(SIMPLE_PAGE, config)

    def test_missing_field_omitted(self):
        config = simple_config(fields=[
            FieldConfig("CourseNum", r'<td class="num">', r"</td>"),
            FieldConfig("Textbook", r'<td class="book">', r"</td>"),
        ])
        doc = TessScraper().extract(SIMPLE_PAGE, config)
        assert doc.root.find("Course").find("Textbook") is None

    def test_stats_recorded(self):
        scraper = TessScraper()
        scraper.extract(SIMPLE_PAGE, simple_config())
        stats = scraper.last_stats
        assert stats.records == 2
        assert stats.fields_extracted == 6
        assert stats.fields_missing == 0

    def test_stats_count_missing(self):
        scraper = TessScraper()
        config = simple_config(fields=[
            FieldConfig("Textbook", r'<td class="book">', r"</td>")])
        scraper.extract(SIMPLE_PAGE, config)
        assert scraper.last_stats.fields_missing == 2

    def test_href_mode_returns_url(self):
        config = simple_config(fields=[
            FieldConfig("TitleLink", r'<td class="title">', r"</td>",
                        mode="href")])
        doc = TessScraper().extract(SIMPLE_PAGE, config)
        assert doc.root.find("Course").findtext("TitleLink") == \
            "http://cs.brown.edu/cs016"

    def test_href_mode_falls_back_to_text(self):
        config = simple_config(fields=[
            FieldConfig("RoomLink", r'<td class="room">', r"</td>",
                        mode="href")])
        doc = TessScraper().extract(SIMPLE_PAGE, config)
        assert doc.root.find("Course").findtext("RoomLink") == \
            "CIT 165, Labs in Sunlab"

    def test_raw_mode_keeps_markup(self):
        config = simple_config(fields=[
            FieldConfig("RawTitle", r'<td class="title">', r"</td>",
                        mode="raw")])
        doc = TessScraper().extract(SIMPLE_PAGE, config)
        assert "<a href=" in doc.root.find("Course").findtext("RawTitle")

    def test_attribute_field(self):
        config = simple_config(fields=[
            FieldConfig("num", r'<td class="num">', r"</td>",
                        as_attribute=True)])
        doc = TessScraper().extract(SIMPLE_PAGE, config)
        assert doc.root.find("Course").get("num") == "CS016"

    def test_field_without_end_runs_to_blob_end(self):
        page = '<tr class="course"><td class="num">CS1</tr>'
        config = simple_config(region_begin=None, region_end=None,
                               fields=[FieldConfig(
                                   "CourseNum", r'<td class="num">',
                                   r"</td>")])
        doc = TessScraper().extract(page, config)
        assert doc.root.find("Course").findtext("CourseNum") == "CS1"

    def test_empty_page_yields_empty_catalog(self):
        config = simple_config(region_begin=None, region_end=None)
        doc = TessScraper().extract("<html></html>", config)
        assert doc.root.findall("Course") == []


class TestNestedExtraction:
    def test_sections_extracted(self):
        doc = TessScraper().extract(NESTED_PAGE, nested_config())
        first = doc.root.find("Course")
        sections = first.find("Sections").findall("Section")
        assert len(sections) == 2
        assert sections[0].findtext("instructor") == "Singh, H."
        assert sections[1].findtext("time") == "TT 14:00 EGR 2154"

    def test_second_course_single_section(self):
        doc = TessScraper().extract(NESTED_PAGE, nested_config())
        second = doc.root.findall("Course")[1]
        assert len(second.find("Sections").findall("Section")) == 1

    def test_original_tess_rejects_nested_config(self):
        original = TessScraper(supports_nesting=False)
        with pytest.raises(TessExtractionError, match="nested-structure"):
            original.extract(NESTED_PAGE, nested_config())

    def test_original_tess_handles_flat_config(self):
        original = TessScraper(supports_nesting=False)
        doc = original.extract(SIMPLE_PAGE, simple_config())
        assert len(doc.root.findall("Course")) == 2

    def test_doubly_nested_rejected(self):
        config = nested_config()
        config.fields[1].nested.fields.append(
            FieldConfig("deep", "a", "b",
                        nested=NestedConfig("X", "c", "d")))
        with pytest.raises(TessExtractionError, match="nest further"):
            TessScraper().extract(NESTED_PAGE, config)

    def test_repeat_field_collects_all(self):
        page = ('<tr class="course"><td class="num">CS1</td>'
                '<td class="inst">A</td><td class="inst">B</td></tr>')
        config = simple_config(
            region_begin=None, region_end=None,
            fields=[FieldConfig("Instructor", r'<td class="inst">',
                                r"</td>", repeat=True)])
        doc = TessScraper().extract(page, config)
        instructors = doc.root.find("Course").findall("Instructor")
        assert [i.text for i in instructors] == ["A", "B"]

    def test_non_repeat_field_takes_first(self):
        page = ('<tr class="course"><td class="inst">A</td>'
                '<td class="inst">B</td></tr>')
        config = simple_config(
            region_begin=None, region_end=None,
            fields=[FieldConfig("Instructor", r'<td class="inst">',
                                r"</td>")])
        doc = TessScraper().extract(page, config)
        assert [i.text for i in
                doc.root.find("Course").findall("Instructor")] == ["A"]
