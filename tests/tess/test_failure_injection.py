"""Failure-injection tests: the scraper under broken or drifting pages.

The paper notes the whole approach "only works as long as the source
remains unchanged. Any syntactic changes to the underlying source must
also be reflected in the configuration file" — these tests pin down what
happens when they are not.
"""

import pytest

from repro.catalogs import get_university
from repro.tess import FieldConfig, TessExtractionError, TessScraper, \
    WrapperConfig


@pytest.fixture()
def brown():
    profile = get_university("brown")
    courses = profile.build_courses(seed=2004)
    return profile, profile.render(courses), profile.wrapper_config()


class TestSnapshotDrift:
    def test_renamed_row_class_extracts_nothing(self, brown):
        """A silent page redesign: records stop matching, yielding an
        empty catalog rather than wrong data."""
        profile, page, config = brown
        drifted = page.replace('class="course"', 'class="courserow"')
        scraper = TessScraper()
        document = scraper.extract(drifted, config)
        assert document.root.findall("Course") == []
        assert scraper.last_stats.records == 0

    def test_renamed_field_class_yields_missing_fields(self, brown):
        profile, page, config = brown
        drifted = page.replace('class="room"', 'class="location"')
        scraper = TessScraper()
        document = scraper.extract(drifted, config)
        assert all(c.find("Room") is None
                   for c in document.root.findall("Course"))
        assert scraper.last_stats.fields_missing > 0

    def test_truncated_page_raises(self, brown):
        """A half-downloaded snapshot: a record begins but never ends."""
        profile, page, config = brown
        start = page.index('<tr class="course">')
        truncated = page[:start + 40]
        with pytest.raises(TessExtractionError, match="no end marker"):
            TessScraper().extract(truncated, config)

    def test_extra_noise_between_records_is_ignored(self, brown):
        profile, page, config = brown
        noisy = page.replace(
            "</tr>", "</tr><!-- advertisement banner -->", 1)
        document = TessScraper().extract(noisy, config)
        assert len(document.root.findall("Course")) == 12

    def test_reordered_columns_still_extract(self, brown):
        """Class-anchored regexes survive column reordering (position-
        anchored ones would not) — the wrapper's robustness choice."""
        profile, page, config = brown
        document = TessScraper().extract(page, config)
        baseline = document.root.find("Course").findtext("CourseNum")
        assert baseline == "CS016"


class TestConfigDrift:
    def test_config_for_wrong_site_mostly_misses(self, brown):
        """Pointing CMU's wrapper at Brown's page yields records with the
        bulk of the fields missing — visible in the stats, not silent."""
        profile, page, __ = brown
        cmu_config = get_university("cmu").wrapper_config()
        scraper = TessScraper()
        document = scraper.extract(page, cmu_config)
        assert all(c.find("CourseTitle") is None
                   for c in document.root.findall("Course"))
        stats = scraper.last_stats
        assert stats.fields_missing > stats.fields_extracted

    def test_stale_config_detectable_via_stats(self, brown):
        """Operationally, drift is detected by stats deltas: the paper
        expects catalogs to turn over 2-3 times a year."""
        profile, page, config = brown
        scraper = TessScraper()
        scraper.extract(page, config)
        healthy = scraper.last_stats
        drifted_page = page.replace('class="titletime"', 'class="tt"')
        scraper.extract(drifted_page, config)
        drifted = scraper.last_stats
        assert drifted.fields_missing > healthy.fields_missing

    def test_catastrophic_regex_rejected_at_config_time(self):
        from repro.tess import TessConfigError
        with pytest.raises(TessConfigError):
            WrapperConfig(
                source="x", root_tag="x", record_tag="Course",
                record_begin="(", record_end="</tr>",
                fields=[FieldConfig("F", "a", "b")])
