"""Planner-era perf cells: per-operator counters in snapshots, and the
cost gate flagging an injected cardinality-estimate regression."""

import pytest

from repro.perf.collect import collect_snapshot
from repro.perf.report import (
    Q_ERROR_FLOOR,
    compare_snapshots,
    render_report,
)
from repro.perf.schema import validate_document


@pytest.fixture(scope="module")
def clean():
    return collect_snapshot(scales=(1,), workers=(1,), repeats=1,
                            label="planner-clean")


@pytest.fixture(scope="module")
def estimate_perturbed():
    return collect_snapshot(scales=(1,), workers=(1,), repeats=1,
                            label="planner-perturbed",
                            perturb_estimates=("Q5",))


class TestOperatorCells:
    def test_snapshot_still_validates(self, clean):
        assert validate_document(clean) == []

    def test_every_row_is_costed_with_operators(self, clean):
        [cell] = clean["cells"]
        for row in cell["queries"]:
            assert row["costed"] is True
            assert row["operators"], row["query"]
            assert row["decisions"]["steps-costed"] >= 1

    def test_operator_rows_pair_estimates_with_actuals(self, clean):
        [cell] = clean["cells"]
        for row in cell["queries"]:
            steps = [op for op in row["operators"]
                     if "strategy" in op]
            assert steps, row["query"]
            for op in steps:
                assert op["est_rows"] >= 0
                assert op["actual_rows"] >= 0
                assert op["calls"] >= 1

    def test_meta_records_the_injection(self, estimate_perturbed):
        assert estimate_perturbed["meta"]["estimate_perturbed"] == ["Q5"]
        assert validate_document(estimate_perturbed) == []

    def test_unknown_injection_target_rejected(self):
        with pytest.raises(ValueError):
            collect_snapshot(scales=(1,), workers=(1,), repeats=1,
                             label="bad", perturb_estimates=("Q99",))


class TestCostGate:
    def test_self_compare_is_clean(self, clean):
        report = compare_snapshots(clean, clean)
        assert report["ok"]
        assert report["cost_regressions"] == []

    def test_injected_estimate_regression_is_flagged(
            self, clean, estimate_perturbed):
        """Answers are untouched by the injection, so only the planner
        columns can catch it — and they must."""
        report = compare_snapshots(clean, estimate_perturbed)
        assert not report["ok"]
        flagged = [entry for entry in report["cost_regressions"]
                   if entry["query"] == "Q5"]
        assert flagged, report["cost_regressions"]
        entry = flagged[0]
        assert entry["kind"] == "estimate-error"
        assert entry["candidate_q_error"] > Q_ERROR_FLOOR
        assert entry["candidate_q_error"] > entry["baseline_q_error"]
        # Results must NOT have changed — that is the point of the
        # injection: wrong estimates, right answers.
        assert not any(reg["kind"] == "results-changed"
                       for reg in report["plan_regressions"])
        rendered = render_report(report)
        assert "COST REGRESSIONS" in rendered
        assert "Q5" in rendered

    def test_other_queries_unaffected(self, clean, estimate_perturbed):
        report = compare_snapshots(clean, estimate_perturbed)
        assert all(entry["query"] == "Q5"
                   for entry in report["cost_regressions"])
        assert all(entry["query"] == "Q5"
                   for entry in report["plan_regressions"])
