"""Scenario replay in the perf collector: pack-tagged cells."""

import pytest

from repro.perf.collect import collect_snapshot
from repro.perf.report import compare_snapshots
from repro.perf.schema import summarize_snapshot, validate_document
from repro.scenarios import ScenarioSuite, build_pack, write_pack


@pytest.fixture(scope="module")
def pack_dir(tmp_path_factory):
    suite = ScenarioSuite.generate(seed=13, cases=2)
    pack = build_pack(suite, suite.build_testbed())
    directory = tmp_path_factory.mktemp("scenario-pack")
    write_pack(pack, directory)
    return directory, pack.fingerprint


@pytest.fixture(scope="module")
def collected(pack_dir):
    directory, _ = pack_dir
    return collect_snapshot(scales=(1,), workers=(1,), repeats=1,
                            label="with-scenarios", scenarios=directory)


class TestScenarioCells:
    def test_snapshot_stays_schema_valid(self, collected):
        """No schema version bump: a pack-tagged snapshot validates
        against the existing perf schema."""
        assert validate_document(collected) == []

    def test_scenario_cell_rides_along(self, collected, pack_dir):
        _, fingerprint = pack_dir
        canonical, scenario = collected["cells"]
        assert "scenario" not in canonical
        assert scenario["scenario"] == fingerprint
        assert [row["query"] for row in scenario["queries"]] == \
            ["S0000", "S0001"]

    def test_summary_names_the_pack(self, collected, pack_dir):
        _, fingerprint = pack_dir
        summary = summarize_snapshot(collected, "inline")
        tagged = [cell for cell in summary["cells"]
                  if cell.get("scenario")]
        assert [cell["scenario"] for cell in tagged] == [fingerprint]

    def test_self_report_keys_cells_by_scenario(self, collected):
        """compare_snapshots must not conflate the canonical (1, 1) cell
        with the scenario (1, 1) cell."""
        report = compare_snapshots(collected, collected)
        assert report["ok"]
        assert report["compared"]["cells"] == 2
        assert report["missing"] == []

    def test_baseline_without_scenarios_still_compares(self, collected):
        plain = collect_snapshot(scales=(1,), workers=(1,), repeats=1,
                                 label="plain")
        report = compare_snapshots(plain, collected,
                                   enforce_timings=False)
        # The canonical cell matches; the scenario cell is candidate-only,
        # reported as a coverage gap rather than a regression.
        assert report["compared"]["cells"] == 1
        assert report["plan_regressions"] == []
        [gap] = report["missing"]
        assert gap["missing_from"] == "baseline"
        assert gap["scenario"]
