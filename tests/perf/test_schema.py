"""Envelope, validation, migration and the repo's own trajectory files."""

import json
from pathlib import Path

import pytest

from repro.perf.schema import (
    KIND_BENCH,
    KIND_REPORT,
    KIND_SNAPSHOT,
    SCHEMA_NAME,
    SCHEMA_VERSION,
    SchemaError,
    is_stamped,
    load_document,
    migrate_legacy,
    stamp,
    summarize_snapshot,
    validate_document,
)

from .conftest import make_cell, make_row, make_snapshot

REPO_ROOT = Path(__file__).resolve().parent.parent.parent


class TestStamp:
    def test_header_comes_first(self):
        doc = stamp(KIND_BENCH, {"bench": "x", "data": 1})
        assert list(doc)[:3] == ["schema", "schema_version", "kind"]
        assert doc["schema"] == SCHEMA_NAME
        assert doc["schema_version"] == SCHEMA_VERSION
        assert doc["kind"] == KIND_BENCH
        assert doc["data"] == 1

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            stamp("trace", {})

    def test_is_stamped(self):
        assert is_stamped(stamp(KIND_REPORT, {}))
        assert not is_stamped({"bench": "x"})
        assert not is_stamped(["not", "a", "dict"])


class TestValidation:
    def test_fixture_snapshot_is_valid(self, baseline_snapshot):
        assert validate_document(baseline_snapshot) == []

    def test_wrong_schema_name(self, baseline_snapshot):
        baseline_snapshot["schema"] = "other"
        assert any("schema:" in p
                   for p in validate_document(baseline_snapshot))

    def test_newer_version_rejected(self, baseline_snapshot):
        baseline_snapshot["schema_version"] = SCHEMA_VERSION + 1
        assert any("newer than this reader" in p
                   for p in validate_document(baseline_snapshot))

    def test_unknown_kind(self, baseline_snapshot):
        baseline_snapshot["kind"] = "trace"
        assert any("kind:" in p
                   for p in validate_document(baseline_snapshot))

    def test_snapshot_requires_cells(self, baseline_snapshot):
        baseline_snapshot["cells"] = []
        assert any("cells: missing or empty" in p
                   for p in validate_document(baseline_snapshot))

    def test_duplicate_cells_flagged(self):
        cell = make_cell([make_row("Q1")])
        doc = make_snapshot([cell, dict(cell)])
        assert any("duplicate cell" in p for p in validate_document(doc))

    def test_bad_fingerprint_flagged(self):
        doc = make_snapshot([make_cell([make_row("Q1")])])
        doc["cells"][0]["queries"][0]["plan_fingerprint"] = "beef"
        assert any("plan_fingerprint" in p for p in validate_document(doc))

    def test_stat_ordering_enforced(self):
        doc = make_snapshot([make_cell([
            make_row("Q1", wall=(300_000, 200_000, 100_000))])])
        assert any("min <= median <= p95" in p
                   for p in validate_document(doc))

    def test_bench_needs_a_name(self):
        assert validate_document(stamp(KIND_BENCH, {"bench": "b"})) == []
        assert any("bench:" in p
                   for p in validate_document(stamp(KIND_BENCH, {})))


class TestLegacyShim:
    def test_unstamped_bench_migrates(self):
        legacy = {"bench": "bench_query", "repeat": 30}
        doc = migrate_legacy(legacy)
        assert doc["kind"] == KIND_BENCH
        assert doc["bench"] == "bench_query"
        assert doc["repeat"] == 30
        assert validate_document(doc) == []

    def test_stamped_doc_passes_through(self, baseline_snapshot):
        assert migrate_legacy(baseline_snapshot) is baseline_snapshot

    def test_unrecognizable_legacy_rejected(self):
        with pytest.raises(SchemaError):
            migrate_legacy({"mystery": True})

    def test_load_document_migrates_on_read(self, tmp_path):
        path = tmp_path / "legacy.json"
        path.write_text(json.dumps({"bench": "bench_scale", "tiers": []}))
        doc = load_document(path)
        assert doc["kind"] == KIND_BENCH
        assert doc["tiers"] == []

    def test_stripping_the_envelope_still_loads(self, tmp_path):
        """Round trip: stamped file, envelope removed, reloads via shim."""
        source = REPO_ROOT / "BENCH_query.json"
        stamped = json.loads(source.read_text(encoding="utf-8"))
        stripped = {key: value for key, value in stamped.items()
                    if key not in ("schema", "schema_version", "kind")}
        path = tmp_path / "stripped.json"
        path.write_text(json.dumps(stripped))
        doc = load_document(path, expect_kind=KIND_BENCH)
        assert doc["bench"] == stamped["bench"]


class TestLoadDocument:
    def test_missing_file(self, tmp_path):
        with pytest.raises(SchemaError):
            load_document(tmp_path / "absent.json")

    def test_garbage_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(SchemaError):
            load_document(path)

    def test_kind_mismatch(self, tmp_path, baseline_snapshot):
        path = tmp_path / "snap.json"
        path.write_text(json.dumps(baseline_snapshot))
        with pytest.raises(SchemaError, match="expected a 'bench'"):
            load_document(path, expect_kind=KIND_BENCH)

    def test_valid_snapshot_loads(self, tmp_path, baseline_snapshot):
        path = tmp_path / "snap.json"
        path.write_text(json.dumps(baseline_snapshot))
        doc = load_document(path, expect_kind=KIND_SNAPSHOT)
        assert doc["meta"]["label"] == "fixture"


class TestRepoTrajectoryFiles:
    """Every committed BENCH_*.json and the perf baseline validate."""

    @pytest.mark.parametrize("name", sorted(
        path.name for path in REPO_ROOT.glob("BENCH_*.json")))
    def test_bench_file_validates(self, name):
        doc = load_document(REPO_ROOT / name, expect_kind=KIND_BENCH)
        assert doc["bench"]

    def test_all_three_bench_files_exist(self):
        names = {path.name for path in REPO_ROOT.glob("BENCH_*.json")}
        assert {"BENCH_query.json", "BENCH_concurrency.json",
                "BENCH_scale.json"} <= names

    def test_committed_baseline_validates(self):
        doc = load_document(REPO_ROOT / "PERF_BASELINE.json",
                            expect_kind=KIND_SNAPSHOT)
        assert doc["meta"]["queries"] == 12
        assert doc["cells"]


class TestSummaries:
    def test_summarize_snapshot(self, baseline_snapshot):
        summary = summarize_snapshot(baseline_snapshot, "perf.json")
        assert summary["path"] == "perf.json"
        assert summary["label"] == "fixture"
        assert summary["cells"] == [
            {"scale": 1, "workers": 1, "queries": 2}]
