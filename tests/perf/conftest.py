"""Builders for hand-made perf snapshots.

The report math is pure dict-in dict-out, so the diff-detection tests
construct tiny synthetic snapshots with exactly the timing shapes they
need instead of measuring anything.  Every helper returns documents that
pass :func:`repro.perf.schema.validate_document` — the tests assert so.
"""

import hashlib

import pytest


def hexdigest(seed: str) -> str:
    """A deterministic sha256 hex string derived from *seed*."""
    return hashlib.sha256(seed.encode("utf-8")).hexdigest()


def stats_block(minimum, median, p95, mean=None, samples=9):
    return {
        "min": minimum,
        "median": median,
        "p95": p95,
        "mean": mean if mean is not None else median,
        "samples": samples,
    }


def make_row(query="Q1", *, explain=None, wall=(100_000, 110_000, 120_000),
             cpu=None, items=3, perturbed=False):
    """One per-query snapshot row.  ``wall``/``cpu`` are (min, median,
    p95) nanosecond triples; cpu defaults to tracking wall."""
    explain = explain if explain is not None \
        else f"plan for {query}\n  scan docs"
    cpu = cpu if cpu is not None else wall
    return {
        "query": query,
        "perturbed": perturbed,
        "plan_fingerprint": hexdigest(f"plan:{explain}"),
        "explain_sha256": hexdigest(f"explain:{explain}"),
        "explain": explain,
        "rewrites": {},
        "items": items,
        "wall_ns": stats_block(*wall),
        "cpu_ns": stats_block(*cpu),
    }


def make_cell(rows, *, scale=1, workers=1):
    return {
        "scale": scale,
        "workers": workers,
        "content_fingerprint": hexdigest(f"content:scale={scale}"),
        "queries": rows,
        "caches": {
            "plan_cache": {"hits": 12, "misses": 12, "lookups": 24},
            "result_cache": {"hits": 12, "misses": 12, "lookups": 24,
                             "served": 24},
        },
    }


def make_snapshot(cells, *, label="fixture", host_id=None,
                  perturbed=(), repeats=3):
    host_id = host_id if host_id is not None else hexdigest("host:fixture")
    return {
        "schema": "thalia-perf",
        "schema_version": 1,
        "kind": "snapshot",
        "meta": {
            "label": label,
            "created": "2026-01-01T00:00:00Z",
            "host": {
                "id": host_id,
                "platform": "fixture-os",
                "machine": "fixture-arch",
                "python": "3.11.0",
                "implementation": "CPython",
                "cpu_count": 1,
            },
            "seed": 2004,
            "repeats": repeats,
            "warmup": 1,
            "queries": len(cells[0]["queries"]) if cells else 0,
            "perturbed": sorted(perturbed),
            "argv_hint": "tests",
        },
        "cells": cells,
    }


@pytest.fixture
def baseline_snapshot():
    """Two queries, one cell — the canonical fixture baseline."""
    return make_snapshot([make_cell([
        make_row("Q1"),
        make_row("Q2", explain="plan for Q2\n  index lookup",
                 wall=(200_000, 210_000, 225_000)),
    ])])
