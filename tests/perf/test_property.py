"""Property: a snapshot compared against itself is always clean.

This is the contract the CI gate rests on — whatever a collector
measured, ``report(A, A)`` must report zero plan and zero timing
regressions, or the gate would flag changes that do not exist.
Hypothesis drives the comparison over arbitrary snapshot shapes;
the real-collector version of the same property lives in
``test_collect.py``.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.perf.report import compare_snapshots
from repro.perf.schema import validate_document

from .conftest import make_cell, make_row, make_snapshot

_labels = st.lists(
    st.sampled_from([f"Q{n}" for n in range(1, 13)]),
    min_size=1, max_size=6, unique=True)


@st.composite
def snapshots(draw):
    cells = []
    for scale, workers in draw(st.lists(
            st.tuples(st.integers(1, 32), st.integers(1, 8)),
            min_size=1, max_size=3, unique=True)):
        rows = []
        for label in draw(_labels):
            samples = sorted(draw(st.lists(
                st.integers(1_000, 50_000_000), min_size=3, max_size=3)))
            cpu = sorted(draw(st.lists(
                st.integers(1_000, 50_000_000), min_size=3, max_size=3)))
            rows.append(make_row(
                label,
                explain=draw(st.text(
                    alphabet="plan scdoxe\n", min_size=1, max_size=30)),
                wall=tuple(samples), cpu=tuple(cpu),
                items=draw(st.integers(0, 500))))
        cells.append(make_cell(rows, scale=scale, workers=workers))
    return make_snapshot(cells, label=draw(st.text(max_size=12)) or "s")


@given(snapshot=snapshots())
@settings(max_examples=60, deadline=None)
def test_self_comparison_is_always_clean(snapshot):
    report = compare_snapshots(snapshot, snapshot)
    assert report["ok"]
    assert report["plan_regressions"] == []
    assert report["timing_regressions"] == []
    assert report["improvements"] == []
    assert report["missing"] == []
    assert report["timings_enforced"]       # same host fingerprint


@given(snapshot=snapshots(),
       threshold=st.floats(0.01, 2.0),
       min_delta_ns=st.integers(0, 10_000_000))
@settings(max_examples=40, deadline=None)
def test_self_comparison_clean_at_any_threshold(snapshot, threshold,
                                                min_delta_ns):
    report = compare_snapshots(snapshot, snapshot, threshold=threshold,
                               min_delta_ns=min_delta_ns)
    assert report["ok"]
    assert report["timing_regressions"] == []


@given(snapshot=snapshots())
@settings(max_examples=30, deadline=None)
def test_generated_snapshots_validate(snapshot):
    """The strategy only produces schema-valid documents — so the
    self-comparison property really covers the whole format."""
    assert validate_document(snapshot) == []
