"""The real collector: schema-valid output, self-comparison, perturb."""

import pytest

from repro.perf.collect import (
    EXECUTIONS_PER_BATCH,
    _stats_ns,
    collect_snapshot,
    host_fingerprint,
)
from repro.perf.report import compare_snapshots
from repro.perf.schema import validate_document


@pytest.fixture(scope="module")
def collected():
    """One cheap real measurement shared by the whole module."""
    return collect_snapshot(scales=(1,), workers=(1,), repeats=2,
                            label="test-collect")


class TestStats:
    def test_single_sample(self):
        stats = _stats_ns([7])
        assert stats == {"min": 7, "median": 7, "p95": 7, "mean": 7,
                         "samples": 1}

    def test_even_count_median_averages(self):
        assert _stats_ns([10, 20, 30, 40])["median"] == 25

    def test_p95_nearest_rank(self):
        samples = list(range(1, 101))
        assert _stats_ns(samples)["p95"] == 95
        assert _stats_ns([1, 2, 3])["p95"] == 3

    def test_ordering_invariant(self):
        stats = _stats_ns([500, 100, 300, 200, 400])
        assert stats["min"] <= stats["median"] <= stats["p95"]


class TestHostFingerprint:
    def test_stable_within_process(self):
        assert host_fingerprint() == host_fingerprint()

    def test_id_digests_the_facts(self):
        host = host_fingerprint()
        assert len(host["id"]) == 64
        assert host["platform"]
        assert host["cpu_count"] >= 1


class TestCollect:
    def test_snapshot_validates(self, collected):
        assert validate_document(collected) == []

    def test_covers_all_twelve_queries(self, collected):
        [cell] = collected["cells"]
        assert [row["query"] for row in cell["queries"]] \
            == [f"Q{n}" for n in range(1, 13)]
        assert (cell["scale"], cell["workers"]) == (1, 1)

    def test_sample_counts(self, collected):
        for row in collected["cells"][0]["queries"]:
            assert row["wall_ns"]["samples"] \
                == 2 * 1 * EXECUTIONS_PER_BATCH
            assert not row["perturbed"]

    def test_cache_counters_recorded(self, collected):
        caches = collected["cells"][0]["caches"]
        # One miss then one steady-state hit per query.
        assert caches["plan_cache"]["misses"] == 12
        assert caches["plan_cache"]["hits"] == 12
        assert caches["result_cache"]["misses"] == 12
        assert caches["result_cache"]["hits"] == 12

    def test_self_report_is_clean(self, collected):
        """collect → report(A, A): zero regressions, enforced timings."""
        report = compare_snapshots(collected, collected)
        assert report["ok"]
        assert report["plan_regressions"] == []
        assert report["timing_regressions"] == []
        assert report["timings_enforced"]

    def test_repeats_validated(self):
        with pytest.raises(ValueError):
            collect_snapshot(repeats=0)

    def test_unknown_perturb_target_rejected(self):
        with pytest.raises(ValueError, match="Q99"):
            collect_snapshot(perturb=("Q99",))


class TestPerturb:
    def test_perturbed_query_changes_plan_not_results(self, collected):
        perturbed = collect_snapshot(scales=(1,), workers=(1,), repeats=1,
                                     label="perturbed", perturb=("Q5",))
        assert validate_document(perturbed) == []
        assert perturbed["meta"]["perturbed"] == ["Q5"]
        rows = {row["query"]: row
                for row in perturbed["cells"][0]["queries"]}
        assert rows["Q5"]["perturbed"]
        assert "perturbed: index-paths disabled" in rows["Q5"]["explain"]

        report = compare_snapshots(collected, perturbed,
                                   enforce_timings=False)
        assert not report["ok"]
        plan_hits = {entry["query"]
                     for entry in report["plan_regressions"]}
        assert plan_hits == {"Q5"}
        [entry] = [e for e in report["plan_regressions"]
                   if e["kind"] == "plan-changed"]
        assert "perturbed: index-paths disabled" in entry["explain_diff"]
        # Perturbation changes *how*, never *what*: no results-changed
        # finding, so cardinalities agreed everywhere.
        assert all(e["kind"] == "plan-changed"
                   for e in report["plan_regressions"])
