"""Differential test: ``Plan.explain()`` is byte-stable across processes.

The perf gate compares ``explain_sha256`` and ``plan_fingerprint``
between snapshots collected in different processes (often on different
days), so both must be pure functions of the query text and the
registered function set — never of object ids, dict iteration order,
or interpreter session state.  Two fresh interpreters compile all
twelve queries and must print byte-identical dumps.
"""

import json
import subprocess
import sys
from pathlib import Path

REPO_SRC = Path(__file__).resolve().parent.parent.parent / "src"

_DUMP_SCRIPT = """\
import json, sys
from repro.core import QUERIES
from repro.xquery.plan import compile_query

dump = {}
for query in QUERIES:
    plan = compile_query(query.xquery)
    dump[f"Q{query.number}"] = {
        "explain": plan.explain(),
        "explain_sha256": plan.explain_fingerprint,
        "identity": plan.identity,
    }
json.dump(dump, sys.stdout, sort_keys=True)
"""


def _dump_in_fresh_process(extra_env=None):
    env = {"PYTHONPATH": str(REPO_SRC), "PYTHONHASHSEED": "random"}
    if extra_env:
        env.update(extra_env)
    result = subprocess.run(
        [sys.executable, "-c", _DUMP_SCRIPT],
        capture_output=True, text=True, env=env, timeout=120)
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_explain_is_byte_identical_across_processes():
    first = _dump_in_fresh_process()
    second = _dump_in_fresh_process()
    assert first == second
    dump = json.loads(first)
    assert sorted(dump, key=lambda q: (len(q), q)) \
        == [f"Q{n}" for n in range(1, 13)]
    for row in dump.values():
        assert row["explain"]
        assert len(row["explain_sha256"]) == 64
        assert len(row["identity"]) == 64


def test_fresh_process_matches_this_process():
    """The subprocess dump agrees with an in-process compile, so
    committed baselines stay comparable to future collections."""
    from repro.core import QUERIES
    from repro.xquery.plan import compile_query

    dump = json.loads(_dump_in_fresh_process())
    for query in QUERIES:
        plan = compile_query(query.xquery)
        row = dump[f"Q{query.number}"]
        assert row["explain"] == plan.explain()
        assert row["explain_sha256"] == plan.explain_fingerprint
        assert row["identity"] == plan.identity


def test_distinct_queries_have_distinct_identities():
    from repro.core import QUERIES
    from repro.xquery.plan import compile_query

    identities = [compile_query(q.xquery).identity for q in QUERIES]
    assert len(set(identities)) == len(identities)
