"""Diff detection: plan changes vs timing changes vs clean runs.

All inputs are synthetic snapshots from :mod:`tests.perf.conftest`, so
every branch of the regression rules is exercised deterministically —
no measurement, no flakiness.
"""

import copy

from repro.perf.report import compare_snapshots, render_report
from repro.perf.schema import validate_document

from .conftest import hexdigest, make_cell, make_row, make_snapshot


def _clone(snapshot, label="candidate"):
    candidate = copy.deepcopy(snapshot)
    candidate["meta"]["label"] = label
    return candidate


class TestCleanComparison:
    def test_identical_snapshots_are_clean(self, baseline_snapshot):
        report = compare_snapshots(baseline_snapshot,
                                   _clone(baseline_snapshot))
        assert report["ok"]
        assert report["plan_regressions"] == []
        assert report["timing_regressions"] == []
        assert report["improvements"] == []
        assert report["missing"] == []
        assert report["compared"] == {"cells": 1, "queries": 2}
        assert report["hosts_match"]
        assert report["timings_enforced"]

    def test_report_is_a_valid_stamped_document(self, baseline_snapshot):
        report = compare_snapshots(baseline_snapshot,
                                   _clone(baseline_snapshot))
        assert report["kind"] == "report"
        assert validate_document(report) == []

    def test_small_jitter_below_threshold_is_clean(self, baseline_snapshot):
        candidate = _clone(baseline_snapshot)
        for row in candidate["cells"][0]["queries"]:
            for block in (row["wall_ns"], row["cpu_ns"]):
                for key in ("min", "median", "p95", "mean"):
                    block[key] = int(block[key] * 1.1)   # +10% < 25%
        report = compare_snapshots(baseline_snapshot, candidate)
        assert report["ok"]
        assert report["timing_regressions"] == []


class TestPlanRegressions:
    def test_changed_explain_is_a_plan_regression(self, baseline_snapshot):
        candidate = _clone(baseline_snapshot)
        candidate["cells"][0]["queries"][1] = make_row(
            "Q2", explain="plan for Q2\n  full scan",
            wall=(200_000, 210_000, 225_000))
        report = compare_snapshots(baseline_snapshot, candidate)
        assert not report["ok"]
        [entry] = report["plan_regressions"]
        assert entry["query"] == "Q2"
        assert entry["kind"] == "plan-changed"
        assert "-  index lookup" in entry["explain_diff"]
        assert "+  full scan" in entry["explain_diff"]

    def test_plan_regressions_enforced_across_hosts(self, baseline_snapshot):
        candidate = _clone(baseline_snapshot)
        candidate["meta"]["host"]["id"] = hexdigest("host:other")
        candidate["cells"][0]["queries"][0] = make_row(
            "Q1", explain="plan for Q1\n  different")
        report = compare_snapshots(baseline_snapshot, candidate)
        assert not report["hosts_match"]
        assert not report["timings_enforced"]
        assert not report["ok"]               # plan gate still fails
        assert report["plan_regressions"][0]["query"] == "Q1"

    def test_changed_cardinality_is_results_changed(self, baseline_snapshot):
        candidate = _clone(baseline_snapshot)
        candidate["cells"][0]["queries"][0]["items"] = 99
        report = compare_snapshots(baseline_snapshot, candidate)
        assert not report["ok"]
        [entry] = report["plan_regressions"]
        assert entry["kind"] == "results-changed"
        assert entry["baseline_items"] == 3
        assert entry["candidate_items"] == 99


class TestTimingRegressions:
    def _slow_candidate(self, baseline, factor=2.0):
        candidate = _clone(baseline, "slower")
        for row in candidate["cells"][0]["queries"]:
            for block in (row["wall_ns"], row["cpu_ns"]):
                for key in ("min", "median", "p95", "mean"):
                    block[key] = int(block[key] * factor)
        return candidate

    def test_doubled_timings_regress(self, baseline_snapshot):
        report = compare_snapshots(baseline_snapshot,
                                   self._slow_candidate(baseline_snapshot))
        assert not report["ok"]
        assert {e["query"] for e in report["timing_regressions"]} \
            == {"Q1", "Q2"}
        assert report["plan_regressions"] == []
        entry = report["timing_regressions"][0]
        assert entry["slowdown"] > 0.25
        assert entry["cpu_slowdown"] > 0.125

    def test_wall_slowdown_without_cpu_is_noise(self, baseline_snapshot):
        """Scheduler stalls inflate wall but not CPU: not a regression."""
        candidate = self._slow_candidate(baseline_snapshot)
        for base_row, cand_row in zip(
                baseline_snapshot["cells"][0]["queries"],
                candidate["cells"][0]["queries"]):
            cand_row["cpu_ns"] = dict(base_row["cpu_ns"])
        report = compare_snapshots(baseline_snapshot, candidate)
        assert report["ok"]
        assert report["timing_regressions"] == []

    def test_shifted_median_with_same_floor_is_noise(self, baseline_snapshot):
        """A real regression slows the best run too."""
        candidate = self._slow_candidate(baseline_snapshot)
        for base_row, cand_row in zip(
                baseline_snapshot["cells"][0]["queries"],
                candidate["cells"][0]["queries"]):
            cand_row["wall_ns"]["min"] = base_row["wall_ns"]["min"]
        report = compare_snapshots(baseline_snapshot, candidate)
        assert report["timing_regressions"] == []

    def test_noisy_baseline_swallows_the_signal(self):
        """A snapshot that varies 80% against itself can't prove +50%."""
        base = make_snapshot([make_cell([
            make_row("Q1", wall=(100_000, 110_000, 190_000))])])
        cand = make_snapshot([make_cell([
            make_row("Q1", wall=(150_000, 165_000, 285_000))])],
            label="noisy")
        report = compare_snapshots(base, cand)
        assert report["timing_regressions"] == []
        assert report["ok"]

    def test_sub_floor_deltas_ignored(self):
        """Tiny absolute deltas never regress, whatever the ratio."""
        base = make_snapshot([make_cell([
            make_row("Q1", wall=(1_000, 1_100, 1_200),
                     cpu=(1_000, 1_100, 1_200))])])
        cand = make_snapshot([make_cell([
            make_row("Q1", wall=(10_000, 11_000, 12_000),
                     cpu=(10_000, 11_000, 12_000))])], label="10x-of-tiny")
        report = compare_snapshots(base, cand)
        assert report["timing_regressions"] == []

    def test_cross_host_timings_informational(self, baseline_snapshot):
        candidate = self._slow_candidate(baseline_snapshot)
        candidate["meta"]["host"]["id"] = hexdigest("host:ci-runner")
        report = compare_snapshots(baseline_snapshot, candidate)
        assert not report["timings_enforced"]
        assert report["timing_regressions"]   # still reported...
        assert report["ok"]                   # ...but not enforced

    def test_enforce_timings_override(self, baseline_snapshot):
        candidate = self._slow_candidate(baseline_snapshot)
        candidate["meta"]["host"]["id"] = hexdigest("host:ci-runner")
        forced = compare_snapshots(baseline_snapshot, candidate,
                                   enforce_timings=True)
        assert not forced["ok"]
        relaxed = compare_snapshots(baseline_snapshot,
                                    self._slow_candidate(baseline_snapshot),
                                    enforce_timings=False)
        assert relaxed["ok"]

    def test_speedups_are_improvements(self, baseline_snapshot):
        candidate = _clone(baseline_snapshot, "faster")
        for row in candidate["cells"][0]["queries"]:
            for block in (row["wall_ns"], row["cpu_ns"]):
                for key in ("min", "median", "p95", "mean"):
                    block[key] = int(block[key] * 0.5)
        report = compare_snapshots(baseline_snapshot, candidate)
        assert report["ok"]
        assert {e["query"] for e in report["improvements"]} == {"Q1", "Q2"}


class TestCoverage:
    def test_missing_query_is_a_gap_not_a_failure(self, baseline_snapshot):
        candidate = _clone(baseline_snapshot)
        del candidate["cells"][0]["queries"][1]
        report = compare_snapshots(baseline_snapshot, candidate)
        assert report["ok"]
        [gap] = report["missing"]
        assert gap["query"] == "Q2"
        assert gap["missing_from"] == "candidate"

    def test_missing_cell_is_a_gap(self, baseline_snapshot):
        candidate = _clone(baseline_snapshot)
        candidate["cells"].append(make_cell([make_row("Q1")], scale=8))
        report = compare_snapshots(baseline_snapshot, candidate)
        assert report["ok"]
        [gap] = report["missing"]
        assert (gap["scale"], gap["missing_from"]) == (8, "baseline")


class TestRendering:
    def test_clean_report_renders_ok(self, baseline_snapshot):
        text = render_report(compare_snapshots(
            baseline_snapshot, _clone(baseline_snapshot)))
        assert "verdict: OK" in text
        assert "timings enforced" in text

    def test_failing_report_names_the_query(self, baseline_snapshot):
        candidate = _clone(baseline_snapshot)
        candidate["cells"][0]["queries"][1] = make_row(
            "Q2", explain="plan for Q2\n  full scan",
            wall=(200_000, 210_000, 225_000))
        text = render_report(compare_snapshots(baseline_snapshot, candidate))
        assert "verdict: FAIL" in text
        assert "PLAN REGRESSIONS (1):" in text
        assert "Q2" in text
        assert "+  full scan" in text
