"""POST /api/explain and the planner block of /api/stats."""

import json
import urllib.error
import urllib.request

import pytest

from repro.core import QUERIES
from repro.server import HonorRollStore, ThaliaApp, ThaliaServer


def fetch(base, path, data=None, headers=None, method=None):
    if method is None:
        method = "POST" if data is not None else "GET"
    request = urllib.request.Request(base + path, data=data,
                                     headers=headers or {}, method=method)
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, dict(response.headers), response.read()
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), exc.read()


def post_json(base, path, payload):
    return fetch(base, path, data=json.dumps(payload).encode("utf-8"),
                 headers={"Content-Type": "application/json"})


@pytest.fixture(scope="module")
def server(paper_testbed, tmp_path_factory):
    store = HonorRollStore(
        tmp_path_factory.mktemp("scores") / "roll.jsonl")
    app = ThaliaApp(testbed=paper_testbed, store=store)
    with ThaliaServer(app, port=0, pool_size=8) as running:
        yield running


@pytest.fixture(scope="module")
def base(server):
    return server.url


class TestExplainEndpoint:
    def test_plain_explain(self, base):
        status, headers, body = post_json(
            base, "/api/explain", {"xquery": QUERIES[0].xquery})
        assert status == 200
        payload = json.loads(body)
        assert payload["explain"]["costed"] is True
        assert payload["explain"]["analyzed"] is False
        assert payload["explain"]["root"]["children"]
        assert payload["text"].startswith("plan for:")
        assert "actual rows=" not in payload["text"]
        assert "ETag" in headers

    def test_analyze_joins_actuals(self, base):
        status, _headers, body = post_json(
            base, "/api/explain",
            {"xquery": QUERIES[0].xquery, "analyze": True})
        assert status == 200
        payload = json.loads(body)
        assert payload["explain"]["analyzed"] is True
        assert payload["explain"]["root"]["actual"]["calls"] >= 1
        assert "actual rows=" in payload["text"]

    def test_etag_revalidation(self, base):
        request = {"xquery": QUERIES[1].xquery}
        _status, headers, _body = post_json(base, "/api/explain", request)
        etag = headers["ETag"]
        status, _headers, body = fetch(
            base, "/api/explain",
            data=json.dumps(request).encode("utf-8"),
            headers={"Content-Type": "application/json",
                     "If-None-Match": etag})
        assert status == 304
        assert body == b""

    def test_single_source_scope(self, base):
        status, _headers, body = post_json(
            base, "/api/explain",
            {"xquery": "doc('cmu.xml')//Course", "source": "cmu",
             "analyze": True})
        assert status == 200
        payload = json.loads(body)
        assert payload["explain"]["root"]["actual"]["rows"] > 0

    def test_unknown_source_404(self, base):
        status, _headers, _body = post_json(
            base, "/api/explain",
            {"xquery": "1 + 1", "source": "nope"})
        assert status == 404

    def test_syntax_error_carries_location(self, base):
        status, _headers, body = post_json(
            base, "/api/explain", {"xquery": "for $x in (1,"})
        assert status == 400
        payload = json.loads(body)
        assert "XQuerySyntaxError" in payload["error"]
        assert payload["line"] >= 1

    def test_malformed_body_rejected(self, base):
        status, _headers, _body = post_json(base, "/api/explain",
                                            {"analyze": True})
        assert status == 400
        status, _headers, _body = post_json(
            base, "/api/explain", {"xquery": "1", "analyze": "yes"})
        assert status == 400


class TestPlannerStats:
    def test_stats_planner_block(self, base):
        post_json(base, "/api/explain",
                  {"xquery": QUERIES[2].xquery, "analyze": True})
        status, _headers, body = fetch(base, "/api/stats")
        assert status == 200
        planner = json.loads(body)["planner"]
        assert planner["explains"] >= 1
        assert planner["analyzed_explains"] >= 1
        assert planner["costed_plans"] >= 1
        assert planner["costed_decisions"]["steps-costed"] >= 1
        cache = planner["statistics_cache"]
        assert cache["hits"] + cache["misses"] >= 1
        like_cache = planner["like_cache"]
        assert set(like_cache) == {"hits", "misses", "entries", "maxsize"}
        assert like_cache["maxsize"] >= like_cache["entries"] >= 0
        errors = planner["estimate_errors"]
        assert errors is not None
        assert errors["count"] >= 1
        assert errors["p50"] <= errors["p95"] <= errors["max"]
