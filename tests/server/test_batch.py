"""POST /api/query/batch and single-flight behavior of /api/query.

Driven through ``ThaliaApp.handle`` directly (no sockets): the app layer
is where caching, coalescing and batch fan-out live.
"""

import json
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.server import ThaliaApp
from repro.server.handlers import MAX_BATCH_QUERIES
from repro.server.router import Request

CMU_QUERY = 'FOR $c in doc("cmu.xml")/cmu/Course RETURN $c/CourseTitle'
ETH_QUERY = 'FOR $v in doc("eth.xml")/eth/Vorlesung RETURN $v/Titel'


def post(app, path, payload):
    response = app.handle(Request(
        method="POST", path=path,
        headers={"content-type": "application/json"},
        body=json.dumps(payload).encode("utf-8")))
    return response.status, json.loads(response.body.decode("utf-8"))


@pytest.fixture(scope="module")
def app(paper_testbed, tmp_path_factory):
    application = ThaliaApp(
        testbed=paper_testbed,
        scores_path=tmp_path_factory.mktemp("scores") / "roll.jsonl",
        query_workers=4)
    yield application
    application.close()


class TestSingleQueryCaching:
    def test_repeat_query_is_served_cached(self, app):
        payload = {"xquery": CMU_QUERY, "source": "cmu"}
        status, first = post(app, "/api/query", payload)
        assert status == 200 and first["count"] > 0
        status, second = post(app, "/api/query", payload)
        assert status == 200
        assert second["cached"] is True
        assert first["cached"] is False or first["cached"] is True
        assert second["items"] == first["items"]
        assert second["plan"] == first["plan"]

    def test_source_scope_changes_cache_key(self, app):
        scoped_status, scoped = post(
            app, "/api/query", {"xquery": CMU_QUERY, "source": "cmu"})
        full_status, full = post(app, "/api/query", {"xquery": CMU_QUERY})
        assert scoped_status == full_status == 200
        # Same answer either way (the query only reads cmu), but the two
        # scopes are distinct cache entries with distinct fingerprints.
        assert scoped["items"] == full["items"]
        assert app.results.stats()["size"] >= 2

    def test_stats_exposes_result_cache(self, app):
        response = app.handle(Request(method="GET", path="/api/stats"))
        payload = json.loads(response.body.decode("utf-8"))
        assert "result_cache" in payload
        for key in ("hits", "misses", "coalesced", "evictions", "bytes"):
            assert key in payload["result_cache"]

    def test_syntax_error_still_400(self, app):
        status, body = post(app, "/api/query", {"xquery": "FOR $x IN IN"})
        assert status == 400
        assert "XQuerySyntaxError" in body["error"]

    def test_unknown_source_still_404(self, app):
        status, body = post(app, "/api/query",
                            {"xquery": CMU_QUERY, "source": "nowhere"})
        assert status == 404


class TestBatchEndpoint:
    def test_batch_runs_in_input_order(self, app):
        status, body = post(app, "/api/query/batch", {"queries": [
            {"xquery": CMU_QUERY, "source": "cmu"},
            {"xquery": ETH_QUERY, "source": "eth"},
        ]})
        assert status == 200 and body["count"] == 2
        first, second = body["results"]
        assert first["status"] == second["status"] == 200
        assert "CourseTitle" in first["items"][0]
        assert "Titel" in second["items"][0]

    def test_batch_matches_single_endpoint(self, app):
        _, single = post(app, "/api/query",
                         {"xquery": CMU_QUERY, "source": "cmu"})
        _, batch = post(app, "/api/query/batch", {"queries": [
            {"xquery": CMU_QUERY, "source": "cmu"}]})
        assert batch["results"][0]["items"] == single["items"]

    def test_bad_item_does_not_sink_batch(self, app):
        status, body = post(app, "/api/query/batch", {"queries": [
            {"xquery": CMU_QUERY, "source": "cmu"},
            {"xquery": "FOR $x IN IN"},
            {"xquery": CMU_QUERY, "source": "nowhere"},
        ]})
        assert status == 200
        statuses = [result["status"] for result in body["results"]]
        assert statuses == [200, 400, 404]

    def test_rejects_malformed_bodies(self, app):
        assert post(app, "/api/query/batch", {"queries": []})[0] == 400
        assert post(app, "/api/query/batch", {"nope": 1})[0] == 400
        assert post(app, "/api/query/batch", [CMU_QUERY])[0] == 400

    def test_rejects_oversized_batch(self, app):
        queries = [{"xquery": CMU_QUERY}] * (MAX_BATCH_QUERIES + 1)
        status, body = post(app, "/api/query/batch", {"queries": queries})
        assert status == 400
        assert "batch limit" in body["error"]


class TestCoalescing:
    def test_identical_concurrent_requests_execute_once(
            self, paper_testbed, tmp_path):
        app = ThaliaApp(testbed=paper_testbed,
                        scores_path=tmp_path / "roll.jsonl",
                        query_workers=4)
        try:
            # Fresh app: warmed plans have runs == 0.  A query no one has
            # run yet, issued N times concurrently, must execute exactly
            # once — followers coalesce onto the leader's flight.
            source = ('FOR $c in doc("cmu.xml")/cmu/Course '
                      'WHERE contains($c/CourseTitle, "Database") '
                      'RETURN $c')
            plan = app.plans.get(source)
            assert plan.runs == 0
            barrier = threading.Barrier(8)

            def issue():
                barrier.wait(timeout=30)
                return post(app, "/api/query",
                            {"xquery": source, "source": "cmu"})

            with ThreadPoolExecutor(max_workers=8) as pool:
                outcomes = list(pool.map(lambda _: issue(), range(8)))

            assert plan.runs == 1
            bodies = [body for status, body in outcomes if status == 200]
            assert len(bodies) == 8
            assert all(body["items"] == bodies[0]["items"]
                       for body in bodies)
            stats = app.results.stats()
            assert stats["misses"] == 1
            assert stats["coalesced"] + stats["hits"] == 7
        finally:
            app.close()
