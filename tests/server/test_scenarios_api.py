"""The scenario endpoints: POST generate, GET download, stats block."""

import json

import pytest

from repro.server import ThaliaApp
from repro.server.app import MAX_SCENARIO_PACKS
from repro.server.router import Request


def post(app, path, payload):
    response = app.handle(Request(
        method="POST", path=path,
        headers={"content-type": "application/json"},
        body=json.dumps(payload).encode("utf-8")))
    return response.status, json.loads(response.body.decode("utf-8"))


def get(app, path, headers=None):
    return app.handle(Request(method="GET", path=path,
                              headers=headers or {}))


@pytest.fixture(scope="module")
def app(paper_testbed, tmp_path_factory):
    application = ThaliaApp(
        testbed=paper_testbed,
        scores_path=tmp_path_factory.mktemp("scores") / "roll.jsonl")
    yield application
    application.close()


@pytest.fixture(scope="module")
def generated(app):
    status, summary = post(app, "/api/scenarios",
                           {"seed": 13, "cases": 2})
    assert status == 201
    return summary


class TestGenerate:
    def test_summary_names_the_pack(self, generated):
        assert generated["seed"] == 13
        assert generated["cases"] == 2
        assert generated["url"] == \
            f"/api/scenarios/{generated['fingerprint']}"
        assert sum(generated["tiers"].values()) == 2

    def test_regenerating_is_idempotent(self, app, generated):
        before = app.scenario_stats()
        status, again = post(app, "/api/scenarios",
                             {"seed": 13, "cases": 2})
        assert status == 201
        assert again["fingerprint"] == generated["fingerprint"]
        after = app.scenario_stats()
        assert after["packs_generated"] == before["packs_generated"]
        assert after["cases_generated"] == before["cases_generated"]

    @pytest.mark.parametrize("payload, fragment", [
        ([1, 2], "JSON object"),
        ({"seed": "x"}, "'seed'"),
        ({"cases": 0}, "'cases'"),
        ({"cases": 10_000}, "'cases'"),
        ({"tier": "extreme"}, "'tier'"),
    ])
    def test_bad_requests_are_rejected(self, app, payload, fragment):
        status, body = post(app, "/api/scenarios", payload)
        assert status == 400
        assert fragment in body["error"]


class TestDownload:
    def test_pack_downloads_by_fingerprint(self, app, generated):
        response = get(app, generated["url"])
        assert response.status == 200
        files = json.loads(response.body.decode("utf-8"))
        assert "manifest.json" in files
        manifest = json.loads(files["manifest.json"])
        assert manifest["fingerprint"] == generated["fingerprint"]
        assert len(manifest["cases"]) == 2

    def test_download_is_etag_cacheable(self, app, generated):
        first = get(app, generated["url"])
        etag = first.headers.get("ETag")
        assert etag
        revalidated = get(app, generated["url"],
                          headers={"if-none-match": etag})
        assert revalidated.status == 304

    def test_unknown_fingerprint_is_404(self, app):
        response = get(app, "/api/scenarios/" + "0" * 64)
        assert response.status == 404


class TestStatsBlock:
    def test_stats_report_the_scenario_counters(self, app, generated):
        get(app, generated["url"])
        response = get(app, "/api/stats")
        block = json.loads(response.body.decode("utf-8"))["scenarios"]
        assert block["packs_generated"] >= 1
        assert block["cases_generated"] >= 2
        assert block["cases_served"] >= 1
        assert 1 <= block["packs_held"] <= MAX_SCENARIO_PACKS
        assert sum(block["tiers"].values()) == block["cases_generated"]
