"""Durable honor-roll store tests."""

from repro.core import QueryOutcome, ScoreCard
from repro.integration import Effort
from repro.server import HonorRollStore


def make_card(name, correct, effort=Effort.LOW):
    card = ScoreCard(system=name)
    for number in range(1, 13):
        good = number <= correct
        card.outcomes.append(QueryOutcome(
            number=number, supported=good, correct=good,
            effort=effort if good else None))
    return card


class TestAppendAndRank:
    def test_append_persists_one_line_per_submission(self, tmp_path):
        store = HonorRollStore(tmp_path / "roll.jsonl")
        store.append(make_card("a", 3), "alice")
        store.append(make_card("b", 7), "bob")
        lines = (tmp_path / "roll.jsonl").read_text().splitlines()
        assert len(lines) == 2

    def test_ranked_uses_paper_rule(self, tmp_path):
        store = HonorRollStore(tmp_path / "roll.jsonl")
        store.append(make_card("weak", 3), "alice")
        store.append(make_card("strong", 11), "bob")
        assert [e.card.system for e in store.ranked()] == ["strong", "weak"]

    def test_resubmission_replaces_for_ranking(self, tmp_path):
        store = HonorRollStore(tmp_path / "roll.jsonl")
        store.append(make_card("sys", 3), "alice")
        store.append(make_card("sys", 10), "alice")
        assert len(store) == 1                  # one system on the roll
        assert len(store.submissions) == 2      # full history retained
        assert store.ranked()[0].card.correct_count == 10

    def test_revision_bumps_per_append(self, tmp_path):
        store = HonorRollStore(tmp_path / "roll.jsonl")
        before = store.revision
        store.append(make_card("sys", 5), "a")
        assert store.revision == before + 1


class TestPersistence:
    def test_reopen_replays_history(self, tmp_path):
        path = tmp_path / "roll.jsonl"
        first = HonorRollStore(path)
        first.append(make_card("a", 9, effort=Effort.MEDIUM), "alice",
                     date="2004-05-05")
        first.append(make_card("b", 12, effort=Effort.NONE), "bob")
        reopened = HonorRollStore(path)
        assert [e.card.system for e in reopened.ranked()] == ["b", "a"]
        assert reopened.ranked()[1].date == "2004-05-05"
        assert reopened.skipped_lines == 0

    def test_missing_file_is_empty_store(self, tmp_path):
        store = HonorRollStore(tmp_path / "absent.jsonl")
        assert len(store) == 0
        assert store.ranked() == []

    def test_torn_final_line_is_skipped(self, tmp_path):
        path = tmp_path / "roll.jsonl"
        store = HonorRollStore(path)
        store.append(make_card("a", 6), "alice")
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"system": "b", "outcom')   # crash mid-append
        reopened = HonorRollStore(path)
        assert [e.card.system for e in reopened.ranked()] == ["a"]
        assert reopened.skipped_lines == 1

    def test_site_generator_renders_from_store(self, tmp_path,
                                               paper_testbed):
        from repro.website import SiteGenerator

        store = HonorRollStore(tmp_path / "roll.jsonl")
        store.append(make_card("StoredSystem", 8), "carol")
        page = SiteGenerator(paper_testbed,
                             honor_roll=store).render_page("honor_roll.html")
        assert "StoredSystem" in page

    def test_empty_store_page_matches_empty_roll(self, tmp_path,
                                                 paper_testbed):
        """The satellite guarantee: empty store ⇒ byte-identical page."""
        from repro.core import HonorRoll
        from repro.website import SiteGenerator

        store_page = SiteGenerator(
            paper_testbed,
            honor_roll=HonorRollStore(tmp_path / "roll.jsonl"),
        ).render_page("honor_roll.html")
        roll_page = SiteGenerator(
            paper_testbed, honor_roll=HonorRoll()).render_page(
            "honor_roll.html")
        assert store_page == roll_page
