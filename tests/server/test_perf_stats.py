"""The ``perf`` block of ``/api/stats``: last committed snapshot link."""

import hashlib
import json
import os

import pytest

from repro.server import ThaliaApp
from repro.server.router import Request


def _hex(seed):
    return hashlib.sha256(seed.encode("utf-8")).hexdigest()


def tiny_snapshot(label="committed"):
    """The smallest snapshot that passes full schema validation."""
    block = {"min": 100_000, "median": 110_000, "p95": 120_000,
             "mean": 110_000, "samples": 9}
    return {
        "schema": "thalia-perf", "schema_version": 1, "kind": "snapshot",
        "meta": {
            "label": label, "created": "2026-01-01T00:00:00Z",
            "host": {"id": _hex("host"), "platform": "test",
                     "machine": "test", "python": "3.11.0",
                     "implementation": "CPython", "cpu_count": 1},
            "seed": 2004, "repeats": 3, "warmup": 1, "queries": 1,
            "perturbed": [], "argv_hint": "tests",
        },
        "cells": [{
            "scale": 1, "workers": 1,
            "content_fingerprint": _hex("content"),
            "queries": [{
                "query": "Q1", "perturbed": False,
                "plan_fingerprint": _hex("plan"),
                "explain_sha256": _hex("explain"),
                "explain": "plan for Q1", "rewrites": {}, "items": 3,
                "wall_ns": dict(block), "cpu_ns": dict(block),
            }],
            "caches": {"plan_cache": {}, "result_cache": {}},
        }],
    }


def stats(app):
    response = app.handle(Request(method="GET", path="/api/stats"))
    assert response.status == 200
    return json.loads(response.body.decode("utf-8"))


@pytest.fixture
def make_app(paper_testbed, tmp_path):
    apps = []

    def build(perf_baseline):
        app = ThaliaApp(testbed=paper_testbed,
                        scores_path=tmp_path / "roll.jsonl",
                        perf_baseline=perf_baseline)
        apps.append(app)
        return app

    yield build
    for app in apps:
        app.close()


class TestPerfBlock:
    def test_missing_snapshot_reports_reason(self, make_app, tmp_path):
        app = make_app(tmp_path / "absent.json")
        perf = stats(app)["perf"]
        assert perf["baseline"] is None
        assert "absent.json" in perf["reason"]

    def test_valid_snapshot_is_summarized(self, make_app, tmp_path):
        path = tmp_path / "PERF_BASELINE.json"
        snapshot = tiny_snapshot(label="committed")
        path.write_text(json.dumps(snapshot), encoding="utf-8")
        perf = stats(make_app(path))["perf"]
        assert perf["baseline"] == str(path)
        assert perf["label"] == "committed"
        assert perf["cells"] == [{"scale": 1, "workers": 1, "queries": 1}]

    def test_invalid_snapshot_flagged_not_fatal(self, make_app, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json", encoding="utf-8")
        perf = stats(make_app(path))["perf"]
        assert perf["invalid"] is True
        assert perf["baseline"] == str(path)

    def test_summary_tracks_file_changes(self, make_app, tmp_path):
        path = tmp_path / "PERF_BASELINE.json"
        snapshot = tiny_snapshot(label="v1")
        path.write_text(json.dumps(snapshot), encoding="utf-8")
        app = make_app(path)
        assert stats(app)["perf"]["label"] == "v1"

        snapshot["meta"]["label"] = "v2"
        path.write_text(json.dumps(snapshot), encoding="utf-8")
        # Force a visibly newer mtime so the memo must refresh.
        info = path.stat()
        os.utime(path, (info.st_atime, info.st_mtime + 10))
        assert stats(app)["perf"]["label"] == "v2"
