"""The latency reservoir: bounded memory under sustained traffic.

The load harness pushes six-figure request counts through one server
process; before the reservoir, every request appended to a per-endpoint
sample list and the stats endpoint held the whole history.  These tests
pin the fix: memory is bounded by ``SAMPLE_WINDOW`` no matter the
request count, the totals stay exact, and snapshots stay deterministic.
"""

from repro.server.metrics import (
    SAMPLE_WINDOW,
    LatencyReservoir,
    ServerMetrics,
)


class TestLatencyReservoir:
    def test_memory_bounded_under_sustained_adds(self):
        reservoir = LatencyReservoir()
        for n in range(100_000):
            reservoir.add(n / 1_000_000)
        assert len(reservoir) <= SAMPLE_WINDOW
        assert len(reservoir) == reservoir.capacity
        assert reservoir.count == 100_000

    def test_small_streams_kept_verbatim(self):
        reservoir = LatencyReservoir(capacity=8)
        for n in range(5):
            reservoir.add(float(n))
        assert reservoir.samples() == [0.0, 1.0, 2.0, 3.0, 4.0]
        assert reservoir.percentile(0.5) == 2.0

    def test_quantiles_cover_the_whole_stream(self):
        # A uniform 0..1 stream must yield p50 ~ 0.5 and p99 ~ 0.99 even
        # after 25x the capacity has flowed through — the reservoir is a
        # uniform sample of everything, not a recency window.
        reservoir = LatencyReservoir(capacity=2048)
        total = 50_000
        for n in range(total):
            reservoir.add(n / total)
        quantiles = reservoir.quantiles_ms()
        assert 400 < quantiles["p50"] < 600
        assert 900 < quantiles["p95"] < 1000
        assert quantiles["p99"] >= quantiles["p95"] >= quantiles["p50"]

    def test_deterministic_given_seed_and_stream(self):
        streams = [LatencyReservoir(capacity=64, seed=7) for _ in range(2)]
        for n in range(10_000):
            for reservoir in streams:
                reservoir.add((n * 37) % 1000 / 1000)
        assert streams[0].samples() == streams[1].samples()
        assert streams[0].quantiles_ms() == streams[1].quantiles_ms()


class TestServerMetricsBounded:
    def test_endpoint_latency_memory_bounded(self):
        metrics = ServerMetrics()
        total = 3 * SAMPLE_WINDOW
        for n in range(total):
            metrics.record("api_run_query", 200, n / 1_000_000,
                           cache_hit=None, bytes_sent=10)
        stats = metrics._endpoints["api_run_query"]
        assert len(stats.latencies) <= SAMPLE_WINDOW
        assert stats.latencies.count == total
        assert stats.requests == total

    def test_snapshot_reports_p50_p95_p99(self):
        metrics = ServerMetrics()
        for n in range(100):
            metrics.record("healthz", 200, 0.001 * (n + 1),
                           cache_hit=None, bytes_sent=1)
        latency = metrics.snapshot()["endpoints"]["healthz"]["latency_ms"]
        assert set(latency) == {"mean", "p50", "p95", "p99"}
        assert latency["p50"] <= latency["p95"] <= latency["p99"]
        assert latency["p99"] > 0
