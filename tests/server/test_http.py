"""HTTP behavior of the benchmark service, driven over real sockets.

One server per test module, over the nine paper-pinned sources; a few
tests boot private servers to exercise cold caches and restarts.
"""

import gzip
import json
import urllib.error
import urllib.request
import zipfile
from concurrent.futures import ThreadPoolExecutor
from io import BytesIO

import pytest

from repro.server import HonorRollStore, ThaliaApp, ThaliaServer


def fetch(base, path, data=None, headers=None, method=None):
    """(status, headers, body) for one request; HTTP errors returned,
    not raised."""
    if method is None:
        method = "POST" if data is not None else "GET"
    request = urllib.request.Request(base + path, data=data,
                                     headers=headers or {}, method=method)
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, dict(response.headers), response.read()
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), exc.read()


def post_json(base, path, payload):
    return fetch(base, path, data=json.dumps(payload).encode("utf-8"),
                 headers={"Content-Type": "application/json"})


def make_card_dict(system, correct, effort="LOW"):
    return {"system": system, "outcomes": [
        {"number": n, "supported": n <= correct, "correct": n <= correct,
         "effort": effort if n <= correct else None, "note": ""}
        for n in range(1, 13)]}


@pytest.fixture(scope="module")
def server(paper_testbed, tmp_path_factory):
    store = HonorRollStore(
        tmp_path_factory.mktemp("scores") / "roll.jsonl")
    app = ThaliaApp(testbed=paper_testbed, store=store)
    with ThaliaServer(app, port=0, pool_size=8) as running:
        yield running


@pytest.fixture(scope="module")
def base(server):
    return server.url


class TestPages:
    @pytest.mark.parametrize("path,needle", [
        ("/", b"Test Harness for the Assessment"),
        ("/index.html", b"Test Harness for the Assessment"),
        ("/classification.html", b"Heterogeneity Classification"),
        ("/catalogs/", b"University Course Catalogs"),
        ("/catalogs/cmu.html", b"Catalog snapshot"),
        ("/data/", b"Browse Data and Schema"),
        ("/data/cmu_xml.html", b"CourseTitle"),
        ("/data/cmu_xsd.html", b"xs:schema"),
        ("/benchmark/", b"thalia_catalogs.zip"),
        ("/benchmark/query04.html", b"Umfang"),
        ("/honor-roll", b"Honor Roll"),
    ])
    def test_page_serves(self, base, path, needle):
        status, headers, body = fetch(base, path)
        assert status == 200
        assert needle in body
        assert headers["Content-Type"].startswith("text/html")

    def test_page_matches_static_site(self, base, server):
        """A live page and the generated site are byte-identical."""
        _, _, body = fetch(base, "/catalogs/cmu.html")
        expected = server.app.site.render_page("catalogs/cmu.html")
        assert body.decode("utf-8") == expected

    def test_unknown_page_404(self, base):
        status, _, _ = fetch(base, "/catalogs/nowhere.html")
        assert status == 404

    def test_unknown_path_404(self, base):
        status, _, _ = fetch(base, "/no/such/path")
        assert status == 404

    def test_wrong_method_405(self, base):
        status, headers, _ = fetch(base, "/api/query", method="GET")
        assert status == 405
        assert "POST" in headers.get("Allow", "")

    def test_head_request_has_no_body(self, base):
        status, headers, body = fetch(base, "/", method="HEAD")
        assert status == 200
        assert body == b""
        assert int(headers["Content-Length"]) > 0


class TestRawArtifacts:
    def test_source_xml(self, base):
        status, headers, body = fetch(base, "/data/cmu.xml")
        assert status == 200
        assert headers["Content-Type"].startswith("application/xml")
        assert b"<cmu>" in body or b"<cmu " in body

    def test_source_xsd(self, base):
        status, _, body = fetch(base, "/data/cmu.xsd")
        assert status == 200
        assert b"xs:schema" in body

    def test_unknown_source_404(self, base):
        for path in ("/data/nope.xml", "/data/nope.xsd"):
            status, _, _ = fetch(base, path)
            assert status == 404

    def test_bundles_are_valid_zips(self, base, paper_testbed):
        for name in ("thalia_catalogs.zip", "thalia_benchmark_queries.zip",
                     "thalia_sample_solutions.zip"):
            status, headers, body = fetch(base, f"/downloads/{name}")
            assert status == 200
            assert headers["Content-Type"] == "application/zip"
            with zipfile.ZipFile(BytesIO(body)) as archive:
                assert archive.namelist()

    def test_bundle_not_gzip_encoded(self, base):
        _, headers, _ = fetch(base, "/downloads/thalia_catalogs.zip",
                              headers={"Accept-Encoding": "gzip"})
        assert "Content-Encoding" not in headers

    def test_unknown_bundle_404(self, base):
        status, _, _ = fetch(base, "/downloads/evil.zip")
        assert status == 404


class TestConditionalGet:
    def test_etag_present_and_stable(self, base):
        _, first, _ = fetch(base, "/")
        _, second, _ = fetch(base, "/")
        assert first["ETag"] == second["ETag"]
        assert first["ETag"].startswith('"')

    def test_if_none_match_304(self, base):
        _, headers, _ = fetch(base, "/")
        status, headers304, body = fetch(
            base, "/", headers={"If-None-Match": headers["ETag"]})
        assert status == 304
        assert body == b""
        assert headers304["ETag"] == headers["ETag"]

    def test_stale_etag_refetches(self, base):
        status, _, body = fetch(base, "/",
                                headers={"If-None-Match": '"stale"'})
        assert status == 200
        assert body

    def test_etag_changes_after_upload(self, base):
        _, before, _ = fetch(base, "/honor-roll")
        status, _, _ = post_json(base, "/api/scores", {
            "submitter": "etag-test",
            "card": make_card_dict("EtagSystem", 2)})
        assert status == 201
        _, after, _ = fetch(base, "/honor-roll")
        assert after["ETag"] != before["ETag"]


class TestGzip:
    def test_gzip_round_trips(self, base):
        _, identity_headers, identity = fetch(base, "/api/queries")
        _, headers, compressed = fetch(base, "/api/queries",
                                       headers={"Accept-Encoding": "gzip"})
        assert headers["Content-Encoding"] == "gzip"
        assert gzip.decompress(compressed) == identity
        assert len(compressed) < len(identity)
        assert headers["ETag"] == identity_headers["ETag"]


class TestApi:
    def test_queries_listing(self, base):
        status, _, body = fetch(base, "/api/queries")
        payload = json.loads(body)
        assert status == 200
        assert [q["number"] for q in payload] == list(range(1, 13))
        assert all(q["xquery"] for q in payload)

    def test_single_query(self, base):
        status, _, body = fetch(base, "/api/queries/4")
        assert status == 200
        assert json.loads(body)["number"] == 4

    def test_unknown_query_404(self, base):
        assert fetch(base, "/api/queries/13")[0] == 404
        assert fetch(base, "/api/queries/zero")[0] == 404

    def test_sources_listing(self, base, paper_testbed):
        status, _, body = fetch(base, "/api/sources")
        payload = json.loads(body)
        assert status == 200
        assert {s["slug"] for s in payload} == set(paper_testbed.slugs)

    def test_healthz(self, base, paper_testbed):
        status, _, body = fetch(base, "/healthz")
        payload = json.loads(body)
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["sources"] == len(paper_testbed)

    def test_run_query(self, base):
        status, _, body = post_json(base, "/api/query", {
            "xquery": 'FOR $c IN doc("cmu.xml")/cmu/Course '
                      'WHERE $c/Lecturer = "Ailamaki" RETURN $c',
            "source": "cmu"})
        payload = json.loads(body)
        assert status == 200
        assert payload["count"] == len(payload["items"]) >= 1
        assert all("<Course" in item for item in payload["items"])

    def test_run_query_all_sources(self, base):
        status, _, body = post_json(base, "/api/query", {
            "xquery": 'FOR $c IN doc("brown.xml")/brown/Course '
                      'RETURN $c/CourseNum'})
        assert status == 200
        assert json.loads(body)["count"] >= 1

    def test_run_query_syntax_error_400(self, base):
        status, _, body = post_json(base, "/api/query",
                                    {"xquery": "FOR $ WHERE"})
        assert status == 400
        assert "error" in json.loads(body)

    def test_run_query_unknown_source_404(self, base):
        status, _, _ = post_json(base, "/api/query",
                                 {"xquery": "1", "source": "nope"})
        assert status == 404

    def test_run_query_non_json_400(self, base):
        status, _, _ = fetch(base, "/api/query", data=b"not json")
        assert status == 400


class TestScoreUpload:
    def test_valid_upload_accepted(self, base):
        status, _, body = post_json(base, "/api/scores", {
            "submitter": "alice", "date": "2004-08-01",
            "claimed": {"correct": 9, "complexity": 9},
            "card": make_card_dict("ValidSystem", 9)})
        payload = json.loads(body)
        assert status == 201
        assert payload["accepted"] and payload["correct"] == 9

    def test_inflated_claim_rejected_422(self, base):
        status, _, body = post_json(base, "/api/scores", {
            "submitter": "mallory",
            "claimed": {"correct": 12, "complexity": 0},
            "card": make_card_dict("InflatedSystem", 4)})
        payload = json.loads(body)
        assert status == 422
        assert payload["rejected"]
        assert any("re-scores to 4" in p for p in payload["problems"])

    def test_rejected_card_not_on_roll(self, base):
        _, _, body = fetch(base, "/api/honor-roll")
        assert "InflatedSystem" not in {e["system"]
                                        for e in json.loads(body)}

    def test_structurally_bogus_card_422(self, base):
        card = make_card_dict("BogusSystem", 3)
        card["outcomes"][5]["correct"] = True     # correct but unsupported
        status, _, body = post_json(base, "/api/scores",
                                    {"submitter": "x", "card": card})
        assert status == 422
        assert any("unsupported" in p
                   for p in json.loads(body)["problems"])

    def test_malformed_card_400(self, base):
        status, _, _ = post_json(base, "/api/scores",
                                 {"submitter": "x",
                                  "card": {"system": "NoOutcomes"}})
        assert status == 400

    def test_missing_submitter_400(self, base):
        status, _, _ = post_json(base, "/api/scores",
                                 {"card": make_card_dict("S", 1)})
        assert status == 400

    def test_non_integer_claims_400(self, base):
        status, _, _ = post_json(base, "/api/scores", {
            "submitter": "x", "claimed": {"correct": "twelve"},
            "card": make_card_dict("S", 1)})
        assert status == 400

    def test_honor_roll_ordering_live(self, base):
        post_json(base, "/api/scores", {
            "submitter": "bob",
            "card": make_card_dict("TopSystem", 12, effort="NONE")})
        _, _, body = fetch(base, "/api/honor-roll")
        payload = json.loads(body)
        assert payload[0]["system"] == "TopSystem"
        ranks = [e["rank"] for e in payload]
        assert ranks == sorted(ranks)
        _, _, page = fetch(base, "/honor-roll")
        assert page.index(b"TopSystem") < page.index(b"ValidSystem")


class TestConcurrency:
    PATHS = ("/", "/catalogs/cmu.html", "/data/cmu.xml", "/api/queries",
             "/downloads/thalia_catalogs.zip")

    def test_concurrent_requests_are_deterministic(self, paper_testbed,
                                                   tmp_path_factory):
        """N threads hammering a *cold* server observe one canonical body
        and ETag per path."""
        store = HonorRollStore(
            tmp_path_factory.mktemp("cold-scores") / "roll.jsonl")
        app = ThaliaApp(testbed=paper_testbed, store=store)
        with ThaliaServer(app, port=0, pool_size=8) as running:
            def grab(path):
                status, headers, body = fetch(running.url, path)
                assert status == 200
                return path, headers.get("ETag"), body

            with ThreadPoolExecutor(max_workers=16) as pool:
                results = list(pool.map(grab, list(self.PATHS) * 8))
        by_path = {}
        for path, etag, body in results:
            by_path.setdefault(path, []).append((etag, body))
        for path, observations in by_path.items():
            assert len(set(observations)) == 1, \
                f"{path} served {len(set(observations))} distinct bodies"

    def test_warm_requests_hit_cache_without_rebuilding(self, base, server):
        for _ in range(3):
            assert fetch(base, "/api/queries")[0] == 200
        builds_before = server.app.cache.stats()["builds"]
        for _ in range(5):
            assert fetch(base, "/api/queries")[0] == 200
        stats = server.app.cache.stats()
        assert stats["builds"] == builds_before    # warm GETs rebuild nothing
        _, _, body = fetch(base, "/api/stats")
        payload = json.loads(body)
        assert payload["totals"]["cache_hits"] > 0
        assert payload["content_cache"]["hit_rate"] > 0
        assert payload["endpoints"]["api_queries"]["cache_hit_rate"] > 0.5


class TestStatsEndpoint:
    def test_stats_shape(self, base):
        _, headers, body = fetch(base, "/api/stats")
        payload = json.loads(body)
        assert headers.get("Cache-Control") == "no-store"
        assert set(payload) >= {"uptime_s", "totals", "endpoints",
                                "content_cache", "honor_roll"}
        home = payload["endpoints"]["home"]
        assert home["requests"] > 0
        assert home["latency_ms"]["p95"] >= home["latency_ms"]["p50"] >= 0


class TestRestartPersistence:
    def test_honor_roll_survives_restart(self, paper_testbed, tmp_path):
        path = tmp_path / "roll.jsonl"
        app = ThaliaApp(testbed=paper_testbed, store=HonorRollStore(path))
        with ThaliaServer(app, port=0) as running:
            for system, correct, effort in (("Durable", 10, "NONE"),
                                            ("Modest", 4, "HIGH")):
                status, _, _ = post_json(running.url, "/api/scores", {
                    "submitter": "restart-test",
                    "card": make_card_dict(system, correct, effort=effort)})
                assert status == 201

        reborn = ThaliaApp(testbed=paper_testbed,
                           store=HonorRollStore(path))
        with ThaliaServer(reborn, port=0) as running:
            _, _, body = fetch(running.url, "/api/honor-roll")
            payload = json.loads(body)
            assert [e["system"] for e in payload] == ["Durable", "Modest"]
            _, _, page = fetch(running.url, "/honor-roll")
            assert page.index(b"Durable") < page.index(b"Modest")
