"""The multiprocess worker fleet: routing, caching, hedging, lifecycle.

Synchronization is event-based throughout, following
``tests/test_concurrency_stress.py``: workers park on a cross-process
``(ready, go)`` gate, so a test *proves* a task reached a worker by
acquiring ``ready`` — no sleeps, no wall-clock thresholds.  On a loaded
box the tests just take longer; they cannot spuriously break.
"""

import json
import multiprocessing
import os
import signal
import threading

import pytest

from repro.core import QUERIES
from repro.server import (
    FleetClosed,
    FleetSaturated,
    ThaliaApp,
    WorkerFleet,
)
from repro.server.fleet import MIN_HEDGE_SAMPLES
from repro.server.handlers import _run_one_query, render_query_body

_METHODS = multiprocessing.get_all_start_methods()
CTX = multiprocessing.get_context("fork" if "fork" in _METHODS else "spawn")

GATED = {"_fleet_test_gate": True}

CMU_QUERY = {"xquery": 'FOR $c IN doc("cmu.xml")/cmu/Course RETURN $c',
             "source": "cmu"}


def _gate():
    """A cross-process (ready, go) rendezvous for gated fleet tasks.

    Both halves are semaphores: ``ready`` counts deliveries, ``go`` is a
    turnstile (workers ``acquire`` then immediately ``release``) opened
    with ``go.release()``.  An ``mp.Event`` would deadlock the kill
    tests — SIGKILLing a worker parked in ``Event.wait()`` strands the
    event's sleeper accounting and the next ``set()`` never returns.
    """
    return CTX.Semaphore(0), CTX.Semaphore(0)


def _normalized(body_bytes: bytes) -> str:
    """Canonical JSON with the volatile wall-clock field removed.

    ``plan.exec_ns`` is the one legitimately nondeterministic field in a
    query response (each *computing* process measures its own run);
    everything else must match byte-for-byte.
    """
    payload = json.loads(body_bytes)
    payload.get("plan", {}).pop("exec_ns", None)
    return json.dumps(payload, indent=2, sort_keys=True)


class TestFleetExecution:
    def test_responses_byte_identical_to_single_process(self, testbed):
        single = ThaliaApp(testbed=testbed)
        payloads = [{"xquery": QUERIES[0].xquery},
                    {"xquery": 'FOR $c IN doc("cmu.xml")/cmu/Course '
                               'RETURN $c', "source": "cmu"}]
        with WorkerFleet(testbed, workers=2) as fleet:
            for payload in payloads:
                # Cold and warm responses: the cache progression
                # (cached: false, then true) must match single-process
                # serving exactly, not just the result items.
                for _round in range(2):
                    body, status, rendered = fleet.execute(
                        payload, render=True)
                    expected_body, expected_status = _run_one_query(
                        single, payload)
                    expected = render_query_body(expected_body,
                                                 expected_status)
                    assert status == expected_status == 200
                    assert _normalized(rendered) == _normalized(expected)
        single.close()

    def test_errors_and_batches_match_single_process(self, testbed):
        single = ThaliaApp(testbed=testbed)
        bad = [{"xquery": "FOR $x IN ("},            # syntax error
               {"xquery": QUERIES[0].xquery, "source": "nope"},
               {"not_xquery": True}]
        with WorkerFleet(testbed, workers=2) as fleet:
            outcomes = fleet.execute_many(
                bad + [{"xquery": QUERIES[2].xquery}])
            expected = [_run_one_query(single, payload)
                        for payload in bad + [{"xquery": QUERIES[2].xquery}]]
            assert [status for _, status in outcomes] \
                == [status for _, status in expected] == [400, 404, 400, 200]
            assert outcomes[-1][0]["items"] == expected[-1][0]["items"]
        single.close()

    def test_sharded_requests_stick_to_one_worker(self, testbed):
        with WorkerFleet(testbed, workers=2) as fleet:
            payload = dict(CMU_QUERY)
            for _ in range(3):
                _body, status, _ = fleet.execute(payload)
                assert status == 200
            served = sorted(row["served"]
                            for row in fleet.stats()["per_worker"])
            assert served == [0, 3]
            home = fleet._shard("cmu")
            assert fleet._workers[home].served == 3

    def test_shared_cache_hit_across_workers(self, testbed):
        """A respawned (cold) worker replays its dead predecessor's work
        from the shared tier instead of recomputing."""
        # Hedging stays off so the home worker has provably finished
        # (response received ⇒ publish done, no duplicate in flight)
        # before the SIGKILL — a hedged duplicate could otherwise die
        # mid-publish and the second round would recompute.
        with WorkerFleet(testbed, workers=2,
                         hedge_quantile=None) as fleet:
            payload = dict(CMU_QUERY)
            body, status, _ = fleet.execute(payload)
            assert status == 200 and body["cached"] is False
            assert fleet.shared_cache.stats()["stores"] >= 1
            home = fleet._workers[fleet._shard("cmu")]
            os.kill(home.pid, signal.SIGKILL)
            # Whoever answers next — the respawned home worker or a
            # peer after a requeue — has a cold local cache and must
            # come back through the shared arena.
            body, status, _ = fleet.execute(payload)
            assert status == 200
            assert body["cached"] is True
            assert fleet.shared_cache.stats()["hits"] >= 1
            assert fleet.counters["failed"] == 0


class TestFleetAdmissionAndHedging:
    def test_saturated_fleet_sheds_with_retry_after(self, testbed):
        ready, go = _gate()
        fleet = WorkerFleet(testbed, workers=1, queue_depth=1,
                            hedge_quantile=None, _gate=(ready, go))
        try:
            results = []
            thread = threading.Thread(
                target=lambda: results.append(fleet.execute(GATED)))
            thread.start()
            ready.acquire()            # the only slot is now occupied
            with pytest.raises(FleetSaturated) as caught:
                fleet.execute(GATED)
            assert caught.value.retry_after_s >= 1
            stats = fleet.stats()
            assert stats["shed"] == 1
            assert stats["slo"]["query"]["shed"] == 1
            assert stats["slo"]["query"]["shed_rate"] == 0.5
            go.release()
            thread.join(timeout=30)
            assert results and results[0][1] == 200
        finally:
            go.release()
            fleet.close()

    def test_straggler_is_hedged_to_a_second_worker(self, testbed):
        ready, go = _gate()
        fleet = WorkerFleet(testbed, workers=2, hedge_quantile=0.5,
                            hedge_floor_s=0.0, _gate=(ready, go))
        try:
            # Feed the adaptive quantile: with sub-millisecond observed
            # latencies, anything gated counts as a straggler at once.
            with fleet._lock:
                for _ in range(MIN_HEDGE_SAMPLES):
                    fleet._latencies.add(0.0005)
            results = []
            thread = threading.Thread(
                target=lambda: results.append(fleet.execute(GATED)))
            thread.start()
            ready.acquire()            # primary delivered to worker A
            ready.acquire()            # hedge delivered to worker B
            go.release()
            thread.join(timeout=30)
            body, status, _ = results[0]
            assert status == 200 and body == {"gated": True}
            stats = fleet.stats()
            assert stats["hedged"] == 1
            assert stats["completed"] == 1
            assert stats["cancelled"] == 1          # the losing attempt
            assert 0 <= stats["hedge_wins"] <= 1
            assert stats["slo"]["query"]["hedge_rate"] == 1.0
        finally:
            go.release()
            fleet.close()

    def test_dead_worker_requests_are_requeued_not_failed(self, testbed):
        ready, go = _gate()
        fleet = WorkerFleet(testbed, workers=2, hedge_quantile=None,
                            _gate=(ready, go))
        try:
            results = []
            thread = threading.Thread(
                target=lambda: results.append(fleet.execute(GATED)))
            thread.start()
            ready.acquire()            # task parked inside some worker
            victim = next(handle for handle in fleet._workers
                          if handle.outstanding)
            os.kill(victim.pid, signal.SIGKILL)
            ready.acquire()            # same task re-delivered elsewhere
            go.release()
            thread.join(timeout=30)
            assert results and results[0][1] == 200
            stats = fleet.stats()
            assert stats["respawns"] == 1
            assert stats["requeued"] == 1
            assert stats["failed"] == 0
            assert sum(row["cold_starts"]
                       for row in stats["per_worker"]) == 1
        finally:
            go.release()
            fleet.close()


class TestFleetShutdown:
    def test_graceful_close_under_inflight_load(self, testbed):
        """Requests admitted before close() complete; requests after it
        are refused; close() never deadlocks.  Event-based end to end:
        ``ready`` proves delivery, ``draining`` proves refusal happens
        mid-drain (not after), ``go`` releases the drain."""
        # One gated request per worker: a parked worker can't drain its
        # pipe, so parking more than ``workers`` requests would leave the
        # extras undelivered and the ready-handshake below incomplete.
        inflight = 2
        ready, go = _gate()
        fleet = WorkerFleet(testbed, workers=2, queue_depth=inflight,
                            hedge_quantile=None, _gate=(ready, go))
        results = []
        lock = threading.Lock()

        def run():
            outcome = fleet.execute(GATED)
            with lock:
                results.append(outcome)

        threads = [threading.Thread(target=run) for _ in range(inflight)]
        for thread in threads:
            thread.start()
        for _ in range(inflight):
            ready.acquire()            # both parked inside workers
        closer = threading.Thread(target=fleet.close)
        closer.start()
        assert fleet.draining.wait(timeout=30)
        with pytest.raises(FleetClosed):
            fleet.execute({"xquery": QUERIES[0].xquery})
        go.release()                       # release the drain
        closer.join(timeout=30)
        assert not closer.is_alive()
        for thread in threads:
            thread.join(timeout=30)
        assert [status for _body, status, _r in results] == [200] * inflight
        assert fleet.counters["failed"] == 0
        assert all(not handle.process.is_alive()
                   for handle in fleet._workers)

    def test_server_stop_drains_fleet_requests_over_http(self, testbed):
        """The HTTP acceptor + fleet drain together: gated requests
        accepted before stop() complete with 200, stop() returns, and
        the socket then refuses new connections."""
        import http.client

        from repro.server import ThaliaServer

        inflight = 2
        ready, go = _gate()
        fleet = WorkerFleet(testbed, workers=2, queue_depth=inflight,
                            hedge_quantile=None, _gate=(ready, go))
        app = ThaliaApp(testbed=testbed, fleet=fleet)
        server = ThaliaServer(app, port=0).start()
        statuses = []
        lock = threading.Lock()

        def run():
            connection = http.client.HTTPConnection(server.host,
                                                    server.port,
                                                    timeout=60)
            connection.request("POST", "/api/query",
                               body=json.dumps(GATED),
                               headers={"Content-Type":
                                        "application/json"})
            response = connection.getresponse()
            response.read()
            with lock:
                statuses.append(response.status)
            connection.close()

        threads = [threading.Thread(target=run) for _ in range(inflight)]
        for thread in threads:
            thread.start()
        for _ in range(inflight):
            ready.acquire()            # both requests parked in workers
        stopper = threading.Thread(target=server.stop)
        stopper.start()
        go.release()                       # let the in-flight work finish
        stopper.join(timeout=60)
        assert not stopper.is_alive(), "server.stop() deadlocked"
        for thread in threads:
            thread.join(timeout=60)
        assert statuses == [200] * inflight
        with pytest.raises(OSError):
            probe = http.client.HTTPConnection(server.host, server.port,
                                               timeout=5)
            probe.request("GET", "/healthz")
            probe.getresponse()

    def test_stats_block_shape(self, testbed):
        with WorkerFleet(testbed, workers=2) as fleet:
            fleet.execute({"xquery": QUERIES[0].xquery})
            stats = fleet.stats()
            assert stats["enabled"] is True
            assert stats["workers"] == 2
            for counter in ("dispatched", "completed", "hedged",
                            "hedge_wins", "shed", "respawns", "cancelled",
                            "requeued", "timeouts", "failed"):
                assert isinstance(stats[counter], int), counter
            assert set(stats["hedge"]) \
                == {"quantile", "floor_s", "current_delay_s"}
            row = stats["slo"]["query"]
            assert set(row["latency_ms"]) == {"p50", "p95", "p99"}
            assert {"hedge_rate", "shed_rate"} <= set(row)
            assert len(stats["per_worker"]) == 2
            for worker_row in stats["per_worker"]:
                assert isinstance(worker_row["cpu_s"], float)
                assert isinstance(worker_row["rss_kb"], int)
            assert stats["shared_cache"]["stores"] >= 1
