"""The cross-process result cache: arena layout, wipes, tiering.

Single-process tests drive the mmap arena directly (the lock only needs
the context-manager protocol, so a ``threading.Lock`` suffices); one
test forks a real child process to prove the arena is genuinely shared.
"""

import multiprocessing
import pickle
import threading

from repro.server.shared_cache import (
    MAX_LOCK_TIMEOUTS,
    PROBE_LIMIT,
    SharedResultCache,
    TieredResultCache,
    cache_key,
)
from repro.xquery.results import ResultCache


def _fresh(tmp_path, **kwargs):
    return SharedResultCache.create(threading.Lock(),
                                    dir=str(tmp_path), **kwargs)


class TestSharedResultCache:
    def test_put_get_round_trip(self, tmp_path):
        cache = _fresh(tmp_path)
        digest = cache_key("task", "content")
        assert cache.get(digest) is None
        assert cache.put(digest, b"payload")
        assert cache.get(digest) == b"payload"
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["stores"] == 1
        assert stats["entries"] == 1
        assert stats["arena_used"] == len(b"payload")
        cache.close()

    def test_overwrite_same_key_keeps_one_entry(self, tmp_path):
        cache = _fresh(tmp_path)
        digest = cache_key("task", "content")
        cache.put(digest, b"first")
        cache.put(digest, b"second-longer")
        assert cache.get(digest) == b"second-longer"
        assert cache.stats()["entries"] == 1
        cache.close()

    def test_full_arena_wipes_in_one_epoch_reset(self, tmp_path):
        cache = _fresh(tmp_path, arena_bytes=1024, slots=64)
        payload = b"x" * 300
        digests = [cache_key(f"task-{n}", "content") for n in range(4)]
        for digest in digests:
            assert cache.put(digest, payload)
        stats = cache.stats()
        assert stats["wraps"] == 1          # 4th put forced the reset
        assert stats["arena_used"] == len(payload)
        # Pre-wipe entries are gone (recomputation, never corruption);
        # the post-wipe entry survives.
        assert cache.get(digests[0]) is None
        assert cache.get(digests[-1]) == payload
        cache.close()

    def test_oversized_payload_refused_not_stored(self, tmp_path):
        cache = _fresh(tmp_path, arena_bytes=128)
        assert not cache.put(cache_key("big", "c"), b"y" * 129)
        assert cache.stats()["stores"] == 0
        cache.close()

    def test_probe_window_saturation_evicts_home_slot(self, tmp_path):
        cache = _fresh(tmp_path, slots=8, arena_bytes=1 << 20)
        # With 8 slots and a 32-slot probe window, the window spans the
        # whole table: fill every slot, then one more insert must evict
        # rather than fail or loop.
        for n in range(8 + 1):
            assert cache.put(cache_key(f"k{n}", "c"), b"v")
        stats = cache.stats()
        assert stats["entries"] <= 8
        assert stats["evictions"] >= 1
        assert PROBE_LIMIT >= 8
        cache.close()

    def test_attach_sees_creator_entries_same_process(self, tmp_path):
        lock = threading.Lock()
        owner = SharedResultCache.create(lock, dir=str(tmp_path))
        digest = cache_key("t", "c")
        owner.put(digest, b"shared-bytes")
        attached = SharedResultCache.attach(owner.path, lock)
        assert attached.get(digest) == b"shared-bytes"
        attached.close()
        owner.close()

    def test_dead_held_lock_degrades_instead_of_blocking(self, tmp_path,
                                                         monkeypatch):
        """A worker SIGKILLed inside the critical section leaves the
        cross-process lock held forever.  Survivors must degrade — get
        reads as a miss, put as a no-op — and latch the tier off after
        repeated timeouts, never block."""
        monkeypatch.setattr("repro.server.shared_cache.LOCK_TIMEOUT_S",
                            0.01)
        cache = _fresh(tmp_path)
        digest = cache_key("t", "c")
        cache.put(digest, b"before")
        cache._lock.acquire()           # the lock dies held
        assert cache.get(digest) is None
        assert not cache.put(digest, b"after")
        for _ in range(MAX_LOCK_TIMEOUTS):
            cache.get(digest)
        stats = cache.stats()           # unlocked observability read
        assert stats["disabled"] is True
        assert stats["lock_timeouts"] >= MAX_LOCK_TIMEOUTS
        assert stats["stores"] == 1
        cache._lock.release()
        cache.close()

    def test_cross_process_visibility(self, tmp_path):
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn")
        lock = ctx.Lock()
        cache = SharedResultCache.create(lock, dir=str(tmp_path))
        digest = cache_key("task", "content")
        process = ctx.Process(target=_child_put,
                              args=(cache.path, lock, digest))
        process.start()
        process.join(timeout=60)
        assert process.exitcode == 0
        assert cache.get(digest) == b"from-the-child"
        assert cache.stats()["stores"] == 1
        cache.close()


def _child_put(path, lock, digest):
    cache = SharedResultCache.attach(path, lock)
    assert cache.put(digest, b"from-the-child")
    cache.close()


class TestTieredResultCache:
    def test_status_progression_local_then_shared(self, tmp_path):
        shared = _fresh(tmp_path)
        first = TieredResultCache(ResultCache(maxsize=8), shared)
        value, status = first.fetch("task", "content", lambda: ("v", 1))
        assert status == "miss" and value == ("v", 1)
        value, status = first.fetch("task", "content", lambda: ("v", 1))
        assert status == "hit"
        # A different process is modeled by a fresh local tier over the
        # same arena: its local miss resolves from the shared tier.
        second = TieredResultCache(ResultCache(maxsize=8), shared)
        calls = []
        value, status = second.fetch("task", "content",
                                     lambda: calls.append(1))
        assert status == "shared"
        assert value == ("v", 1)        # exact pickled round trip
        assert calls == []              # never recomputed
        assert second.shared_hits == 1
        shared.close()

    def test_without_shared_tier_behaves_like_result_cache(self):
        tiered = TieredResultCache(ResultCache(maxsize=8), None)
        _value, status = tiered.fetch("t", "c", lambda: "x")
        assert status == "miss"
        _value, status = tiered.fetch("t", "c", lambda: "x")
        assert status == "hit"

    def test_corrupt_shared_entry_degrades_to_compute(self, tmp_path):
        shared = _fresh(tmp_path)
        digest = cache_key("t", "c")
        shared.put(digest, b"\x00not-a-pickle")
        tiered = TieredResultCache(ResultCache(maxsize=8), shared)
        value, status = tiered.fetch("t", "c", lambda: "recomputed")
        assert value == "recomputed"
        assert status == "miss"
        # The recomputed value replaced the corrupt bytes.
        assert pickle.loads(shared.get(digest)) == "recomputed"
        shared.close()

    def test_unpicklable_value_counts_publish_failure(self, tmp_path):
        shared = _fresh(tmp_path)
        tiered = TieredResultCache(ResultCache(maxsize=8), shared)
        value, status = tiered.fetch("t", "c", lambda: lambda: None)
        assert callable(value) and status == "miss"
        assert tiered.publish_failures == 1
        stats = tiered.stats()
        assert stats["publish_failures"] == 1
        assert stats["shared"]["stores"] == 0
        shared.close()
