"""XML substrate: document model, parser, serializer, paths and XSD subset.

This package is the foundation the testbed, the scraper and the XQuery engine
are built on. Public surface:

* :class:`XmlElement`, :class:`XmlDocument`, :func:`element` — the tree model.
* :func:`parse_xml`, :func:`parse_element` — expat-backed parsing.
* :func:`serialize`, :func:`serialize_pretty` — exact and indented output.
* :func:`select`, :func:`select_elements`, :func:`select_first`,
  :func:`select_text` — the simple-path engine.
* :func:`infer_schema`, :class:`XmlSchema`, :class:`ElementDecl` — XSD subset.
"""

from .element import Child, XmlDocument, XmlElement, element, is_valid_name
from .indexes import DocumentIndex
from .errors import (
    XmlError,
    XmlParseError,
    XmlPathError,
    XmlSchemaError,
    XmlValidationError,
)
from .parser import parse_element, parse_xml
from .paths import (
    CompiledPath,
    compile_path,
    parse_path,
    select,
    select_elements,
    select_first,
    select_text,
)
from .schema import UNBOUNDED, ElementDecl, XmlSchema, infer_schema, parse_xsd
from .serializer import (
    escape_attr,
    escape_text,
    serialize,
    serialize_digest,
    serialize_pretty,
)

__all__ = [
    "Child",
    "CompiledPath",
    "DocumentIndex",
    "compile_path",
    "ElementDecl",
    "UNBOUNDED",
    "XmlDocument",
    "XmlElement",
    "XmlError",
    "XmlParseError",
    "XmlPathError",
    "XmlSchema",
    "XmlSchemaError",
    "XmlValidationError",
    "element",
    "escape_attr",
    "escape_text",
    "infer_schema",
    "is_valid_name",
    "parse_element",
    "parse_path",
    "parse_xsd",
    "parse_xml",
    "select",
    "select_elements",
    "select_first",
    "select_text",
    "serialize",
    "serialize_digest",
    "serialize_pretty",
]
