"""Serialization of XmlElement trees back to XML text.

Two modes are provided:

* :func:`serialize` — exact serialization preserving mixed content and all
  whitespace, guaranteeing ``parse(serialize(doc)) == doc``.
* :func:`serialize_pretty` — indented output for schemas, sample solutions
  and the generated web site, where human readability matters more than
  byte-exact round trips.
"""

from __future__ import annotations

from .element import XmlDocument, XmlElement

_XML_DECLARATION = '<?xml version="1.0" encoding="UTF-8"?>'


def escape_text(value: str) -> str:
    """Escape character data for element content."""
    return (value.replace("&", "&amp;")
                 .replace("<", "&lt;")
                 .replace(">", "&gt;"))


def escape_attr(value: str) -> str:
    """Escape character data for a double-quoted attribute value."""
    return (escape_text(value)
            .replace('"', "&quot;")
            .replace("\n", "&#10;")
            .replace("\t", "&#9;"))


def _open_tag(node: XmlElement, self_closing: bool) -> str:
    attrs = "".join(
        f' {key}="{escape_attr(value)}"' for key, value in node.attrib.items()
    )
    return f"<{node.tag}{attrs}{'/' if self_closing else ''}>"


def _serialize_node(node: XmlElement, parts: list[str]) -> None:
    if not node.children:
        parts.append(_open_tag(node, self_closing=True))
        return
    parts.append(_open_tag(node, self_closing=False))
    for child in node.children:
        if isinstance(child, str):
            parts.append(escape_text(child))
        else:
            _serialize_node(child, parts)
    parts.append(f"</{node.tag}>")


def serialize(node: XmlElement | XmlDocument, xml_declaration: bool = False) -> str:
    """Serialize exactly, preserving all text runs and document order."""
    root = node.root if isinstance(node, XmlDocument) else node
    parts: list[str] = [_XML_DECLARATION + "\n"] if xml_declaration else []
    _serialize_node(root, parts)
    return "".join(parts)


def _serialize_pretty_node(node: XmlElement, parts: list[str],
                           depth: int, indent: str) -> None:
    pad = indent * depth
    if not node.children:
        parts.append(f"{pad}{_open_tag(node, self_closing=True)}")
        return
    if not node.has_element_children():
        # Text-only element: keep content inline.
        text = escape_text(node.text)
        parts.append(f"{pad}{_open_tag(node, False)}{text}</{node.tag}>")
        return
    # Mixed or element content: children each on their own line; text runs
    # are emitted trimmed (pretty mode is explicitly lossy about whitespace).
    parts.append(f"{pad}{_open_tag(node, False)}")
    for child in node.children:
        if isinstance(child, str):
            stripped = child.strip()
            if stripped:
                parts.append(f"{pad}{indent}{escape_text(stripped)}")
        else:
            _serialize_pretty_node(child, parts, depth + 1, indent)
    parts.append(f"{pad}</{node.tag}>")


def serialize_pretty(node: XmlElement | XmlDocument, indent: str = "  ",
                     xml_declaration: bool = True) -> str:
    """Human-readable indented serialization (whitespace-lossy)."""
    root = node.root if isinstance(node, XmlDocument) else node
    parts: list[str] = [_XML_DECLARATION] if xml_declaration else []
    _serialize_pretty_node(root, parts, 0, indent)
    return "\n".join(parts) + "\n"
