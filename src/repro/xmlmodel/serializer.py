"""Serialization of XmlElement trees back to XML text.

Three modes are provided:

* :func:`serialize` — exact serialization preserving mixed content and all
  whitespace, guaranteeing ``parse(serialize(doc)) == doc``.
* :func:`serialize_digest` — exact serialization plus its sha256, computed
  from the same part stream in one walk and one encode pass (the testbed's
  ``document_hash`` rides along with ``save`` instead of re-serializing).
* :func:`serialize_pretty` — indented output for schemas, sample solutions
  and the generated web site, where human readability matters more than
  byte-exact round trips.

Profile-guided fast paths (the scale-tier testbeds exercise documents two
orders of magnitude larger than the paper's): :func:`escape_text` and
:func:`escape_attr` return their argument untouched when a single regex
scan finds no escapable character — the common case for catalog text —
and the exact serializer walks iteratively with an explicit stack, so one
flat loop emits the whole tree without per-node helper calls or recursion
depth limits.
"""

from __future__ import annotations

import hashlib
import re

from .element import XmlDocument, XmlElement

_XML_DECLARATION = '<?xml version="1.0" encoding="UTF-8"?>'

#: Characters that force the slow escape path; everything else passes
#: through verbatim, so the guard is a single C-level regex scan instead
#: of three (five for attributes) full-string ``.replace`` allocations.
_TEXT_NEEDS_ESCAPE = re.compile(r"[&<>]")
_ATTR_NEEDS_ESCAPE = re.compile(r'[&<>"\n\t]')

#: Update granularity for the ride-along digest (bytes).
_DIGEST_CHUNK = 1 << 20


def escape_text(value: str) -> str:
    """Escape character data for element content."""
    if _TEXT_NEEDS_ESCAPE.search(value) is None:
        return value
    return (value.replace("&", "&amp;")
                 .replace("<", "&lt;")
                 .replace(">", "&gt;"))


def escape_attr(value: str) -> str:
    """Escape character data for a double-quoted attribute value."""
    if _ATTR_NEEDS_ESCAPE.search(value) is None:
        return value
    return (value.replace("&", "&amp;")
                 .replace("<", "&lt;")
                 .replace(">", "&gt;")
                 .replace('"', "&quot;")
                 .replace("\n", "&#10;")
                 .replace("\t", "&#9;"))


def _open_tag(node: XmlElement, self_closing: bool) -> str:
    attrs = "".join(
        f' {key}="{escape_attr(value)}"' for key, value in node.attrib.items()
    )
    return f"<{node.tag}{attrs}{'/' if self_closing else ''}>"


def _write_exact(root: XmlElement, append) -> None:
    """Emit *root* as exact XML parts via *append*, iteratively.

    The stack holds two kinds of items: elements still to open, and
    ready-to-emit strings (escaped text runs and closing tags), so the
    whole serialization is one flat loop.
    """
    esc_text = escape_text
    esc_attr = escape_attr
    # The guards are inlined here: clean text (the overwhelmingly common
    # case for catalog content) costs one C-level regex scan and no
    # Python call at all.
    text_dirty = _TEXT_NEEDS_ESCAPE.search
    attr_dirty = _ATTR_NEEDS_ESCAPE.search
    stack: list[XmlElement | str] = [root]
    pop = stack.pop
    push = stack.append
    while stack:
        item = pop()
        if isinstance(item, str):
            append(item)
            continue
        tag = item.tag
        if item.attrib:
            attrs = "".join(
                [f' {key}="{value if attr_dirty(value) is None else esc_attr(value)}"'
                 for key, value in item.attrib.items()])
        else:
            attrs = ""
        children = item.children
        if not children:
            append(f"<{tag}{attrs}/>")
            continue
        if len(children) == 1 and isinstance(children[0], str):
            # Text-only element — by far the dominant shape in catalog
            # documents — emitted whole, without touching the stack.
            only = children[0]
            if text_dirty(only) is not None:
                only = esc_text(only)
            append(f"<{tag}{attrs}>{only}</{tag}>")
            continue
        append(f"<{tag}{attrs}>")
        push(f"</{tag}>")
        for child in reversed(children):
            if isinstance(child, str):
                push(child if text_dirty(child) is None else esc_text(child))
            else:
                push(child)


def serialize(node: XmlElement | XmlDocument, xml_declaration: bool = False) -> str:
    """Serialize exactly, preserving all text runs and document order."""
    root = node.root if isinstance(node, XmlDocument) else node
    parts: list[str] = [_XML_DECLARATION + "\n"] if xml_declaration else []
    _write_exact(root, parts.append)
    return "".join(parts)


def serialize_digest(node: XmlElement | XmlDocument,
                     xml_declaration: bool = False) -> tuple[str, str]:
    """Exact serialization together with its sha256 hex digest.

    The digest rides along with the serialization: one tree walk emits
    the part stream, and its single encode pass feeds the hash, so
    callers that need both (``Testbed.save``, the artifact cache,
    ``document_hash``) never serialize twice.  The walker pushes parts
    straight onto a list — a per-part Python callback would cost more
    than the hashing itself — and the digest is updated in bounded
    chunks over the encoded bytes.
    """
    root = node.root if isinstance(node, XmlDocument) else node
    parts: list[str] = [_XML_DECLARATION + "\n"] if xml_declaration else []
    _write_exact(root, parts.append)
    text = "".join(parts)
    digest = hashlib.sha256()
    data = text.encode("utf-8")
    for start in range(0, len(data), _DIGEST_CHUNK):
        digest.update(data[start:start + _DIGEST_CHUNK])
    return text, digest.hexdigest()


def _serialize_pretty_node(node: XmlElement, parts: list[str],
                           depth: int, indent: str) -> None:
    pad = indent * depth
    if not node.children:
        parts.append(f"{pad}{_open_tag(node, self_closing=True)}")
        return
    if not node.has_element_children():
        # Text-only element: keep content inline.
        text = escape_text(node.text)
        parts.append(f"{pad}{_open_tag(node, False)}{text}</{node.tag}>")
        return
    # Mixed or element content: children each on their own line; text runs
    # are emitted trimmed (pretty mode is explicitly lossy about whitespace).
    parts.append(f"{pad}{_open_tag(node, False)}")
    for child in node.children:
        if isinstance(child, str):
            stripped = child.strip()
            if stripped:
                parts.append(f"{pad}{indent}{escape_text(stripped)}")
        else:
            _serialize_pretty_node(child, parts, depth + 1, indent)
    parts.append(f"{pad}</{node.tag}>")


def serialize_pretty(node: XmlElement | XmlDocument, indent: str = "  ",
                     xml_declaration: bool = True) -> str:
    """Human-readable indented serialization (whitespace-lossy)."""
    root = node.root if isinstance(node, XmlDocument) else node
    parts: list[str] = [_XML_DECLARATION] if xml_declaration else []
    _serialize_pretty_node(root, parts, 0, indent)
    return "\n".join(parts) + "\n"
