"""XML Schema (XSD) subset: inference, rendering and validation.

THALIA publishes, next to every extracted catalog, an XML Schema that mirrors
the source's own structure (Fig. 3 of the paper). This module reproduces
that: :func:`infer_schema` derives a schema from an extracted document,
:meth:`XmlSchema.to_xsd` renders it as a ``xs:schema`` document, and
:meth:`XmlSchema.validate` checks conformance.

The supported XSD subset:

* one global element declaration (the root);
* ``xs:complexType`` with a child-element content model where each distinct
  child tag carries ``minOccurs``/``maxOccurs`` bounds;
* ``mixed="true"`` complex types for elements with both text and children;
* ``xs:attribute`` declarations with ``use="required"|"optional"``;
* ``xs:string`` as the simple type (course catalogs are textual data).

Inference merges all occurrences of a tag at the same location: a child seen
in only some instances gets ``minOccurs=0``; a child repeated within one
parent gets ``maxOccurs="unbounded"``. The invariant the test suite enforces:
every document validates against its own inferred schema.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .element import XmlDocument, XmlElement, element
from .errors import XmlSchemaError, XmlValidationError

UNBOUNDED = -1


@dataclass
class ElementDecl:
    """Declaration of one element type within its parent's content model."""

    name: str
    min_occurs: int = 1
    max_occurs: int = 1          # UNBOUNDED for unbounded
    mixed: bool = False
    has_text: bool = False
    children: dict[str, "ElementDecl"] = field(default_factory=dict)
    child_order: list[str] = field(default_factory=list)
    attributes: dict[str, bool] = field(default_factory=dict)  # name -> required

    def child(self, name: str) -> "ElementDecl":
        try:
            return self.children[name]
        except KeyError:
            raise XmlSchemaError(
                f"element {self.name!r} declares no child {name!r}") from None

    def declare_child(self, name: str) -> "ElementDecl":
        if name not in self.children:
            self.children[name] = ElementDecl(name)
            self.child_order.append(name)
        return self.children[name]

    @property
    def is_complex(self) -> bool:
        return bool(self.children) or bool(self.attributes)


@dataclass
class XmlSchema:
    """A schema for one testbed source: a single root element declaration."""

    root: ElementDecl
    source_name: str | None = None

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #

    def validate(self, document: XmlDocument | XmlElement) -> None:
        """Raise :class:`XmlValidationError` unless *document* conforms."""
        node = document.root if isinstance(document, XmlDocument) else document
        if node.tag != self.root.name:
            raise XmlValidationError(
                f"root element {node.tag!r} does not match declared root "
                f"{self.root.name!r}", path=node.tag)
        self._validate_node(node, self.root, node.tag)

    def _validate_node(self, node: XmlElement, decl: ElementDecl,
                       path: str) -> None:
        for attr in node.attrib:
            if attr not in decl.attributes:
                raise XmlValidationError(
                    f"undeclared attribute {attr!r}", path=path)
        for attr, required in decl.attributes.items():
            if required and attr not in node.attrib:
                raise XmlValidationError(
                    f"missing required attribute {attr!r}", path=path)
        counts: dict[str, int] = {}
        for child in node.element_children:
            counts[child.tag] = counts.get(child.tag, 0) + 1
            if child.tag not in decl.children:
                raise XmlValidationError(
                    f"undeclared element {child.tag!r}", path=path)
            self._validate_node(child, decl.children[child.tag],
                                f"{path}/{child.tag}")
        for name, child_decl in decl.children.items():
            count = counts.get(name, 0)
            if count < child_decl.min_occurs:
                raise XmlValidationError(
                    f"element {name!r} occurs {count} time(s), "
                    f"minOccurs is {child_decl.min_occurs}", path=path)
            if child_decl.max_occurs != UNBOUNDED and count > child_decl.max_occurs:
                raise XmlValidationError(
                    f"element {name!r} occurs {count} time(s), "
                    f"maxOccurs is {child_decl.max_occurs}", path=path)
        if decl.is_complex and not decl.mixed and not decl.has_text:
            stray = "".join(c for c in node.children if isinstance(c, str))
            if stray.strip():
                raise XmlValidationError(
                    "text content in non-mixed complex element", path=path)

    def is_valid(self, document: XmlDocument | XmlElement) -> bool:
        """Boolean form of :meth:`validate`."""
        try:
            self.validate(document)
        except XmlValidationError:
            return False
        return True

    # ------------------------------------------------------------------ #
    # XSD rendering
    # ------------------------------------------------------------------ #

    def to_xsd(self) -> XmlDocument:
        """Render as a ``xs:schema`` document in the paper's Fig. 3 style."""
        schema = element(
            "xs:schema",
            self._render_decl(self.root, top_level=True),
            **{"xmlns:xs": "http://www.w3.org/2001/XMLSchema"},
        )
        return XmlDocument(schema, source_name=self.source_name)

    def _render_decl(self, decl: ElementDecl, top_level: bool = False) -> XmlElement:
        attrs: dict[str, str] = {"name": decl.name}
        if not top_level:
            if decl.min_occurs != 1:
                attrs["minOccurs"] = str(decl.min_occurs)
            if decl.max_occurs == UNBOUNDED:
                attrs["maxOccurs"] = "unbounded"
            elif decl.max_occurs != 1:
                attrs["maxOccurs"] = str(decl.max_occurs)
        node = XmlElement("xs:element", attrs)
        if not decl.is_complex:
            node.set("type", "xs:string")
            return node
        complex_type = XmlElement("xs:complexType")
        if decl.mixed or decl.has_text:
            complex_type.set("mixed", "true")
        if decl.children:
            sequence = XmlElement("xs:sequence")
            for name in decl.child_order:
                sequence.append(self._render_decl(decl.children[name]))
            complex_type.append(sequence)
        for attr_name in sorted(decl.attributes):
            required = decl.attributes[attr_name]
            complex_type.append(element(
                "xs:attribute", name=attr_name, type="xs:string",
                use="required" if required else "optional"))
        node.append(complex_type)
        return node


def parse_xsd(document: XmlDocument | XmlElement,
              source_name: str | None = None) -> XmlSchema:
    """Load a schema from its ``xs:schema`` rendering.

    Inverse of :meth:`XmlSchema.to_xsd` over the supported subset, so the
    XSD files shipped in the download bundles can be consumed
    programmatically: ``parse_xsd(parse_xml(path.read_text()))``.

    Raises:
        XmlSchemaError: when the document is not a subset-conformant
            ``xs:schema``.
    """
    root = document.root if isinstance(document, XmlDocument) else document
    if source_name is None and isinstance(document, XmlDocument):
        source_name = document.source_name
    if root.tag != "xs:schema":
        raise XmlSchemaError(f"expected xs:schema, found {root.tag!r}")
    declarations = root.findall("xs:element")
    if len(declarations) != 1:
        raise XmlSchemaError(
            f"expected exactly one global element declaration, "
            f"found {len(declarations)}")
    return XmlSchema(_parse_element_decl(declarations[0], top_level=True),
                     source_name)


def _parse_occurs(node: XmlElement) -> tuple[int, int]:
    min_occurs = int(node.get("minOccurs", "1"))
    max_attr = node.get("maxOccurs", "1")
    max_occurs = UNBOUNDED if max_attr == "unbounded" else int(max_attr)
    return min_occurs, max_occurs


def _parse_element_decl(node: XmlElement,
                        top_level: bool = False) -> ElementDecl:
    name = node.get("name")
    if not name:
        raise XmlSchemaError("xs:element without a name")
    decl = ElementDecl(name)
    if not top_level:
        decl.min_occurs, decl.max_occurs = _parse_occurs(node)
    complex_type = node.find("xs:complexType")
    if complex_type is None:
        if node.get("type") not in (None, "xs:string"):
            raise XmlSchemaError(
                f"unsupported simple type {node.get('type')!r} "
                f"on element {name!r}")
        return decl
    if complex_type.get("mixed") == "true":
        decl.mixed = True
        decl.has_text = True
    sequence = complex_type.find("xs:sequence")
    if sequence is not None:
        for child in sequence.findall("xs:element"):
            child_decl = _parse_element_decl(child)
            decl.children[child_decl.name] = child_decl
            decl.child_order.append(child_decl.name)
    for attribute in complex_type.findall("xs:attribute"):
        attr_name = attribute.get("name")
        if not attr_name:
            raise XmlSchemaError(f"xs:attribute without a name "
                                 f"on element {name!r}")
        decl.attributes[attr_name] = attribute.get("use") == "required"
    return decl


def infer_schema(document: XmlDocument | XmlElement,
                 source_name: str | None = None) -> XmlSchema:
    """Infer an :class:`XmlSchema` that the given document conforms to.

    The inferred schema is the tightest one in the supported subset: element
    sets, occurrence bounds and attribute requiredness all reflect exactly
    what the document exhibits, merged across sibling instances of the same
    tag (all ``Course`` rows contribute to one ``Course`` declaration).
    """
    node = document.root if isinstance(document, XmlDocument) else document
    if source_name is None and isinstance(document, XmlDocument):
        source_name = document.source_name
    root_decl = ElementDecl(node.tag)
    _merge_instances(root_decl, [node])
    return XmlSchema(root_decl, source_name)


def _merge_instances(decl: ElementDecl, instances: list[XmlElement]) -> None:
    """Merge every instance of one element type into its declaration."""
    attr_counts: dict[str, int] = {}
    child_groups: dict[str, list[XmlElement]] = {}
    min_counts: dict[str, int] = {}
    max_counts: dict[str, int] = {}
    for instance in instances:
        for attr in instance.attrib:
            attr_counts[attr] = attr_counts.get(attr, 0) + 1
        text = "".join(c for c in instance.children if isinstance(c, str))
        if text.strip():
            decl.has_text = True
            if instance.has_element_children():
                decl.mixed = True
        local_counts: dict[str, int] = {}
        for child in instance.element_children:
            local_counts[child.tag] = local_counts.get(child.tag, 0) + 1
            child_groups.setdefault(child.tag, []).append(child)
        for tag in set(child_groups) | set(local_counts):
            count = local_counts.get(tag, 0)
            if tag in min_counts:
                min_counts[tag] = min(min_counts[tag], count)
            else:
                min_counts[tag] = count if tag in local_counts else 0
            max_counts[tag] = max(max_counts.get(tag, 0), count)
    # A tag absent from some earlier instance must also be optional.
    for tag in child_groups:
        appearances = sum(
            1 for instance in instances
            if any(c.tag == tag for c in instance.element_children))
        if appearances < len(instances):
            min_counts[tag] = 0
    for attr, count in attr_counts.items():
        decl.attributes[attr] = count == len(instances)
    for tag, group in child_groups.items():
        child_decl = decl.declare_child(tag)
        child_decl.min_occurs = min_counts.get(tag, 0)
        max_count = max_counts.get(tag, 1)
        child_decl.max_occurs = UNBOUNDED if max_count > 1 else 1
        _merge_instances(child_decl, group)
