"""Lightweight XML document model used throughout the THALIA reproduction.

The model intentionally supports *mixed content* (text interleaved with child
elements) because the extracted course catalogs contain values such as
``<a href="...">Intro to Algorithms</a> D hr. MWF 11-12`` where a hyperlink
and free text share one field — the exact union-type heterogeneity Benchmark
Query 3 exercises.

Design notes:

* An element's ``children`` is an ordered list whose items are either
  :class:`XmlElement` instances or plain ``str`` text runs.
* Equality is deep and structural (tag, attributes, normalized children),
  which gives the round-trip property ``parse(serialize(doc)) == doc`` that
  the test suite checks with hypothesis.
* Navigation helpers (``find``, ``findall``, ``iter``) cover the needs of the
  simple-path engine and the XQuery evaluator without pulling in lxml.
"""

from __future__ import annotations

from sys import intern as _intern
from typing import Callable, Iterable, Iterator, Union

Child = Union["XmlElement", str]

_NAME_EXTRA = set("0123456789.-·")


def _is_name_start(ch: str) -> bool:
    return ch == "_" or ch.isalpha()


def _is_name_char(ch: str) -> bool:
    return _is_name_start(ch) or ch in _NAME_EXTRA


def is_valid_name(name: str) -> bool:
    """Return True if *name* is acceptable as an element or attribute name.

    This is a pragmatic subset of the XML Name production: a letter (any
    script — German testbed sources use tags like ``Gebäude``) or
    underscore to start, then letters, digits, ``.``, ``-`` and ``·``.
    Namespace colons are allowed in the middle (``xs:element``).
    """
    if not name:
        return False
    head, colon, tail = name.partition(":")
    if colon and (not head or not tail or ":" in tail):
        return False
    parts = [head] if not colon else [head, tail]
    for part in parts:
        if not part or not _is_name_start(part[0]):
            return False
        if any(not _is_name_char(ch) for ch in part[1:]):
            return False
    return True


class XmlElement:
    """A single XML element with attributes and ordered mixed content."""

    __slots__ = ("tag", "attrib", "children")

    def __init__(self, tag: str, attrib: dict[str, str] | None = None,
                 children: Iterable[Child] | None = None) -> None:
        if not is_valid_name(tag):
            raise ValueError(f"invalid element name: {tag!r}")
        # Tag names repeat massively across a document (every Course, every
        # Title, ...); interning makes ``node.tag == name`` a pointer check
        # on the hot path-step comparisons and dedups the strings.
        self.tag = _intern(tag)
        self.attrib: dict[str, str] = dict(attrib) if attrib else {}
        self.children: list[Child] = list(children) if children else []

    @classmethod
    def _unchecked(cls, tag: str, attrib: dict[str, str]) -> "XmlElement":
        """Construct without name validation — for parsers whose input has
        already passed a well-formedness check (expat); hot-path only."""
        node = object.__new__(cls)
        node.tag = _intern(tag)
        node.attrib = attrib
        node.children = []
        return node

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #

    def append(self, child: Child) -> "XmlElement":
        """Append a child element or text run; returns self for chaining."""
        if not isinstance(child, (XmlElement, str)):
            raise TypeError(f"child must be XmlElement or str, got {type(child)!r}")
        self.children.append(child)
        return self

    def extend(self, children: Iterable[Child]) -> "XmlElement":
        for child in children:
            self.append(child)
        return self

    def set(self, key: str, value: str) -> "XmlElement":
        """Set an attribute; returns self for chaining."""
        if not is_valid_name(key):
            raise ValueError(f"invalid attribute name: {key!r}")
        self.attrib[key] = str(value)
        return self

    def get(self, key: str, default: str | None = None) -> str | None:
        return self.attrib.get(key, default)

    # ------------------------------------------------------------------ #
    # Content access
    # ------------------------------------------------------------------ #

    @property
    def element_children(self) -> list["XmlElement"]:
        """Child *elements* only, in document order."""
        return [c for c in self.children if isinstance(c, XmlElement)]

    @property
    def text(self) -> str:
        """All descendant text concatenated in document order.

        Unlike ElementTree's ``.text`` this gives the full flattened string
        value of the element, matching XPath's ``string()`` semantics, which
        is what comparisons in the benchmark queries need.
        """
        parts: list[str] = []
        for child in self.children:
            if isinstance(child, str):
                parts.append(child)
            else:
                parts.append(child.text)
        return "".join(parts)

    @property
    def normalized_text(self) -> str:
        """Flattened text with runs of whitespace collapsed and trimmed."""
        return " ".join(self.text.split())

    def has_element_children(self) -> bool:
        return any(isinstance(c, XmlElement) for c in self.children)

    # ------------------------------------------------------------------ #
    # Navigation
    # ------------------------------------------------------------------ #

    def find(self, tag: str) -> "XmlElement | None":
        """First direct child element with the given tag, or None."""
        for child in self.element_children:
            if child.tag == tag:
                return child
        return None

    def findall(self, tag: str) -> list["XmlElement"]:
        """All direct child elements with the given tag, in order."""
        return [c for c in self.element_children if c.tag == tag]

    def findtext(self, tag: str, default: str | None = None) -> str | None:
        """Flattened text of the first matching child, or *default*."""
        child = self.find(tag)
        return child.text if child is not None else default

    def iter(self, tag: str | None = None) -> Iterator["XmlElement"]:
        """Depth-first iterator over this element and all descendants."""
        if tag is None or self.tag == tag:
            yield self
        for child in self.element_children:
            yield from child.iter(tag)

    def walk(self, predicate: Callable[["XmlElement"], bool]) -> Iterator["XmlElement"]:
        """Depth-first iterator over descendants satisfying *predicate*."""
        return (node for node in self.iter() if predicate(node))

    # ------------------------------------------------------------------ #
    # Structural equality & representation
    # ------------------------------------------------------------------ #

    def _normalized_children(self) -> list[Child]:
        """Children with adjacent text runs merged and empty runs dropped."""
        merged: list[Child] = []
        for child in self.children:
            if isinstance(child, str):
                if not child:
                    continue
                if merged and isinstance(merged[-1], str):
                    merged[-1] = merged[-1] + child
                    continue
            merged.append(child)
        return merged

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, XmlElement):
            return NotImplemented
        if self.tag != other.tag or self.attrib != other.attrib:
            return False
        mine = self._normalized_children()
        theirs = other._normalized_children()
        if len(mine) != len(theirs):
            return False
        return all(a == b for a, b in zip(mine, theirs))

    def __hash__(self) -> int:  # structural, matches __eq__
        return hash((self.tag, tuple(sorted(self.attrib.items())),
                     tuple(c if isinstance(c, str) else hash(c)
                           for c in self._normalized_children())))

    def __repr__(self) -> str:
        n_children = len(self.element_children)
        return (f"XmlElement({self.tag!r}, attrib={self.attrib!r}, "
                f"children={n_children} element(s))")

    def copy(self) -> "XmlElement":
        """Deep structural copy."""
        return XmlElement(
            self.tag,
            dict(self.attrib),
            [c if isinstance(c, str) else c.copy() for c in self.children],
        )


class XmlDocument:
    """An XML document: a root element plus optional source identity.

    ``source_name`` records which testbed source (e.g. ``"brown"``) the
    document came from; the XQuery ``doc()`` function resolves names against
    a catalog of documents keyed this way.

    Documents are immutable once built, so :meth:`index` lazily constructs
    a per-document :class:`~repro.xmlmodel.indexes.DocumentIndex` exactly
    once and caches it for the document's lifetime (never invalidated).
    """

    __slots__ = ("root", "source_name", "_index")

    def __init__(self, root: XmlElement, source_name: str | None = None) -> None:
        if not isinstance(root, XmlElement):
            raise TypeError("root must be an XmlElement")
        self.root = root
        self.source_name = source_name
        self._index = None

    def index(self) -> "DocumentIndex":
        """The element-name/attribute index, built on first use."""
        if self._index is None:
            from .indexes import DocumentIndex
            self._index = DocumentIndex(self.root)
        return self._index

    @property
    def index_built(self) -> bool:
        """True once :meth:`index` has materialized (stats endpoints use
        this to report on indexes without forcing their construction)."""
        return self._index is not None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, XmlDocument):
            return NotImplemented
        return self.root == other.root

    def __hash__(self) -> int:
        return hash(self.root)

    def __repr__(self) -> str:
        return f"XmlDocument(root={self.root.tag!r}, source={self.source_name!r})"

    def copy(self) -> "XmlDocument":
        return XmlDocument(self.root.copy(), self.source_name)


def element(tag: str, *children: Child, **attrib: str) -> XmlElement:
    """Terse element constructor for builders and tests.

    >>> element("Course", element("Title", "Databases"), code="CS145").tag
    'Course'
    """
    node = XmlElement(tag, {k: str(v) for k, v in attrib.items()})
    node.extend(children)
    return node
