"""A small, well-specified path engine over :class:`XmlElement` trees.

This deliberately implements only the fragment of XPath the benchmark needs:

* child steps by name: ``Course/Title``
* wildcard steps: ``Course/*``
* descendant-or-self: ``//Section`` or ``Course//Room``
* positional predicates (1-based): ``Course[2]``
* equality predicates on child text or attributes:
  ``Course[Title='Databases']``, ``Course[@code='CS145']``
* terminal attribute selection: ``Course/@code``
* terminal ``text()`` step

Grammar (informal)::

    path      := ("//" | "/")? step ( "/" "/"? step )*
    step      := "@" NAME | "text()" | node ("[" predicate "]")*
    node      := NAME | "*"
    predicate := INTEGER | NAME "=" STRING | "@" NAME "=" STRING

Results preserve document order and are deduplicated.

Paths are compiled (:func:`compile_path`, memoized) into per-step
candidate closures; named steps can be served from a document's
:class:`~repro.xmlmodel.indexes.DocumentIndex` posting lists by passing
``index=`` to the select helpers — results are identical to the tree
scan, just cheaper on scale-tier documents.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from functools import lru_cache
from sys import intern

from .element import XmlElement
from .errors import XmlPathError

_STEP_RE = re.compile(r"^(?P<axis>@)?(?P<name>[\w.·:-]+|\*|text\(\))"
                      r"(?P<preds>(\[[^\]]*\])*)$")
_PRED_RE = re.compile(r"\[([^\]]*)\]")
_EQ_PRED_RE = re.compile(r"^(?P<attr>@)?(?P<name>[\w.·:-]+)\s*=\s*"
                         r"(?P<quote>['\"])(?P<value>.*)(?P=quote)$")


@dataclass(frozen=True)
class _Predicate:
    """One ``[...]`` filter on a step."""

    position: int | None = None
    name: str | None = None
    value: str | None = None
    is_attr: bool = False

    def matches(self, node: XmlElement, position: int) -> bool:
        if self.position is not None:
            return position == self.position
        assert self.name is not None and self.value is not None
        if self.is_attr:
            return node.get(self.name) == self.value
        child = node.find(self.name)
        return child is not None and child.normalized_text == self.value


@dataclass(frozen=True)
class _Step:
    """One path step with its predicates."""

    name: str                       # element name, '*', 'text()' or '@attr' name
    kind: str                       # 'element' | 'attribute' | 'text'
    descendant: bool = False        # preceded by '//'
    predicates: tuple[_Predicate, ...] = field(default=())


def _parse_predicate(raw: str) -> _Predicate:
    raw = raw.strip()
    if not raw:
        raise XmlPathError("empty predicate '[]'")
    if raw.isdigit():
        position = int(raw)
        if position < 1:
            raise XmlPathError(f"positions are 1-based, got [{raw}]")
        return _Predicate(position=position)
    match = _EQ_PRED_RE.match(raw)
    if not match:
        raise XmlPathError(f"unsupported predicate: [{raw}]")
    return _Predicate(name=match.group("name"), value=match.group("value"),
                      is_attr=bool(match.group("attr")))


def parse_path(path: str) -> tuple[_Step, ...]:
    """Parse a path expression into a step tuple.

    Raises:
        XmlPathError: on any syntax problem.
    """
    if not path or not path.strip():
        raise XmlPathError("empty path")
    text = path.strip()
    descendant_next = False
    if text.startswith("//"):
        descendant_next = True
        text = text[2:]
    elif text.startswith("/"):
        text = text[1:]
    steps: list[_Step] = []
    for raw_step in _split_steps(text):
        if raw_step == "":
            # produced by '//': next step is a descendant step
            descendant_next = True
            continue
        match = _STEP_RE.match(raw_step)
        if not match:
            raise XmlPathError(f"invalid step {raw_step!r} in path {path!r}")
        preds = tuple(_parse_predicate(p.group(1))
                      for p in _PRED_RE.finditer(match.group("preds") or ""))
        name = match.group("name")
        if match.group("axis"):
            kind = "attribute"
        elif name == "text()":
            kind = "text"
        else:
            kind = "element"
        if kind != "element" and preds:
            raise XmlPathError(f"predicates not allowed on {raw_step!r}")
        steps.append(_Step(name=name, kind=kind,
                           descendant=descendant_next, predicates=preds))
        descendant_next = False
    if descendant_next:
        raise XmlPathError(f"path may not end with '//': {path!r}")
    if not steps:
        raise XmlPathError(f"path has no steps: {path!r}")
    for step in steps[:-1]:
        if step.kind != "element":
            raise XmlPathError(
                f"'{step.name}' must be the final step in {path!r}")
    return tuple(steps)


def _split_steps(text: str) -> list[str]:
    """Split on '/' that are not inside a predicate bracket."""
    steps: list[str] = []
    depth = 0
    current: list[str] = []
    for ch in text:
        if ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
            if depth < 0:
                raise XmlPathError(f"unbalanced ']' in {text!r}")
        if ch == "/" and depth == 0:
            steps.append("".join(current))
            current = []
        else:
            current.append(ch)
    if depth != 0:
        raise XmlPathError(f"unbalanced '[' in {text!r}")
    steps.append("".join(current))
    return steps


def _candidates(node: XmlElement, step: _Step) -> list[XmlElement]:
    if step.descendant:
        pool: list[XmlElement] = [
            desc for child in node.element_children for desc in child.iter()
        ]
    else:
        pool = node.element_children
    if step.name != "*":
        pool = [n for n in pool if n.tag == step.name]
    if not step.predicates:
        return pool
    return _apply_predicates(pool, step.predicates)


def _apply_predicates(pool: list[XmlElement],
                      predicates: tuple[_Predicate, ...]) -> list[XmlElement]:
    selected = pool
    for pred in predicates:
        selected = [n for i, n in enumerate(selected, start=1)
                    if pred.matches(n, i)]
    return selected


def _compile_step(step: _Step):
    """Build a ``candidates(current, index) -> list[XmlElement]`` closure.

    The shape dispatch (descendant vs child, wildcard vs named) happens
    once at compile time, and named steps consult a
    :class:`~repro.xmlmodel.indexes.DocumentIndex` when one is supplied and
    covers the context node.  Every branch produces the same elements in
    the same document order as :func:`_candidates`.
    """
    name = intern(step.name)
    predicates = step.predicates
    if step.descendant:
        if name == "*":
            def raw(current, index):
                return [desc for child in current.element_children
                        for desc in child.iter()]
        else:
            def raw(current, index):
                if index is not None:
                    hits = index.descendants_of(current, name)
                    if hits is not None:
                        return hits
                return [desc for child in current.element_children
                        for desc in child.iter(name)]
    else:
        if name == "*":
            def raw(current, index):
                return current.element_children
        else:
            def raw(current, index):
                if index is not None:
                    hits = index.children_of(current, name)
                    if hits is not None:
                        return hits
                return [c for c in current.element_children if c.tag is name
                        or c.tag == name]
    if not predicates:
        return raw

    def filtered(current, index):
        return _apply_predicates(raw(current, index), predicates)

    return filtered


class CompiledPath:
    """A parsed path pre-lowered to per-step candidate closures.

    Compiled once (``compile_path`` memoizes), evaluated many times —
    the per-record mapping paths of the integration layer and the
    scale-tier benchmark hit the same handful of paths thousands of
    times.  Pass ``index=document.index()`` to back named steps with the
    document's posting lists; results are identical either way.
    """

    __slots__ = ("path", "steps", "_inner", "_last_kind", "_last_name")

    def __init__(self, path: str) -> None:
        self.path = path
        self.steps = parse_path(path)
        last = self.steps[-1]
        self._last_kind = last.kind
        self._last_name = last.name
        inner = list(self.steps[:-1])
        if last.kind == "element":
            inner.append(last)
        self._inner = tuple(_compile_step(step) for step in inner)

    @property
    def selects_elements(self) -> bool:
        return self._last_kind == "element"

    def select(self, node: XmlElement, index=None) -> list[XmlElement | str]:
        frontier: list[XmlElement] = [node]
        for candidates in self._inner:
            if len(frontier) == 1:
                # A single context node cannot produce duplicates, so the
                # id-dedup bookkeeping is skipped (the overwhelmingly
                # common shape: record-relative mapping paths).
                frontier = candidates(frontier[0], index)
                continue
            next_frontier: list[XmlElement] = []
            seen: set[int] = set()
            for current in frontier:
                for match in candidates(current, index):
                    if id(match) not in seen:
                        seen.add(id(match))
                        next_frontier.append(match)
            frontier = next_frontier
        if self._last_kind == "element":
            return list(frontier)
        if self._last_kind == "attribute":
            name = self._last_name
            results: list[XmlElement | str] = []
            for current in frontier:
                value = current.get(name)
                if value is not None:
                    results.append(value)
            return results
        return [current.text for current in frontier]

    def __repr__(self) -> str:
        return f"CompiledPath({self.path!r}, steps={len(self.steps)})"


@lru_cache(maxsize=512)
def compile_path(path: str) -> CompiledPath:
    """Parse *path* once and cache the compiled form.

    Raises:
        XmlPathError: on any syntax problem.
    """
    return CompiledPath(path)


def select(node: XmlElement, path: str, index=None) -> list[XmlElement | str]:
    """Evaluate *path* relative to *node*.

    Returns a document-ordered list of matched element nodes, or strings when
    the final step is an attribute or ``text()`` selection. Missing
    attributes simply contribute nothing (XPath semantics), they do not
    raise.  Pass ``index`` (a :class:`DocumentIndex` covering *node*) to
    serve named steps from posting lists instead of tree scans.
    """
    return compile_path(path).select(node, index)


def select_elements(node: XmlElement, path: str,
                    index=None) -> list[XmlElement]:
    """Like :func:`select` but guarantees element results.

    Raises:
        XmlPathError: if the path's final step selects attributes or text.
    """
    compiled = compile_path(path)
    if not compiled.selects_elements:
        raise XmlPathError(f"path {path!r} does not select elements")
    return [n for n in compiled.select(node, index)
            if isinstance(n, XmlElement)]


def select_first(node: XmlElement, path: str,
                 index=None) -> XmlElement | str | None:
    """First match of *path* under *node*, or None."""
    matches = select(node, path, index)
    return matches[0] if matches else None


def select_text(node: XmlElement, path: str, default: str = "",
                index=None) -> str:
    """Normalized text of the first match, or *default*."""
    first = select_first(node, path, index)
    if first is None:
        return default
    if isinstance(first, str):
        return " ".join(first.split())
    return first.normalized_text
