"""Exception hierarchy for the :mod:`repro.xmlmodel` package.

All errors raised by the XML substrate derive from :class:`XmlError` so that
callers can catch the whole family with a single ``except`` clause while the
library can still signal distinct failure modes.
"""

from __future__ import annotations


class XmlError(Exception):
    """Base class for all XML model errors."""


class XmlParseError(XmlError):
    """Raised when a byte/str payload cannot be parsed as well-formed XML.

    Attributes:
        line: 1-based line of the offending construct, when known.
        column: 1-based column of the offending construct, when known.
    """

    def __init__(self, message: str, line: int | None = None,
                 column: int | None = None) -> None:
        location = ""
        if line is not None:
            location = f" (line {line}"
            location += f", column {column})" if column is not None else ")"
        super().__init__(message + location)
        self.line = line
        self.column = column


class XmlPathError(XmlError):
    """Raised when a simple-path expression is syntactically invalid."""


class XmlSchemaError(XmlError):
    """Raised when a schema cannot be built or is internally inconsistent."""


class XmlValidationError(XmlError):
    """Raised when a document does not conform to a schema.

    Attributes:
        path: slash-separated location of the offending node.
    """

    def __init__(self, message: str, path: str = "") -> None:
        super().__init__(f"{message} at '{path}'" if path else message)
        self.path = path
