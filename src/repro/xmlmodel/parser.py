"""Expat-backed parser producing :class:`~repro.xmlmodel.element.XmlElement` trees.

The parser preserves mixed content and document order, which the testbed
relies on (hyperlink-plus-text fields, nested section tables). Whitespace-only
text between elements is kept by default so that serialization round-trips;
callers that want a tidy tree can pass ``strip_whitespace=True``.
"""

from __future__ import annotations

import xml.parsers.expat as _expat

from .element import XmlDocument, XmlElement
from .errors import XmlParseError


class _TreeBuilder:
    """Accumulates expat callbacks into an XmlElement tree."""

    def __init__(self, strip_whitespace: bool, trusted: bool = False) -> None:
        self._strip = strip_whitespace
        self._trusted = trusted
        self._stack: list[XmlElement] = []
        self.root: XmlElement | None = None

    def start(self, tag: str, attrib: dict[str, str]) -> None:
        if self._trusted:
            node = XmlElement._unchecked(tag, attrib)
        else:
            node = XmlElement(tag, attrib)
        if self._stack:
            self._stack[-1].append(node)
        elif self.root is None:
            self.root = node
        else:  # pragma: no cover - expat rejects multiple roots itself
            raise XmlParseError("multiple root elements")
        self._stack.append(node)

    def end(self, tag: str) -> None:
        node = self._stack.pop()
        if node.tag != tag:  # pragma: no cover - expat guarantees nesting
            raise XmlParseError(f"mismatched end tag {tag!r}")

    def data(self, text: str) -> None:
        if not self._stack:
            return  # ignore text outside the root (prolog whitespace)
        if self._strip and not text.strip():
            return
        parent = self._stack[-1]
        if parent.children and isinstance(parent.children[-1], str):
            parent.children[-1] += text
        else:
            parent.append(text)


def parse_xml(payload: str | bytes, source_name: str | None = None,
              strip_whitespace: bool = False,
              trusted: bool = False) -> XmlDocument:
    """Parse *payload* into an :class:`XmlDocument`.

    Args:
        payload: XML text or UTF-8 bytes.
        source_name: optional testbed source name recorded on the document.
        strip_whitespace: drop whitespace-only text runs (useful when the
            caller only cares about element structure).
        trusted: skip the model's per-element name validation; for payloads
            this library itself serialized (cache artifacts, saved
            testbeds), where expat's well-formedness check suffices.

    Raises:
        XmlParseError: if the payload is not well-formed XML.
    """
    builder = _TreeBuilder(strip_whitespace, trusted)
    parser = _expat.ParserCreate()
    parser.buffer_text = True
    parser.StartElementHandler = builder.start
    parser.EndElementHandler = builder.end
    parser.CharacterDataHandler = builder.data
    try:
        if isinstance(payload, str):
            payload = payload.encode("utf-8")
        parser.Parse(payload, True)
    except _expat.ExpatError as exc:
        raise XmlParseError(
            _expat.errors.messages[exc.code],
            line=exc.lineno, column=exc.offset + 1,
        ) from exc
    if builder.root is None:
        raise XmlParseError("document has no root element")
    return XmlDocument(builder.root, source_name)


def parse_element(payload: str | bytes, strip_whitespace: bool = False) -> XmlElement:
    """Parse *payload* and return the root element directly."""
    return parse_xml(payload, strip_whitespace=strip_whitespace).root
