"""Expat-backed parser producing :class:`~repro.xmlmodel.element.XmlElement` trees.

The parser preserves mixed content and document order, which the testbed
relies on (hyperlink-plus-text fields, nested section tables). Whitespace-only
text between elements is kept by default so that serialization round-trips;
callers that want a tidy tree can pass ``strip_whitespace=True``.

Two code paths share the public API.  The validating default drives expat
handlers that run this model's element-name checks per node.  The
``trusted=True`` fast path — for payloads this library itself serialized,
where well-formedness is already guaranteed — instead lets ElementTree's
C-accelerated parser build the whole tree without any per-node Python
callback, then converts it in one flat loop; profiling showed the
expat→Python handler dispatch alone costing more than all tree building.
Both paths produce identical trees for valid input.
"""

from __future__ import annotations

import xml.etree.ElementTree as _ET
import xml.parsers.expat as _expat
from sys import intern as _intern

from .element import XmlDocument, XmlElement
from .errors import XmlParseError


def _make_handlers(strip_whitespace: bool, trusted: bool):
    """Build expat handler closures accumulating an XmlElement tree.

    ``trusted=True`` selects the unchecked-constructor fast path: the
    per-node name validation is skipped (expat already guaranteed
    well-formedness) and children are appended directly, without the
    public ``append``'s type check — both branches produce identical
    trees for valid input.  The handlers are closures rather than bound
    methods so the hot callbacks read ``stack`` from a cell instead of
    chasing ``self`` attributes on every element.
    """
    make = XmlElement._unchecked if trusted else XmlElement
    stack: list[XmlElement] = []
    roots: list[XmlElement] = []

    def start(tag: str, attrib: dict[str, str]) -> None:
        node = make(tag, attrib)
        if stack:
            stack[-1].children.append(node)
        elif not roots:
            roots.append(node)
        else:  # pragma: no cover - expat rejects multiple roots itself
            raise XmlParseError("multiple root elements")
        stack.append(node)

    def end(tag: str) -> None:
        if stack.pop().tag != tag:  # pragma: no cover - expat guarantees it
            raise XmlParseError(f"mismatched end tag {tag!r}")

    def data(text: str) -> None:
        if not stack:
            return  # ignore text outside the root (prolog whitespace)
        if strip_whitespace and not text.strip():
            return
        children = stack[-1].children
        if children and isinstance(children[-1], str):
            children[-1] += text
        else:
            children.append(text)

    return start, end, data, roots


def _parse_trusted(payload: bytes) -> XmlElement:
    """Build the tree via ElementTree's C parser, then convert.

    The conversion reconstructs ordered mixed content from ``text``/
    ``tail`` and keeps text-only leaves — the dominant element shape in
    catalog documents — out of the work stack entirely.
    """
    et_root = _ET.fromstring(payload)
    # ``XmlElement._unchecked`` is inlined below: at ~50k elements per
    # scaled document, even one Python-level call per node is the
    # difference between this path and the expat handlers it replaces.
    cls = XmlElement
    new = cls.__new__
    intern_ = _intern
    root = new(cls)
    root.tag = intern_(et_root.tag)
    root.attrib = et_root.attrib
    root.children = []
    stack = [(et_root, root)]
    pop = stack.pop
    push = stack.append
    while stack:
        src, dst = pop()
        children = dst.children
        cappend = children.append
        head = src.text
        if head:
            cappend(head)
        for child in src:
            node = new(cls)
            node.tag = intern_(child.tag)
            node.attrib = child.attrib
            node.children = []
            cappend(node)
            if len(child):
                push((child, node))
            else:
                leaf_text = child.text
                if leaf_text:
                    node.children.append(leaf_text)
            tail = child.tail
            if tail:
                cappend(tail)
    return root


def parse_xml(payload: str | bytes, source_name: str | None = None,
              strip_whitespace: bool = False,
              trusted: bool = False) -> XmlDocument:
    """Parse *payload* into an :class:`XmlDocument`.

    Args:
        payload: XML text or UTF-8 bytes.
        source_name: optional testbed source name recorded on the document.
        strip_whitespace: drop whitespace-only text runs (useful when the
            caller only cares about element structure).
        trusted: skip the model's per-element name validation; for payloads
            this library itself serialized (cache artifacts, saved
            testbeds), where the parser's own well-formedness check
            suffices.  Rides the callback-free ElementTree builder.

    Raises:
        XmlParseError: if the payload is not well-formed XML.
    """
    if isinstance(payload, str):
        payload = payload.encode("utf-8")
    if trusted and not strip_whitespace:
        try:
            return XmlDocument(_parse_trusted(payload), source_name)
        except _ET.ParseError as exc:
            line, column = exc.position
            raise XmlParseError(str(exc), line=line, column=column + 1) from exc
    start, end, data, roots = _make_handlers(strip_whitespace, trusted)
    parser = _expat.ParserCreate()
    parser.buffer_text = True
    parser.StartElementHandler = start
    parser.EndElementHandler = end
    parser.CharacterDataHandler = data
    try:
        parser.Parse(payload, True)
    except _expat.ExpatError as exc:
        raise XmlParseError(
            _expat.errors.messages[exc.code],
            line=exc.lineno, column=exc.offset + 1,
        ) from exc
    if not roots:
        raise XmlParseError("document has no root element")
    return XmlDocument(roots[0], source_name)


def parse_element(payload: str | bytes, strip_whitespace: bool = False) -> XmlElement:
    """Parse *payload* and return the root element directly."""
    return parse_xml(payload, strip_whitespace=strip_whitespace).root
