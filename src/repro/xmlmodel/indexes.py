"""Per-document element and attribute indexes.

Testbed documents are immutable once built, so each
:class:`~repro.xmlmodel.element.XmlDocument` can carry a lazily-built
:class:`DocumentIndex` that is constructed exactly once and never
invalidated.  The index assigns every element a preorder interval
``[enter, exit)`` and groups elements by tag name, which turns the two
hot path-step shapes of the XQuery engine into dictionary lookups:

* ``child::Name``   — ``children_of(parent, "Name")``, a per-parent map
  from tag to the child elements in document order;
* ``descendant::Name`` — ``descendants_of(node, "Name")``, a bisect over
  the tag's document-order posting list using the preorder intervals.

Both return results in exactly the order a naive tree scan produces, so
an index-backed query plan is byte-identical to the tree-walking
interpreter — just faster.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from .element import XmlElement


class DocumentIndex:
    """Immutable name/attribute index over one document tree.

    The index keeps approximate lookup counters (plain ints, no lock —
    under CPython's GIL a rare lost increment is acceptable for metrics)
    so ``/api/stats`` can report how hard scaled runs lean on it.
    """

    __slots__ = ("root", "_enter", "_exit", "_by_tag", "_children",
                 "_attr_names", "_strings", "element_count",
                 "child_lookups", "descendant_lookups", "string_lookups")

    def __init__(self, root: "XmlElement") -> None:
        self.root = root
        self.child_lookups = 0
        self.descendant_lookups = 0
        self.string_lookups = 0
        # id(element) -> preorder enter / exit counters.
        self._enter: dict[int, int] = {}
        self._exit: dict[int, int] = {}
        # tag -> ([enter, ...], [element, ...]) parallel posting lists,
        # both in document order.
        self._by_tag: dict[str, tuple[list[int], list["XmlElement"]]] = {}
        # id(parent) -> {tag: [child elements in order]}
        self._children: dict[int, dict[str, list["XmlElement"]]] = {}
        self._attr_names: set[str] = set()
        # id(element) -> normalized string value, filled on demand.
        self._strings: dict[int, str] = {}
        counter = 0

        def walk(node: "XmlElement") -> None:
            nonlocal counter
            self._enter[id(node)] = counter
            enters, elems = self._by_tag.setdefault(node.tag, ([], []))
            enters.append(counter)
            elems.append(node)
            counter += 1
            self._attr_names.update(node.attrib)
            per_tag = self._children.setdefault(id(node), {})
            for child in node.children:
                if isinstance(child, str):
                    continue
                per_tag.setdefault(child.tag, []).append(child)
                walk(child)
            self._exit[id(node)] = counter

        walk(root)
        self.element_count = counter

    # -- membership ------------------------------------------------------ #

    def covers(self, node: "XmlElement") -> bool:
        """True when *node* belongs to the indexed tree."""
        return id(node) in self._enter

    def has_tag(self, tag: str) -> bool:
        return tag in self._by_tag

    def has_attribute(self, name: str) -> bool:
        return name in self._attr_names

    @property
    def tags(self) -> list[str]:
        return sorted(self._by_tag)

    @property
    def attribute_names(self) -> list[str]:
        return sorted(self._attr_names)

    # -- lookups --------------------------------------------------------- #

    def elements(self, tag: str) -> list["XmlElement"]:
        """All elements with *tag*, whole document, document order."""
        entry = self._by_tag.get(tag)
        return list(entry[1]) if entry else []

    def tag_count(self, tag: str) -> int:
        """Posting-list cardinality of *tag* (0 when absent)."""
        entry = self._by_tag.get(tag)
        return len(entry[1]) if entry else 0

    def tag_counts(self) -> dict[str, int]:
        """``{tag: posting-list length}`` over the whole document."""
        return {tag: len(elems)
                for tag, (_enters, elems) in self._by_tag.items()}

    def subtree_size(self, node: "XmlElement") -> int | None:
        """Number of strict element descendants of a covered *node*
        (``exit - enter - 1`` over the preorder intervals), or None when
        *node* is outside the indexed tree."""
        enter = self._enter.get(id(node))
        if enter is None:
            return None
        return self._exit[id(node)] - enter - 1

    def children_of(self, parent: "XmlElement",
                    tag: str) -> list["XmlElement"] | None:
        """Direct children of *parent* with *tag*, or None when *parent*
        is not part of the indexed tree.  Returns the internal posting
        list — callers must not mutate it."""
        per_tag = self._children.get(id(parent))
        if per_tag is None:
            return None
        self.child_lookups += 1
        return per_tag.get(tag, _EMPTY)

    def descendants_of(self, node: "XmlElement",
                       tag: str) -> list["XmlElement"] | None:
        """Strict descendants of *node* with *tag* in document order, or
        None when *node* is not part of the indexed tree."""
        enter = self._enter.get(id(node))
        if enter is None:
            return None
        self.descendant_lookups += 1
        entry = self._by_tag.get(tag)
        if entry is None:
            return []
        enters, elems = entry
        lo = bisect_right(enters, enter)            # strictly after node
        hi = bisect_left(enters, self._exit[id(node)])
        return elems[lo:hi]

    def string_of(self, node: "XmlElement") -> str | None:
        """Cached whitespace-normalized string value of a covered element
        (documents are immutable, so the value never goes stale), or None
        when *node* is outside the indexed tree."""
        self.string_lookups += 1
        cached = self._strings.get(id(node))
        if cached is None:
            if id(node) not in self._enter:
                return None
            cached = node.normalized_text
            self._strings[id(node)] = cached
        return cached

    # -- metrics ---------------------------------------------------------- #

    def reset_counters(self) -> None:
        """Zero the lookup counters so repeated perf collections measure
        only their own window instead of accumulating forever."""
        self.child_lookups = 0
        self.descendant_lookups = 0
        self.string_lookups = 0

    def stats(self) -> dict:
        """Size and usage counters for the stats endpoint."""
        return {
            "elements": self.element_count,
            "tags": len(self._by_tag),
            "attributes": len(self._attr_names),
            "postings": sum(len(elems) for _, elems in self._by_tag.values()),
            "string_cache_entries": len(self._strings),
            "child_lookups": self.child_lookups,
            "descendant_lookups": self.descendant_lookups,
            "string_lookups": self.string_lookups,
        }

    def __repr__(self) -> str:
        return (f"DocumentIndex(root={self.root.tag!r}, "
                f"elements={self.element_count}, tags={len(self._by_tag)})")


_EMPTY: list = []
