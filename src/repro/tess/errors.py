"""Exception hierarchy for the TESS screen-scraper reproduction."""

from __future__ import annotations


class TessError(Exception):
    """Base class for all scraper errors."""


class TessConfigError(TessError):
    """Raised when a wrapper configuration file is malformed."""


class TessExtractionError(TessError):
    """Raised when extraction fails structurally.

    Examples: the configured region is absent from the page, a record's end
    marker never appears, or a nested-structure field is extracted with an
    engine that does not support nesting (the paper's original-TESS
    limitation exercised by the University of Maryland catalog).
    """

    def __init__(self, message: str, source: str | None = None) -> None:
        if source:
            message = f"[{source}] {message}"
        super().__init__(message)
        self.source = source
