"""The TESS extraction engine.

Given a page (raw HTML text) and a :class:`WrapperConfig`, the engine
produces an :class:`~repro.xmlmodel.element.XmlDocument` whose schema mirrors
the source's own structure: one child of the root per extracted record, one
child (or attribute) per configured field. Fields whose begin marker does not
occur in a record are simply omitted — that is how the testbed preserves the
*missing data* heterogeneities (Benchmark Queries 6–8).

Two engine flavors reproduce the paper's narrative:

* ``supports_nesting=True`` (default) — the modified TESS that handles
  free-form nested tables such as the University of Maryland catalog.
* ``supports_nesting=False`` — the original Berkeley TESS, which "was not
  designed to extract multiple lines from a nested structure" and raises
  :class:`TessExtractionError` when a config contains nested fields. The
  ablation bench ``bench_abl_scraper`` runs the whole testbed through both.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ..xmlmodel import XmlDocument, XmlElement
from .config import FieldConfig, NestedConfig, WrapperConfig
from .errors import TessExtractionError
from .htmltext import first_anchor_href, strip_tags, to_mixed_content


@dataclass(frozen=True)
class ExtractionStats:
    """Bookkeeping from one extraction run (used by scale benches)."""

    source: str
    records: int
    fields_extracted: int
    fields_missing: int


class TessScraper:
    """Regex-driven screen scraper in the style of the Telegraph TESS."""

    def __init__(self, supports_nesting: bool = True) -> None:
        self.supports_nesting = supports_nesting
        self._last_stats: ExtractionStats | None = None

    @property
    def last_stats(self) -> ExtractionStats | None:
        """Stats from the most recent :meth:`extract` call."""
        return self._last_stats

    # ------------------------------------------------------------------ #

    def extract(self, page: str, config: WrapperConfig) -> XmlDocument:
        """Extract *page* according to *config*.

        Raises:
            TessExtractionError: when the region or any record is
                structurally unextractable, or when nested fields are
                configured but this engine does not support nesting.
        """
        if config.has_nested_fields and not self.supports_nesting:
            raise TessExtractionError(
                "config requires nested-structure extraction, which the "
                "original TESS engine does not support",
                source=config.source)
        region = self._slice_region(page, config)
        root = XmlElement(config.root_tag)
        extracted = 0
        missing = 0
        records = list(_iter_blobs(region, config.record_begin,
                                   config.record_end, config.source,
                                   what="record"))
        for blob in records:
            record = XmlElement(config.record_tag)
            for field_config in config.fields:
                hit, absent = self._extract_field(blob, field_config,
                                                  record, config.source)
                extracted += hit
                missing += absent
            root.append(record)
        self._last_stats = ExtractionStats(
            source=config.source, records=len(records),
            fields_extracted=extracted, fields_missing=missing)
        return XmlDocument(root, source_name=config.source)

    # ------------------------------------------------------------------ #

    @staticmethod
    def _slice_region(page: str, config: WrapperConfig) -> str:
        start = 0
        end = len(page)
        if config.region_begin is not None:
            match = re.search(config.region_begin, page, re.DOTALL)
            if match is None:
                raise TessExtractionError(
                    f"region begin {config.region_begin!r} not found",
                    source=config.source)
            start = match.end()
        if config.region_end is not None:
            match = re.search(config.region_end, page[start:], re.DOTALL)
            if match is None:
                raise TessExtractionError(
                    f"region end {config.region_end!r} not found",
                    source=config.source)
            end = start + match.start()
        return page[start:end]

    def _extract_field(self, blob: str, field_config: FieldConfig,
                       record: XmlElement, source: str) -> tuple[int, int]:
        """Extract one field into *record*; returns (hits, misses)."""
        raw_values = list(_iter_field_values(blob, field_config))
        if not raw_values:
            return 0, 1
        if not field_config.repeat:
            raw_values = raw_values[:1]
        for raw in raw_values:
            if field_config.nested is not None:
                child = XmlElement(field_config.name)
                self._extract_nested(raw, field_config.nested, child, source)
                record.append(child)
                continue
            if field_config.as_attribute:
                record.set(field_config.name, strip_tags(raw))
                continue
            record.append(_render_field(field_config, raw))
        return len(raw_values), 0

    def _extract_nested(self, blob: str, nested: NestedConfig,
                        parent: XmlElement, source: str) -> None:
        for sub_blob in _iter_blobs(blob, nested.begin, nested.end,
                                    source, what="nested record"):
            sub_record = XmlElement(nested.record_tag)
            for sub_field in nested.fields:
                if sub_field.nested is not None:
                    raise TessExtractionError(
                        "nested structures may not nest further",
                        source=source)
                self._extract_field(sub_blob, sub_field, sub_record, source)
            parent.append(sub_record)


# --------------------------------------------------------------------------- #
# Matching helpers
# --------------------------------------------------------------------------- #

def _iter_blobs(text: str, begin: str, end: str, source: str, what: str):
    """Yield substrings delimited by (begin, end) regex pairs, in order."""
    begin_re = re.compile(begin, re.DOTALL)
    end_re = re.compile(end, re.DOTALL)
    cursor = 0
    while True:
        begin_match = begin_re.search(text, cursor)
        if begin_match is None:
            return
        end_match = end_re.search(text, begin_match.end())
        if end_match is None:
            raise TessExtractionError(
                f"{what} beginning at offset {begin_match.start()} has no "
                f"end marker {end!r}", source=source)
        yield text[begin_match.end():end_match.start()]
        cursor = end_match.end()


def _iter_field_values(blob: str, field_config: FieldConfig):
    begin_re = re.compile(field_config.begin, re.DOTALL)
    end_re = re.compile(field_config.end, re.DOTALL)
    cursor = 0
    while True:
        begin_match = begin_re.search(blob, cursor)
        if begin_match is None:
            return
        end_match = end_re.search(blob, begin_match.end())
        if end_match is None:
            # A field whose end never arrives is treated as running to the
            # end of the record blob (TESS's forgiving field semantics).
            yield blob[begin_match.end():]
            return
        yield blob[begin_match.end():end_match.start()]
        cursor = end_match.end()


def _render_field(field_config: FieldConfig, raw: str) -> XmlElement:
    node = XmlElement(field_config.name)
    if field_config.mode == "raw":
        node.append(raw)
    elif field_config.mode == "href":
        href = first_anchor_href(raw)
        node.append(href if href is not None else strip_tags(raw))
    elif field_config.mode == "mixed":
        node.extend(to_mixed_content(raw))
    else:  # text
        text = strip_tags(raw)
        if text:
            node.append(text)
    return node
