"""HTML text utilities for the scraper.

TESS operates on raw page text with regular expressions rather than a DOM,
so these helpers do the minimal HTML-aware post-processing a field value
needs: entity decoding, tag stripping, whitespace normalization, and —
because THALIA must *preserve* the union-type heterogeneity of hyperlinked
fields — conversion of ``<a href>`` anchors into XML subelements instead of
discarding them.
"""

from __future__ import annotations

import html as _html
import re

from ..xmlmodel import Child, XmlElement

_TAG_RE = re.compile(r"<[^>]+>")
_ANCHOR_RE = re.compile(
    r"<a\s[^>]*href\s*=\s*(?P<quote>['\"])(?P<href>.*?)(?P=quote)[^>]*>"
    r"(?P<label>.*?)</a>",
    re.IGNORECASE | re.DOTALL,
)
_BREAK_RE = re.compile(r"<br\s*/?>", re.IGNORECASE)


def decode_entities(text: str) -> str:
    """Decode HTML character references (``&amp;`` → ``&``)."""
    return _html.unescape(text)


def strip_tags(text: str) -> str:
    """Remove all markup, decode entities, collapse whitespace."""
    text = _BREAK_RE.sub(" ", text)
    text = _TAG_RE.sub(" ", text)
    return normalize_whitespace(decode_entities(text))


def normalize_whitespace(text: str) -> str:
    """Collapse runs of whitespace to single spaces and trim."""
    return " ".join(text.split())


def to_mixed_content(fragment: str) -> list[Child]:
    """Convert an HTML fragment into XML mixed content, preserving anchors.

    ``<a href="U">label</a> tail`` becomes ``[<a href="U">label</a>, " tail"]``
    where the anchor is an :class:`XmlElement`. All other markup is
    stripped. This is how the testbed keeps Brown's link-plus-string title
    values (Benchmark Query 3's union type) in the extracted XML.
    """
    children: list[Child] = []
    cursor = 0
    for match in _ANCHOR_RE.finditer(fragment):
        before = strip_tags(fragment[cursor:match.start()])
        if before:
            children.append(before + " ")
        anchor = XmlElement("a", {"href": decode_entities(match.group("href"))})
        label = strip_tags(match.group("label"))
        if label:
            anchor.append(label)
        children.append(anchor)
        cursor = match.end()
    tail = strip_tags(fragment[cursor:])
    if tail:
        if children and isinstance(children[-1], XmlElement):
            children.append(" " + tail)
        else:
            children.append(tail)
    if not children:
        return []
    return children


def first_anchor_href(fragment: str) -> str | None:
    """URL of the first anchor in the fragment, or None.

    The paper's TESS "returns the URL of the link (instead of the contents
    of the linked page) as the extracted value" for linked continuations
    such as instructor home pages; this helper implements that rule.
    """
    match = _ANCHOR_RE.search(fragment)
    if match is None:
        return None
    return decode_entities(match.group("href"))
