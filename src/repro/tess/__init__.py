"""TESS screen-scraper reproduction: wrapper configs + extraction engine.

The paper extracts every course catalog from its cached HTML snapshot with
the Telegraph Screen Scraper (TESS), driven by a per-source configuration
file of begin/end regular expressions — extended by the THALIA authors with
nested-structure support for catalogs like the University of Maryland's.
This package rebuilds that pipeline::

    from repro.tess import TessScraper, WrapperConfig

    config = WrapperConfig.from_text(open("brown.cfg").read())
    document = TessScraper().extract(html_page, config)
"""

from .config import FIELD_MODES, FieldConfig, NestedConfig, WrapperConfig
from .errors import TessConfigError, TessError, TessExtractionError
from .htmltext import (
    decode_entities,
    first_anchor_href,
    normalize_whitespace,
    strip_tags,
    to_mixed_content,
)
from .scraper import ExtractionStats, TessScraper

__all__ = [
    "ExtractionStats",
    "FIELD_MODES",
    "FieldConfig",
    "NestedConfig",
    "TessConfigError",
    "TessError",
    "TessExtractionError",
    "TessScraper",
    "WrapperConfig",
    "decode_entities",
    "first_anchor_href",
    "normalize_whitespace",
    "strip_tags",
    "to_mixed_content",
]
