"""Wrapper configuration model for the TESS reproduction.

A :class:`WrapperConfig` tells the extraction engine, for one source:

* which slice of the page holds the catalog (*region* begin/end regexes);
* how to delimit each course *record* (begin/end regexes);
* for every *field*: a name, begin/end regexes locating the value inside the
  record blob, how to post-process the raw match (``text``, ``mixed``,
  ``href`` or ``raw`` mode), whether the field repeats, whether it lands as
  an attribute, and — the paper's University-of-Maryland extension —
  an optional *nested* structure with its own record delimiters and
  sub-fields.

Configs can be built programmatically or parsed from the INI-style text
format produced by :meth:`WrapperConfig.to_text`, mirroring the paper's
statement that "for each source, a configuration file specifies which
fields TESS should extract; beginning and ending points for each field are
identified using regular expressions."
"""

from __future__ import annotations

import configparser
import io
import re
from dataclasses import dataclass, field

from .errors import TessConfigError

FIELD_MODES = ("text", "mixed", "href", "raw")


@dataclass
class FieldConfig:
    """Extraction rule for one field of a record."""

    name: str
    begin: str
    end: str
    mode: str = "text"
    repeat: bool = False
    as_attribute: bool = False
    nested: "NestedConfig | None" = None

    def __post_init__(self) -> None:
        if self.mode not in FIELD_MODES:
            raise TessConfigError(
                f"field {self.name!r}: unknown mode {self.mode!r} "
                f"(expected one of {', '.join(FIELD_MODES)})")
        if self.as_attribute and (self.nested or self.repeat):
            raise TessConfigError(
                f"field {self.name!r}: attribute fields cannot repeat "
                "or nest")
        for label, pattern in (("begin", self.begin), ("end", self.end)):
            _compile_or_raise(pattern, f"field {self.name!r} {label}")


@dataclass
class NestedConfig:
    """Sub-structure of a nested field (e.g. UMD's per-section rows)."""

    record_tag: str
    begin: str
    end: str
    fields: list[FieldConfig] = field(default_factory=list)

    def __post_init__(self) -> None:
        _compile_or_raise(self.begin, f"nested {self.record_tag!r} begin")
        _compile_or_raise(self.end, f"nested {self.record_tag!r} end")


@dataclass
class WrapperConfig:
    """Complete wrapper configuration for one testbed source."""

    source: str
    root_tag: str
    record_tag: str
    record_begin: str
    record_end: str
    fields: list[FieldConfig] = field(default_factory=list)
    region_begin: str | None = None
    region_end: str | None = None

    def __post_init__(self) -> None:
        if not self.fields_ok():
            raise TessConfigError(
                f"wrapper {self.source!r}: duplicate field names")
        _compile_or_raise(self.record_begin,
                          f"wrapper {self.source!r} record begin")
        _compile_or_raise(self.record_end,
                          f"wrapper {self.source!r} record end")
        if self.region_begin is not None:
            _compile_or_raise(self.region_begin,
                              f"wrapper {self.source!r} region begin")
        if self.region_end is not None:
            _compile_or_raise(self.region_end,
                              f"wrapper {self.source!r} region end")

    def fields_ok(self) -> bool:
        names = [f.name for f in self.fields]
        return len(names) == len(set(names))

    @property
    def has_nested_fields(self) -> bool:
        return any(f.nested is not None for f in self.fields)

    # ------------------------------------------------------------------ #
    # Text round-trip
    # ------------------------------------------------------------------ #

    def to_text(self) -> str:
        """Render as the INI-style configuration file format."""
        parser = configparser.ConfigParser(interpolation=None)
        parser.optionxform = str  # preserve case in option names
        parser["wrapper"] = {
            "source": self.source,
            "root_tag": self.root_tag,
            "record_tag": self.record_tag,
            "record_begin": self.record_begin,
            "record_end": self.record_end,
        }
        if self.region_begin is not None:
            parser["wrapper"]["region_begin"] = self.region_begin
        if self.region_end is not None:
            parser["wrapper"]["region_end"] = self.region_end
        for field_config in self.fields:
            section = f"field {field_config.name}"
            parser[section] = {
                "begin": field_config.begin,
                "end": field_config.end,
                "mode": field_config.mode,
            }
            if field_config.repeat:
                parser[section]["repeat"] = "true"
            if field_config.as_attribute:
                parser[section]["attribute"] = "true"
            nested = field_config.nested
            if nested is not None:
                nested_section = f"nested {field_config.name}"
                parser[nested_section] = {
                    "record_tag": nested.record_tag,
                    "begin": nested.begin,
                    "end": nested.end,
                }
                for sub in nested.fields:
                    parser[f"nested-field {field_config.name}.{sub.name}"] = {
                        "begin": sub.begin,
                        "end": sub.end,
                        "mode": sub.mode,
                        **({"repeat": "true"} if sub.repeat else {}),
                        **({"attribute": "true"} if sub.as_attribute else {}),
                    }
        buffer = io.StringIO()
        parser.write(buffer)
        return buffer.getvalue()

    @classmethod
    def from_text(cls, text: str) -> "WrapperConfig":
        """Parse the INI-style configuration file format."""
        parser = configparser.ConfigParser(interpolation=None)
        parser.optionxform = str
        try:
            parser.read_string(text)
        except configparser.Error as exc:
            raise TessConfigError(f"unparseable wrapper config: {exc}") from exc
        if "wrapper" not in parser:
            raise TessConfigError("missing [wrapper] section")
        wrapper = parser["wrapper"]
        for key in ("source", "root_tag", "record_tag",
                    "record_begin", "record_end"):
            if key not in wrapper:
                raise TessConfigError(f"[wrapper] missing {key!r}")

        fields: dict[str, FieldConfig] = {}
        order: list[str] = []
        for section in parser.sections():
            if section.startswith("field "):
                name = section[len("field "):].strip()
                fields[name] = _parse_field(name, parser[section])
                order.append(name)
        for section in parser.sections():
            if section.startswith("nested "):
                owner = section[len("nested "):].strip()
                if owner not in fields:
                    raise TessConfigError(
                        f"[{section}] refers to unknown field {owner!r}")
                body = parser[section]
                for key in ("record_tag", "begin", "end"):
                    if key not in body:
                        raise TessConfigError(f"[{section}] missing {key!r}")
                fields[owner].nested = NestedConfig(
                    record_tag=body["record_tag"],
                    begin=body["begin"],
                    end=body["end"],
                )
        for section in parser.sections():
            if section.startswith("nested-field "):
                dotted = section[len("nested-field "):].strip()
                owner, _, sub_name = dotted.partition(".")
                if owner not in fields or fields[owner].nested is None:
                    raise TessConfigError(
                        f"[{section}] refers to unknown nested field "
                        f"{owner!r}")
                fields[owner].nested.fields.append(
                    _parse_field(sub_name, parser[section]))
        return cls(
            source=wrapper["source"],
            root_tag=wrapper["root_tag"],
            record_tag=wrapper["record_tag"],
            record_begin=wrapper["record_begin"],
            record_end=wrapper["record_end"],
            region_begin=wrapper.get("region_begin"),
            region_end=wrapper.get("region_end"),
            fields=[fields[name] for name in order],
        )


def _parse_field(name: str, body: configparser.SectionProxy) -> FieldConfig:
    for key in ("begin", "end"):
        if key not in body:
            raise TessConfigError(f"field {name!r} missing {key!r}")
    return FieldConfig(
        name=name,
        begin=body["begin"],
        end=body["end"],
        mode=body.get("mode", "text"),
        repeat=body.getboolean("repeat", fallback=False),
        as_attribute=body.getboolean("attribute", fallback=False),
    )


def _compile_or_raise(pattern: str, what: str) -> None:
    try:
        re.compile(pattern)
    except re.error as exc:
        raise TessConfigError(f"{what}: invalid regex {pattern!r}: {exc}") \
            from exc
