"""Exception hierarchy for the XQuery subset engine."""

from __future__ import annotations


class XQueryError(Exception):
    """Base class for all XQuery engine errors."""


class XQuerySyntaxError(XQueryError):
    """Raised by the lexer or parser on malformed query text.

    Attributes:
        position: 0-based character offset of the offending token.
        line: 1-based line number, derived from the offset.
    """

    def __init__(self, message: str, source: str = "",
                 position: int | None = None) -> None:
        self.position = position
        self.line = None
        if position is not None and source:
            self.line = source.count("\n", 0, position) + 1
            message = f"{message} (line {self.line}, offset {position})"
        super().__init__(message)


class XQueryTypeError(XQueryError):
    """Raised when a value cannot be used where the operation requires.

    The benchmark harness treats this as a *visible integration failure*:
    e.g. comparing ETH's textual ``Umfang`` value ("2V1U") with the number
    10 raises here, exactly the situation Benchmark Query 4 is designed to
    expose.
    """


class XQueryNameError(XQueryError):
    """Raised for unbound variables, unknown functions or unknown documents."""
