"""Exception hierarchy for the XQuery subset engine."""

from __future__ import annotations


class XQueryError(Exception):
    """Base class for all XQuery engine errors."""


class XQuerySyntaxError(XQueryError):
    """Raised by the lexer or parser on malformed query text.

    Attributes:
        position: 0-based character offset of the offending token.
        line: 1-based line number, derived from the offset.
        column: 1-based column on that line, derived from the offset.
        source_line: the offending source line's text (no newline).
    """

    def __init__(self, message: str, source: str = "",
                 position: int | None = None) -> None:
        self.position = position
        self.line: int | None = None
        self.column: int | None = None
        self.source_line: str | None = None
        if position is not None and source:
            self.line = source.count("\n", 0, position) + 1
            line_start = source.rfind("\n", 0, position) + 1
            self.column = position - line_start + 1
            line_end = source.find("\n", line_start)
            self.source_line = source[line_start:
                                      line_end if line_end != -1 else None]
            message = f"{message} (line {self.line}, offset {position})"
        super().__init__(message)

    def context(self) -> str | None:
        """The offending line with a caret under the failing token, or
        None when the error carries no location."""
        if self.source_line is None or self.column is None:
            return None
        return f"{self.source_line}\n{' ' * (self.column - 1)}^"


class XQueryTypeError(XQueryError):
    """Raised when a value cannot be used where the operation requires.

    The benchmark harness treats this as a *visible integration failure*:
    e.g. comparing ETH's textual ``Umfang`` value ("2V1U") with the number
    10 raises here, exactly the situation Benchmark Query 4 is designed to
    expose.
    """


class XQueryNameError(XQueryError):
    """Raised for unbound variables, unknown functions or unknown documents."""
