"""Evaluator for the XQuery subset.

Semantics follow XQuery 1.0 where the subset overlaps, with two documented
divergences tailored to the THALIA benchmark text:

* **SQL-LIKE comparisons.** When one operand of ``=``/``!=`` is a *string
  literal* containing ``%``, the comparison becomes a case-insensitive LIKE
  match (``%`` = any run, ``_`` = any character). The paper writes its
  queries this way (``WHERE $b/CourseName='%Data Structures%'``).
* **Whitespace-normalized atomization.** Element string values are
  whitespace-normalized (see :mod:`repro.xquery.runtime`).

Numeric comparison against non-numeric text raises
:class:`~repro.xquery.errors.XQueryTypeError` — deliberately, because that is
the visible symptom of an unresolved heterogeneity (e.g. Benchmark Query 4's
``Units > 10`` against ETH's textual ``Umfang``).
"""

from __future__ import annotations

import re
from functools import lru_cache

from ..xmlmodel import XmlElement
from .ast import (
    Arithmetic,
    Comparison,
    ContextItem,
    ElementConstructor,
    Expr,
    FLWOR,
    ForClause,
    FunctionCall,
    IfExpr,
    LetClause,
    Literal,
    Logical,
    Not,
    PathExpr,
    Quantified,
    Sequence,
    Step,
    VarRef,
)
from .context import DynamicContext
from .errors import XQueryTypeError
from .runtime import (
    Seq,
    atomize,
    effective_boolean_value,
    singleton,
    string_value,
    to_number,
)


def evaluate(node: Expr, context: DynamicContext) -> Seq:
    """Evaluate an AST node to a sequence."""
    handler = _HANDLERS.get(type(node))
    if handler is None:  # pragma: no cover - parser only emits known nodes
        raise TypeError(f"no handler for AST node {type(node).__name__}")
    return handler(node, context)


# --------------------------------------------------------------------------- #
# Simple nodes
# --------------------------------------------------------------------------- #

def _eval_literal(node: Literal, context: DynamicContext) -> Seq:
    return [node.value]


def _eval_varref(node: VarRef, context: DynamicContext) -> Seq:
    return context.lookup(node.name)


def _eval_context_item(node: ContextItem, context: DynamicContext) -> Seq:
    if context.context_item is None:
        raise XQueryTypeError("'.' used outside a predicate focus")
    return [context.context_item]


def _eval_function_call(node: FunctionCall, context: DynamicContext) -> Seq:
    args = [evaluate(arg, context) for arg in node.args]
    return context.functions.call(context, node.name, args)


def _eval_sequence(node: Sequence, context: DynamicContext) -> Seq:
    result: Seq = []
    for item in node.items:
        result.extend(evaluate(item, context))
    return result


def _eval_if(node: IfExpr, context: DynamicContext) -> Seq:
    if effective_boolean_value(evaluate(node.condition, context)):
        return evaluate(node.then_branch, context)
    return evaluate(node.else_branch, context)


def _eval_logical(node: Logical, context: DynamicContext) -> Seq:
    left = effective_boolean_value(evaluate(node.left, context))
    if node.op == "and":
        if not left:
            return [False]
        return [effective_boolean_value(evaluate(node.right, context))]
    if left:
        return [True]
    return [effective_boolean_value(evaluate(node.right, context))]


def _eval_not(node: Not, context: DynamicContext) -> Seq:
    return [not effective_boolean_value(evaluate(node.operand, context))]


def _eval_arithmetic(node: Arithmetic, context: DynamicContext) -> Seq:
    left_seq = evaluate(node.left, context)
    right_seq = evaluate(node.right, context)
    if not left_seq or not right_seq:
        return []
    left = to_number(singleton(left_seq, "arithmetic"))
    right = to_number(singleton(right_seq, "arithmetic"))
    return [left + right if node.op == "+" else left - right]


# --------------------------------------------------------------------------- #
# Paths
# --------------------------------------------------------------------------- #

def _eval_path(node: PathExpr, context: DynamicContext) -> Seq:
    current = evaluate(node.base, context)
    for step in node.steps:
        current = _apply_step(step, current, context)
    return current


def _apply_step(step: Step, sequence: Seq, context: DynamicContext) -> Seq:
    if len(sequence) == 1:
        # One context item cannot produce duplicate nodes, so skip the
        # id-dedup bookkeeping (the common shape in per-binding paths).
        item = sequence[0]
        if not isinstance(item, XmlElement):
            raise XQueryTypeError(
                f"path step '{step.name}' applied to atomic value "
                f"{string_value(item)!r}")
        result: Seq = _step_candidates(step, item)
    else:
        result = []
        seen: set[int] = set()
        for item in sequence:
            if not isinstance(item, XmlElement):
                raise XQueryTypeError(
                    f"path step '{step.name}' applied to atomic value "
                    f"{string_value(item)!r}")
            for produced in _step_candidates(step, item):
                if isinstance(produced, XmlElement):
                    if id(produced) in seen:
                        continue
                    seen.add(id(produced))
                result.append(produced)
    for predicate in step.predicates:
        result = _filter_by_predicate(predicate, result, context)
    return result


def _step_candidates(step: Step, item: XmlElement) -> Seq:
    if step.axis == "descendant":
        pool = [node for child in item.element_children
                for node in child.iter()]
    else:
        pool = item.element_children
    if step.kind == "element":
        if step.name == "*":
            return list(pool)
        return [node for node in pool if node.tag == step.name]
    if step.kind == "attribute":
        values: Seq = []
        targets = [item] if step.axis == "child" else pool
        for target in targets:
            value = target.get(step.name)
            if value is not None:
                values.append(value)
        return values
    # text(): direct text runs of the item (child axis) or of descendants.
    targets = [item] if step.axis == "child" else pool
    texts: Seq = []
    for target in targets:
        direct = "".join(c for c in target.children if isinstance(c, str))
        if direct:
            texts.append(direct)
    return texts


def _filter_by_predicate(predicate: Expr, sequence: Seq,
                         context: DynamicContext) -> Seq:
    size = len(sequence)
    kept: Seq = []
    for position, item in enumerate(sequence, start=1):
        focused = context.with_focus(item, position, size)
        value = evaluate(predicate, focused)
        if len(value) == 1 and isinstance(value[0], float):
            if value[0] == position:
                kept.append(item)
        elif effective_boolean_value(value):
            kept.append(item)
    return kept


# --------------------------------------------------------------------------- #
# Comparisons (incl. the paper's LIKE idiom)
# --------------------------------------------------------------------------- #

@lru_cache(maxsize=512)
def _like_pattern(pattern: str) -> re.Pattern[str]:
    parts: list[str] = []
    for ch in pattern:
        if ch == "%":
            parts.append(".*")
        elif ch == "_":
            parts.append(".")
        else:
            parts.append(re.escape(ch))
    return re.compile("^" + "".join(parts) + "$", re.IGNORECASE | re.DOTALL)


def like_cache_stats() -> dict[str, int]:
    """Counters for the shared LIKE-pattern regex cache (``/api/stats``)."""
    info = _like_pattern.cache_info()
    return {
        "hits": info.hits,
        "misses": info.misses,
        "entries": info.currsize,
        "maxsize": info.maxsize or 0,
    }


def _literal_like(node: Expr) -> str | None:
    """The LIKE pattern if *node* is a string literal containing '%'."""
    if isinstance(node, Literal) and isinstance(node.value, str) \
            and "%" in node.value:
        return node.value
    return None


def _compare_atomic(op: str, left: object, right: object) -> bool:
    if isinstance(left, bool) or isinstance(right, bool):
        left_b = effective_boolean_value([left])
        right_b = effective_boolean_value([right])
        if op == "=":
            return left_b == right_b
        if op == "!=":
            return left_b != right_b
        raise XQueryTypeError(f"operator {op} not defined for booleans")
    if isinstance(left, float) or isinstance(right, float):
        left_n = left if isinstance(left, float) else to_number(left)  # type: ignore[arg-type]
        right_n = right if isinstance(right, float) else to_number(right)  # type: ignore[arg-type]
        return _ordered(op, left_n, right_n)
    return _ordered(op, str(left), str(right))


def _ordered(op: str, left, right) -> bool:
    if op == "=":
        return left == right
    if op == "!=":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    return left >= right


def _general_compare(op: str, left_seq: Seq, right_seq: Seq) -> bool:
    """Existential general comparison over two atomized sequences.

    For ``=``/``!=`` between all-string sequences the O(n·m) pair product
    collapses to set algebra: ``=`` holds iff the value sets intersect and
    ``!=`` holds iff the union contains at least two distinct values (both
    sides being non-empty). The generic pair loop remains the fallback for
    mixed-type sequences, where per-pair numeric promotion (and its type
    errors) must be preserved.
    """
    if not left_seq or not right_seq:
        return False
    if op in ("=", "!=") and len(left_seq) * len(right_seq) > 4 \
            and all(type(value) is str for value in left_seq) \
            and all(type(value) is str for value in right_seq):
        if op == "=":
            return not set(left_seq).isdisjoint(right_seq)
        return len(set(left_seq).union(right_seq)) > 1
    return any(
        _compare_atomic(op, left, right)
        for left in left_seq for right in right_seq)


def _eval_comparison(node: Comparison, context: DynamicContext) -> Seq:
    left_seq = atomize(evaluate(node.left, context))
    right_seq = atomize(evaluate(node.right, context))

    if node.op in ("=", "!="):
        pattern_text = _literal_like(node.right)
        values = left_seq
        if pattern_text is None:
            pattern_text = _literal_like(node.left)
            values = right_seq
        if pattern_text is not None:
            pattern = _like_pattern(pattern_text)
            if node.op == "=":
                return [any(pattern.match(str(v)) for v in values)]
            return [any(not pattern.match(str(v)) for v in values)]

    return [_general_compare(node.op, left_seq, right_seq)]


# --------------------------------------------------------------------------- #
# FLWOR
# --------------------------------------------------------------------------- #

def _order_key(value: Seq) -> tuple:
    """A totally-ordered sort key for one ``order by`` key value.

    Empty sequences sort first (XQuery's "empty least" default); numbers
    sort before strings; multi-item keys are a type error.
    """
    if not value:
        return (0, 0.0, "")
    item = singleton(value, "order by key")
    if isinstance(item, bool):
        return (1, 1.0 if item else 0.0, "")
    if isinstance(item, float):
        return (1, item, "")
    return (2, 0.0, string_value(item))


def _eval_flwor(node: FLWOR, context: DynamicContext) -> Seq:
    ordered: list[tuple[tuple, Seq]] = []

    def emit(scope: DynamicContext) -> None:
        produced = evaluate(node.returns, scope)
        if node.order_specs:
            keys = []
            for spec in node.order_specs:
                key = _order_key(evaluate(spec.key, scope))
                if spec.descending:
                    key = tuple(_invert(part) for part in key)
                keys.append(key)
            ordered.append((tuple(keys), produced))
        else:
            ordered.append(((), produced))

    def recurse(index: int, scope: DynamicContext) -> None:
        if index == len(node.clauses):
            if node.where is not None:
                if not effective_boolean_value(evaluate(node.where, scope)):
                    return
            emit(scope)
            return
        clause = node.clauses[index]
        if isinstance(clause, ForClause):
            for item in evaluate(clause.source, scope):
                recurse(index + 1, scope.bind(clause.variable, [item]))
        else:
            assert isinstance(clause, LetClause)
            value = evaluate(clause.value, scope)
            recurse(index + 1, scope.bind(clause.variable, value))

    recurse(0, context)
    if node.order_specs:
        ordered.sort(key=lambda entry: entry[0])
    results: Seq = []
    for _, produced in ordered:
        results.extend(produced)
    return results


class _Inverted:
    """Wrapper reversing the order of one key component (descending)."""

    __slots__ = ("value",)

    def __init__(self, value) -> None:
        self.value = value

    def __lt__(self, other: "_Inverted") -> bool:
        return other.value < self.value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Inverted) and self.value == other.value


def _invert(part):
    return _Inverted(part)


def _eval_quantified(node: Quantified, context: DynamicContext) -> Seq:
    some = node.kind == "some"

    def decided(index: int, scope: DynamicContext) -> bool:
        """True once the overall answer is settled — stop iterating.

        ``some`` settles on the first true condition, ``every`` on the
        first false one; later binding combinations are never evaluated.
        """
        if index == len(node.bindings):
            value = effective_boolean_value(evaluate(node.condition, scope))
            return value if some else not value
        binding = node.bindings[index]
        for item in evaluate(binding.source, scope):
            if decided(index + 1, scope.bind(binding.variable, [item])):
                return True
        return False

    settled = decided(0, context)
    return [settled if some else not settled]


# --------------------------------------------------------------------------- #
# Constructors
# --------------------------------------------------------------------------- #

def _eval_element_constructor(node: ElementConstructor,
                              context: DynamicContext) -> Seq:
    constructed = XmlElement(node.name)
    if node.content is not None:
        pending_atomics: list[str] = []

        def flush() -> None:
            if pending_atomics:
                constructed.append(" ".join(pending_atomics))
                pending_atomics.clear()

        for item in evaluate(node.content, context):
            if isinstance(item, XmlElement):
                flush()
                constructed.append(item.copy())
            else:
                pending_atomics.append(string_value(item))
        flush()
    return [constructed]


_HANDLERS = {
    Literal: _eval_literal,
    VarRef: _eval_varref,
    ContextItem: _eval_context_item,
    FunctionCall: _eval_function_call,
    Sequence: _eval_sequence,
    IfExpr: _eval_if,
    Logical: _eval_logical,
    Not: _eval_not,
    Arithmetic: _eval_arithmetic,
    PathExpr: _eval_path,
    Comparison: _eval_comparison,
    FLWOR: _eval_flwor,
    Quantified: _eval_quantified,
    ElementConstructor: _eval_element_constructor,
}
