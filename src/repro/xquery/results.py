"""Content-addressed query-result cache with single-flight coalescing.

The benchmark harness and the live service execute the same deterministic
computations over the same immutable inputs again and again: the twelve
gold-answer queries per scoring run, reference-query self-checks, every
``POST /api/query`` replay.  :class:`ResultCache` memoizes those results
under a key that *proves* the inputs are unchanged:

``(task fingerprint, content fingerprint)``

* the *task fingerprint* identifies the computation — a compiled
  :class:`~repro.xquery.plan.Plan`'s :attr:`~repro.xquery.plan.Plan.fingerprint`
  (source hash + function-registry fingerprint), or a caller-supplied
  token such as ``"gold:q7"``;
* the *content fingerprint* identifies the data — for testbeds, the
  :meth:`~repro.catalogs.testbed.Testbed.content_fingerprint` derived
  from the exact serialization of the content-addressed build artifacts.

A rebuilt or modified testbed therefore *cannot* serve a stale cached
result: its content fingerprint differs, so the old entries are simply
never addressed again (the same invalidation-by-addressing scheme as the
build pipeline's :class:`~repro.catalogs.pipeline.ArtifactCache`).

Misses are **single-flight**: when several threads race on the same cold
key, one computes while the rest wait for that result instead of
re-executing (the ``coalesced`` counter counts the waiters).  Failures
are never cached — every waiter of a failed flight sees the error, and
the next caller recomputes.

Cached values are shared across callers and threads and must be treated
as immutable; everything this repo caches (result sequences, gold-answer
frozensets, integrated course tuples) is read-only by convention.

:func:`shared_result_cache` is the process-wide instance used by the
benchmark runner, the self-check validator and the CLI; the server keeps
its own so ``/api/stats`` reports request-driven hit rates.
"""

from __future__ import annotations

import sys
import threading
from collections import OrderedDict
from typing import Callable, TypeVar

from ..xmlmodel import XmlElement, serialize
from .plan import Plan

T = TypeVar("T")

Key = tuple[str, str]


def estimate_bytes(value: object) -> int:
    """Approximate in-memory footprint of a cached result.

    Exact accounting would cost more than the cache saves; this walks
    containers and charges serialized length for XML elements, string
    length for text and a flat word for scalars — good enough for the
    ``bytes`` gauge in ``stats()`` to be meaningful.
    """
    if isinstance(value, XmlElement):
        return len(serialize(value))
    if isinstance(value, str):
        return len(value)
    if isinstance(value, (int, float, bool)) or value is None:
        return 8
    if isinstance(value, (list, tuple, set, frozenset)):
        return 16 + sum(estimate_bytes(item) for item in value)
    if isinstance(value, dict):
        return 16 + sum(estimate_bytes(k) + estimate_bytes(v)
                        for k, v in value.items())
    return sys.getsizeof(value)


class _Entry:
    __slots__ = ("value", "size")

    def __init__(self, value, size: int) -> None:
        self.value = value
        self.size = size


class _Flight:
    """One in-progress computation other threads can await."""

    __slots__ = ("event", "value", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.value = None
        self.error: BaseException | None = None


class ResultCache:
    """Thread-safe bounded LRU of computed results, single-flight on miss."""

    def __init__(self, maxsize: int = 512) -> None:
        if maxsize < 1:
            raise ValueError("ResultCache maxsize must be >= 1")
        self.maxsize = maxsize
        self._lock = threading.Lock()
        self._entries: OrderedDict[Key, _Entry] = OrderedDict()
        self._inflight: dict[Key, _Flight] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.coalesced = 0
        self.bytes = 0          # running total; updated on insert/evict

    # -- core ------------------------------------------------------------- #

    def fetch(self, task_fingerprint: str, content_fingerprint: str,
              compute: Callable[[], T]) -> tuple[T, str]:
        """``(value, status)`` where status is ``hit``/``miss``/``coalesced``.

        The computation runs outside the lock.  Exactly one thread
        computes a given cold key; concurrent callers block on that
        flight's result.  A failed computation propagates its error to
        every waiter and leaves nothing cached.
        """
        key = (task_fingerprint, content_fingerprint)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self.hits += 1
                self._entries.move_to_end(key)
                return entry.value, "hit"
            flight = self._inflight.get(key)
            if flight is None:
                flight = _Flight()
                self._inflight[key] = flight
                self.misses += 1
                leader = True
            else:
                self.coalesced += 1
                leader = False
        if not leader:
            flight.event.wait()
            if flight.error is not None:
                raise flight.error
            return flight.value, "coalesced"
        try:
            value = compute()
        except BaseException as exc:
            flight.error = exc
            with self._lock:
                self._inflight.pop(key, None)
            flight.event.set()
            raise
        size = estimate_bytes(value)
        with self._lock:
            self._entries[key] = _Entry(value, size)
            self.bytes += size
            while len(self._entries) > self.maxsize:
                _, evicted = self._entries.popitem(last=False)
                self.bytes -= evicted.size
                self.evictions += 1
            self._inflight.pop(key, None)
        flight.value = value
        flight.event.set()
        return value, "miss"

    def get_or_compute(self, task_fingerprint: str, content_fingerprint: str,
                       compute: Callable[[], T]) -> T:
        """:meth:`fetch` without the status (most call sites)."""
        value, _status = self.fetch(task_fingerprint, content_fingerprint,
                                    compute)
        return value

    def execute(self, plan: Plan, documents, content_fingerprint: str):
        """Run *plan* against *documents*, memoized under the plan's own
        fingerprint plus the document set's content fingerprint."""
        return self.get_or_compute(plan.fingerprint, content_fingerprint,
                                   lambda: plan.execute(documents))

    # -- maintenance ------------------------------------------------------ #

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        """Drop entries and reset counters (in-flight work is unaffected:
        a racing leader still publishes into the now-empty table)."""
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0
            self.evictions = 0
            self.coalesced = 0
            self.bytes = 0

    def stats(self) -> dict:
        with self._lock:
            lookups = self.hits + self.misses + self.coalesced
            served = self.hits + self.coalesced
            return {
                "size": len(self._entries),
                "maxsize": self.maxsize,
                "bytes": self.bytes,
                "lookups": lookups,
                "served": served,
                "hits": self.hits,
                "misses": self.misses,
                "coalesced": self.coalesced,
                "evictions": self.evictions,
                "hit_rate": round(served / lookups, 4) if lookups else 0.0,
            }


_SHARED = ResultCache()


def shared_result_cache() -> ResultCache:
    """The process-wide cache used by the runner, validator and CLI."""
    return _SHARED


__all__ = ["ResultCache", "estimate_bytes", "shared_result_cache"]
