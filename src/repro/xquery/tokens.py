"""Token definitions shared by the XQuery lexer and parser."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Final

# Token kinds -------------------------------------------------------------- #

NAME: Final = "NAME"            # Course, doc, fn:contains
VARIABLE: Final = "VARIABLE"    # $b (value stored without the '$')
STRING: Final = "STRING"        # 'Mark' or "Mark"
NUMBER: Final = "NUMBER"        # 10, 1.5
KEYWORD: Final = "KEYWORD"      # for let where return in and or not if then
                                # else element satisfies
SYMBOL: Final = "SYMBOL"        # ( ) { } [ ] , / // @ = != < <= > >= + - * . :=
EOF: Final = "EOF"

KEYWORDS: Final = frozenset({
    "for", "let", "where", "return", "in", "and", "or", "not",
    "if", "then", "else", "element",
    "order", "by", "ascending", "descending",
    "some", "every", "satisfies",
})

# Multi-character symbols must be listed longest-first for maximal munch.
SYMBOLS: Final = ("//", ":=", "!=", "<=", ">=",
                  "(", ")", "{", "}", "[", "]", ",", "/", "@",
                  "=", "<", ">", "+", "-", "*", ".")


@dataclass(frozen=True)
class Token:
    """One lexical token.

    ``value`` is the normalized payload: keyword tokens are lowercased,
    variable tokens drop the ``$`` sigil, string tokens are unquoted.
    ``position`` is the 0-based offset of the first character in the source,
    used for error reporting.
    """

    kind: str
    value: str
    position: int

    def is_keyword(self, word: str) -> bool:
        return self.kind == KEYWORD and self.value == word

    def is_symbol(self, *symbols: str) -> bool:
        return self.kind == SYMBOL and self.value in symbols

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.value!r}@{self.position})"
