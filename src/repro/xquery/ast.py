"""AST node definitions for the XQuery subset.

Nodes are frozen dataclasses so compiled queries are immutable and safely
shareable between benchmark runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

Expr = Union[
    "Literal", "VarRef", "ContextItem", "FunctionCall", "PathExpr",
    "Comparison", "Arithmetic", "Logical", "Not", "Sequence", "FLWOR",
    "IfExpr", "ElementConstructor", "Quantified",
]


@dataclass(frozen=True)
class Literal:
    """A string or numeric literal."""

    value: str | float


@dataclass(frozen=True)
class VarRef:
    """Reference to a bound variable, e.g. ``$b``."""

    name: str


@dataclass(frozen=True)
class ContextItem:
    """The context item ``.`` inside a path predicate."""


@dataclass(frozen=True)
class FunctionCall:
    """A function call, e.g. ``doc("cmu.xml")`` or ``contains($t, 'DB')``."""

    name: str
    args: tuple["Expr", ...]


@dataclass(frozen=True)
class Step:
    """One path step.

    ``axis`` is ``child`` or ``descendant``; ``kind`` is ``element`` (name or
    ``*`` test), ``attribute`` or ``text``. ``predicates`` are full
    expressions evaluated with a focus (context item + position).
    """

    axis: str
    kind: str
    name: str
    predicates: tuple["Expr", ...] = field(default=())


@dataclass(frozen=True)
class PathExpr:
    """A base expression followed by one or more steps."""

    base: "Expr"
    steps: tuple[Step, ...]


@dataclass(frozen=True)
class Comparison:
    """General comparison; ``op`` in ``= != < <= > >=``.

    Follows XQuery's existential semantics over sequences, with one THALIA
    extension: when a string operand of ``=``/``!=`` contains ``%`` the
    comparison degrades to a SQL-LIKE pattern match, because the paper's
    benchmark queries are written in that idiom
    (``WHERE $b/CourseName='%Data Structures%'``).
    """

    op: str
    left: "Expr"
    right: "Expr"


@dataclass(frozen=True)
class Arithmetic:
    """Binary ``+`` or ``-`` over numbers."""

    op: str
    left: "Expr"
    right: "Expr"


@dataclass(frozen=True)
class Logical:
    """``and`` / ``or`` over effective boolean values."""

    op: str
    left: "Expr"
    right: "Expr"


@dataclass(frozen=True)
class Not:
    """``not`` applied to an effective boolean value."""

    operand: "Expr"


@dataclass(frozen=True)
class Sequence:
    """Comma (or return-clause juxtaposition) sequence constructor."""

    items: tuple["Expr", ...]


@dataclass(frozen=True)
class ForClause:
    """``for $var in expr``."""

    variable: str
    source: "Expr"


@dataclass(frozen=True)
class LetClause:
    """``let $var := expr``."""

    variable: str
    value: "Expr"


@dataclass(frozen=True)
class OrderSpec:
    """One ``order by`` key: an expression plus direction."""

    key: "Expr"
    descending: bool = False


@dataclass(frozen=True)
class FLWOR:
    """A FLWOR expression: for/let, optional where/order by, return."""

    clauses: tuple[ForClause | LetClause, ...]
    where: "Expr | None"
    returns: "Expr"
    order_specs: tuple[OrderSpec, ...] = field(default=())


@dataclass(frozen=True)
class Quantified:
    """``some $x in e satisfies c`` / ``every $x in e satisfies c``."""

    kind: str                                  # "some" | "every"
    bindings: tuple[ForClause, ...]
    condition: "Expr"


@dataclass(frozen=True)
class IfExpr:
    """``if (cond) then a else b``."""

    condition: "Expr"
    then_branch: "Expr"
    else_branch: "Expr"


@dataclass(frozen=True)
class ElementConstructor:
    """Computed element constructor: ``element Name { content }``."""

    name: str
    content: "Expr | None"
