"""AST → source text for the XQuery subset.

Round-trip guarantee (checked by the test suite): for any query ``q`` the
engine accepts, ``parse(unparse(parse(q)))`` equals ``parse(q)``. The
query rewriter (:mod:`repro.integration.rewrite`) relies on this to turn a
transformed AST back into runnable query text.
"""

from __future__ import annotations

from .ast import (
    Arithmetic,
    Comparison,
    ContextItem,
    ElementConstructor,
    Expr,
    FLWOR,
    ForClause,
    FunctionCall,
    IfExpr,
    LetClause,
    Literal,
    Logical,
    Not,
    PathExpr,
    Quantified,
    Sequence,
    Step,
    VarRef,
)
from .runtime import format_number


def unparse(node: Expr) -> str:
    """Render an AST node as parseable XQuery text."""
    handler = _HANDLERS.get(type(node))
    if handler is None:  # pragma: no cover - all node types are covered
        raise TypeError(f"cannot unparse {type(node).__name__}")
    return handler(node)


def _literal(node: Literal) -> str:
    if isinstance(node.value, float):
        return format_number(node.value)
    escaped = node.value.replace("'", "''")
    return f"'{escaped}'"


def _varref(node: VarRef) -> str:
    return f"${node.name}"


def _context_item(node: ContextItem) -> str:
    return "."


def _function_call(node: FunctionCall) -> str:
    args = ", ".join(unparse(arg) for arg in node.args)
    return f"{node.name}({args})"


def _step(step: Step) -> str:
    axis = "//" if step.axis == "descendant" else "/"
    if step.kind == "attribute":
        return f"{axis}@{step.name}"
    if step.kind == "text":
        return f"{axis}text()"
    rendered = f"{axis}{step.name}"
    for predicate in step.predicates:
        rendered += f"[{unparse(predicate)}]"
    return rendered


def _path(node: PathExpr) -> str:
    if isinstance(node.base, ContextItem):
        # Relative paths render without the leading dot: Course[...]
        base = ""
        steps = "".join(_step(s) for s in node.steps).lstrip("/")
        return base + steps if steps else "."
    base = unparse(node.base)
    return base + "".join(_step(s) for s in node.steps)


def _wrap_operand(node: Expr) -> str:
    """Parenthesize operands whose precedence is below comparison."""
    if isinstance(node, (FLWOR, IfExpr, Logical, Sequence)):
        return f"({unparse(node)})"
    return unparse(node)


def _comparison(node: Comparison) -> str:
    return f"{_wrap_operand(node.left)} {node.op} {_wrap_operand(node.right)}"


def _arithmetic(node: Arithmetic) -> str:
    return f"{_wrap_operand(node.left)} {node.op} {_wrap_operand(node.right)}"


def _logical(node: Logical) -> str:
    left = unparse(node.left)
    right = unparse(node.right)
    if isinstance(node.left, (FLWOR, IfExpr, Sequence)):
        left = f"({left})"
    if isinstance(node.right, (FLWOR, IfExpr, Sequence)) or (
            node.op == "and" and isinstance(node.right, Logical)
            and node.right.op == "or"):
        right = f"({right})"
    if node.op == "and" and isinstance(node.left, Logical) \
            and node.left.op == "or":
        left = f"({left})"
    return f"{left} {node.op} {right}"


def _not(node: Not) -> str:
    return f"not {_wrap_operand(node.operand)}"


def _sequence(node: Sequence) -> str:
    if not node.items:
        return "()"
    return "(" + ", ".join(unparse(item) for item in node.items) + ")"


def _flwor(node: FLWOR) -> str:
    parts: list[str] = []
    for clause in node.clauses:
        if isinstance(clause, ForClause):
            parts.append(f"for ${clause.variable} in "
                         f"{unparse(clause.source)}")
        else:
            assert isinstance(clause, LetClause)
            parts.append(f"let ${clause.variable} := "
                         f"{unparse(clause.value)}")
    if node.where is not None:
        parts.append(f"where {unparse(node.where)}")
    if node.order_specs:
        keys = ", ".join(
            unparse(spec.key) + (" descending" if spec.descending else "")
            for spec in node.order_specs)
        parts.append(f"order by {keys}")
    parts.append(f"return {unparse(node.returns)}")
    return "\n".join(parts)


def _quantified(node) -> str:
    bindings = ", ".join(
        f"${clause.variable} in {unparse(clause.source)}"
        for clause in node.bindings)
    return f"{node.kind} {bindings} satisfies {unparse(node.condition)}"


def _if(node: IfExpr) -> str:
    return (f"if ({unparse(node.condition)}) "
            f"then {unparse(node.then_branch)} "
            f"else {unparse(node.else_branch)}")


def _element_constructor(node: ElementConstructor) -> str:
    content = unparse(node.content) if node.content is not None else ""
    return f"element {node.name} {{ {content} }}".replace("{  }", "{}")


_HANDLERS = {
    Literal: _literal,
    VarRef: _varref,
    ContextItem: _context_item,
    FunctionCall: _function_call,
    PathExpr: _path,
    Comparison: _comparison,
    Arithmetic: _arithmetic,
    Logical: _logical,
    Not: _not,
    Sequence: _sequence,
    FLWOR: _flwor,
    IfExpr: _if,
    ElementConstructor: _element_constructor,
    Quantified: _quantified,
}
