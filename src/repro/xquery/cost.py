"""The cost model behind the statistics-driven planner.

Costs are abstract units roughly proportional to Python-level work per
node touched; they only ever *rank* alternatives, so the constants'
absolute values matter far less than their ratios:

* an index lookup pays a fixed probe (:data:`INDEX_LOOKUP_COST`) and
  then only touches the rows it returns;
* a tree scan pays :data:`SCAN_NODE_COST` for every node in the scanned
  pool (all children, or the whole subtree for the descendant axis);
* the synthetic document node is *never* index-covered — a probe there
  fails and falls back to a scan anyway, so its index cost is modeled
  as probe + scan, which makes the planner choose the direct scan.

Selectivity estimation works over the deterministic value samples of
:mod:`repro.xquery.stats`: a LIKE pattern or equality literal is matched
against the sample and the observed fraction is the estimate, with
conservative fallbacks (:data:`DEFAULT_SELECTIVITY` and friends) when no
sample applies.  All estimates are pure functions of the statistics, so
costed plans are deterministic across processes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from .stats import DocumentStats

#: Fixed price of one posting-list probe (dict lookup + slice).
INDEX_LOOKUP_COST = 4.0
#: Price per node visited by a tree scan.
SCAN_NODE_COST = 1.0
#: Price per row produced by a step (materialization + dedup checks).
ROW_COST = 0.5
#: Price of evaluating one predicate against one row.
PREDICATE_COST = 2.0

#: Fixed price of setting up one hash-join stage (table allocation, key
#: extraction closures).  Deliberately large relative to per-row costs so
#: tiny filtered inputs keep the nested loop and the strategy flips to
#: hash only once the pair product dominates — the scale-driven switch
#: the join smoke test asserts.
HASH_SETUP_COST = 24.0
#: Price of hashing one build-side row (key atomization + insert).
HASH_BUILD_COST = 1.5
#: Price of probing the table with one probe-side row.
HASH_PROBE_COST = 1.0
#: Price per joined tuple materialized by a join stage.
TUPLE_COST = 0.6

#: Fallback row estimate for a join input the planner cannot size.
DEFAULT_JOIN_ROWS = 8.0

#: Fallback selectivity for predicates the estimator cannot read.
DEFAULT_SELECTIVITY = 0.25
#: Fallback selectivity for an equality with no matching sample —
#: assume one distinct value out of the observed domain.
EQUALITY_FLOOR = 0.02
#: Fallback selectivity for a LIKE pattern with no sample to test.
LIKE_DEFAULT = 0.2


def index_step_cost(card: float, est_rows: float) -> float:
    """Cost of serving a step via posting lists: one probe per context
    item, then only the produced rows."""
    return card * INDEX_LOOKUP_COST + est_rows * ROW_COST


def scan_step_cost(card: float, pool_per_item: float,
                   est_rows: float) -> float:
    """Cost of a tree scan: the whole candidate pool is visited per
    context item (children or subtree), then rows are produced."""
    return card * max(1.0, pool_per_item) * SCAN_NODE_COST \
        + est_rows * ROW_COST


def document_node_index_cost(card: float, pool_per_item: float,
                             est_rows: float) -> float:
    """Index cost at the synthetic document node: the probe always
    misses (the node is outside the indexed tree) and execution falls
    back to the scan, so the probe is pure overhead."""
    return card * INDEX_LOOKUP_COST \
        + scan_step_cost(card, pool_per_item, est_rows)


# --------------------------------------------------------------------------- #
# Selectivity estimation over value samples
# --------------------------------------------------------------------------- #

def _fraction(matched: int, total: int, fallback: float) -> float:
    if not total:
        return fallback
    # Clamp into (0, 1]: a sample with zero matches still cannot prove
    # the predicate never matches, so the estimate floors at "one more
    # sample would have matched".
    return max(matched, 1) / (total + 1) if matched < total else 1.0


def like_selectivity(samples: tuple[str, ...], pattern) -> float:
    """Fraction of *samples* matched by a compiled LIKE *pattern*."""
    if not samples:
        return LIKE_DEFAULT
    matched = sum(1 for value in samples if pattern.match(value))
    return _fraction(matched, len(samples), LIKE_DEFAULT)


def equality_selectivity(samples: tuple[str, ...], distinct: int,
                         value: object) -> float:
    """Fraction of *samples* equal to *value* (after the engine's
    string/number coercion), else one over the observed domain size."""
    if not samples:
        return DEFAULT_SELECTIVITY
    text = _comparable(value)
    matched = sum(1 for sample in samples if sample == text)
    if matched:
        return _fraction(matched, len(samples), EQUALITY_FLOOR)
    return max(EQUALITY_FLOOR, 1.0 / max(1, distinct))


def range_selectivity(samples: tuple[str, ...], op: str,
                      value: object) -> float:
    """Fraction of numerically-comparable *samples* satisfying
    ``sample <op> value``."""
    try:
        bound = float(value)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        return DEFAULT_SELECTIVITY
    matched = total = 0
    for sample in samples:
        try:
            number = float(sample)
        except ValueError:
            continue
        total += 1
        if op == "<" and number < bound:
            matched += 1
        elif op == "<=" and number <= bound:
            matched += 1
        elif op == ">" and number > bound:
            matched += 1
        elif op == ">=" and number >= bound:
            matched += 1
    if not total:
        return DEFAULT_SELECTIVITY
    return _fraction(matched, total, DEFAULT_SELECTIVITY)


def inequality_selectivity(samples: tuple[str, ...], distinct: int,
                           value: object) -> float:
    return max(EQUALITY_FLOOR,
               1.0 - equality_selectivity(samples, distinct, value))


def _comparable(value: object) -> str:
    if isinstance(value, float):
        return str(int(value)) if value.is_integer() else str(value)
    return str(value)


def comparison_selectivity(docstats: "DocumentStats", context_tag: str,
                           child_tag: str, op: str, value: object,
                           like_pattern=None) -> float:
    """Selectivity of ``context/child_tag <op> value`` predicates."""
    samples = docstats.samples(child_tag)
    if like_pattern is not None:
        estimate = like_selectivity(samples, like_pattern)
        return estimate if op == "=" else \
            max(EQUALITY_FLOOR, 1.0 - estimate)
    if op == "=":
        return equality_selectivity(samples, docstats.distinct(child_tag),
                                    value)
    if op == "!=":
        return inequality_selectivity(samples,
                                      docstats.distinct(child_tag), value)
    return range_selectivity(samples, op, value)


# --------------------------------------------------------------------------- #
# Join estimation (hash vs nested-loop stages)
# --------------------------------------------------------------------------- #

def join_selectivity(left_distinct: float, right_distinct: float) -> float:
    """Classic equi-join selectivity: ``1 / max(V(left), V(right))``.

    Distinct-value estimates come from
    :meth:`~repro.xquery.stats.DocumentStats.distinct_estimate`.
    """
    return 1.0 / max(1.0, float(left_distinct), float(right_distinct))


def join_cardinality(left_rows: float, right_rows: float,
                     selectivity: float) -> float:
    """Estimated output tuples of joining two inputs under a combined
    predicate *selectivity* (1.0 for a pure cartesian stage)."""
    return max(0.0, left_rows) * max(0.0, right_rows) \
        * min(1.0, max(0.0, selectivity))


def hash_join_cost(build_rows: float, probe_rows: float,
                   est_matches: float) -> float:
    """Cost of one hash stage: fixed setup, hash every build row, probe
    once per probe row, materialize the matches."""
    return HASH_SETUP_COST + build_rows * HASH_BUILD_COST \
        + probe_rows * HASH_PROBE_COST + est_matches * TUPLE_COST


def loop_join_cost(left_rows: float, right_rows: float,
                   est_matches: float) -> float:
    """Cost of one nested-loop stage: every pair pays one predicate
    evaluation, then matches are materialized."""
    return left_rows * right_rows * PREDICATE_COST \
        + est_matches * TUPLE_COST


# --------------------------------------------------------------------------- #
# Estimate-quality metric (shared with the perf reporter)
# --------------------------------------------------------------------------- #

def q_error(estimated: float, actual: float) -> float:
    """The symmetric cardinality-estimate error ``max(e/a, a/e)``.

    Both sides are shifted by one so zero-row operators stay finite;
    1.0 is a perfect estimate, and the perf reporter flags rows whose
    worst operator q-error grew past its gate.
    """
    est = max(0.0, float(estimated)) + 1.0
    act = max(0.0, float(actual)) + 1.0
    return max(est / act, act / est)


__all__ = [
    "DEFAULT_JOIN_ROWS",
    "DEFAULT_SELECTIVITY",
    "EQUALITY_FLOOR",
    "HASH_BUILD_COST",
    "HASH_PROBE_COST",
    "HASH_SETUP_COST",
    "INDEX_LOOKUP_COST",
    "LIKE_DEFAULT",
    "PREDICATE_COST",
    "ROW_COST",
    "SCAN_NODE_COST",
    "TUPLE_COST",
    "comparison_selectivity",
    "document_node_index_cost",
    "equality_selectivity",
    "hash_join_cost",
    "index_step_cost",
    "inequality_selectivity",
    "join_cardinality",
    "join_selectivity",
    "like_selectivity",
    "loop_join_cost",
    "q_error",
    "range_selectivity",
    "scan_step_cost",
]
