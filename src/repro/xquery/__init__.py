"""XQuery-subset engine: lexer, parser, planner, evaluator and functions.

The benchmark queries in the THALIA paper are written in XQuery 1.0 FLWOR
style; this package runs them natively. The unified entry point is the
compile-once/run-many facade::

    from repro import xquery

    plan = xquery.compile('''
        FOR $b in doc("gatech.xml")/gatech/Course
        WHERE $b/Instructor = 'Mark'
        RETURN $b
    ''')
    results = plan.execute(documents={"gatech": gatech_document})
    print(plan.explain())          # the operator tree actually run
    print(plan.last_stats)         # parse/compile/exec ns + counters

``results`` is a sequence (list) of items: XML elements, strings, numbers
or booleans. Integration systems may pass a custom
:class:`~repro.xquery.functions.FunctionRegistry` via
``compile(source, functions=...)`` to expose user-defined functions — the
paper's "external functions" that the scoring function charges complexity
points for.

:class:`Query` and :func:`run_query` remain as thin wrappers over the
plan facade (with an LRU :class:`PlanCache` underneath, so repeated runs
of the same text skip parsing and lowering). Importing ``parse_query`` or
``evaluate`` from this package still works but raises a
``DeprecationWarning``; import them from :mod:`repro.xquery.parser` /
:mod:`repro.xquery.evaluator` directly, or use the plan facade.
"""

from __future__ import annotations

import warnings
from typing import Mapping

from ..xmlmodel import XmlDocument
from . import ast
from .context import DocumentResolver, DynamicContext
from .errors import (
    XQueryError,
    XQueryNameError,
    XQuerySyntaxError,
    XQueryTypeError,
)
from .evaluator import like_cache_stats
from .functions import FunctionRegistry, XQueryFunction, builtin_registry
from .lexer import tokenize
from .cost import q_error
from .plan import Plan, PlanStats, compile_query
from .plan_cache import PlanCache, shared_plan_cache
from .results import ResultCache, shared_result_cache
from .stats import (
    Statistics,
    clear_statistics_cache,
    collect_statistics,
    statistics_cache_stats,
)
from .unparse import unparse
from .runtime import (
    Item,
    Seq,
    atomize,
    effective_boolean_value,
    string_value,
    to_number,
)

#: The facade: ``repro.xquery.compile(source, functions=...) -> Plan``.
#: (Shadows the ``compile`` builtin inside this namespace on purpose.)
compile = compile_query


class Query:
    """A compiled XQuery: parse once, run against any document set.

    Since the planner landed this is a wrapper over :func:`compile`:
    the constructor parses eagerly (so syntax errors still surface with
    line/column context at construction time) and ``run`` fetches the
    matching plan from the shared :class:`PlanCache`.
    """

    def __init__(self, source: str) -> None:
        self.source = source
        self.plan = shared_plan_cache().get(source)
        self.ast = self.plan.ast

    def run(self,
            documents: Mapping[str, XmlDocument] | DocumentResolver | None = None,
            variables: Mapping[str, Seq] | None = None,
            functions: FunctionRegistry | None = None) -> Seq:
        """Evaluate the query and return the result sequence."""
        if functions is None:
            return self.plan.execute(documents, variables)
        plan = shared_plan_cache().get(self.source, functions)
        return plan.execute(documents, variables)

    def explain(self) -> str:
        warnings.warn(
            "Query.explain() is deprecated; use Plan.explain() / "
            "Plan.explain_data() on the compiled plan (Query.plan)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.plan.explain()

    def __repr__(self) -> str:
        summary = " ".join(self.source.split())
        if len(summary) > 60:
            summary = summary[:57] + "..."
        return f"Query({summary!r})"


def run_query(source: str,
              documents: Mapping[str, XmlDocument] | DocumentResolver | None = None,
              variables: Mapping[str, Seq] | None = None,
              functions: FunctionRegistry | None = None) -> Seq:
    """One-shot convenience wrapper over the plan facade (cached)."""
    return shared_plan_cache().get(source, functions).execute(
        documents, variables)


_DEPRECATED = {
    "parse_query": ("repro.xquery.parser", "parse_query"),
    "evaluate": ("repro.xquery.evaluator", "evaluate"),
}


def __getattr__(name: str):
    """PEP 562 hook deprecating the pre-planner entry points.

    ``from repro.xquery import parse_query, evaluate`` keeps working but
    warns; new code should use :func:`compile` / :class:`Plan` or import
    the internals from their defining modules.
    """
    if name in _DEPRECATED:
        module_name, attr = _DEPRECATED[name]
        warnings.warn(
            f"importing {attr!r} from 'repro.xquery' is deprecated; use "
            f"'repro.xquery.compile' or import it from {module_name!r}",
            DeprecationWarning,
            stacklevel=2,
        )
        import importlib
        return getattr(importlib.import_module(module_name), attr)
    raise AttributeError(f"module 'repro.xquery' has no attribute {name!r}")


__all__ = [
    "DocumentResolver",
    "DynamicContext",
    "FunctionRegistry",
    "Item",
    "Plan",
    "PlanCache",
    "PlanStats",
    "Query",
    "ResultCache",
    "Seq",
    "Statistics",
    "XQueryError",
    "XQueryFunction",
    "XQueryNameError",
    "XQuerySyntaxError",
    "XQueryTypeError",
    "ast",
    "atomize",
    "builtin_registry",
    "clear_statistics_cache",
    "collect_statistics",
    "compile",
    "compile_query",
    "effective_boolean_value",
    "evaluate",
    "like_cache_stats",
    "parse_query",
    "q_error",
    "run_query",
    "shared_plan_cache",
    "statistics_cache_stats",
    "shared_result_cache",
    "string_value",
    "to_number",
    "tokenize",
    "unparse",
]
