"""XQuery-subset engine: lexer, parser, evaluator and function library.

The benchmark queries in the THALIA paper are written in XQuery 1.0 FLWOR
style; this package runs them natively. Typical use::

    from repro.xquery import Query

    query = Query('''
        FOR $b in doc("gatech.xml")/gatech/Course
        WHERE $b/Instructor = 'Mark'
        RETURN $b
    ''')
    results = query.run(documents={"gatech": gatech_document})

``results`` is a sequence (list) of items: XML elements, strings, numbers or
booleans. Integration systems may pass a custom
:class:`~repro.xquery.functions.FunctionRegistry` to expose user-defined
functions — the paper's "external functions" that the scoring function
charges complexity points for.
"""

from __future__ import annotations

from typing import Mapping

from ..xmlmodel import XmlDocument
from . import ast
from .context import DocumentResolver, DynamicContext
from .errors import (
    XQueryError,
    XQueryNameError,
    XQuerySyntaxError,
    XQueryTypeError,
)
from .evaluator import evaluate
from .functions import FunctionRegistry, XQueryFunction, builtin_registry
from .lexer import tokenize
from .parser import parse_query
from .unparse import unparse
from .runtime import (
    Item,
    Seq,
    atomize,
    effective_boolean_value,
    string_value,
    to_number,
)


class Query:
    """A compiled XQuery: parse once, run against any document set."""

    def __init__(self, source: str) -> None:
        self.source = source
        self.ast = parse_query(source)

    def run(self,
            documents: Mapping[str, XmlDocument] | DocumentResolver | None = None,
            variables: Mapping[str, Seq] | None = None,
            functions: FunctionRegistry | None = None) -> Seq:
        """Evaluate the query and return the result sequence."""
        context = DynamicContext(documents=documents, functions=functions,
                                 variables=variables)
        return evaluate(self.ast, context)

    def __repr__(self) -> str:
        summary = " ".join(self.source.split())
        if len(summary) > 60:
            summary = summary[:57] + "..."
        return f"Query({summary!r})"


def run_query(source: str,
              documents: Mapping[str, XmlDocument] | DocumentResolver | None = None,
              variables: Mapping[str, Seq] | None = None,
              functions: FunctionRegistry | None = None) -> Seq:
    """One-shot convenience wrapper around :class:`Query`."""
    return Query(source).run(documents, variables, functions)


__all__ = [
    "DocumentResolver",
    "DynamicContext",
    "FunctionRegistry",
    "Item",
    "Query",
    "Seq",
    "XQueryError",
    "XQueryFunction",
    "XQueryNameError",
    "XQuerySyntaxError",
    "XQueryTypeError",
    "ast",
    "atomize",
    "builtin_registry",
    "effective_boolean_value",
    "evaluate",
    "parse_query",
    "run_query",
    "string_value",
    "to_number",
    "tokenize",
    "unparse",
]
