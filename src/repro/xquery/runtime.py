"""Runtime value model for the XQuery subset.

A value is always a *sequence*: a Python list of items, where an item is an
:class:`~repro.xmlmodel.element.XmlElement`, ``str``, ``float`` or ``bool``.
This module centralizes the coercion rules (atomization, effective boolean
value, numeric promotion) used by both the evaluator and the function
library so they cannot drift apart.
"""

from __future__ import annotations

from typing import Union

from ..xmlmodel import XmlElement
from .errors import XQueryTypeError

Item = Union[XmlElement, str, float, bool]
Seq = list  # list[Item]


def string_value(item: Item) -> str:
    """XQuery ``string()`` of one item.

    Elements yield their whitespace-normalized flattened text: catalog data
    arrives from scraped HTML where insignificant whitespace abounds, so the
    engine normalizes at atomization time (documented divergence from strict
    XQuery, which preserves whitespace).
    """
    if type(item) is str:
        # Strings dominate atomized comparisons at scale; exact-type check
        # first skips three isinstance calls on the hot path.
        return item
    if isinstance(item, XmlElement):
        return item.normalized_text
    if isinstance(item, bool):
        return "true" if item else "false"
    if isinstance(item, float):
        return format_number(item)
    return item


def format_number(value: float) -> str:
    """Render a float the way XQuery renders integers when integral."""
    if value == int(value):
        return str(int(value))
    return repr(value)


def atomize(seq: Seq) -> list[str | float | bool]:
    """Atomize a sequence: elements become their string value."""
    return [item if isinstance(item, (float, bool)) else string_value(item)
            for item in seq]


def to_number(item: Item) -> float:
    """Numeric value of one item.

    Raises:
        XQueryTypeError: when the item cannot be interpreted as a number
            (e.g. ETH's ``Umfang`` value ``"2V1U"`` — the visible failure
            Benchmark Query 4 is designed to surface).
    """
    if isinstance(item, bool):
        return 1.0 if item else 0.0
    if isinstance(item, float):
        return item
    text = string_value(item).strip()
    try:
        return float(text)
    except ValueError:
        raise XQueryTypeError(
            f"cannot convert {text!r} to a number") from None


def effective_boolean_value(seq: Seq) -> bool:
    """XQuery effective boolean value of a sequence.

    Empty sequence → False; a sequence whose first item is a node → True;
    singleton boolean/number/string follow their natural truthiness.
    """
    if not seq:
        return False
    first = seq[0]
    if isinstance(first, XmlElement):
        return True
    if len(seq) > 1:
        raise XQueryTypeError(
            "effective boolean value of a multi-item atomic sequence")
    if isinstance(first, bool):
        return first
    if isinstance(first, float):
        return first != 0.0 and first == first  # NaN is false
    return bool(first)


def singleton(seq: Seq, what: str) -> Item:
    """Require exactly one item.

    Raises:
        XQueryTypeError: if the sequence is empty or has more than one item.
    """
    if len(seq) != 1:
        raise XQueryTypeError(
            f"{what} requires a single item, got {len(seq)}")
    return seq[0]


def one_string(seq: Seq, what: str) -> str:
    """Require exactly one item and return its string value."""
    return string_value(singleton(seq, what))


def optional_string(seq: Seq, what: str) -> str | None:
    """Zero-or-one items; string value or None."""
    if not seq:
        return None
    return one_string(seq, what)
