"""Statistics collection for the cost-based planner.

:func:`collect_statistics` derives, per document, the facts the planner
in :mod:`repro.xquery.plan` costs physical strategies with:

* **cardinalities** — per-tag element counts straight off the
  :class:`~repro.xmlmodel.indexes.DocumentIndex` posting lists, plus
  (parent tag, child tag) fanout counts and average subtree sizes from
  the index's preorder intervals;
* **value distributions** — deterministic, document-order samples of
  leaf-element string values and attribute values (capped at
  :data:`SAMPLE_CAP` per tag), from which predicate selectivities are
  estimated (see :mod:`repro.xquery.cost`).

Everything is derived from document order and sorted tag names, so two
processes collecting over byte-identical documents produce identical
statistics — :attr:`Statistics.fingerprint` pins that, and a
differential test holds it.

Documents are immutable once built, so statistics are cached per
*content fingerprint* (the same identity the result cache keys on): the
module-level cache makes repeated compilations against one testbed a
dict probe.  ``/api/stats`` reports the hit/miss counters.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import TYPE_CHECKING, Mapping

from .context import DocumentResolver

if TYPE_CHECKING:  # pragma: no cover
    from ..xmlmodel import XmlDocument

#: Most leaf values / attribute values sampled per (tag) / (tag, attr).
SAMPLE_CAP = 240


class DocumentStats:
    """Cardinalities, fanouts and value samples for one document."""

    __slots__ = ("name", "root_tag", "element_count", "tag_counts",
                 "child_pairs", "subtree_totals", "value_samples",
                 "sampled_exactly", "attr_values")

    def __init__(self, name: str, root_tag: str, element_count: int,
                 tag_counts: dict[str, int],
                 child_pairs: dict[tuple[str, str], int],
                 subtree_totals: dict[str, int],
                 value_samples: dict[str, tuple[str, ...]],
                 sampled_exactly: dict[str, bool],
                 attr_values: dict[tuple[str, str], tuple[str, ...]]) -> None:
        self.name = name
        self.root_tag = root_tag
        self.element_count = element_count
        self.tag_counts = tag_counts
        self.child_pairs = child_pairs
        self.subtree_totals = subtree_totals
        self.value_samples = value_samples
        self.sampled_exactly = sampled_exactly
        self.attr_values = attr_values

    # -- cardinalities ---------------------------------------------------- #

    def tag_count(self, tag: str) -> int:
        return self.tag_counts.get(tag, 0)

    def fanout(self, parent: str | None, child: str) -> float:
        """Average number of direct *child*-tagged children per *parent*
        element; ``parent=None`` is the synthetic document node (exactly
        one child: the root element)."""
        if parent is None:
            return 1.0 if child == self.root_tag else 0.0
        parents = self.tag_counts.get(parent, 0)
        if not parents:
            return 0.0
        return self.child_pairs.get((parent, child), 0) / parents

    def avg_children(self, tag: str | None) -> float:
        """Average direct element-children count of a *tag* element —
        the per-item node budget of a child-axis tree scan."""
        if tag is None:
            return 1.0
        parents = self.tag_counts.get(tag, 0)
        if not parents:
            return 1.0
        total = sum(count for (parent, _child), count
                    in self.child_pairs.items() if parent == tag)
        return total / parents

    def avg_subtree(self, tag: str | None) -> float:
        """Average strict-descendant count of a *tag* element — the
        per-item node budget of a descendant-axis tree scan."""
        if tag is None:
            return float(self.element_count)
        parents = self.tag_counts.get(tag, 0)
        if not parents:
            return float(self.element_count)
        return self.subtree_totals.get(tag, 0) / parents

    # -- value distributions ---------------------------------------------- #

    def samples(self, tag: str) -> tuple[str, ...]:
        return self.value_samples.get(tag, ())

    def distinct(self, tag: str) -> int:
        return len(set(self.value_samples.get(tag, ())))

    def distinct_estimate(self, tag: str) -> int:
        """Estimated distinct string values across *all* ``tag`` leaves.

        Exact samples report the observed distinct count.  Capped samples
        extrapolate: when every sampled value was distinct the domain is
        assumed to keep growing linearly with the population (unique-ish
        keys), while a sample that already repeats values is assumed to
        have seen the whole domain.  Never below one, never above the tag
        cardinality — join selectivities divide by this.
        """
        samples = self.value_samples.get(tag, ())
        count = self.tag_counts.get(tag, 0)
        if not samples:
            return max(1, count)
        observed = len(set(samples))
        if self.sampled_exactly.get(tag, True):
            return max(1, observed)
        if observed == len(samples):
            scaled = round(observed * count / len(samples))
            return max(observed, min(max(1, count), scaled))
        return max(1, observed)

    def attr_samples(self, tag: str, attr: str) -> tuple[str, ...]:
        return self.attr_values.get((tag, attr), ())

    def scaled(self, factor: int) -> "DocumentStats":
        """A copy whose row estimates come out ~``factor`` too large.

        Test-only.  Only the *numerators* of the derived ratios are
        scaled — (parent, child) fanout counts, subtree totals and the
        element count — while per-tag counts stay put; scaling every
        cardinality uniformly would cancel out of the fanout and
        subtree ratios and leave the estimates untouched.  Value
        samples — and therefore selectivities and answers — are
        untouched, which is exactly the injected cardinality-estimate
        regression the perf gate must flag.
        """
        return DocumentStats(
            name=self.name, root_tag=self.root_tag,
            element_count=self.element_count * factor,
            tag_counts=self.tag_counts,
            child_pairs={pair: count * factor
                         for pair, count in self.child_pairs.items()},
            subtree_totals={tag: total * factor
                            for tag, total in self.subtree_totals.items()},
            value_samples=self.value_samples,
            sampled_exactly=self.sampled_exactly,
            attr_values=self.attr_values)

    def __repr__(self) -> str:
        return (f"DocumentStats({self.name!r}, elements="
                f"{self.element_count}, tags={len(self.tag_counts)})")


class Statistics:
    """Per-document statistics for one document set, with a stable,
    process-independent fingerprint."""

    __slots__ = ("documents", "_fingerprint")

    def __init__(self, documents: dict[str, DocumentStats]) -> None:
        self.documents = documents
        self._fingerprint: str | None = None

    def for_document(self, name: str) -> DocumentStats | None:
        """Stats for a ``doc()`` URI (``cmu.xml`` and ``cmu`` both
        resolve, mirroring the document resolver)."""
        return self.documents.get(DocumentResolver._normalize(name))

    @property
    def fingerprint(self) -> str:
        """sha256 over the canonical rendering of every collected fact.

        Deterministic across processes (sorted tags, document-order
        samples, no ids or hash ordering), so a costed plan's identity —
        which mixes this in — is stable too.
        """
        if self._fingerprint is None:
            digest = hashlib.sha256()
            for name in sorted(self.documents):
                stats = self.documents[name]
                digest.update(repr((
                    name, stats.root_tag, stats.element_count,
                    sorted(stats.tag_counts.items()),
                    sorted(stats.child_pairs.items()),
                    sorted(stats.subtree_totals.items()),
                    sorted(stats.value_samples.items()),
                    sorted(stats.sampled_exactly.items()),
                    sorted(stats.attr_values.items()),
                )).encode("utf-8"))
                digest.update(b"\x00")
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    def scaled(self, factor: int) -> "Statistics":
        """Test-only estimate perturbation; see
        :meth:`DocumentStats.scaled`."""
        if factor < 1:
            raise ValueError("scale factor must be >= 1")
        return Statistics({name: stats.scaled(factor)
                           for name, stats in self.documents.items()})

    def __repr__(self) -> str:
        return (f"Statistics(documents={len(self.documents)}, "
                f"fingerprint={self.fingerprint[:12]})")


# --------------------------------------------------------------------------- #
# Collection
# --------------------------------------------------------------------------- #

def _sample_indices(count: int) -> range | list[int]:
    """Deterministic document-order sample positions: everything up to
    the cap, an even stride beyond it."""
    if count <= SAMPLE_CAP:
        return range(count)
    return [position * count // SAMPLE_CAP for position in range(SAMPLE_CAP)]


def _collect_document(name: str, document: "XmlDocument") -> DocumentStats:
    index = document.index()
    tag_counts = index.tag_counts()
    child_pairs: dict[tuple[str, str], int] = {}
    subtree_totals: dict[str, int] = {}
    value_samples: dict[str, tuple[str, ...]] = {}
    sampled_exactly: dict[str, bool] = {}
    attr_values: dict[tuple[str, str], tuple[str, ...]] = {}
    for tag in index.tags:
        elements = index.elements(tag)
        subtree_total = 0
        for element in elements:
            subtree_total += index.subtree_size(element) or 0
            for child in element.element_children:
                pair = (tag, child.tag)
                child_pairs[pair] = child_pairs.get(pair, 0) + 1
        if subtree_total:
            subtree_totals[tag] = subtree_total
        count = len(elements)
        exact = count <= SAMPLE_CAP
        sampled = [elements[position]
                   for position in _sample_indices(count)]
        # Only leaf elements carry comparable string values; container
        # tags keep empty samples so selectivity falls back to defaults
        # instead of paying for huge concatenated strings.
        leaves = [element for element in sampled
                  if not element.has_element_children()]
        if leaves:
            value_samples[tag] = tuple(element.normalized_text
                                       for element in leaves)
            sampled_exactly[tag] = exact
        per_attr: dict[str, list[str]] = {}
        for element in sampled:
            for attr, value in element.attrib.items():
                per_attr.setdefault(attr, []).append(value)
        for attr, values in sorted(per_attr.items()):
            attr_values[(tag, attr)] = tuple(values)
    return DocumentStats(
        name=name, root_tag=index.root.tag,
        element_count=index.element_count,
        tag_counts=tag_counts, child_pairs=child_pairs,
        subtree_totals=subtree_totals, value_samples=value_samples,
        sampled_exactly=sampled_exactly, attr_values=attr_values)


_STATS_CACHE: OrderedDict[str, Statistics] = OrderedDict()
_STATS_LOCK = threading.Lock()
_STATS_CACHE_MAX = 16
_STATS_COUNTERS = {"hits": 0, "misses": 0, "collections": 0}


def collect_statistics(documents: Mapping[str, "XmlDocument"], *,
                       fingerprint: str | None = None) -> Statistics:
    """Statistics over *documents* (a ``{name: XmlDocument}`` mapping).

    With *fingerprint* — the document set's content fingerprint, e.g.
    :meth:`~repro.catalogs.Testbed.content_fingerprint` — results are
    cached module-wide: identical content never pays collection twice.
    Without one, collection runs uncached (the caller has no identity to
    key on).
    """
    if fingerprint is not None:
        with _STATS_LOCK:
            cached = _STATS_CACHE.get(fingerprint)
            if cached is not None:
                _STATS_COUNTERS["hits"] += 1
                _STATS_CACHE.move_to_end(fingerprint)
                return cached
            _STATS_COUNTERS["misses"] += 1
    collected = Statistics({
        DocumentResolver._normalize(name): _collect_document(
            DocumentResolver._normalize(name), document)
        for name, document in documents.items()})
    with _STATS_LOCK:
        _STATS_COUNTERS["collections"] += 1
        if fingerprint is not None:
            _STATS_CACHE[fingerprint] = collected
            _STATS_CACHE.move_to_end(fingerprint)
            while len(_STATS_CACHE) > _STATS_CACHE_MAX:
                _STATS_CACHE.popitem(last=False)
    return collected


def statistics_cache_stats() -> dict:
    """Hit/miss counters for the ``planner`` block of ``/api/stats``."""
    with _STATS_LOCK:
        lookups = _STATS_COUNTERS["hits"] + _STATS_COUNTERS["misses"]
        return {
            "entries": len(_STATS_CACHE),
            "maxsize": _STATS_CACHE_MAX,
            "hits": _STATS_COUNTERS["hits"],
            "misses": _STATS_COUNTERS["misses"],
            "collections": _STATS_COUNTERS["collections"],
            "hit_rate": round(_STATS_COUNTERS["hits"] / lookups, 4)
            if lookups else 0.0,
        }


def clear_statistics_cache() -> None:
    """Drop every cached statistics object and zero the counters."""
    with _STATS_LOCK:
        _STATS_CACHE.clear()
        for key in _STATS_COUNTERS:
            _STATS_COUNTERS[key] = 0


__all__ = [
    "SAMPLE_CAP",
    "DocumentStats",
    "Statistics",
    "clear_statistics_cache",
    "collect_statistics",
    "statistics_cache_stats",
]
