"""Compiled query plans: compile once, run many.

``compile_query(source)`` lowers the parsed AST into a small tree of
logical operators after the :mod:`repro.xquery.rewrite` passes ran
(constant folding, WHERE-to-predicate fusion).  Path expressions rooted
at a constant ``doc("name")`` call become *index-backed* scans over the
document's lazily-built :class:`~repro.xmlmodel.indexes.DocumentIndex`.

Every operator mirrors the tree-walking evaluator's semantics exactly —
several helpers (`LIKE` pattern compilation, atomic comparison, order
keys) are imported from :mod:`repro.xquery.evaluator` rather than
re-implemented, so the two engines cannot drift.  The contract, checked
by unit, golden and property tests: for any query and document set,
``Plan.execute`` and :func:`repro.xquery.evaluator.evaluate` produce
byte-identical results.

A :class:`Plan` additionally exposes:

* :meth:`Plan.explain` — a stable, deterministic text tree of the chosen
  operators, pushed predicates and index-backed paths (golden-pinned for
  the twelve benchmark queries);
* :class:`PlanStats` — per-run parse/compile/exec nanoseconds plus nodes
  visited and index lookups, aggregated across runs for ``/api/stats``.
"""

from __future__ import annotations

import hashlib
import threading
import time
from dataclasses import dataclass
from sys import intern as _intern

from ..xmlmodel import XmlElement
from .ast import (
    Arithmetic,
    Comparison,
    ContextItem,
    ElementConstructor,
    Expr,
    FLWOR,
    ForClause,
    FunctionCall,
    IfExpr,
    LetClause,
    Literal,
    Logical,
    Not,
    PathExpr,
    Quantified,
    Sequence,
    VarRef,
)
from .context import DocumentResolver, DynamicContext
from .errors import XQueryTypeError
from .evaluator import _compare_atomic, _invert, _like_pattern, _order_key
from .functions import (
    FunctionRegistry,
    default_registry,
    uses_builtin_doc,
)
from .parser import parse_query
from .rewrite import fold_constants, fuse_where
from .runtime import (
    Seq,
    atomize,
    effective_boolean_value,
    format_number,
    singleton,
    string_value,
    to_number,
)


@dataclass(frozen=True)
class PlanStats:
    """Timings and counters for one plan execution."""

    parse_ns: int
    compile_ns: int
    exec_ns: int
    nodes_visited: int
    index_lookups: int

    def to_dict(self) -> dict:
        return {
            "parse_ns": self.parse_ns,
            "compile_ns": self.compile_ns,
            "exec_ns": self.exec_ns,
            "nodes_visited": self.nodes_visited,
            "index_lookups": self.index_lookups,
        }


class _ExecState:
    """Mutable per-execution counters threaded through the operators.

    ``index`` holds the :class:`~repro.xmlmodel.indexes.DocumentIndex` of
    the innermost enclosing index-backed path, so relative paths inside
    its predicates resolve through the index too; operators fall back to
    tree scans for any item the index does not cover.
    """

    __slots__ = ("nodes_visited", "index_lookups", "index")

    def __init__(self) -> None:
        self.nodes_visited = 0
        self.index_lookups = 0
        self.index = None


_RESOLVER_CACHE: dict[int, tuple] = {}
_RESOLVER_CACHE_MAX = 8


def _resolver_for(documents) -> DocumentResolver | None:
    """A (cached) resolver for a plain document mapping.

    Repeated executions against the same testbed mapping would otherwise
    rebuild the resolver — and its document-node wrappers — every call.
    The cache is validated per entry (same keys, identical document
    objects), so callers that swap documents in the mapping still get a
    fresh resolver.
    """
    if documents is None or isinstance(documents, DocumentResolver):
        return documents
    key = id(documents)
    entry = _RESOLVER_CACHE.get(key)
    if entry is not None and entry[0] is documents:
        snapshot, resolver = entry[1], entry[2]
        if len(snapshot) == len(documents) and \
                all(documents.get(name) is doc for name, doc in snapshot):
            return resolver
    resolver = DocumentResolver(documents)
    while len(_RESOLVER_CACHE) >= _RESOLVER_CACHE_MAX:
        _RESOLVER_CACHE.pop(next(iter(_RESOLVER_CACHE)))
    _RESOLVER_CACHE[key] = (documents, tuple(documents.items()), resolver)
    return resolver


def _atomize(seq: Seq, state: _ExecState) -> Seq:
    """:func:`~repro.xquery.runtime.atomize`, but element string values
    come from the active document index's cache when one is live."""
    index = state.index
    if index is None:
        return atomize(seq)
    result = []
    for item in seq:
        if isinstance(item, XmlElement):
            value = index.string_of(item)
            result.append(value if value is not None
                          else string_value(item))
        elif isinstance(item, (float, bool)):
            result.append(item)
        else:
            result.append(item)
    return result


class _Node:
    """One line of ``explain()`` output with nested children."""

    __slots__ = ("label", "children")

    def __init__(self, label: str, children: list["_Node"] | None = None):
        self.label = label
        self.children = children or []


def _render(node: _Node, depth: int, lines: list[str]) -> None:
    lines.append("  " * depth + node.label)
    for child in node.children:
        _render(child, depth + 1, lines)


def _literal_label(value) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        return format_number(value)
    return "'" + str(value).replace("'", "''") + "'"


# --------------------------------------------------------------------------- #
# Operators
# --------------------------------------------------------------------------- #

class Op:
    """Base logical operator: ``run`` executes, ``explain_node`` renders."""

    __slots__ = ()

    def run(self, ctx: DynamicContext, state: _ExecState) -> Seq:
        raise NotImplementedError  # pragma: no cover

    def explain_node(self) -> _Node:
        raise NotImplementedError  # pragma: no cover


class LiteralOp(Op):
    __slots__ = ("value",)

    def __init__(self, value) -> None:
        self.value = value

    def run(self, ctx, state):
        return [self.value]

    def explain_node(self):
        return _Node(f"literal {_literal_label(self.value)}")


class VarRefOp(Op):
    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def run(self, ctx, state):
        return ctx.lookup(self.name)

    def explain_node(self):
        return _Node(f"var ${self.name}")


class ContextItemOp(Op):
    __slots__ = ()

    def run(self, ctx, state):
        if ctx.context_item is None:
            raise XQueryTypeError("'.' used outside a predicate focus")
        return [ctx.context_item]

    def explain_node(self):
        return _Node("context-item")


class DocOp(Op):
    """A constant ``doc("name")`` call resolved through the builtin."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def run(self, ctx, state):
        return [ctx.resolve_document(self.name)]

    def explain_node(self):
        return _Node(f'doc "{self.name}"')


class FunctionCallOp(Op):
    __slots__ = ("name", "args")

    def __init__(self, name: str, args: tuple[Op, ...]) -> None:
        self.name = name
        self.args = args

    def run(self, ctx, state):
        evaluated = [arg.run(ctx, state) for arg in self.args]
        return ctx.functions.call(ctx, self.name, evaluated)

    def explain_node(self):
        return _Node(f"call {self.name}/{len(self.args)}",
                     [arg.explain_node() for arg in self.args])


class SequenceOp(Op):
    __slots__ = ("items",)

    def __init__(self, items: tuple[Op, ...]) -> None:
        self.items = items

    def run(self, ctx, state):
        result: Seq = []
        for item in self.items:
            result.extend(item.run(ctx, state))
        return result

    def explain_node(self):
        return _Node(f"sequence[{len(self.items)}]",
                     [item.explain_node() for item in self.items])


class IfOp(Op):
    __slots__ = ("condition", "then_branch", "else_branch")

    def __init__(self, condition: Op, then_branch: Op, else_branch: Op):
        self.condition = condition
        self.then_branch = then_branch
        self.else_branch = else_branch

    def run(self, ctx, state):
        if effective_boolean_value(self.condition.run(ctx, state)):
            return self.then_branch.run(ctx, state)
        return self.else_branch.run(ctx, state)

    def explain_node(self):
        return _Node("if", [
            _Node("condition", [self.condition.explain_node()]),
            _Node("then", [self.then_branch.explain_node()]),
            _Node("else", [self.else_branch.explain_node()]),
        ])


class LogicalOp(Op):
    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Op, right: Op) -> None:
        self.op = op
        self.left = left
        self.right = right

    def run(self, ctx, state):
        left = effective_boolean_value(self.left.run(ctx, state))
        if self.op == "and":
            if not left:
                return [False]
            return [effective_boolean_value(self.right.run(ctx, state))]
        if left:
            return [True]
        return [effective_boolean_value(self.right.run(ctx, state))]

    def explain_node(self):
        return _Node(f"logical '{self.op}'",
                     [self.left.explain_node(), self.right.explain_node()])


class NotOp(Op):
    __slots__ = ("operand",)

    def __init__(self, operand: Op) -> None:
        self.operand = operand

    def run(self, ctx, state):
        return [not effective_boolean_value(self.operand.run(ctx, state))]

    def explain_node(self):
        return _Node("not", [self.operand.explain_node()])


class ArithmeticOp(Op):
    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Op, right: Op) -> None:
        self.op = op
        self.left = left
        self.right = right

    def run(self, ctx, state):
        left_seq = self.left.run(ctx, state)
        right_seq = self.right.run(ctx, state)
        if not left_seq or not right_seq:
            return []
        left = to_number(singleton(left_seq, "arithmetic"))
        right = to_number(singleton(right_seq, "arithmetic"))
        return [left + right if self.op == "+" else left - right]

    def explain_node(self):
        return _Node(f"arith '{self.op}'",
                     [self.left.explain_node(), self.right.explain_node()])


class ComparisonOp(Op):
    """General comparison with the LIKE pattern pre-compiled.

    ``like`` is ``None`` for plain comparisons, else
    ``(pattern_text, compiled_regex, values_side)`` where ``values_side``
    names the operand whose values are matched against the pattern.
    """

    __slots__ = ("op", "left", "right", "like")

    def __init__(self, op: str, left: Op, right: Op,
                 like: tuple | None) -> None:
        self.op = op
        self.left = left
        self.right = right
        self.like = like

    def run(self, ctx, state):
        left_seq = _atomize(self.left.run(ctx, state), state)
        right_seq = _atomize(self.right.run(ctx, state), state)
        if self.like is not None:
            _text, pattern, side = self.like
            values = left_seq if side == "left" else right_seq
            if self.op == "=":
                return [any(pattern.match(str(v)) for v in values)]
            return [any(not pattern.match(str(v)) for v in values)]
        result = any(
            _compare_atomic(self.op, left, right)
            for left in left_seq for right in right_seq)
        return [result]

    def explain_node(self):
        label = f"compare '{self.op}'"
        if self.like is not None:
            label += f" [like {_literal_label(self.like[0])}]"
        return _Node(label,
                     [self.left.explain_node(), self.right.explain_node()])


# --------------------------------------------------------------------------- #
# Paths
# --------------------------------------------------------------------------- #

class StepPlan:
    """One lowered path step; predicates carry a pushed-from-WHERE flag."""

    __slots__ = ("axis", "kind", "name", "predicates")

    def __init__(self, axis: str, kind: str, name: str,
                 predicates: tuple[tuple[Op, bool], ...]) -> None:
        self.axis = axis
        self.kind = kind
        # Element tags are interned at construction, so the scan filter's
        # ``node.tag == step.name`` is a pointer comparison first.
        self.name = _intern(name)
        self.predicates = predicates

    def explain_node(self) -> _Node:
        children = []
        for op, pushed in self.predicates:
            label = "predicate [pushed from where]" if pushed else "predicate"
            children.append(_Node(label, [op.explain_node()]))
        return _Node(f"step {self.axis} {self.kind} {self.name}", children)


def _scan_candidates(step: StepPlan, item: XmlElement,
                     state: _ExecState) -> Seq:
    """Tree-scan step application, mirroring the interpreter."""
    if step.axis == "descendant":
        pool = [node for child in item.element_children
                for node in child.iter()]
    else:
        pool = item.element_children
    state.nodes_visited += len(pool)
    if step.kind == "element":
        if step.name == "*":
            return list(pool)
        return [node for node in pool if node.tag == step.name]
    if step.kind == "attribute":
        values: Seq = []
        targets = [item] if step.axis == "child" else pool
        for target in targets:
            value = target.get(step.name)
            if value is not None:
                values.append(value)
        return values
    targets = [item] if step.axis == "child" else pool
    texts: Seq = []
    for target in targets:
        direct = "".join(c for c in target.children if isinstance(c, str))
        if direct:
            texts.append(direct)
    return texts


def _indexed_candidates(step: StepPlan, item: XmlElement, index,
                        state: _ExecState) -> Seq | None:
    """Index-backed step application; None → caller must tree-scan.

    Only named element steps are index-eligible.  Items outside the
    indexed tree (in practice only the synthetic document node) fall
    back per-item.
    """
    if step.kind != "element" or step.name == "*":
        return None
    if step.axis == "child":
        found = index.children_of(item, step.name)
        if found is None:
            return None
        state.index_lookups += 1
        state.nodes_visited += len(found)
        return found
    found = index.descendants_of(item, step.name)
    if found is None:
        # The document node: a descendant step from it covers the whole
        # tree, which is exactly the tag's posting list.
        state.index_lookups += 1
        found = index.elements(step.name)
    else:
        state.index_lookups += 1
    state.nodes_visited += len(found)
    return found


def _filter_by_predicate(op: Op, sequence: Seq, ctx: DynamicContext,
                         state: _ExecState) -> Seq:
    size = len(sequence)
    if not size:
        return []
    kept: Seq = []
    # One focused context, re-aimed per item: evaluation is eager, so no
    # operator can observe the focus after its own run() returns.
    focused = ctx.with_focus(sequence[0], 0, size)
    for position, item in enumerate(sequence, start=1):
        focused.context_item = item
        focused.context_position = position
        value = op.run(focused, state)
        if len(value) == 1 and isinstance(value[0], float):
            if value[0] == position:
                kept.append(item)
        elif effective_boolean_value(value):
            kept.append(item)
    return kept


def _apply_step(step: StepPlan, sequence: Seq, ctx: DynamicContext,
                state: _ExecState) -> Seq:
    index = state.index
    if len(sequence) == 1:
        # A single context item cannot produce duplicates (children and
        # descendants of one node are each visited once), so the id-dedup
        # bookkeeping is skipped.  This is the dominant shape: every step
        # after ``doc(...)`` in a straight-line path runs per FLWOR
        # binding, i.e. over one item.
        item = sequence[0]
        if not isinstance(item, XmlElement):
            raise XQueryTypeError(
                f"path step '{step.name}' applied to atomic value "
                f"{string_value(item)!r}")
        produced = None
        if index is not None:
            produced = _indexed_candidates(step, item, index, state)
        if produced is None:
            produced = _scan_candidates(step, item, state)
        result: Seq = list(produced)
    else:
        result = []
        seen: set[int] = set()
        for item in sequence:
            if not isinstance(item, XmlElement):
                raise XQueryTypeError(
                    f"path step '{step.name}' applied to atomic value "
                    f"{string_value(item)!r}")
            produced = None
            if index is not None:
                produced = _indexed_candidates(step, item, index, state)
            if produced is None:
                produced = _scan_candidates(step, item, state)
            for node in produced:
                if isinstance(node, XmlElement):
                    if id(node) in seen:
                        continue
                    seen.add(id(node))
                result.append(node)
    for predicate, _pushed in step.predicates:
        result = _filter_by_predicate(predicate, result, ctx, state)
    return result


class PathOp(Op):
    """Generic path over an arbitrary base; steps use the enclosing
    index-backed path's document index when one is active."""

    __slots__ = ("base", "steps")

    label = "path"

    def __init__(self, base: Op, steps: tuple[StepPlan, ...]) -> None:
        self.base = base
        self.steps = steps

    def run(self, ctx, state):
        current = self.base.run(ctx, state)
        for step in self.steps:
            current = _apply_step(step, current, ctx, state)
        return current

    def explain_node(self):
        children = [_Node("base", [self.base.explain_node()])]
        children.extend(step.explain_node() for step in self.steps)
        return _Node(self.label, children)


class IndexedPathOp(Op):
    """Path rooted at a constant ``doc()``: steps resolve through the
    document's element-name index instead of tree scans."""

    __slots__ = ("doc_name", "steps")

    def __init__(self, doc_name: str, steps: tuple[StepPlan, ...]) -> None:
        self.doc_name = doc_name
        self.steps = steps

    def run(self, ctx, state):
        current: Seq = [ctx.resolve_document(self.doc_name)]
        previous = state.index
        state.index = ctx.documents.index(self.doc_name)
        try:
            for step in self.steps:
                current = _apply_step(step, current, ctx, state)
        finally:
            state.index = previous
        return current

    def explain_node(self):
        children = [step.explain_node() for step in self.steps]
        return _Node(f'index-path doc "{self.doc_name}"', children)


# --------------------------------------------------------------------------- #
# FLWOR / quantifiers / constructors
# --------------------------------------------------------------------------- #

class FLWOROp(Op):
    __slots__ = ("clauses", "where", "order_specs", "returns")

    def __init__(self, clauses: tuple[tuple[str, str, Op], ...],
                 where: Op | None,
                 order_specs: tuple[tuple[Op, bool], ...],
                 returns: Op) -> None:
        self.clauses = clauses          # (kind, variable, op)
        self.where = where
        self.order_specs = order_specs  # (key op, descending)
        self.returns = returns

    def run(self, ctx, state):
        ordered: list[tuple[tuple, Seq]] = []

        def emit(scope: DynamicContext) -> None:
            produced = self.returns.run(scope, state)
            if self.order_specs:
                keys = []
                for key_op, descending in self.order_specs:
                    key = _order_key(key_op.run(scope, state))
                    if descending:
                        key = tuple(_invert(part) for part in key)
                    keys.append(key)
                ordered.append((tuple(keys), produced))
            else:
                ordered.append(((), produced))

        def recurse(depth: int, scope: DynamicContext) -> None:
            if depth == len(self.clauses):
                if self.where is not None:
                    if not effective_boolean_value(
                            self.where.run(scope, state)):
                        return
                emit(scope)
                return
            kind, variable, op = self.clauses[depth]
            if kind == "for":
                items = op.run(scope, state)
                if not items:
                    return
                # One child scope per depth, rebound per item: evaluation
                # is eager and each binding is a fresh list, so nothing
                # downstream can observe the re-binding.
                child = scope.bind(variable, [])
                for item in items:
                    child._variables[variable] = [item]
                    recurse(depth + 1, child)
            else:
                recurse(depth + 1,
                        scope.bind(variable, op.run(scope, state)))

        recurse(0, ctx)
        if self.order_specs:
            ordered.sort(key=lambda entry: entry[0])
        results: Seq = []
        for _, produced in ordered:
            results.extend(produced)
        return results

    def explain_node(self):
        children = []
        for kind, variable, op in self.clauses:
            marker = "in" if kind == "for" else ":="
            children.append(_Node(f"{kind} ${variable} {marker}",
                                  [op.explain_node()]))
        if self.where is not None:
            children.append(_Node("where", [self.where.explain_node()]))
        for key_op, descending in self.order_specs:
            direction = " descending" if descending else ""
            children.append(_Node(f"order-by{direction}",
                                  [key_op.explain_node()]))
        children.append(_Node("return", [self.returns.explain_node()]))
        return _Node("flwor", children)


class QuantifiedOp(Op):
    __slots__ = ("kind", "bindings", "condition")

    def __init__(self, kind: str, bindings: tuple[tuple[str, Op], ...],
                 condition: Op) -> None:
        self.kind = kind
        self.bindings = bindings
        self.condition = condition

    def run(self, ctx, state):
        outcomes: list[bool] = []

        def recurse(depth: int, scope: DynamicContext) -> None:
            if depth == len(self.bindings):
                outcomes.append(effective_boolean_value(
                    self.condition.run(scope, state)))
                return
            variable, op = self.bindings[depth]
            items = op.run(scope, state)
            if not items:
                return
            child = scope.bind(variable, [])
            for item in items:
                child._variables[variable] = [item]
                recurse(depth + 1, child)

        recurse(0, ctx)
        if self.kind == "some":
            return [any(outcomes)]
        return [all(outcomes)]

    def explain_node(self):
        children = [_Node(f"${variable} in", [op.explain_node()])
                    for variable, op in self.bindings]
        children.append(_Node("satisfies", [self.condition.explain_node()]))
        return _Node(self.kind, children)


class ElementConstructorOp(Op):
    __slots__ = ("name", "content")

    def __init__(self, name: str, content: Op | None) -> None:
        self.name = name
        self.content = content

    def run(self, ctx, state):
        constructed = XmlElement(self.name)
        if self.content is not None:
            pending: list[str] = []

            def flush() -> None:
                if pending:
                    constructed.append(" ".join(pending))
                    pending.clear()

            for item in self.content.run(ctx, state):
                if isinstance(item, XmlElement):
                    flush()
                    constructed.append(item.copy())
                else:
                    pending.append(string_value(item))
            flush()
        return [constructed]

    def explain_node(self):
        children = [] if self.content is None \
            else [self.content.explain_node()]
        return _Node(f"element {self.name}", children)


# --------------------------------------------------------------------------- #
# Lowering
# --------------------------------------------------------------------------- #

class _Lowerer:
    """AST → operator tree, applying fusion and index-path selection.

    ``index_paths=False`` disables the index-backed ``doc()`` rewrite —
    a test-only perturbation knob (see :func:`compile_query`) that forces
    a visibly different, slower plan so the perf regression gate can be
    exercised end to end.
    """

    def __init__(self, functions: FunctionRegistry,
                 index_paths: bool = True) -> None:
        self.functions = functions
        self.builtin_doc = uses_builtin_doc(functions)
        self.index_paths = index_paths
        self.where_fused = 0
        self.indexed_paths = 0

    def lower(self, node: Expr) -> Op:
        if isinstance(node, Literal):
            return LiteralOp(node.value)
        if isinstance(node, VarRef):
            return VarRefOp(node.name)
        if isinstance(node, ContextItem):
            return ContextItemOp()
        if isinstance(node, FunctionCall):
            return self._lower_call(node)
        if isinstance(node, PathExpr):
            return self._lower_path(node, pushed_on_last=0)
        if isinstance(node, Comparison):
            return self._lower_comparison(node)
        if isinstance(node, Arithmetic):
            return ArithmeticOp(node.op, self.lower(node.left),
                                self.lower(node.right))
        if isinstance(node, Logical):
            return LogicalOp(node.op, self.lower(node.left),
                             self.lower(node.right))
        if isinstance(node, Not):
            return NotOp(self.lower(node.operand))
        if isinstance(node, Sequence):
            return SequenceOp(tuple(self.lower(item)
                                    for item in node.items))
        if isinstance(node, IfExpr):
            return IfOp(self.lower(node.condition),
                        self.lower(node.then_branch),
                        self.lower(node.else_branch))
        if isinstance(node, FLWOR):
            return self._lower_flwor(node)
        if isinstance(node, Quantified):
            bindings = tuple((b.variable, self.lower(b.source))
                             for b in node.bindings)
            return QuantifiedOp(node.kind, bindings,
                                self.lower(node.condition))
        if isinstance(node, ElementConstructor):
            content = self.lower(node.content) \
                if node.content is not None else None
            return ElementConstructorOp(node.name, content)
        raise TypeError(  # pragma: no cover - parser emits known nodes
            f"cannot lower AST node {type(node).__name__}")

    def _lower_call(self, node: FunctionCall) -> Op:
        if self.builtin_doc and node.name in ("doc", "fn:doc") \
                and len(node.args) == 1:
            arg = node.args[0]
            if isinstance(arg, Literal) and isinstance(arg.value, str):
                return DocOp(arg.value)
        return FunctionCallOp(node.name,
                              tuple(self.lower(arg) for arg in node.args))

    def _lower_path(self, node: PathExpr, pushed_on_last: int) -> Op:
        base = self.lower(node.base)
        steps: list[StepPlan] = []
        for position, step in enumerate(node.steps):
            pushed_count = pushed_on_last \
                if position == len(node.steps) - 1 else 0
            total = len(step.predicates)
            predicates = tuple(
                (self.lower(predicate), index >= total - pushed_count)
                for index, predicate in enumerate(step.predicates))
            steps.append(StepPlan(step.axis, step.kind, step.name,
                                  predicates))
        if self.index_paths and isinstance(base, DocOp) and steps:
            self.indexed_paths += 1
            return IndexedPathOp(base.name, tuple(steps))
        return PathOp(base, tuple(steps))

    def _lower_comparison(self, node: Comparison) -> Op:
        like = None
        if node.op in ("=", "!="):
            pattern_text, side = self._literal_like(node.right, "left")
            if pattern_text is None:
                pattern_text, side = self._literal_like(node.left, "right")
            if pattern_text is not None:
                like = (pattern_text, _like_pattern(pattern_text), side)
        return ComparisonOp(node.op, self.lower(node.left),
                            self.lower(node.right), like)

    @staticmethod
    def _literal_like(node: Expr, side: str) -> tuple[str | None, str]:
        if isinstance(node, Literal) and isinstance(node.value, str) \
                and "%" in node.value:
            return node.value, side
        return None, side

    def _lower_flwor(self, node: FLWOR) -> Op:
        fused, pushed = fuse_where(node)
        self.where_fused += len(pushed)
        clauses: list[tuple[str, str, Op]] = []
        for position, clause in enumerate(fused.clauses):
            if isinstance(clause, ForClause):
                if pushed and position == 0 \
                        and isinstance(clause.source, PathExpr):
                    source = self._lower_path(clause.source,
                                              pushed_on_last=len(pushed))
                else:
                    source = self.lower(clause.source)
                clauses.append(("for", clause.variable, source))
            else:
                assert isinstance(clause, LetClause)
                clauses.append(("let", clause.variable,
                                self.lower(clause.value)))
        where = self.lower(fused.where) if fused.where is not None else None
        order_specs = tuple((self.lower(spec.key), spec.descending)
                            for spec in fused.order_specs)
        return FLWOROp(tuple(clauses), where, order_specs,
                       self.lower(fused.returns))


# --------------------------------------------------------------------------- #
# The Plan object and compilation entry point
# --------------------------------------------------------------------------- #

class Plan:
    """A compiled query: immutable operator tree + cumulative run stats."""

    def __init__(self, source: str, ast: Expr, root: Op,
                 functions: FunctionRegistry, parse_ns: int,
                 compile_ns: int, rewrites: dict[str, int],
                 perturbed: bool = False) -> None:
        self.source = source
        self.ast = ast
        self.root = root
        self.functions = functions
        self.parse_ns = parse_ns
        self.compile_ns = compile_ns
        self.rewrites = dict(rewrites)
        self.perturbed = perturbed
        self._lock = threading.Lock()
        self._fingerprint: str | None = None
        self._identity: str | None = None
        self._explain_fingerprint: str | None = None
        self.runs = 0
        self.total_exec_ns = 0
        self.total_nodes_visited = 0
        self.total_index_lookups = 0
        self.last_stats: PlanStats | None = None

    @property
    def fingerprint(self) -> str:
        """Stable identity of this plan's *computation*: sha256 over the
        query source and the function registry's fingerprint.

        Two plans compiled from identical source against registries with
        identical contents fingerprint the same, so result-cache entries
        (see :mod:`repro.xquery.results`) survive recompilation; swapping
        a function implementation changes the fingerprint and with it the
        cache key.  Memoized — the registry fingerprint is itself memoized
        and a plan's registry never changes after compilation.
        """
        if self._fingerprint is None:
            digest = hashlib.sha256(self.source.encode("utf-8"))
            digest.update(b"\x00")
            digest.update(repr(self.functions.fingerprint()).encode("utf-8"))
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    @property
    def identity(self) -> str:
        """Process-independent identity of this plan's computation.

        sha256 over the query source and the registry's *stable*
        fingerprint (``module.qualname`` names, not ``id()``), so two
        interpreter runs — today's collect and last month's committed
        baseline — agree on whether they compiled the same plan.  The
        perf framework stores this as ``plan_fingerprint``; in-process
        caches keep keying on :attr:`fingerprint`.
        """
        if self._identity is None:
            digest = hashlib.sha256(self.source.encode("utf-8"))
            digest.update(b"\x00")
            digest.update(repr(
                self.functions.stable_fingerprint()).encode("utf-8"))
            if self.perturbed:
                digest.update(b"\x00perturbed")
            self._identity = digest.hexdigest()
        return self._identity

    @property
    def explain_fingerprint(self) -> str:
        """sha256 of :meth:`explain` — a stable hash of the chosen
        operator tree.  Two plans that picked different operators (e.g.
        index-path vs tree-scan) hash differently even when their query
        source is identical; byte-stability across processes is pinned by
        a differential test."""
        if self._explain_fingerprint is None:
            self._explain_fingerprint = hashlib.sha256(
                self.explain().encode("utf-8")).hexdigest()
        return self._explain_fingerprint

    def execute(self, documents=None, variables=None) -> Seq:
        """Run the plan against a document set; thread-safe."""
        context = DynamicContext(documents=_resolver_for(documents),
                                 functions=self.functions,
                                 variables=variables)
        state = _ExecState()
        started = time.perf_counter_ns()
        result = self.root.run(context, state)
        exec_ns = time.perf_counter_ns() - started
        stats = PlanStats(parse_ns=self.parse_ns,
                          compile_ns=self.compile_ns,
                          exec_ns=exec_ns,
                          nodes_visited=state.nodes_visited,
                          index_lookups=state.index_lookups)
        with self._lock:
            self.runs += 1
            self.total_exec_ns += exec_ns
            self.total_nodes_visited += state.nodes_visited
            self.total_index_lookups += state.index_lookups
            self.last_stats = stats
        return result

    def explain(self) -> str:
        """Deterministic text rendering of the operator tree."""
        summary = " ".join(self.source.split())
        if len(summary) > 60:
            summary = summary[:57] + "..."
        rewrites = ", ".join(f"{name}={count}"
                             for name, count in sorted(self.rewrites.items()))
        lines = [
            f"plan for: {summary}",
            f"rewrites: {rewrites}",
        ]
        if self.perturbed:
            # Only perturbed plans carry the marker line, so the twelve
            # golden explain files stay byte-identical.
            lines.insert(1, "perturbed: index-paths disabled")
        _render(self.root.explain_node(), 0, lines)
        return "\n".join(lines)

    def stats_snapshot(self) -> dict:
        """Cumulative counters for ``/api/stats``."""
        with self._lock:
            runs = self.runs
            total_exec_ns = self.total_exec_ns
            nodes = self.total_nodes_visited
            lookups = self.total_index_lookups
        return {
            "runs": runs,
            "parse_ns": self.parse_ns,
            "compile_ns": self.compile_ns,
            "total_exec_ns": total_exec_ns,
            "avg_exec_ns": total_exec_ns // runs if runs else 0,
            "nodes_visited": nodes,
            "index_lookups": lookups,
        }

    def __repr__(self) -> str:
        summary = " ".join(self.source.split())
        if len(summary) > 40:
            summary = summary[:37] + "..."
        return f"Plan({summary!r}, runs={self.runs})"


def compile_query(source: str,
                  functions: FunctionRegistry | None = None, *,
                  perturb: bool = False) -> Plan:
    """Compile XQuery text to a :class:`Plan` (no caching here; see
    :mod:`repro.xquery.plan_cache`).

    ``perturb=True`` is a test-only toggle that disables the index-path
    rewrite, yielding a deliberately different (and slower) plan.  The
    perf framework uses it to prove the regression gate fires; perturbed
    plans are never cached, so production paths cannot pick one up.
    """
    registry = functions if functions is not None else default_registry()
    started = time.perf_counter_ns()
    ast_root = parse_query(source)
    parse_ns = time.perf_counter_ns() - started

    started = time.perf_counter_ns()
    folded, folds = fold_constants(ast_root)
    lowerer = _Lowerer(registry, index_paths=not perturb)
    root = lowerer.lower(folded)
    compile_ns = time.perf_counter_ns() - started
    return Plan(source, folded, root, registry, parse_ns, compile_ns,
                rewrites={
                    "constant-fold": folds,
                    "where-to-predicate": lowerer.where_fused,
                    "index-paths": lowerer.indexed_paths,
                },
                perturbed=perturb)


__all__ = [
    "Op",
    "Plan",
    "PlanStats",
    "compile_query",
]
