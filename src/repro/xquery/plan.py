"""Compiled query plans: compile once, run many.

``compile_query(source)`` lowers the parsed AST into a small tree of
logical operators after the :mod:`repro.xquery.rewrite` passes ran
(constant folding, WHERE-to-predicate fusion).  Path expressions rooted
at a constant ``doc("name")`` call become *index-backed* scans over the
document's lazily-built :class:`~repro.xmlmodel.indexes.DocumentIndex`.

With ``compile_query(source, statistics=...)`` a cost-based planning
pass (see :mod:`repro.xquery.stats` and :mod:`repro.xquery.cost`) runs
after lowering and makes *costed* physical choices: index lookup vs.
tree scan per path step, pushed-predicate ordering by estimated
selectivity, and per-execution memoization of loop-invariant inner
FLWOR sources.  Every costed choice is answer-preserving by
construction — both step strategies produce document order, reordering
applies only to provably boolean-valued predicates, and memoization
only to variable-independent sources — so a costed plan returns
byte-identical results to the rule-based plan (a pinned property).
Plans compiled *without* statistics are bit-for-bit the rule-based
plans of old, which keeps the golden explain suite byte-identical.

Every operator mirrors the tree-walking evaluator's semantics exactly —
several helpers (`LIKE` pattern compilation, atomic comparison, order
keys) are imported from :mod:`repro.xquery.evaluator` rather than
re-implemented, so the two engines cannot drift.  The contract, checked
by unit, golden and property tests: for any query and document set,
``Plan.execute`` and :func:`repro.xquery.evaluator.evaluate` produce
byte-identical results.

A :class:`Plan` additionally exposes:

* :meth:`Plan.explain_data` — the structured explain tree (op kind,
  estimated rows/costs/strategies where costed, actual row counts and
  inclusive wall time per operator after an analyzed run);
* :meth:`Plan.explain` — rendered from :meth:`Plan.explain_data`; the
  default text format is golden-pinned for the twelve benchmark
  queries, ``format="json"`` serializes the data tree, and
  ``analyze=True`` appends per-operator actuals (true EXPLAIN ANALYZE);
* :class:`PlanStats` — per-run parse/compile/exec nanoseconds plus nodes
  visited and index lookups, aggregated across runs for ``/api/stats``.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import threading
import time
from dataclasses import dataclass
from sys import intern as _intern
from typing import TYPE_CHECKING

from ..xmlmodel import XmlElement
from . import cost as _cost
from .ast import (
    Arithmetic,
    Comparison,
    ContextItem,
    ElementConstructor,
    Expr,
    FLWOR,
    ForClause,
    FunctionCall,
    IfExpr,
    LetClause,
    Literal,
    Logical,
    Not,
    PathExpr,
    Quantified,
    Sequence,
    VarRef,
)
from .context import DocumentResolver, DynamicContext
from .errors import XQueryTypeError
from .evaluator import (
    _compare_atomic,
    _general_compare,
    _invert,
    _like_pattern,
    _order_key,
)
from .functions import (
    FunctionRegistry,
    default_registry,
    uses_builtin_doc,
)
from .parser import parse_query
from .rewrite import fold_constants, fuse_where
from .runtime import (
    Seq,
    atomize,
    effective_boolean_value,
    format_number,
    singleton,
    string_value,
    to_number,
)

if TYPE_CHECKING:  # pragma: no cover
    from .stats import DocumentStats, Statistics


@dataclass(frozen=True)
class PlanStats:
    """Timings and counters for one plan execution."""

    parse_ns: int
    compile_ns: int
    exec_ns: int
    nodes_visited: int
    index_lookups: int

    def to_dict(self) -> dict:
        return {
            "parse_ns": self.parse_ns,
            "compile_ns": self.compile_ns,
            "exec_ns": self.exec_ns,
            "nodes_visited": self.nodes_visited,
            "index_lookups": self.index_lookups,
        }


class _ExecState:
    """Mutable per-execution counters threaded through the operators.

    ``index`` holds the :class:`~repro.xmlmodel.indexes.DocumentIndex` of
    the innermost enclosing index-backed path, so relative paths inside
    its predicates resolve through the index too; operators fall back to
    tree scans for any item the index does not cover.

    ``trace`` is ``None`` on normal executions; an analyzed execution
    (``Plan.execute(..., analyze=True)``) sets it to a dict mapping
    ``id(op-or-step)`` to ``[calls, rows produced, inclusive wall ns]``
    — the actuals behind EXPLAIN ANALYZE.  ``source_cache`` memoizes
    loop-invariant FLWOR sources (:class:`CachedSourceOp`) within one
    execution.
    """

    __slots__ = ("nodes_visited", "index_lookups", "index", "trace",
                 "source_cache")

    def __init__(self) -> None:
        self.nodes_visited = 0
        self.index_lookups = 0
        self.index = None
        self.trace: dict[int, list[int]] | None = None
        self.source_cache: dict[int, Seq] | None = None


_RESOLVER_CACHE: dict[int, tuple] = {}
_RESOLVER_CACHE_MAX = 8


def _resolver_for(documents) -> DocumentResolver | None:
    """A (cached) resolver for a plain document mapping.

    Repeated executions against the same testbed mapping would otherwise
    rebuild the resolver — and its document-node wrappers — every call.
    The cache is validated per entry (same keys, identical document
    objects), so callers that swap documents in the mapping still get a
    fresh resolver.
    """
    if documents is None or isinstance(documents, DocumentResolver):
        return documents
    key = id(documents)
    entry = _RESOLVER_CACHE.get(key)
    if entry is not None and entry[0] is documents:
        snapshot, resolver = entry[1], entry[2]
        if len(snapshot) == len(documents) and \
                all(documents.get(name) is doc for name, doc in snapshot):
            return resolver
    resolver = DocumentResolver(documents)
    while len(_RESOLVER_CACHE) >= _RESOLVER_CACHE_MAX:
        _RESOLVER_CACHE.pop(next(iter(_RESOLVER_CACHE)))
    _RESOLVER_CACHE[key] = (documents, tuple(documents.items()), resolver)
    return resolver


def _atomize(seq: Seq, state: _ExecState) -> Seq:
    """:func:`~repro.xquery.runtime.atomize`, but element string values
    come from the active document index's cache when one is live."""
    index = state.index
    if index is None:
        return atomize(seq)
    result = []
    for item in seq:
        if isinstance(item, XmlElement):
            value = index.string_of(item)
            result.append(value if value is not None
                          else string_value(item))
        elif isinstance(item, (float, bool)):
            result.append(item)
        else:
            result.append(item)
    return result


class _Node:
    """One line of ``explain()`` output with nested children.

    ``kind`` is the stable operator-kind slug surfaced through
    :meth:`Plan.explain_data`; ``ref`` points back at the operator (or
    :class:`StepPlan`) the node describes, so cost annotations and
    analyzed actuals — both keyed by ``id(ref)`` — can be joined onto
    the rendered tree.  Purely structural wrapper lines carry
    ``kind="clause"`` and no ref.
    """

    __slots__ = ("label", "children", "kind", "ref")

    def __init__(self, label: str, children: list["_Node"] | None = None,
                 kind: str = "clause", ref: object | None = None):
        self.label = label
        self.children = children or []
        self.kind = kind
        self.ref = ref


def _render_data(entry: dict, depth: int, lines: list[str],
                 analyze: bool) -> None:
    """Text rendering of one :meth:`Plan.explain_data` node."""
    label = entry["label"]
    if analyze:
        actual = entry.get("actual")
        if actual is not None:
            label += (f"  (actual rows={actual['rows']} "
                      f"calls={actual['calls']} "
                      f"time={actual['wall_ns'] / 1e6:.3f}ms)")
    lines.append("  " * depth + label)
    for child in entry.get("children", ()):
        _render_data(child, depth + 1, lines, analyze)


def _literal_label(value) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        return format_number(value)
    return "'" + str(value).replace("'", "''") + "'"


# --------------------------------------------------------------------------- #
# Operators
# --------------------------------------------------------------------------- #

class Op:
    """Base logical operator: ``run`` executes, ``explain_node`` renders."""

    __slots__ = ()

    def run(self, ctx: DynamicContext, state: _ExecState) -> Seq:
        raise NotImplementedError  # pragma: no cover

    def explain_node(self) -> _Node:
        raise NotImplementedError  # pragma: no cover


class LiteralOp(Op):
    __slots__ = ("value",)

    def __init__(self, value) -> None:
        self.value = value

    def run(self, ctx, state):
        return [self.value]

    def explain_node(self):
        return _Node(f"literal {_literal_label(self.value)}",
                     kind="literal", ref=self)


class VarRefOp(Op):
    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def run(self, ctx, state):
        return ctx.lookup(self.name)

    def explain_node(self):
        return _Node(f"var ${self.name}", kind="var", ref=self)


class ContextItemOp(Op):
    __slots__ = ()

    def run(self, ctx, state):
        if ctx.context_item is None:
            raise XQueryTypeError("'.' used outside a predicate focus")
        return [ctx.context_item]

    def explain_node(self):
        return _Node("context-item", kind="context-item", ref=self)


class DocOp(Op):
    """A constant ``doc("name")`` call resolved through the builtin."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def run(self, ctx, state):
        return [ctx.resolve_document(self.name)]

    def explain_node(self):
        return _Node(f'doc "{self.name}"', kind="doc", ref=self)


class FunctionCallOp(Op):
    __slots__ = ("name", "args")

    def __init__(self, name: str, args: tuple[Op, ...]) -> None:
        self.name = name
        self.args = args

    def run(self, ctx, state):
        evaluated = [arg.run(ctx, state) for arg in self.args]
        return ctx.functions.call(ctx, self.name, evaluated)

    def explain_node(self):
        return _Node(f"call {self.name}/{len(self.args)}",
                     [arg.explain_node() for arg in self.args],
                     kind="call", ref=self)


class SequenceOp(Op):
    __slots__ = ("items",)

    def __init__(self, items: tuple[Op, ...]) -> None:
        self.items = items

    def run(self, ctx, state):
        result: Seq = []
        for item in self.items:
            result.extend(item.run(ctx, state))
        return result

    def explain_node(self):
        return _Node(f"sequence[{len(self.items)}]",
                     [item.explain_node() for item in self.items],
                     kind="sequence", ref=self)


class IfOp(Op):
    __slots__ = ("condition", "then_branch", "else_branch")

    def __init__(self, condition: Op, then_branch: Op, else_branch: Op):
        self.condition = condition
        self.then_branch = then_branch
        self.else_branch = else_branch

    def run(self, ctx, state):
        if effective_boolean_value(self.condition.run(ctx, state)):
            return self.then_branch.run(ctx, state)
        return self.else_branch.run(ctx, state)

    def explain_node(self):
        return _Node("if", [
            _Node("condition", [self.condition.explain_node()]),
            _Node("then", [self.then_branch.explain_node()]),
            _Node("else", [self.else_branch.explain_node()]),
        ], kind="if", ref=self)


class LogicalOp(Op):
    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Op, right: Op) -> None:
        self.op = op
        self.left = left
        self.right = right

    def run(self, ctx, state):
        left = effective_boolean_value(self.left.run(ctx, state))
        if self.op == "and":
            if not left:
                return [False]
            return [effective_boolean_value(self.right.run(ctx, state))]
        if left:
            return [True]
        return [effective_boolean_value(self.right.run(ctx, state))]

    def explain_node(self):
        return _Node(f"logical '{self.op}'",
                     [self.left.explain_node(), self.right.explain_node()],
                     kind="logical", ref=self)


class NotOp(Op):
    __slots__ = ("operand",)

    def __init__(self, operand: Op) -> None:
        self.operand = operand

    def run(self, ctx, state):
        return [not effective_boolean_value(self.operand.run(ctx, state))]

    def explain_node(self):
        return _Node("not", [self.operand.explain_node()],
                     kind="not", ref=self)


class ArithmeticOp(Op):
    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Op, right: Op) -> None:
        self.op = op
        self.left = left
        self.right = right

    def run(self, ctx, state):
        left_seq = self.left.run(ctx, state)
        right_seq = self.right.run(ctx, state)
        if not left_seq or not right_seq:
            return []
        left = to_number(singleton(left_seq, "arithmetic"))
        right = to_number(singleton(right_seq, "arithmetic"))
        return [left + right if self.op == "+" else left - right]

    def explain_node(self):
        return _Node(f"arith '{self.op}'",
                     [self.left.explain_node(), self.right.explain_node()],
                     kind="arith", ref=self)


class ComparisonOp(Op):
    """General comparison with the LIKE pattern pre-compiled.

    ``like`` is ``None`` for plain comparisons, else
    ``(pattern_text, compiled_regex, values_side)`` where ``values_side``
    names the operand whose values are matched against the pattern.
    """

    __slots__ = ("op", "left", "right", "like")

    def __init__(self, op: str, left: Op, right: Op,
                 like: tuple | None) -> None:
        self.op = op
        self.left = left
        self.right = right
        self.like = like

    def run(self, ctx, state):
        left_seq = _atomize(self.left.run(ctx, state), state)
        right_seq = _atomize(self.right.run(ctx, state), state)
        if self.like is not None:
            _text, pattern, side = self.like
            values = left_seq if side == "left" else right_seq
            if self.op == "=":
                return [any(pattern.match(str(v)) for v in values)]
            return [any(not pattern.match(str(v)) for v in values)]
        return [_general_compare(self.op, left_seq, right_seq)]

    def explain_node(self):
        label = f"compare '{self.op}'"
        if self.like is not None:
            label += f" [like {_literal_label(self.like[0])}]"
        return _Node(label,
                     [self.left.explain_node(), self.right.explain_node()],
                     kind="compare", ref=self)


# --------------------------------------------------------------------------- #
# Paths
# --------------------------------------------------------------------------- #

class StepPlan:
    """One lowered path step; predicates carry a pushed-from-WHERE flag.

    ``strategy`` is the physical access choice: ``"auto"`` (rule-based:
    try the index, fall back to a scan — the only value un-costed plans
    ever carry), ``"index"`` (costed, same access path as auto) or
    ``"scan"`` (costed: skip the index probe outright).  Both index and
    scan produce document order, so the strategy can never change a
    step's output — only how fast it arrives.  ``est_rows`` is the
    planner's post-predicate row estimate, rendered in the explain tree
    and compared against analyzed actuals.
    """

    __slots__ = ("axis", "kind", "name", "predicates", "strategy",
                 "est_rows")

    def __init__(self, axis: str, kind: str, name: str,
                 predicates: tuple[tuple[Op, bool], ...]) -> None:
        self.axis = axis
        self.kind = kind
        # Element tags are interned at construction, so the scan filter's
        # ``node.tag == step.name`` is a pointer comparison first.
        self.name = _intern(name)
        self.predicates = predicates
        self.strategy = "auto"
        self.est_rows: int | None = None

    def explain_node(self) -> _Node:
        children = []
        for op, pushed in self.predicates:
            label = "predicate [pushed from where]" if pushed else "predicate"
            children.append(_Node(label, [op.explain_node()],
                                  kind="predicate"))
        label = f"step {self.axis} {self.kind} {self.name}"
        if self.strategy != "auto":
            label += f" [via {self.strategy}, est={self.est_rows}]"
        return _Node(label, children, kind="step", ref=self)


def _scan_candidates(step: StepPlan, item: XmlElement,
                     state: _ExecState) -> Seq:
    """Tree-scan step application, mirroring the interpreter."""
    if step.axis == "descendant":
        pool = [node for child in item.element_children
                for node in child.iter()]
    else:
        pool = item.element_children
    state.nodes_visited += len(pool)
    if step.kind == "element":
        if step.name == "*":
            return list(pool)
        return [node for node in pool if node.tag == step.name]
    if step.kind == "attribute":
        values: Seq = []
        targets = [item] if step.axis == "child" else pool
        for target in targets:
            value = target.get(step.name)
            if value is not None:
                values.append(value)
        return values
    targets = [item] if step.axis == "child" else pool
    texts: Seq = []
    for target in targets:
        direct = "".join(c for c in target.children if isinstance(c, str))
        if direct:
            texts.append(direct)
    return texts


def _indexed_candidates(step: StepPlan, item: XmlElement, index,
                        state: _ExecState) -> Seq | None:
    """Index-backed step application; None → caller must tree-scan.

    Only named element steps are index-eligible.  Items outside the
    indexed tree (in practice only the synthetic document node) fall
    back per-item.
    """
    if step.kind != "element" or step.name == "*":
        return None
    if step.axis == "child":
        found = index.children_of(item, step.name)
        if found is None:
            return None
        state.index_lookups += 1
        state.nodes_visited += len(found)
        return found
    found = index.descendants_of(item, step.name)
    if found is None:
        # The document node: a descendant step from it covers the whole
        # tree, which is exactly the tag's posting list.
        state.index_lookups += 1
        found = index.elements(step.name)
    else:
        state.index_lookups += 1
    state.nodes_visited += len(found)
    return found


def _filter_by_predicate(op: Op, sequence: Seq, ctx: DynamicContext,
                         state: _ExecState) -> Seq:
    size = len(sequence)
    if not size:
        return []
    kept: Seq = []
    # One focused context, re-aimed per item: evaluation is eager, so no
    # operator can observe the focus after its own run() returns.
    focused = ctx.with_focus(sequence[0], 0, size)
    for position, item in enumerate(sequence, start=1):
        focused.context_item = item
        focused.context_position = position
        value = op.run(focused, state)
        if len(value) == 1 and isinstance(value[0], float):
            if value[0] == position:
                kept.append(item)
        elif effective_boolean_value(value):
            kept.append(item)
    return kept


def _apply_step_inner(step: StepPlan, sequence: Seq, ctx: DynamicContext,
                      state: _ExecState) -> Seq:
    # A costed "scan" strategy skips the index probe outright; "index"
    # and "auto" both try the index first and fall back per item.
    index = state.index if step.strategy != "scan" else None
    if len(sequence) == 1:
        # A single context item cannot produce duplicates (children and
        # descendants of one node are each visited once), so the id-dedup
        # bookkeeping is skipped.  This is the dominant shape: every step
        # after ``doc(...)`` in a straight-line path runs per FLWOR
        # binding, i.e. over one item.
        item = sequence[0]
        if not isinstance(item, XmlElement):
            raise XQueryTypeError(
                f"path step '{step.name}' applied to atomic value "
                f"{string_value(item)!r}")
        produced = None
        if index is not None:
            produced = _indexed_candidates(step, item, index, state)
        if produced is None:
            produced = _scan_candidates(step, item, state)
        result: Seq = list(produced)
    else:
        result = []
        seen: set[int] = set()
        for item in sequence:
            if not isinstance(item, XmlElement):
                raise XQueryTypeError(
                    f"path step '{step.name}' applied to atomic value "
                    f"{string_value(item)!r}")
            produced = None
            if index is not None:
                produced = _indexed_candidates(step, item, index, state)
            if produced is None:
                produced = _scan_candidates(step, item, state)
            for node in produced:
                if isinstance(node, XmlElement):
                    if id(node) in seen:
                        continue
                    seen.add(id(node))
                result.append(node)
    for predicate, _pushed in step.predicates:
        result = _filter_by_predicate(predicate, result, ctx, state)
    return result


def _apply_step(step: StepPlan, sequence: Seq, ctx: DynamicContext,
                state: _ExecState) -> Seq:
    trace = state.trace
    if trace is None:
        return _apply_step_inner(step, sequence, ctx, state)
    started = time.perf_counter_ns()
    result = _apply_step_inner(step, sequence, ctx, state)
    elapsed = time.perf_counter_ns() - started
    entry = trace.get(id(step))
    if entry is None:
        trace[id(step)] = [1, len(result), elapsed]
    else:
        entry[0] += 1
        entry[1] += len(result)
        entry[2] += elapsed
    return result


class PathOp(Op):
    """Generic path over an arbitrary base; steps use the enclosing
    index-backed path's document index when one is active."""

    __slots__ = ("base", "steps")

    label = "path"

    def __init__(self, base: Op, steps: tuple[StepPlan, ...]) -> None:
        self.base = base
        self.steps = steps

    def run(self, ctx, state):
        current = self.base.run(ctx, state)
        for step in self.steps:
            current = _apply_step(step, current, ctx, state)
        return current

    def explain_node(self):
        children = [_Node("base", [self.base.explain_node()])]
        children.extend(step.explain_node() for step in self.steps)
        return _Node(self.label, children, kind="path", ref=self)


class IndexedPathOp(Op):
    """Path rooted at a constant ``doc()``: steps resolve through the
    document's element-name index instead of tree scans."""

    __slots__ = ("doc_name", "steps")

    def __init__(self, doc_name: str, steps: tuple[StepPlan, ...]) -> None:
        self.doc_name = doc_name
        self.steps = steps

    def run(self, ctx, state):
        current: Seq = [ctx.resolve_document(self.doc_name)]
        previous = state.index
        state.index = ctx.documents.index(self.doc_name)
        try:
            for step in self.steps:
                current = _apply_step(step, current, ctx, state)
        finally:
            state.index = previous
        return current

    def explain_node(self):
        children = [step.explain_node() for step in self.steps]
        return _Node(f'index-path doc "{self.doc_name}"', children,
                     kind="index-path", ref=self)


class CachedSourceOp(Op):
    """Per-execution memo around a loop-invariant FLWOR source.

    The cost planner wraps inner ``for``-clause sources whose subtree
    references no variables and no context item: re-evaluating such a
    source once per outer binding always yields the same sequence, so
    the first evaluation is cached in the execution state and replayed
    — the order-preserving physical analogue of pulling the inner side
    of a nested-loop join out of the loop.  Result order is untouched
    because only *when* the source is evaluated changes, never what it
    yields or how the FLWOR iterates it.
    """

    __slots__ = ("source",)

    def __init__(self, source: Op) -> None:
        self.source = source

    def run(self, ctx, state):
        cache = state.source_cache
        if cache is None:
            cache = state.source_cache = {}
        cached = cache.get(id(self))
        if cached is None:
            cached = self.source.run(ctx, state)
            cache[id(self)] = cached
        return cached

    def explain_node(self):
        return _Node("cached-source", [self.source.explain_node()],
                     kind="cached-source", ref=self)


# --------------------------------------------------------------------------- #
# Join execution (hash / nested-loop stages over independent sources)
# --------------------------------------------------------------------------- #

class _JoinActual:
    """Identity anchor for one side of a join stage's ANALYZE actuals.

    Build/probe row counts are recorded into the execution trace under
    ``id()`` of these markers, exactly like operators — the explain tree
    references them so ``EXPLAIN ANALYZE`` can report build rows and
    probe rows per stage.
    """

    __slots__ = ("side",)

    def __init__(self, side: str) -> None:
        self.side = side


class _JoinStage:
    """One step of a join program: fold one more source into the tuples.

    ``edge`` is ``(bound_position, bound_key_op, new_key_op, conjunct)``
    for the primary equi-join conjunct a hash stage keys on (``None``
    for pure loop stages).  ``hash_filters`` are the remaining conjuncts
    first evaluable at this stage (secondary edges, non-equi cross
    predicates); ``loop_filters`` are the same plus the primary conjunct,
    in original conjunct order — the nested-loop path (chosen by cost
    *or* entered as the runtime fallback for type-mixing keys) evaluates
    them generically per candidate pair, preserving exact comparison
    semantics.
    """

    __slots__ = ("position", "variable", "strategy", "build", "edge",
                 "hash_filters", "loop_filters", "est_rows",
                 "build_actual", "probe_actual")

    def __init__(self, position: int, variable: str, strategy: str,
                 build: str, edge: tuple | None,
                 hash_filters: tuple[Op, ...],
                 loop_filters: tuple[Op, ...]) -> None:
        self.position = position
        self.variable = variable
        self.strategy = strategy        # "hash" | "loop"
        self.build = build              # "source" | "tuples" ("" for loop)
        self.edge = edge
        self.hash_filters = hash_filters
        self.loop_filters = loop_filters
        self.est_rows: int | None = None
        self.build_actual = _JoinActual("build")
        self.probe_actual = _JoinActual("probe")

    def explain_node(self, variables: tuple[str, ...]) -> _Node:
        children: list[_Node] = []
        if self.edge is not None:
            bound_position, bound_key, new_key, _conjunct = self.edge
            children.append(_Node(
                f"key ${variables[bound_position]}",
                [bound_key.explain_node()], kind="join-key"))
            children.append(_Node(
                f"key ${self.variable}",
                [new_key.explain_node()], kind="join-key"))
        if self.strategy == "hash":
            build_over = f"${self.variable}" if self.build == "source" \
                else "tuples"
            children.append(_Node(f"build [{build_over}]",
                                  kind="join-build", ref=self.build_actual))
            children.append(_Node("probe", kind="join-probe",
                                  ref=self.probe_actual))
            filters = self.hash_filters
        else:
            filters = self.loop_filters
        for op in filters:
            children.append(_Node("filter [hoisted]", [op.explain_node()],
                                  kind="join-filter"))
        label = f"{self.strategy}-join ${self.variable}"
        if self.strategy == "hash":
            label += f" [build={build_over}]"
        if self.est_rows is not None:
            label += f" [est={self.est_rows}]"
        return _Node(label, children, kind=f"{self.strategy}-join",
                     ref=self)


class JoinGroupOp(Op):
    """Hash/nested-loop join over a prefix of independent FLWOR sources.

    The cost planner builds one of these from ``for``-clauses whose
    sources reference none of the group's variables, plus the WHERE
    conjuncts that are *hoistable* (total, boolean-shaped, and only over
    group variables).  Execution:

    1. evaluate every raw source in clause order, stopping at the first
       empty one — exactly the combinations the nested loop would have
       evaluated;
    2. apply variable-free hoisted conjuncts once (the nested loop would
       have evaluated them per combination — they are total, so only
       the evaluation count differs);
    3. filter each source by its single-variable hoisted conjuncts,
       tagging every surviving item with its source position;
    4. run the join program: stages fold sources in the cost-chosen
       order, hashing on the primary equi-conjunct's atomized string
       keys (falling back to the generic nested loop when any key
       atomizes to a non-string) and applying the remaining conjuncts
       per candidate;
    5. sort the finished tuples by their original index vector —
       lexicographic order over clause-position indexes *is* the nested
       loop's emission order, so downstream clauses, ORDER BY stability
       and the returned sequence are byte-identical.

    Every hoisted conjunct is total, so no error can be masked by
    filtering earlier than the interpreter would have; non-hoistable
    conjuncts stay in the FLWOR's residual WHERE, evaluated at the
    innermost depth in their original order.
    """

    __slots__ = ("variables", "sources", "source_filters", "prefilters",
                 "start", "stages")

    def __init__(self, variables: tuple[str, ...],
                 sources: tuple[Op, ...],
                 source_filters: tuple[tuple[Op, ...], ...],
                 prefilters: tuple[Op, ...],
                 start: int, stages: tuple[_JoinStage, ...]) -> None:
        self.variables = variables
        self.sources = sources
        self.source_filters = source_filters
        self.prefilters = prefilters
        self.start = start
        self.stages = stages

    @property
    def order(self) -> tuple[int, ...]:
        return (self.start,) + tuple(stage.position
                                     for stage in self.stages)

    def run(self, ctx, state):
        raw: list[Seq] = []
        for source in self.sources:
            items = source.run(ctx, state)
            if not items:
                # The nested loop never evaluates sources deeper than
                # the first empty one — neither do we.
                return []
            raw.append(items)
        for op in self.prefilters:
            if not effective_boolean_value(op.run(ctx, state)):
                return []
        filtered: list[list[tuple[int, object]]] = []
        for position, items in enumerate(raw):
            tagged = list(enumerate(items))
            predicates = self.source_filters[position]
            if predicates:
                variable = self.variables[position]
                child = ctx.bind(variable, [])
                for predicate in predicates:
                    if not tagged:
                        break
                    kept = []
                    for index, item in tagged:
                        child._variables[variable] = [item]
                        if effective_boolean_value(
                                predicate.run(child, state)):
                            kept.append((index, item))
                    tagged = kept
            filtered.append(tagged)
        width = len(self.sources)
        tuples: list[tuple[list, list]] = []
        for index, item in filtered[self.start]:
            indices: list = [-1] * width
            items_row: list = [None] * width
            indices[self.start] = index
            items_row[self.start] = item
            tuples.append((indices, items_row))
        for stage in self.stages:
            if not tuples:
                break
            tuples = self._apply_stage(stage, tuples,
                                       filtered[stage.position], ctx, state)
        tuples.sort(key=lambda entry: entry[0])
        return [tuple(items_row) for _indices, items_row in tuples]

    # -- stage execution -------------------------------------------------- #

    def _apply_stage(self, stage: _JoinStage, tuples, new_items,
                     ctx, state) -> list:
        trace = state.trace
        started = time.perf_counter_ns() if trace is not None else 0
        result, build_rows, probe_rows = self._stage_inner(
            stage, tuples, new_items, ctx, state)
        if trace is not None:
            elapsed = time.perf_counter_ns() - started
            for ref, rows in ((stage, len(result)),
                              (stage.build_actual, build_rows),
                              (stage.probe_actual, probe_rows)):
                entry = trace.get(id(ref))
                wall = elapsed if ref is stage else 0
                if entry is None:
                    trace[id(ref)] = [1, rows, wall]
                else:
                    entry[0] += 1
                    entry[1] += rows
                    entry[2] += wall
        return result

    def _stage_inner(self, stage: _JoinStage, tuples, new_items,
                     ctx, state) -> tuple[list, int, int]:
        position = stage.position
        variable = stage.variable
        if stage.strategy == "hash" and stage.edge is not None:
            bound_position, bound_key, new_key, _conjunct = stage.edge
            new_atoms = self._side_keys(
                new_key, variable, [item for _i, item in new_items],
                ctx, state)
            bound_atoms = None
            if new_atoms is not None:
                bound_items: list = []
                seen_bound: set[int] = set()
                for indices, items_row in tuples:
                    bound_index = indices[bound_position]
                    if bound_index not in seen_bound:
                        seen_bound.add(bound_index)
                        bound_items.append(
                            (bound_index, items_row[bound_position]))
                per_item = self._side_keys(
                    bound_key, self.variables[bound_position],
                    [item for _i, item in bound_items], ctx, state)
                if per_item is not None:
                    bound_atoms = {
                        index: atoms for (index, _item), atoms
                        in zip(bound_items, per_item)}
            if new_atoms is not None and bound_atoms is not None:
                return self._hash_stage(stage, tuples, new_items,
                                        new_atoms, bound_atoms,
                                        bound_position, ctx, state)
        # Nested-loop path: cost-chosen loop stages and the runtime
        # fallback for key sequences with non-string atoms, where only
        # the generic per-pair comparison preserves numeric-promotion
        # semantics.
        scope = ctx.bind(variable, [])
        result = []
        for indices, items_row in tuples:
            for var_position, name in enumerate(self.variables):
                if indices[var_position] >= 0:
                    scope._variables[name] = [items_row[var_position]]
            for index, item in new_items:
                scope._variables[variable] = [item]
                if all(effective_boolean_value(op.run(scope, state))
                       for op in stage.loop_filters):
                    joined_indices = list(indices)
                    joined_items = list(items_row)
                    joined_indices[position] = index
                    joined_items[position] = item
                    result.append((joined_indices, joined_items))
        return result, 0, len(tuples) * len(new_items)

    def _side_keys(self, key_op: Op, variable: str, items, ctx,
                   state) -> list[list] | None:
        """Atomized string keys per item; None → fall back to the loop
        (some key atomized to a non-string)."""
        scope = ctx.bind(variable, [])
        keys: list[list] = []
        for item in items:
            scope._variables[variable] = [item]
            atoms = _atomize(key_op.run(scope, state), state)
            for atom in atoms:
                if type(atom) is not str:
                    return None
            keys.append(atoms)
        return keys

    def _hash_stage(self, stage: _JoinStage, tuples, new_items,
                    new_atoms, bound_atoms, bound_position, ctx,
                    state) -> tuple[list, int, int]:
        position = stage.position
        variable = stage.variable
        filters = stage.hash_filters
        scope = ctx.bind(variable, [])
        result = []

        def passes(indices, items_row, item) -> bool:
            if not filters:
                return True
            for var_position, name in enumerate(self.variables):
                if indices[var_position] >= 0:
                    scope._variables[name] = [items_row[var_position]]
            scope._variables[variable] = [item]
            return all(effective_boolean_value(op.run(scope, state))
                       for op in filters)

        def emit(indices, items_row, index, item) -> None:
            joined_indices = list(indices)
            joined_items = list(items_row)
            joined_indices[position] = index
            joined_items[position] = item
            result.append((joined_indices, joined_items))

        if stage.build == "source":
            table: dict[str, list[int]] = {}
            for slot, atoms in enumerate(new_atoms):
                for atom in dict.fromkeys(atoms):
                    table.setdefault(atom, []).append(slot)
            build_rows, probe_rows = len(new_items), len(tuples)
            for indices, items_row in tuples:
                atoms = bound_atoms[indices[bound_position]]
                if not atoms:
                    continue
                candidates: set[int] = set()
                for atom in atoms:
                    candidates.update(table.get(atom, ()))
                for slot in sorted(candidates):
                    index, item = new_items[slot]
                    if passes(indices, items_row, item):
                        emit(indices, items_row, index, item)
        else:
            table = {}
            for tuple_slot, (indices, _items_row) in enumerate(tuples):
                for atom in dict.fromkeys(
                        bound_atoms[indices[bound_position]]):
                    table.setdefault(atom, []).append(tuple_slot)
            build_rows, probe_rows = len(tuples), len(new_items)
            for slot, atoms in enumerate(new_atoms):
                if not atoms:
                    continue
                index, item = new_items[slot]
                candidates = set()
                for atom in atoms:
                    candidates.update(table.get(atom, ()))
                for tuple_slot in sorted(candidates):
                    indices, items_row = tuples[tuple_slot]
                    if passes(indices, items_row, item):
                        emit(indices, items_row, index, item)
        return result, build_rows, probe_rows

    def explain_node(self):
        children: list[_Node] = []
        for position, source in enumerate(self.sources):
            source_children = [source.explain_node()]
            for predicate in self.source_filters[position]:
                source_children.append(
                    _Node("filter [hoisted]", [predicate.explain_node()],
                          kind="join-filter"))
            children.append(_Node(f"source ${self.variables[position]}",
                                  source_children, kind="join-source"))
        for op in self.prefilters:
            children.append(_Node("filter [hoisted, invariant]",
                                  [op.explain_node()], kind="join-filter"))
        for stage in self.stages:
            children.append(stage.explain_node(self.variables))
        order = ", ".join(f"${self.variables[position]}"
                          for position in self.order)
        return _Node(f"join-group [order {order}]", children,
                     kind="join-group", ref=self)


# --------------------------------------------------------------------------- #
# FLWOR / quantifiers / constructors
# --------------------------------------------------------------------------- #

class FLWOROp(Op):
    __slots__ = ("clauses", "where", "order_specs", "returns")

    def __init__(self, clauses: tuple[tuple[str, str, Op], ...],
                 where: Op | None,
                 order_specs: tuple[tuple[Op, bool], ...],
                 returns: Op) -> None:
        self.clauses = clauses          # (kind, variable, op)
        self.where = where
        self.order_specs = order_specs  # (key op, descending)
        self.returns = returns

    def run(self, ctx, state):
        ordered: list[tuple[tuple, Seq]] = []

        def emit(scope: DynamicContext) -> None:
            produced = self.returns.run(scope, state)
            if self.order_specs:
                keys = []
                for key_op, descending in self.order_specs:
                    key = _order_key(key_op.run(scope, state))
                    if descending:
                        key = tuple(_invert(part) for part in key)
                    keys.append(key)
                ordered.append((tuple(keys), produced))
            else:
                ordered.append(((), produced))

        def recurse(depth: int, scope: DynamicContext) -> None:
            if depth == len(self.clauses):
                if self.where is not None:
                    if not effective_boolean_value(
                            self.where.run(scope, state)):
                        return
                emit(scope)
                return
            kind, variable, op = self.clauses[depth]
            if kind == "for":
                items = op.run(scope, state)
                if not items:
                    return
                # One child scope per depth, rebound per item: evaluation
                # is eager and each binding is a fresh list, so nothing
                # downstream can observe the re-binding.
                child = scope.bind(variable, [])
                for item in items:
                    child._variables[variable] = [item]
                    recurse(depth + 1, child)
            elif kind == "join":
                # A cost-planned join group: `variable` is the tuple of
                # group variable names and each produced row binds them
                # all at once, already in nested-loop emission order.
                rows = op.run(scope, state)
                if not rows:
                    return
                names = variable
                child = scope.bind(names[0], [])
                for row in rows:
                    for name, item in zip(names, row):
                        child._variables[name] = [item]
                    recurse(depth + 1, child)
            else:
                recurse(depth + 1,
                        scope.bind(variable, op.run(scope, state)))

        recurse(0, ctx)
        if self.order_specs:
            ordered.sort(key=lambda entry: entry[0])
        results: Seq = []
        for _, produced in ordered:
            results.extend(produced)
        return results

    def explain_node(self):
        children = []
        for kind, variable, op in self.clauses:
            if kind == "join":
                names = ", ".join(f"${name}" for name in variable)
                children.append(_Node(f"join {names}",
                                      [op.explain_node()]))
                continue
            marker = "in" if kind == "for" else ":="
            children.append(_Node(f"{kind} ${variable} {marker}",
                                  [op.explain_node()]))
        if self.where is not None:
            children.append(_Node("where", [self.where.explain_node()]))
        for key_op, descending in self.order_specs:
            direction = " descending" if descending else ""
            children.append(_Node(f"order-by{direction}",
                                  [key_op.explain_node()]))
        children.append(_Node("return", [self.returns.explain_node()]))
        return _Node("flwor", children, kind="flwor", ref=self)


class QuantifiedOp(Op):
    __slots__ = ("kind", "bindings", "condition")

    def __init__(self, kind: str, bindings: tuple[tuple[str, Op], ...],
                 condition: Op) -> None:
        self.kind = kind
        self.bindings = bindings
        self.condition = condition

    def run(self, ctx, state):
        some = self.kind == "some"

        def decided(depth: int, scope: DynamicContext) -> bool:
            # True once the overall answer is settled: `some` on the
            # first true condition, `every` on the first false — later
            # binding combinations are never evaluated (mirrors the
            # interpreter's short-circuit exactly).
            if depth == len(self.bindings):
                value = effective_boolean_value(
                    self.condition.run(scope, state))
                return value if some else not value
            variable, op = self.bindings[depth]
            items = op.run(scope, state)
            if not items:
                return False
            child = scope.bind(variable, [])
            for item in items:
                child._variables[variable] = [item]
                if decided(depth + 1, child):
                    return True
            return False

        settled = decided(0, ctx)
        return [settled if some else not settled]

    def explain_node(self):
        children = [_Node(f"${variable} in", [op.explain_node()])
                    for variable, op in self.bindings]
        children.append(_Node("satisfies", [self.condition.explain_node()]))
        return _Node(self.kind, children, kind="quantified", ref=self)


class ElementConstructorOp(Op):
    __slots__ = ("name", "content")

    def __init__(self, name: str, content: Op | None) -> None:
        self.name = name
        self.content = content

    def run(self, ctx, state):
        constructed = XmlElement(self.name)
        if self.content is not None:
            pending: list[str] = []

            def flush() -> None:
                if pending:
                    constructed.append(" ".join(pending))
                    pending.clear()

            for item in self.content.run(ctx, state):
                if isinstance(item, XmlElement):
                    flush()
                    constructed.append(item.copy())
                else:
                    pending.append(string_value(item))
            flush()
        return [constructed]

    def explain_node(self):
        children = [] if self.content is None \
            else [self.content.explain_node()]
        return _Node(f"element {self.name}", children,
                     kind="element", ref=self)


# --------------------------------------------------------------------------- #
# Per-operator instrumentation
# --------------------------------------------------------------------------- #

def _traced(run):
    """Wrap an operator's ``run`` with the EXPLAIN ANALYZE recorder.

    The fast path — no analysis requested — is one attribute read and a
    branch; analyzed executions accumulate ``[calls, rows, inclusive
    wall ns]`` per operator identity.  Times are inclusive of child
    operators (the Postgres convention for loops is matched on calls and
    rows: an operator run N times reports the totals over all N calls).
    """
    def traced_run(self, ctx, state):
        trace = state.trace
        if trace is None:
            return run(self, ctx, state)
        started = time.perf_counter_ns()
        result = run(self, ctx, state)
        elapsed = time.perf_counter_ns() - started
        entry = trace.get(id(self))
        if entry is None:
            trace[id(self)] = [1, len(result), elapsed]
        else:
            entry[0] += 1
            entry[1] += len(result)
            entry[2] += elapsed
        return result
    traced_run.__wrapped__ = run
    return traced_run


for _op_class in (LiteralOp, VarRefOp, ContextItemOp, DocOp, FunctionCallOp,
                  SequenceOp, IfOp, LogicalOp, NotOp, ArithmeticOp,
                  ComparisonOp, PathOp, IndexedPathOp, CachedSourceOp,
                  JoinGroupOp, FLWOROp, QuantifiedOp, ElementConstructorOp):
    _op_class.run = _traced(_op_class.run)
del _op_class


# --------------------------------------------------------------------------- #
# Lowering
# --------------------------------------------------------------------------- #

class _Lowerer:
    """AST → operator tree, applying fusion and index-path selection.

    ``index_paths=False`` disables the index-backed ``doc()`` rewrite —
    a test-only perturbation knob (see :func:`compile_query`) that forces
    a visibly different, slower plan so the perf regression gate can be
    exercised end to end.
    """

    def __init__(self, functions: FunctionRegistry,
                 index_paths: bool = True) -> None:
        self.functions = functions
        self.builtin_doc = uses_builtin_doc(functions)
        self.index_paths = index_paths
        self.where_fused = 0
        self.indexed_paths = 0

    def lower(self, node: Expr) -> Op:
        if isinstance(node, Literal):
            return LiteralOp(node.value)
        if isinstance(node, VarRef):
            return VarRefOp(node.name)
        if isinstance(node, ContextItem):
            return ContextItemOp()
        if isinstance(node, FunctionCall):
            return self._lower_call(node)
        if isinstance(node, PathExpr):
            return self._lower_path(node, pushed_on_last=0)
        if isinstance(node, Comparison):
            return self._lower_comparison(node)
        if isinstance(node, Arithmetic):
            return ArithmeticOp(node.op, self.lower(node.left),
                                self.lower(node.right))
        if isinstance(node, Logical):
            return LogicalOp(node.op, self.lower(node.left),
                             self.lower(node.right))
        if isinstance(node, Not):
            return NotOp(self.lower(node.operand))
        if isinstance(node, Sequence):
            return SequenceOp(tuple(self.lower(item)
                                    for item in node.items))
        if isinstance(node, IfExpr):
            return IfOp(self.lower(node.condition),
                        self.lower(node.then_branch),
                        self.lower(node.else_branch))
        if isinstance(node, FLWOR):
            return self._lower_flwor(node)
        if isinstance(node, Quantified):
            bindings = tuple((b.variable, self.lower(b.source))
                             for b in node.bindings)
            return QuantifiedOp(node.kind, bindings,
                                self.lower(node.condition))
        if isinstance(node, ElementConstructor):
            content = self.lower(node.content) \
                if node.content is not None else None
            return ElementConstructorOp(node.name, content)
        raise TypeError(  # pragma: no cover - parser emits known nodes
            f"cannot lower AST node {type(node).__name__}")

    def _lower_call(self, node: FunctionCall) -> Op:
        if self.builtin_doc and node.name in ("doc", "fn:doc") \
                and len(node.args) == 1:
            arg = node.args[0]
            if isinstance(arg, Literal) and isinstance(arg.value, str):
                return DocOp(arg.value)
        return FunctionCallOp(node.name,
                              tuple(self.lower(arg) for arg in node.args))

    def _lower_path(self, node: PathExpr, pushed_on_last: int) -> Op:
        base = self.lower(node.base)
        steps: list[StepPlan] = []
        for position, step in enumerate(node.steps):
            pushed_count = pushed_on_last \
                if position == len(node.steps) - 1 else 0
            total = len(step.predicates)
            predicates = tuple(
                (self.lower(predicate), index >= total - pushed_count)
                for index, predicate in enumerate(step.predicates))
            steps.append(StepPlan(step.axis, step.kind, step.name,
                                  predicates))
        if self.index_paths and isinstance(base, DocOp) and steps:
            self.indexed_paths += 1
            return IndexedPathOp(base.name, tuple(steps))
        return PathOp(base, tuple(steps))

    def _lower_comparison(self, node: Comparison) -> Op:
        like = None
        if node.op in ("=", "!="):
            pattern_text, side = self._literal_like(node.right, "left")
            if pattern_text is None:
                pattern_text, side = self._literal_like(node.left, "right")
            if pattern_text is not None:
                like = (pattern_text, _like_pattern(pattern_text), side)
        return ComparisonOp(node.op, self.lower(node.left),
                            self.lower(node.right), like)

    @staticmethod
    def _literal_like(node: Expr, side: str) -> tuple[str | None, str]:
        if isinstance(node, Literal) and isinstance(node.value, str) \
                and "%" in node.value:
            return node.value, side
        return None, side

    def _lower_flwor(self, node: FLWOR) -> Op:
        fused, pushed, fused_at = fuse_where(node)
        self.where_fused += len(pushed)
        clauses: list[tuple[str, str, Op]] = []
        for position, clause in enumerate(fused.clauses):
            if isinstance(clause, ForClause):
                if pushed and position == fused_at \
                        and isinstance(clause.source, PathExpr):
                    source = self._lower_path(clause.source,
                                              pushed_on_last=len(pushed))
                else:
                    source = self.lower(clause.source)
                clauses.append(("for", clause.variable, source))
            else:
                assert isinstance(clause, LetClause)
                clauses.append(("let", clause.variable,
                                self.lower(clause.value)))
        where = self.lower(fused.where) if fused.where is not None else None
        order_specs = tuple((self.lower(spec.key), spec.descending)
                            for spec in fused.order_specs)
        return FLWOROp(tuple(clauses), where, order_specs,
                       self.lower(fused.returns))


# --------------------------------------------------------------------------- #
# Cost-based planning
# --------------------------------------------------------------------------- #

#: Operator reversal for comparisons written literal-first.
_REVERSED_OP = {"<": ">", ">": "<", "<=": ">=", ">=": "<=",
                "=": "=", "!=": "!="}


class _CostPlanner:
    """Statistics-driven physical planning over a lowered operator tree.

    Three answer-preserving decision families (see the module docstring)
    are applied in place; every choice is recorded in ``cost_info``
    (keyed ``id(op-or-step)``, joined onto the explain tree) and tallied
    in ``decisions``.  Estimates are pure functions of the statistics,
    so identical statistics produce identical costed plans in any
    process.
    """

    def __init__(self, statistics: "Statistics",
                 join_search: bool = True) -> None:
        self.statistics = statistics
        self.join_search = join_search
        self.cost_info: dict[int, dict] = {}
        self.decisions = {
            "cached-sources": 0,
            "hash-joins": 0,
            "hoisted-predicates": 0,
            "index-steps": 0,
            "join-groups": 0,
            "loop-joins": 0,
            "reordered-predicates": 0,
            "scan-steps": 0,
            "steps-costed": 0,
        }

    # -- tree walk -------------------------------------------------------- #

    def walk(self, op: Op) -> Op:
        if isinstance(op, IndexedPathOp):
            self._cost_indexed_path(op)
            for step in op.steps:
                for predicate, _pushed in step.predicates:
                    self.walk(predicate)
            return op
        if isinstance(op, PathOp):
            self.walk(op.base)
            for step in op.steps:
                for predicate, _pushed in step.predicates:
                    self.walk(predicate)
            return op
        if isinstance(op, FLWOROp):
            return self._cost_flwor(op)
        if isinstance(op, FunctionCallOp):
            for arg in op.args:
                self.walk(arg)
            return op
        if isinstance(op, SequenceOp):
            for item in op.items:
                self.walk(item)
            return op
        if isinstance(op, IfOp):
            self.walk(op.condition)
            self.walk(op.then_branch)
            self.walk(op.else_branch)
            return op
        if isinstance(op, (LogicalOp, ArithmeticOp, ComparisonOp)):
            self.walk(op.left)
            self.walk(op.right)
            return op
        if isinstance(op, NotOp):
            self.walk(op.operand)
            return op
        if isinstance(op, QuantifiedOp):
            for _variable, source in op.bindings:
                self.walk(source)
            self.walk(op.condition)
            return op
        if isinstance(op, ElementConstructorOp):
            if op.content is not None:
                self.walk(op.content)
            return op
        return op

    def _cost_flwor(self, op: FLWOROp) -> Op:
        walked = [(kind, variable, self.walk(source))
                  for kind, variable, source in op.clauses]
        joined = None
        if self.join_search and op.where is not None and len(walked) >= 2:
            joined = self._plan_join(op, walked)
        if joined is not None:
            op.clauses = joined
        else:
            clauses = []
            for position, (kind, variable, source) in enumerate(walked):
                if kind == "for" and position > 0 \
                        and _is_loop_invariant(source):
                    # Inner loop-invariant sources re-evaluate once per
                    # outer binding; memoizing is cheaper whenever the
                    # outer side binds more than once, which statistics
                    # can't rule out — so the planner always takes it.
                    source = CachedSourceOp(source)
                    self.decisions["cached-sources"] += 1
                    self.cost_info[id(source)] = {"strategy": "memo"}
                clauses.append((kind, variable, source))
            op.clauses = tuple(clauses)
        if op.where is not None:
            self.walk(op.where)
        for key_op, _descending in op.order_specs:
            self.walk(key_op)
        self.walk(op.returns)
        return op

    # -- join planning ----------------------------------------------------- #

    def _plan_join(self, op: FLWOROp, walked: list) -> tuple | None:
        """Try to turn a prefix of *walked* clauses plus hoistable WHERE
        conjuncts into a cost-ordered :class:`JoinGroupOp` clause.

        Returns the transformed clause tuple (mutating ``op.where`` down
        to the residual conjuncts) or None to keep the nested loop.
        Safety rules — each one protects byte-identical results:

        * the group is a maximal prefix of ``for``-clauses whose sources
          reference none of the group's variables (clause order is the
          evaluation order the interpreter uses, so raw sources are
          still evaluated in it);
        * duplicate or tail-shadowed group names bail out — a conjunct
          mentioning the name would not unambiguously reference the
          group binding;
        * every clause *after* the group must be provably total:
          hoisted filtering evaluates strictly fewer combinations, so a
          tail source that could raise might lose its error;
        * a conjunct is hoisted only when it is total, boolean-shaped,
          over group variables only, and every conjunct *before* it is
          total (the interpreter stops at the first false conjunct, so
          an early false may hide a later raise — but only if some
          earlier conjunct could itself raise).
        """
        group: list[tuple[str, Op]] = []
        bound: set[str] = set()
        for kind, variable, source in walked:
            if kind != "for" or (_op_variables(source) & bound):
                break
            group.append((variable, source))
            bound.add(variable)
        if len(group) < 2:
            return None
        group_vars = tuple(variable for variable, _source in group)
        if len(set(group_vars)) != len(group_vars):
            return None
        tail = walked[len(group):]
        if {variable for _kind, variable, _source in tail} & bound:
            return None
        env = {variable: _binding_kind(source)
               for variable, source in group}
        for _kind, variable, source in tail:
            if not _op_cannot_raise(source, env):
                return None
            env[variable] = _binding_kind(source)

        conjuncts = _split_conjuncts_op(op.where)
        hoisted: list[Op] = []
        residual: list[Op] = []
        prefix_total = True
        for conjunct in conjuncts:
            total = _conjunct_cannot_raise(conjunct, env)
            if prefix_total and total \
                    and _op_variables(conjunct) <= bound:
                hoisted.append(conjunct)
            else:
                residual.append(conjunct)
            prefix_total = prefix_total and total
        if not hoisted:
            return None

        # -- classify hoisted conjuncts --------------------------------- #
        positions = {variable: index
                     for index, variable in enumerate(group_vars)}
        prefilters: list[Op] = []
        per_source: dict[str, list[Op]] = {v: [] for v in group_vars}
        edges: list[tuple] = []   # (hoist idx, lpos, lkey, rpos, rkey, op)
        cross: list[tuple] = []   # (hoist idx, frozenset positions, op)
        for hoist_index, conjunct in enumerate(hoisted):
            names = _op_variables(conjunct)
            if not names:
                prefilters.append(conjunct)
            elif len(names) == 1:
                per_source[next(iter(names))].append(conjunct)
            else:
                edge = _equi_edge(conjunct, positions)
                if edge is not None:
                    edges.append((hoist_index,) + edge + (conjunct,))
                else:
                    cross.append((hoist_index,
                                  frozenset(positions[name]
                                            for name in names), conjunct))

        # -- estimate filtered input sizes ------------------------------- #
        rows: list[float] = []
        docinfo: list[tuple] = []
        for variable, source in group:
            docstats, context_tag = self._source_docstats(source)
            base = self._source_rows(source)
            selectivity = 1.0
            for conjunct in per_source[variable]:
                selectivity *= self._hoisted_selectivity(
                    conjunct, variable, context_tag, docstats)
            rows.append(max(base * selectivity, 0.05))
            docinfo.append((docstats, context_tag))

        def key_distinct(key_op: Op, position: int) -> float:
            docstats, _context_tag = docinfo[position]
            tag = _var_child_tag(key_op, group_vars[position])
            if tag is not None and docstats is not None:
                return float(docstats.distinct_estimate(tag))
            return max(1.0, rows[position])

        edge_records = [record + (
            _cost.join_selectivity(key_distinct(record[2], record[1]),
                                   key_distinct(record[4], record[3])),)
            for record in edges]
        # record = (hoist idx, lpos, lkey, rpos, rkey, op, selectivity)

        def connects(record, new: int, done: frozenset) -> bool:
            return (record[1] == new and record[3] in done) \
                or (record[3] == new and record[1] in done)

        def stage_estimates(done: frozenset, done_rows: float, new: int):
            """(out rows, loop cost, hash cost by build side) of folding
            source *new* into the tuples over *done*."""
            selectivity = 1.0
            has_edge = False
            for record in edge_records:
                if connects(record, new, done):
                    selectivity *= record[6]
                    has_edge = True
            for _index, poss, _conjunct in cross:
                if poss <= done | {new} and not poss <= done:
                    selectivity *= _cost.DEFAULT_SELECTIVITY
            out = _cost.join_cardinality(done_rows, rows[new], selectivity)
            loop = _cost.loop_join_cost(done_rows, rows[new], out)
            if has_edge:
                hash_source = _cost.hash_join_cost(rows[new], done_rows,
                                                   out)
                hash_tuples = _cost.hash_join_cost(done_rows, rows[new],
                                                   out)
            else:
                hash_source = hash_tuples = None
            return out, loop, hash_source, hash_tuples

        def best_stage_cost(done: frozenset, done_rows: float, new: int):
            out, loop, hash_source, hash_tuples = \
                stage_estimates(done, done_rows, new)
            best = min(candidate for candidate
                       in (loop, hash_source, hash_tuples)
                       if candidate is not None)
            return out, best

        def order_cost(order: tuple[int, ...]) -> float:
            total = 0.0
            done = frozenset((order[0],))
            done_rows = rows[order[0]]
            for new in order[1:]:
                out, best = best_stage_cost(done, done_rows, new)
                total += best
                done = done | {new}
                done_rows = out
            return total

        # -- join-order search: DP on subsets, greedy past 5 sources ----- #
        size = len(group)
        considered = 0
        if size <= 5:
            best_plan: dict[frozenset, tuple] = {
                frozenset((index,)): (0.0, rows[index], (index,))
                for index in range(size)}
            for subset_size in range(2, size + 1):
                for subset in itertools.combinations(range(size),
                                                     subset_size):
                    key = frozenset(subset)
                    entry = None
                    for last in subset:
                        previous = best_plan[key - {last}]
                        prev_cost, prev_rows, prev_order = previous
                        out, best = best_stage_cost(key - {last},
                                                    prev_rows, last)
                        considered += 1
                        candidate = (prev_cost + best, out,
                                     prev_order + (last,))
                        if entry is None or (candidate[0], candidate[2]) \
                                < (entry[0], entry[2]):
                            entry = candidate
                    best_plan[key] = entry
            chosen_cost, _final_rows, chosen_order = \
                best_plan[frozenset(range(size))]
        else:
            start = min(range(size), key=lambda index: (rows[index], index))
            order = [start]
            done = frozenset((start,))
            done_rows = rows[start]
            chosen_cost = 0.0
            while len(order) < size:
                pick = None
                for new in range(size):
                    if new in done:
                        continue
                    out, best = best_stage_cost(done, done_rows, new)
                    considered += 1
                    if pick is None or (best, new) < (pick[0], pick[1]):
                        pick = (best, new, out)
                chosen_cost += pick[0]
                done = done | {pick[1]}
                done_rows = pick[2]
                order.append(pick[1])
            chosen_order = tuple(order)

        # -- build the stage program ------------------------------------- #
        start = chosen_order[0]
        stages: list[_JoinStage] = []
        done = frozenset((start,))
        done_rows = rows[start]
        for new in chosen_order[1:]:
            stage_edges = [record for record in edge_records
                           if connects(record, new, done)]
            stage_cross = [entry for entry in cross
                           if entry[1] <= done | {new}
                           and not entry[1] <= done]
            out, loop, hash_source, hash_tuples = \
                stage_estimates(done, done_rows, new)
            options = [(loop, 0, "loop", "")]
            if hash_source is not None:
                options.append((hash_source, 1, "hash", "source"))
                options.append((hash_tuples, 2, "hash", "tuples"))
            cost_chosen, _rank, strategy, build = min(options)

            primary = None
            if strategy == "hash":
                primary = min(stage_edges,
                              key=lambda record: (record[6], record[0]))
            ordered_filters = [(record[0], record[5])
                               for record in stage_edges
                               if record is not primary]
            ordered_filters.extend((index, conjunct)
                                   for index, _poss, conjunct in stage_cross)
            ordered_filters.sort(key=lambda entry: entry[0])
            hash_filters = tuple(conjunct
                                 for _index, conjunct in ordered_filters)
            if primary is not None:
                ordered_filters.append((primary[0], primary[5]))
                ordered_filters.sort(key=lambda entry: entry[0])
            loop_filters = tuple(conjunct
                                 for _index, conjunct in ordered_filters)

            edge = None
            if primary is not None:
                if primary[1] in done:
                    edge = (primary[1], primary[2], primary[4], primary[5])
                else:
                    edge = (primary[3], primary[4], primary[2], primary[5])
            stage = _JoinStage(new, group_vars[new], strategy, build,
                               edge, hash_filters, loop_filters)
            info: dict = {
                "strategy": strategy,
                "est_rows": max(0, round(out)),
                "est_cost": round(cost_chosen, 3),
                "alternatives": [
                    {"strategy": "loop", "cost": round(loop, 3)}],
            }
            if hash_source is not None:
                info["alternatives"].append(
                    {"strategy": "hash", "build": f"${group_vars[new]}",
                     "cost": round(hash_source, 3)})
                info["alternatives"].append(
                    {"strategy": "hash", "build": "tuples",
                     "cost": round(hash_tuples, 3)})
            if strategy == "hash":
                info["build"] = f"${group_vars[new]}" \
                    if build == "source" else "tuples"
                build_rows = rows[new] if build == "source" else done_rows
                probe_rows = done_rows if build == "source" else rows[new]
                info["est_build_rows"] = max(0, round(build_rows))
                info["est_probe_rows"] = max(0, round(probe_rows))
            stage.est_rows = info["est_rows"]
            self.cost_info[id(stage)] = info
            self.decisions["hash-joins" if strategy == "hash"
                           else "loop-joins"] += 1
            stages.append(stage)
            done = done | {new}
            done_rows = out

        group_op = JoinGroupOp(
            variables=group_vars,
            sources=tuple(source for _variable, source in group),
            source_filters=tuple(tuple(per_source[variable])
                                 for variable in group_vars),
            prefilters=tuple(prefilters),
            start=start,
            stages=tuple(stages))
        self.decisions["join-groups"] += 1
        self.decisions["hoisted-predicates"] += len(hoisted)
        clause_order = tuple(range(size))
        group_info = {
            "strategy": "join-group",
            "order": [f"${group_vars[position]}"
                      for position in chosen_order],
            "est_rows": max(0, round(done_rows)),
            "est_cost": round(chosen_cost, 3),
            "orders_considered": considered,
            "alternatives": [{
                "order": [f"${group_vars[position]}"
                          for position in clause_order],
                "cost": round(order_cost(clause_order), 3),
            }],
        }
        self.cost_info[id(group_op)] = group_info

        op.where = _join_conjuncts_op(residual) if residual else None
        clauses: list = [("join", group_vars, group_op)]
        for kind, variable, source in tail:
            if kind == "for" and _is_loop_invariant(source):
                source = CachedSourceOp(source)
                self.decisions["cached-sources"] += 1
                self.cost_info[id(source)] = {"strategy": "memo"}
            clauses.append((kind, variable, source))
        return tuple(clauses)

    def _source_rows(self, source: Op) -> float:
        """Row estimate for one group source, reusing the step costing
        this planner already recorded for indexed paths."""
        if isinstance(source, IndexedPathOp):
            for step in reversed(source.steps):
                info = self.cost_info.get(id(step))
                if info and "est_rows" in info:
                    return float(info["est_rows"])
        if isinstance(source, (DocOp, LiteralOp)):
            return 1.0
        if isinstance(source, SequenceOp):
            return float(len(source.items))
        return _cost.DEFAULT_JOIN_ROWS

    def _source_docstats(self, source: Op) -> tuple:
        """(document statistics, context tag) for ``$var``-relative
        estimation over a group source, when the source is an indexed
        path ending in a named element step."""
        if isinstance(source, IndexedPathOp):
            docstats = self.statistics.for_document(source.doc_name)
            steps = source.steps
            if steps and steps[-1].kind == "element" \
                    and steps[-1].name != "*":
                return docstats, steps[-1].name
            return docstats, None
        return None, None

    def _hoisted_selectivity(self, conjunct: Op, variable: str,
                             context_tag, docstats) -> float:
        """Selectivity of a single-variable hoisted conjunct, read as a
        ``$var/Tag <op> literal`` shape against the variable's document
        statistics."""
        if docstats is None or context_tag is None:
            return _cost.DEFAULT_SELECTIVITY
        if isinstance(conjunct, ComparisonOp):
            shape = _var_comparison_shape(conjunct, variable)
            if shape is None:
                return _cost.DEFAULT_SELECTIVITY
            child_tag, cmp_op, literal = shape
            pattern = conjunct.like[1] if conjunct.like is not None \
                else None
            return _cost.comparison_selectivity(
                docstats, context_tag, child_tag, cmp_op, literal, pattern)
        if isinstance(conjunct, LogicalOp):
            left = self._hoisted_selectivity(conjunct.left, variable,
                                             context_tag, docstats)
            right = self._hoisted_selectivity(conjunct.right, variable,
                                              context_tag, docstats)
            if conjunct.op == "and":
                return left * right
            return min(1.0, left + right - left * right)
        if isinstance(conjunct, NotOp):
            inner = self._hoisted_selectivity(conjunct.operand, variable,
                                              context_tag, docstats)
            return max(_cost.EQUALITY_FLOOR, 1.0 - inner)
        return _cost.DEFAULT_SELECTIVITY

    # -- path-step costing ------------------------------------------------ #

    def _cost_indexed_path(self, op: IndexedPathOp) -> None:
        docstats = self.statistics.for_document(op.doc_name)
        if docstats is None:
            return
        card = 1.0
        context_tag: str | None = None   # None = the #document node
        for step in op.steps:
            if step.kind != "element" or step.name == "*":
                # Attribute, text and wildcard steps have exactly one
                # physical strategy; estimate rows and stop costing —
                # the context tag is no longer a single element name.
                est = card if step.kind != "element" \
                    else card * docstats.avg_children(context_tag)
                self.cost_info[id(step)] = {
                    "est_rows": max(0, round(est))}
                break
            card, context_tag = self._cost_step(step, card, context_tag,
                                                docstats)

    def _cost_step(self, step: StepPlan, card: float,
                   context_tag: str | None,
                   docstats: "DocumentStats") -> tuple[float, str]:
        self.decisions["steps-costed"] += 1
        if step.axis == "child":
            est = card * docstats.fanout(context_tag, step.name)
            pool = docstats.avg_children(context_tag)
            if context_tag is None:
                # The document node is outside the index: a probe there
                # always misses and falls back to the scan.
                index_cost = _cost.document_node_index_cost(card, pool, est)
            else:
                index_cost = _cost.index_step_cost(card, est)
            scan_cost = _cost.scan_step_cost(card, pool, est)
        else:
            if context_tag is None:
                est = float(docstats.tag_count(step.name))
            else:
                parents = docstats.tag_count(context_tag)
                est = card * (docstats.tag_count(step.name) / parents
                              if parents else 0.0)
            # Descendant steps are index-served even from the document
            # node (the whole posting list); the scan walks the subtree.
            index_cost = _cost.index_step_cost(card, est)
            scan_cost = _cost.scan_step_cost(
                card, docstats.avg_subtree(context_tag), est)

        chosen = "index" if index_cost <= scan_cost else "scan"
        step.strategy = chosen
        self.decisions[f"{chosen}-steps"] += 1
        selectivity = self._cost_predicates(step, docstats)
        est_after = est * selectivity
        step.est_rows = max(0, round(est_after))
        info = {
            "strategy": chosen,
            "est_rows": step.est_rows,
            "est_cost": round(min(index_cost, scan_cost), 3),
            "alternatives": [
                {"strategy": "index", "cost": round(index_cost, 3)},
                {"strategy": "scan", "cost": round(scan_cost, 3)},
            ],
        }
        if step.predicates:
            info["est_selectivity"] = round(selectivity, 4)
        self.cost_info[id(step)] = info
        return max(est_after, 0.0), step.name

    def _cost_predicates(self, step: StepPlan,
                         docstats: "DocumentStats") -> float:
        if not step.predicates:
            return 1.0
        selectivities = [self._selectivity(predicate, step.name, docstats)
                         for predicate, _pushed in step.predicates]
        for (predicate, _pushed), estimate in zip(step.predicates,
                                                  selectivities):
            self.cost_info.setdefault(id(predicate), {})[
                "est_selectivity"] = round(estimate, 4)
        # Pushed-from-WHERE predicates form a contiguous suffix (fusion
        # appends them) and are provably boolean-valued, so running the
        # most selective first filters the same set in fewer predicate
        # evaluations.  Hand-written predicates keep their positions —
        # a positional predicate must never move.  Predicates that can
        # raise (numeric coercion of a non-numeric value) are barriers:
        # moving anything across one would change which items reach it
        # before a short-circuit, turning an error into a silent filter
        # (or vice versa) — only runs of total predicates may permute.
        pushed_count = sum(1 for _predicate, pushed in step.predicates
                           if pushed)
        start = len(step.predicates) - pushed_count
        if pushed_count > 1 and all(
                pushed for _predicate, pushed in step.predicates[start:]):
            suffix = list(step.predicates[start:])
            reordered = list(suffix)
            run_start = 0
            for position in range(len(suffix) + 1):
                at_barrier = position == len(suffix) \
                    or not _cannot_raise(suffix[position][0])
                if not at_barrier:
                    continue
                run = range(run_start, position)
                order = sorted(run, key=lambda j: (
                    selectivities[start + j], j))
                for target, source_pos in zip(run, order):
                    reordered[target] = suffix[source_pos]
                run_start = position + 1
            if reordered != suffix:
                step.predicates = step.predicates[:start] \
                    + tuple(reordered)
                self.decisions["reordered-predicates"] += 1
        product = 1.0
        for estimate in selectivities:
            product *= estimate
        return product

    def _selectivity(self, op: Op, context_tag: str,
                     docstats: "DocumentStats") -> float:
        if isinstance(op, ComparisonOp):
            shape = _comparison_shape(op)
            if shape is None:
                return _cost.DEFAULT_SELECTIVITY
            child_tag, cmp_op, literal = shape
            pattern = op.like[1] if op.like is not None else None
            return _cost.comparison_selectivity(
                docstats, context_tag, child_tag, cmp_op, literal, pattern)
        if isinstance(op, LogicalOp):
            left = self._selectivity(op.left, context_tag, docstats)
            right = self._selectivity(op.right, context_tag, docstats)
            if op.op == "and":
                return left * right
            return min(1.0, left + right - left * right)
        if isinstance(op, NotOp):
            inner = self._selectivity(op.operand, context_tag, docstats)
            return max(_cost.EQUALITY_FLOOR, 1.0 - inner)
        return _cost.DEFAULT_SELECTIVITY


def _cannot_raise(op: Op) -> bool:
    """True when evaluating *op* as a predicate can never raise.

    Node values atomize to strings, so a readable ``./Tag <op> literal``
    comparison is total when the literal keeps it on the string path:
    LIKE patterns match text, string literals compare as strings, and
    boolean literals only admit (total) effective-boolean equality.  A
    float literal forces ``to_number`` on the node text, which raises on
    non-numeric values — those predicates (and anything unreadable) pin
    their position in the reorder.
    """
    if isinstance(op, ComparisonOp):
        if op.like is not None:
            return True
        shape = _comparison_shape(op)
        if shape is None:
            return False
        _tag, cmp_op, literal = shape
        if isinstance(literal, bool):
            return cmp_op in ("=", "!=")
        return isinstance(literal, str)
    if isinstance(op, LogicalOp):
        return _cannot_raise(op.left) and _cannot_raise(op.right)
    if isinstance(op, NotOp):
        return _cannot_raise(op.operand)
    return False


def _relative_child_tag(op: Op) -> str | None:
    """The tag of a bare ``./child::Tag`` operand, else None."""
    if isinstance(op, PathOp) and isinstance(op.base, ContextItemOp) \
            and len(op.steps) == 1:
        step = op.steps[0]
        if step.axis == "child" and step.kind == "element" \
                and step.name != "*" and not step.predicates:
            return step.name
    return None


def _comparison_shape(op: ComparisonOp) -> tuple[str, str, object] | None:
    """Decompose ``./Tag <op> literal`` (either operand order) into
    ``(tag, normalized op, literal value)``; None when unreadable."""
    tag = _relative_child_tag(op.left)
    if tag is not None and isinstance(op.right, LiteralOp):
        return tag, op.op, op.right.value
    tag = _relative_child_tag(op.right)
    if tag is not None and isinstance(op.left, LiteralOp):
        return tag, _REVERSED_OP.get(op.op, op.op), op.left.value
    return None


def _is_loop_invariant(op: Op) -> bool:
    """True when *op*'s subtree references no variable and no context
    item, so its value cannot change across outer FLWOR bindings."""
    if isinstance(op, (VarRefOp, ContextItemOp)):
        return False
    if isinstance(op, (LiteralOp, DocOp)):
        return True
    if isinstance(op, FunctionCallOp):
        return all(_is_loop_invariant(arg) for arg in op.args)
    if isinstance(op, SequenceOp):
        return all(_is_loop_invariant(item) for item in op.items)
    if isinstance(op, IfOp):
        return all(_is_loop_invariant(part) for part in
                   (op.condition, op.then_branch, op.else_branch))
    if isinstance(op, (LogicalOp, ArithmeticOp, ComparisonOp)):
        return _is_loop_invariant(op.left) and _is_loop_invariant(op.right)
    if isinstance(op, NotOp):
        return _is_loop_invariant(op.operand)
    if isinstance(op, PathOp):
        if not _is_loop_invariant(op.base):
            return False
        return all(_is_loop_invariant(predicate)
                   for step in op.steps
                   for predicate, _pushed in step.predicates)
    if isinstance(op, IndexedPathOp):
        return all(_is_loop_invariant(predicate)
                   for step in op.steps
                   for predicate, _pushed in step.predicates)
    if isinstance(op, CachedSourceOp):
        return True
    # FLWOR, quantifiers and constructors bind or construct — leave them
    # conservatively variant.
    return False


# --------------------------------------------------------------------------- #
# Join-planning analysis helpers
# --------------------------------------------------------------------------- #

def _op_variables(op: Op) -> frozenset[str]:
    """Every variable name referenced anywhere under *op*.

    Over-approximate on purpose: variables bound by nested FLWORs or
    quantifiers are included too, so a source is only ever judged
    *more* dependent than it really is — never less.
    """
    names: set[str] = set()
    stack: list[Op] = [op]
    while stack:
        node = stack.pop()
        if isinstance(node, VarRefOp):
            names.add(node.name)
        elif isinstance(node, PathOp):
            stack.append(node.base)
            for step in node.steps:
                stack.extend(predicate
                             for predicate, _pushed in step.predicates)
        elif isinstance(node, IndexedPathOp):
            for step in node.steps:
                stack.extend(predicate
                             for predicate, _pushed in step.predicates)
        elif isinstance(node, FunctionCallOp):
            stack.extend(node.args)
        elif isinstance(node, SequenceOp):
            stack.extend(node.items)
        elif isinstance(node, IfOp):
            stack.extend((node.condition, node.then_branch,
                          node.else_branch))
        elif isinstance(node, (LogicalOp, ArithmeticOp, ComparisonOp)):
            stack.extend((node.left, node.right))
        elif isinstance(node, NotOp):
            stack.append(node.operand)
        elif isinstance(node, CachedSourceOp):
            stack.append(node.source)
        elif isinstance(node, FLWOROp):
            for _kind, _variable, source in node.clauses:
                stack.append(source)
            if node.where is not None:
                stack.append(node.where)
            stack.extend(key_op for key_op, _descending
                         in node.order_specs)
            stack.append(node.returns)
        elif isinstance(node, JoinGroupOp):
            stack.extend(node.sources)
            stack.extend(node.prefilters)
            for filters in node.source_filters:
                stack.extend(filters)
            for stage in node.stages:
                stack.extend(stage.loop_filters)
        elif isinstance(node, QuantifiedOp):
            stack.extend(source for _variable, source in node.bindings)
            stack.append(node.condition)
        elif isinstance(node, ElementConstructorOp):
            if node.content is not None:
                stack.append(node.content)
    return frozenset(names)


def _binding_kind(op: Op) -> str:
    """What a ``for`` over *op* binds each item to: ``"element"``,
    ``"string"``, ``"atomic"`` (numbers/booleans) or ``"unknown"``."""
    if isinstance(op, CachedSourceOp):
        return _binding_kind(op.source)
    if isinstance(op, DocOp):
        return "element"
    if isinstance(op, (PathOp, IndexedPathOp)) and op.steps:
        return "element" if op.steps[-1].kind == "element" else "string"
    if isinstance(op, LiteralOp):
        return "string" if isinstance(op.value, str) else "atomic"
    if isinstance(op, SequenceOp) and op.items \
            and all(isinstance(item, LiteralOp) for item in op.items):
        if all(isinstance(item.value, str) for item in op.items):
            return "string"
        return "atomic"
    return "unknown"


def _operand_kind(op: Op, env: dict[str, str]) -> str:
    """The atom kind a comparison operand's value atomizes to, given
    the group variables' binding kinds: ``"string"``, ``"number"``,
    ``"bool"`` or ``"unknown"``."""
    if isinstance(op, LiteralOp):
        if isinstance(op.value, bool):
            return "bool"
        if isinstance(op.value, float):
            return "number"
        return "string"
    if isinstance(op, VarRefOp):
        # Elements atomize to their string value.
        if env.get(op.name) in ("element", "string"):
            return "string"
        return "unknown"
    if isinstance(op, (PathOp, IndexedPathOp)):
        # Elements, attributes and text steps all atomize to strings.
        return "string"
    if isinstance(op, SequenceOp):
        kinds = {_operand_kind(item, env) for item in op.items}
        if len(kinds) == 1:
            return kinds.pop()
        return "unknown"
    return "unknown"


def _op_cannot_raise(op: Op, env: dict[str, str]) -> bool:
    """True when evaluating *op* can never raise, with group variables
    bound to the kinds recorded in *env*.

    The per-step :func:`_cannot_raise` covers context-relative
    predicates; this variant reasons about ``$var``-rooted expressions
    for join hoisting.  Doc-rooted paths count as raising — a missing
    document raises :class:`~repro.xquery.errors.XQueryNameError`, and
    hoisted filtering must not be able to hide that.  Unbound-variable
    errors are out of scope: a reference to a genuinely unbound name is
    a broken query, not a plan-dependent behavior this engine defends.
    """
    if isinstance(op, (LiteralOp, VarRefOp)):
        return True
    if isinstance(op, PathOp):
        base = op.base
        if not (isinstance(base, VarRefOp)
                and env.get(base.name) == "element"):
            return False
        for position, step in enumerate(op.steps):
            if step.kind != "element" and position < len(op.steps) - 1:
                # Attribute/text steps yield strings; a further step on
                # an atomic raises.
                return False
            if any(not _cannot_raise(predicate)
                   for predicate, _pushed in step.predicates):
                return False
        return True
    if isinstance(op, ComparisonOp):
        if not (_op_cannot_raise(op.left, env)
                and _op_cannot_raise(op.right, env)):
            return False
        if op.like is not None:
            return True
        left_kind = _operand_kind(op.left, env)
        right_kind = _operand_kind(op.right, env)
        if op.op in ("=", "!=") and "bool" in (left_kind, right_kind):
            # Boolean general comparison takes the (total) effective-
            # boolean-value path on singletons of any kind.
            return "unknown" not in (left_kind, right_kind)
        if left_kind == right_kind and left_kind in ("string", "number"):
            return True
        return False
    if isinstance(op, LogicalOp):
        # and/or take the effective boolean value of each side, which
        # raises on multi-item atomic sequences — require boolean shape.
        return _conjunct_cannot_raise(op.left, env) \
            and _conjunct_cannot_raise(op.right, env)
    if isinstance(op, NotOp):
        return _conjunct_cannot_raise(op.operand, env)
    if isinstance(op, SequenceOp):
        return all(_op_cannot_raise(item, env) for item in op.items)
    return False


def _boolean_shaped(op: Op) -> bool:
    """True when *op* always yields a singleton boolean, so taking its
    effective boolean value cannot raise."""
    if isinstance(op, (ComparisonOp, LogicalOp, NotOp)):
        return True
    return isinstance(op, LiteralOp) and isinstance(op.value, bool)


def _conjunct_cannot_raise(op: Op, env: dict[str, str]) -> bool:
    """Total as a WHERE conjunct: evaluation never raises *and* the
    result is boolean-shaped (its effective boolean value never
    raises either)."""
    return _boolean_shaped(op) and _op_cannot_raise(op, env)


def _split_conjuncts_op(op: Op) -> list[Op]:
    """Flatten a lowered WHERE into its ``and``-conjuncts, in
    evaluation order."""
    if isinstance(op, LogicalOp) and op.op == "and":
        return _split_conjuncts_op(op.left) + _split_conjuncts_op(op.right)
    return [op]


def _join_conjuncts_op(conjuncts: list[Op]) -> Op:
    """Rebuild a left-associated ``and`` chain (the parser's shape)."""
    joined = conjuncts[0]
    for conjunct in conjuncts[1:]:
        joined = LogicalOp("and", joined, conjunct)
    return joined


def _equi_edge(op: Op, positions: dict[str, int]) -> tuple | None:
    """Decompose an equality conjunct into a join edge
    ``(left position, left key op, right position, right key op)`` when
    each operand references exactly one (distinct) group variable."""
    if not isinstance(op, ComparisonOp) or op.op != "=" \
            or op.like is not None:
        return None
    left_names = _op_variables(op.left)
    right_names = _op_variables(op.right)
    if len(left_names) != 1 or len(right_names) != 1:
        return None
    left_var = next(iter(left_names))
    right_var = next(iter(right_names))
    if left_var == right_var:
        return None
    if left_var not in positions or right_var not in positions:
        return None
    return (positions[left_var], op.left, positions[right_var], op.right)


def _var_child_tag(op: Op, variable: str) -> str | None:
    """The tag of a bare ``$variable/child::Tag`` operand, else None."""
    if isinstance(op, PathOp) and isinstance(op.base, VarRefOp) \
            and op.base.name == variable and len(op.steps) == 1:
        step = op.steps[0]
        if step.axis == "child" and step.kind == "element" \
                and step.name != "*" and not step.predicates:
            return step.name
    return None


def _var_comparison_shape(op: ComparisonOp, variable: str) \
        -> tuple[str, str, object] | None:
    """Decompose ``$variable/Tag <op> literal`` (either operand order)
    into ``(tag, normalized op, literal value)``; None when
    unreadable."""
    tag = _var_child_tag(op.left, variable)
    if tag is not None and isinstance(op.right, LiteralOp):
        return tag, op.op, op.right.value
    tag = _var_child_tag(op.right, variable)
    if tag is not None and isinstance(op.left, LiteralOp):
        return tag, _REVERSED_OP.get(op.op, op.op), op.left.value
    return None


# --------------------------------------------------------------------------- #
# The Plan object and compilation entry point
# --------------------------------------------------------------------------- #

class Plan:
    """A compiled query: immutable operator tree + cumulative run stats."""

    def __init__(self, source: str, ast: Expr, root: Op,
                 functions: FunctionRegistry, parse_ns: int,
                 compile_ns: int, rewrites: dict[str, int],
                 perturbed: bool = False,
                 cost_info: dict[int, dict] | None = None,
                 decisions: dict[str, int] | None = None,
                 statistics_fingerprint: str | None = None,
                 joinless: bool = False) -> None:
        self.source = source
        self.ast = ast
        self.root = root
        self.functions = functions
        self.parse_ns = parse_ns
        self.compile_ns = compile_ns
        self.rewrites = dict(rewrites)
        self.perturbed = perturbed
        self.cost_info = cost_info if cost_info is not None else {}
        self.decisions = dict(decisions) if decisions else {}
        self.statistics_fingerprint = statistics_fingerprint
        self.costed = statistics_fingerprint is not None
        self.joinless = joinless
        self._lock = threading.Lock()
        self._fingerprint: str | None = None
        self._identity: str | None = None
        self._explain_fingerprint: str | None = None
        self._last_trace: dict[int, list[int]] | None = None
        self.runs = 0
        self.analyzed_runs = 0
        self.total_exec_ns = 0
        self.total_nodes_visited = 0
        self.total_index_lookups = 0
        self.last_stats: PlanStats | None = None

    @property
    def fingerprint(self) -> str:
        """Stable identity of this plan's *computation*: sha256 over the
        query source and the function registry's fingerprint.

        Two plans compiled from identical source against registries with
        identical contents fingerprint the same, so result-cache entries
        (see :mod:`repro.xquery.results`) survive recompilation; swapping
        a function implementation changes the fingerprint and with it the
        cache key.  Costed plans share the rule-based plan's fingerprint
        on purpose: costed choices are answer-preserving, so their cached
        results are interchangeable.  Memoized — the registry fingerprint
        is itself memoized and a plan's registry never changes after
        compilation.
        """
        if self._fingerprint is None:
            digest = hashlib.sha256(self.source.encode("utf-8"))
            digest.update(b"\x00")
            digest.update(repr(self.functions.fingerprint()).encode("utf-8"))
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    @property
    def identity(self) -> str:
        """Process-independent identity of this plan's computation.

        sha256 over the query source and the registry's *stable*
        fingerprint (``module.qualname`` names, not ``id()``), so two
        interpreter runs — today's collect and last month's committed
        baseline — agree on whether they compiled the same plan.  Costed
        plans additionally mix in the statistics fingerprint: a plan
        whose physical choices were driven by different statistics is a
        different plan.  The perf framework stores this as
        ``plan_fingerprint``; in-process caches keep keying on
        :attr:`fingerprint`.
        """
        if self._identity is None:
            digest = hashlib.sha256(self.source.encode("utf-8"))
            digest.update(b"\x00")
            digest.update(repr(
                self.functions.stable_fingerprint()).encode("utf-8"))
            if self.perturbed:
                digest.update(b"\x00perturbed")
            if self.statistics_fingerprint is not None:
                digest.update(b"\x00stats:")
                digest.update(self.statistics_fingerprint.encode("utf-8"))
            if self.joinless:
                # A costed plan compiled with the join search disabled
                # (the differential reference) is a different plan.
                digest.update(b"\x00joinless")
            self._identity = digest.hexdigest()
        return self._identity

    @property
    def explain_fingerprint(self) -> str:
        """sha256 of the default :meth:`explain` text — a stable hash of
        the chosen operator tree.  Two plans that picked different
        operators (e.g. index-path vs tree-scan, or differently-costed
        step strategies) hash differently even when their query source
        is identical; byte-stability across processes is pinned by a
        differential test."""
        if self._explain_fingerprint is None:
            self._explain_fingerprint = hashlib.sha256(
                self.explain().encode("utf-8")).hexdigest()
        return self._explain_fingerprint

    def execute(self, documents=None, variables=None, *,
                analyze: bool = False) -> Seq:
        """Run the plan against a document set; thread-safe.

        ``analyze=True`` records per-operator actuals (calls, rows,
        inclusive wall time) for :meth:`explain_data`/:meth:`explain`
        ``analyze`` rendering.  The recorded trace is the *last*
        analyzed execution's; results are identical either way.
        """
        context = DynamicContext(documents=_resolver_for(documents),
                                 functions=self.functions,
                                 variables=variables)
        state = _ExecState()
        if analyze:
            state.trace = {}
        started = time.perf_counter_ns()
        result = self.root.run(context, state)
        exec_ns = time.perf_counter_ns() - started
        stats = PlanStats(parse_ns=self.parse_ns,
                          compile_ns=self.compile_ns,
                          exec_ns=exec_ns,
                          nodes_visited=state.nodes_visited,
                          index_lookups=state.index_lookups)
        with self._lock:
            self.runs += 1
            self.total_exec_ns += exec_ns
            self.total_nodes_visited += state.nodes_visited
            self.total_index_lookups += state.index_lookups
            self.last_stats = stats
            if analyze:
                self.analyzed_runs += 1
                self._last_trace = state.trace
        return result

    def _summary(self) -> str:
        summary = " ".join(self.source.split())
        if len(summary) > 60:
            summary = summary[:57] + "..."
        return summary

    def explain_data(self, analyze: bool = False) -> dict:
        """The structured explain tree: a stable, JSON-serializable dict.

        Top level: query summary and full source, rewrite counters,
        planner decision counters, perturbation/costing flags and the
        statistics fingerprint the costed choices were derived from.
        ``root`` is the operator tree — per node its ``kind`` slug, the
        rendered ``label``, an ``estimated`` block where the planner
        recorded one (row estimate, chosen strategy, cost of the chosen
        and rejected alternatives, predicate selectivities) and, with
        ``analyze=True``, an ``actual`` block (calls, rows, inclusive
        wall ns) from the most recent ``execute(..., analyze=True)``.

        ``analyze=True`` requires a prior analyzed execution — there is
        nothing actual to report otherwise.
        """
        trace = None
        if analyze:
            with self._lock:
                trace = self._last_trace
            if trace is None:
                raise ValueError(
                    "no analyzed execution recorded; run "
                    "plan.execute(documents, analyze=True) first")
        cost_info = self.cost_info

        def walk(node: _Node) -> dict:
            entry: dict = {"kind": node.kind, "label": node.label}
            ref = node.ref
            if ref is not None:
                estimated = cost_info.get(id(ref))
                if estimated is not None:
                    entry["estimated"] = estimated
                if trace is not None:
                    recorded = trace.get(id(ref))
                    if recorded is not None:
                        entry["actual"] = {
                            "calls": recorded[0],
                            "rows": recorded[1],
                            "wall_ns": recorded[2],
                        }
            entry["children"] = [walk(child) for child in node.children]
            return entry

        return {
            "version": 1,
            "source": self._summary(),
            "xquery": self.source,
            "perturbed": self.perturbed,
            "costed": self.costed,
            "statistics_fingerprint": self.statistics_fingerprint,
            "rewrites": dict(sorted(self.rewrites.items())),
            "decisions": dict(sorted(self.decisions.items())),
            "analyzed": trace is not None,
            "root": walk(self.root.explain_node()),
        }

    def explain(self, analyze: bool = False, format: str = "text") -> str:
        """Deterministic rendering of :meth:`explain_data`.

        The default ``(analyze=False, format="text")`` output is
        golden-pinned and byte-identical across processes; ``analyze``
        appends per-operator actuals, ``format="json"`` serializes the
        data tree instead.
        """
        data = self.explain_data(analyze=analyze)
        if format == "json":
            return json.dumps(data, indent=2)
        if format != "text":
            raise ValueError(f"unknown explain format: {format!r}")
        rewrites = ", ".join(f"{name}={count}"
                             for name, count in data["rewrites"].items())
        lines = [f"plan for: {data['source']}"]
        if data["perturbed"]:
            # Only perturbed plans carry the marker line, so the twelve
            # golden explain files stay byte-identical.
            lines.append("perturbed: index-paths disabled")
        lines.append(f"rewrites: {rewrites}")
        if data["costed"]:
            decisions = ", ".join(f"{name}={count}" for name, count
                                  in data["decisions"].items())
            lines.append(f"costed: {decisions}")
        _render_data(data["root"], 0, lines, analyze)
        return "\n".join(lines)

    def stats_snapshot(self) -> dict:
        """Cumulative counters for ``/api/stats``."""
        with self._lock:
            runs = self.runs
            total_exec_ns = self.total_exec_ns
            nodes = self.total_nodes_visited
            lookups = self.total_index_lookups
        return {
            "runs": runs,
            "parse_ns": self.parse_ns,
            "compile_ns": self.compile_ns,
            "total_exec_ns": total_exec_ns,
            "avg_exec_ns": total_exec_ns // runs if runs else 0,
            "nodes_visited": nodes,
            "index_lookups": lookups,
        }

    def __repr__(self) -> str:
        summary = " ".join(self.source.split())
        if len(summary) > 40:
            summary = summary[:37] + "..."
        return f"Plan({summary!r}, runs={self.runs})"


def compile_query(source: str,
                  functions: FunctionRegistry | None = None, *,
                  perturb: bool = False,
                  statistics: "Statistics | None" = None,
                  join_search: bool = True) -> Plan:
    """Compile XQuery text to a :class:`Plan` (no caching here; see
    :mod:`repro.xquery.plan_cache`).

    ``statistics`` (see :func:`repro.xquery.stats.collect_statistics`)
    enables the cost-based planning pass; without it the plan is the
    rule-based plan, bit for bit.  ``perturb=True`` is a test-only
    toggle that disables the index-path rewrite, yielding a deliberately
    different (and slower) plan; it wins over ``statistics`` — a
    perturbed plan is the forced-tree-scan reference the costed path is
    differentially tested against.  The perf framework uses it to prove
    the regression gate fires; perturbed plans are never cached, so
    production paths cannot pick one up.

    ``join_search=False`` disables only the join-order/hash-join pass of
    the costed planner (meaningless without ``statistics``): the result
    is the pre-join costed plan — the forced-nested-loop reference the
    join execution engine is differentially tested against.
    """
    registry = functions if functions is not None else default_registry()
    started = time.perf_counter_ns()
    ast_root = parse_query(source)
    parse_ns = time.perf_counter_ns() - started

    started = time.perf_counter_ns()
    folded, folds = fold_constants(ast_root)
    lowerer = _Lowerer(registry, index_paths=not perturb)
    root = lowerer.lower(folded)
    cost_info = None
    decisions = None
    statistics_fingerprint = None
    joinless = False
    if statistics is not None and not perturb:
        planner = _CostPlanner(statistics, join_search=join_search)
        root = planner.walk(root)
        cost_info = planner.cost_info
        decisions = planner.decisions
        statistics_fingerprint = statistics.fingerprint
        joinless = not join_search
    compile_ns = time.perf_counter_ns() - started
    return Plan(source, folded, root, registry, parse_ns, compile_ns,
                rewrites={
                    "constant-fold": folds,
                    "where-to-predicate": lowerer.where_fused,
                    "index-paths": lowerer.indexed_paths,
                },
                perturbed=perturb,
                cost_info=cost_info,
                decisions=decisions,
                statistics_fingerprint=statistics_fingerprint,
                joinless=joinless)


__all__ = [
    "Op",
    "Plan",
    "PlanStats",
    "compile_query",
]
