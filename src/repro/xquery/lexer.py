"""Hand-written lexer for the XQuery subset.

Keywords are recognized case-insensitively because the THALIA paper prints
its benchmark queries with uppercase clause keywords (``FOR``/``WHERE``/
``RETURN``) while XQuery proper is lowercase; accepting both lets the paper
text run verbatim.

Names may contain a single namespace colon (``fn:contains``, ``udf:to-24h``)
and the characters needed for the catalog element names (dots and hyphens).
"""

from __future__ import annotations

from .errors import XQuerySyntaxError
from .tokens import (
    EOF,
    KEYWORD,
    KEYWORDS,
    NAME,
    NUMBER,
    STRING,
    SYMBOL,
    SYMBOLS,
    VARIABLE,
    Token,
)

_NAME_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_NAME_CONT = _NAME_START | set("0123456789.-")


def tokenize(source: str) -> list[Token]:
    """Tokenize *source*, returning a token list terminated by EOF.

    Raises:
        XQuerySyntaxError: on unterminated strings or unexpected characters.
    """
    tokens: list[Token] = []
    i = 0
    length = len(source)
    while i < length:
        ch = source[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "(" and source.startswith("(:", i):
            i = _skip_comment(source, i)
            continue
        if ch in "'\"":
            token, i = _read_string(source, i)
            tokens.append(token)
            continue
        if ch == "$":
            token, i = _read_variable(source, i)
            tokens.append(token)
            continue
        if ch.isdigit():
            token, i = _read_number(source, i)
            tokens.append(token)
            continue
        if ch in _NAME_START:
            token, i = _read_name(source, i)
            tokens.append(token)
            continue
        symbol = _match_symbol(source, i)
        if symbol is not None:
            tokens.append(Token(SYMBOL, symbol, i))
            i += len(symbol)
            continue
        raise XQuerySyntaxError(f"unexpected character {ch!r}", source, i)
    tokens.append(Token(EOF, "", length))
    return tokens


def _skip_comment(source: str, start: int) -> int:
    """Skip a possibly nested ``(: ... :)`` comment; return the new offset."""
    depth = 0
    i = start
    while i < len(source):
        if source.startswith("(:", i):
            depth += 1
            i += 2
        elif source.startswith(":)", i):
            depth -= 1
            i += 2
            if depth == 0:
                return i
        else:
            i += 1
    raise XQuerySyntaxError("unterminated comment", source, start)


def _read_string(source: str, start: int) -> tuple[Token, int]:
    quote = source[start]
    i = start + 1
    parts: list[str] = []
    while i < len(source):
        ch = source[i]
        if ch == quote:
            # XQuery escapes a quote by doubling it.
            if i + 1 < len(source) and source[i + 1] == quote:
                parts.append(quote)
                i += 2
                continue
            return Token(STRING, "".join(parts), start), i + 1
        parts.append(ch)
        i += 1
    raise XQuerySyntaxError("unterminated string literal", source, start)


def _read_variable(source: str, start: int) -> tuple[Token, int]:
    i = start + 1
    if i >= len(source) or source[i] not in _NAME_START:
        raise XQuerySyntaxError("'$' must be followed by a name", source, start)
    begin = i
    while i < len(source) and source[i] in _NAME_CONT:
        i += 1
    return Token(VARIABLE, source[begin:i], start), i


def _read_number(source: str, start: int) -> tuple[Token, int]:
    i = start
    seen_dot = False
    while i < len(source):
        ch = source[i]
        if ch.isdigit():
            i += 1
        elif (ch == "." and not seen_dot and i + 1 < len(source)
              and source[i + 1].isdigit()):
            seen_dot = True
            i += 1
        else:
            break
    return Token(NUMBER, source[start:i], start), i


def _read_name(source: str, start: int) -> tuple[Token, int]:
    i = start
    while i < len(source) and source[i] in _NAME_CONT:
        i += 1
    # Allow one namespace colon if directly followed by a name character
    # and not part of the ':=' symbol.
    if (i < len(source) and source[i] == ":"
            and i + 1 < len(source) and source[i + 1] in _NAME_START):
        i += 1
        while i < len(source) and source[i] in _NAME_CONT:
            i += 1
    word = source[start:i]
    if word.lower() in KEYWORDS and ":" not in word:
        return Token(KEYWORD, word.lower(), start), i
    return Token(NAME, word, start), i


def _match_symbol(source: str, i: int) -> str | None:
    for symbol in SYMBOLS:
        if source.startswith(symbol, i):
            return symbol
    return None
