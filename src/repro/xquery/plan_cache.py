"""A bounded LRU cache of compiled query plans.

Keyed by ``(source, registry fingerprint, statistics fingerprint)`` so
the same query text compiled against different user-defined function
sets (e.g. the warehouse loader's UDFs) — or costed against different
statistics — gets distinct entries, while re-running a benchmark query
through the default builtins hits the cache every time.

The process-wide :func:`shared_plan_cache` is what the runner, the
claim validator and the CLI use; the server keeps its own instance so
``/api/stats`` reports request-driven hit rates untainted by batch runs.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from .functions import FunctionRegistry, default_registry
from .plan import Plan, compile_query


class PlanCache:
    """Thread-safe LRU mapping query text (+ function registry) to
    compiled :class:`~repro.xquery.plan.Plan` objects."""

    def __init__(self, maxsize: int = 256) -> None:
        if maxsize < 1:
            raise ValueError("PlanCache maxsize must be >= 1")
        self.maxsize = maxsize
        self._lock = threading.Lock()
        self._plans: OrderedDict[tuple, Plan] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, source: str,
            functions: FunctionRegistry | None = None,
            statistics=None) -> Plan:
        """The cached plan for *source*, compiling on a miss.

        *statistics* (a :class:`repro.xquery.stats.Statistics`) enables
        cost-based planning and becomes part of the cache key — a plan
        costed against one statistics snapshot is never served for
        another (or for an un-costed request).

        Compilation happens outside the lock; when two threads race on
        the same miss the first stored plan wins so cumulative stats
        stay on one object.
        """
        registry = functions if functions is not None else default_registry()
        key = (source, registry.fingerprint(),
               statistics.fingerprint if statistics is not None else None)
        with self._lock:
            plan = self._plans.get(key)
            if plan is not None:
                self.hits += 1
                self._plans.move_to_end(key)
                return plan
            self.misses += 1
        compiled = compile_query(source, registry, statistics=statistics)
        with self._lock:
            existing = self._plans.get(key)
            if existing is not None:
                self._plans.move_to_end(key)
                return existing
            self._plans[key] = compiled
            while len(self._plans) > self.maxsize:
                self._plans.popitem(last=False)
                self.evictions += 1
        return compiled

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)

    def __contains__(self, source: str) -> bool:
        with self._lock:
            return any(key[0] == source for key in self._plans)

    def clear(self) -> None:
        with self._lock:
            self._plans.clear()
            self.hits = 0
            self.misses = 0
            self.evictions = 0

    def entries(self) -> list[Plan]:
        """Cached plans, least- to most-recently used."""
        with self._lock:
            return list(self._plans.values())

    def stats(self) -> dict:
        with self._lock:
            lookups = self.hits + self.misses
            return {
                "size": len(self._plans),
                "maxsize": self.maxsize,
                "lookups": lookups,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "hit_rate": round(self.hits / lookups, 4) if lookups else 0.0,
            }


_SHARED = PlanCache()


def shared_plan_cache() -> PlanCache:
    """The process-wide cache used by the runner, validator and CLI."""
    return _SHARED


__all__ = ["PlanCache", "shared_plan_cache"]
