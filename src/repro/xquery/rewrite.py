"""Semantics-preserving AST rewrites used by the query planner.

Two rewrite families run before lowering (:mod:`repro.xquery.plan`):

* **Constant folding** — comparisons, arithmetic, logicals, ``not`` and
  ``if`` over literal operands are evaluated once at compile time *with
  the interpreter itself*, so a folded node is equivalent by
  construction.  Folding is abandoned (the node kept) whenever the
  interpreter would raise, preserving run-time error behavior.

* **WHERE-to-predicate fusion** — for the paper-shaped FLWOR
  ``for $b in path where C($b) return R``, conjuncts of ``C`` that are
  provably boolean-valued and focus-free are rewritten to step
  predicates on the binding path (``$b`` becomes ``.``), letting the
  plan filter during the path scan instead of materializing every
  binding first.  Multi-clause FLWORs fuse onto the innermost ``for``
  when every conjunct references only that binding — conjuncts spanning
  bindings are join predicates and stay in WHERE for the join planner.
  Fusion is all-or-nothing per FLWOR so the conjunct short-circuit
  order — and therefore which error surfaces first — is unchanged.

Every rewrite is conservative: when a precondition cannot be proven the
expression is left alone, keeping ``Plan.execute`` byte-identical to the
tree-walking evaluator.
"""

from __future__ import annotations

from dataclasses import replace

from .ast import (
    Arithmetic,
    Comparison,
    ContextItem,
    ElementConstructor,
    Expr,
    FLWOR,
    ForClause,
    FunctionCall,
    IfExpr,
    LetClause,
    Literal,
    Logical,
    Not,
    OrderSpec,
    PathExpr,
    Quantified,
    Sequence,
    Step,
    VarRef,
)
from .errors import XQueryError

#: Builtins guaranteed to return a single boolean — safe as predicates
#: (a single-float predicate would switch to position-filter semantics).
_BOOLEAN_FUNCTIONS = frozenset({
    "contains", "starts-with", "ends-with", "matches",
    "empty", "exists", "boolean", "not", "true", "false",
})

#: Builtins whose value depends on the predicate focus; a condition using
#: them cannot move from a WHERE clause into a predicate.
_FOCUS_FUNCTIONS = frozenset({"position", "last"})


def fold_constants(node: Expr) -> tuple[Expr, int]:
    """Bottom-up constant folding; returns ``(rewritten, fold_count)``."""
    from .context import DynamicContext
    from .evaluator import evaluate

    folds = 0
    fold_context = DynamicContext()

    def is_literal(expr: Expr) -> bool:
        return isinstance(expr, Literal)

    def try_fold(expr: Expr) -> Expr:
        nonlocal folds
        try:
            value = evaluate(expr, fold_context)
        except XQueryError:
            return expr
        if len(value) == 1 and isinstance(value[0], (str, float, bool)):
            folds += 1
            return Literal(value[0])
        return expr

    def walk(expr: Expr) -> Expr:
        nonlocal folds
        if isinstance(expr, (Literal, VarRef, ContextItem)):
            return expr
        if isinstance(expr, FunctionCall):
            return FunctionCall(expr.name,
                                tuple(walk(arg) for arg in expr.args))
        if isinstance(expr, PathExpr):
            steps = tuple(
                replace(step,
                        predicates=tuple(walk(p) for p in step.predicates))
                for step in expr.steps)
            return PathExpr(walk(expr.base), steps)
        if isinstance(expr, Comparison):
            node = Comparison(expr.op, walk(expr.left), walk(expr.right))
            if is_literal(node.left) and is_literal(node.right):
                return try_fold(node)
            return node
        if isinstance(expr, Arithmetic):
            node = Arithmetic(expr.op, walk(expr.left), walk(expr.right))
            if is_literal(node.left) and is_literal(node.right):
                return try_fold(node)
            return node
        if isinstance(expr, Logical):
            left = walk(expr.left)
            right = walk(expr.right)
            node = Logical(expr.op, left, right)
            if is_literal(left) and is_literal(right):
                return try_fold(node)
            # Short-circuit folding: the interpreter never evaluates the
            # right operand in these cases, so dropping it is exact.
            if is_literal(left):
                try:
                    decided = evaluate(Logical(expr.op, left, Literal(True)),
                                       fold_context)
                    other = evaluate(Logical(expr.op, left, Literal(False)),
                                     fold_context)
                except XQueryError:
                    return node
                if decided == other and len(decided) == 1:
                    folds += 1
                    return Literal(decided[0])
            return node
        if isinstance(expr, Not):
            node = Not(walk(expr.operand))
            if is_literal(node.operand):
                return try_fold(node)
            return node
        if isinstance(expr, Sequence):
            return Sequence(tuple(walk(item) for item in expr.items))
        if isinstance(expr, IfExpr):
            condition = walk(expr.condition)
            then_branch = walk(expr.then_branch)
            else_branch = walk(expr.else_branch)
            if is_literal(condition):
                try:
                    taken = evaluate(IfExpr(condition, Literal("t"),
                                            Literal("e")), fold_context)
                except XQueryError:
                    return IfExpr(condition, then_branch, else_branch)
                folds += 1
                return then_branch if taken == ["t"] else else_branch
            return IfExpr(condition, then_branch, else_branch)
        if isinstance(expr, FLWOR):
            clauses = tuple(
                ForClause(c.variable, walk(c.source))
                if isinstance(c, ForClause)
                else LetClause(c.variable, walk(c.value))
                for c in expr.clauses)
            where = walk(expr.where) if expr.where is not None else None
            specs = tuple(OrderSpec(walk(s.key), s.descending)
                          for s in expr.order_specs)
            return FLWOR(clauses, where, walk(expr.returns), specs)
        if isinstance(expr, Quantified):
            bindings = tuple(ForClause(b.variable, walk(b.source))
                             for b in expr.bindings)
            return Quantified(expr.kind, bindings, walk(expr.condition))
        if isinstance(expr, ElementConstructor):
            content = walk(expr.content) if expr.content is not None else None
            return ElementConstructor(expr.name, content)
        return expr  # pragma: no cover - all node types handled above

    return walk(node), folds


# --------------------------------------------------------------------------- #
# WHERE-to-predicate fusion
# --------------------------------------------------------------------------- #

def split_conjuncts(expr: Expr) -> list[Expr]:
    """Flatten a left-associated ``and`` tree into its conjuncts."""
    if isinstance(expr, Logical) and expr.op == "and":
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]


def join_conjuncts(conjuncts: list[Expr]) -> Expr:
    joined = conjuncts[0]
    for conjunct in conjuncts[1:]:
        joined = Logical("and", joined, conjunct)
    return joined


def _contains_forbidden(expr: Expr) -> bool:
    """Nodes that make a WHERE conjunct unsafe to move into a predicate:
    existing focus references (``.``, ``position()``, ``last()``), and
    binding constructs that could shadow the fused variable."""
    if isinstance(expr, ContextItem):
        return True
    if isinstance(expr, (FLWOR, Quantified)):
        return True
    if isinstance(expr, FunctionCall):
        bare = expr.name.removeprefix("fn:")
        if bare in _FOCUS_FUNCTIONS:
            return True
        return any(_contains_forbidden(arg) for arg in expr.args)
    if isinstance(expr, PathExpr):
        if _contains_forbidden(expr.base):
            return True
        return any(_contains_forbidden(p)
                   for step in expr.steps for p in step.predicates)
    if isinstance(expr, (Comparison, Arithmetic, Logical)):
        return _contains_forbidden(expr.left) or \
            _contains_forbidden(expr.right)
    if isinstance(expr, Not):
        return _contains_forbidden(expr.operand)
    if isinstance(expr, Sequence):
        return any(_contains_forbidden(item) for item in expr.items)
    if isinstance(expr, IfExpr):
        return any(_contains_forbidden(part) for part in
                   (expr.condition, expr.then_branch, expr.else_branch))
    if isinstance(expr, ElementConstructor):
        return expr.content is not None and _contains_forbidden(expr.content)
    return False


def _is_boolean_shaped(expr: Expr) -> bool:
    """True when *expr* always evaluates to a single boolean, so using it
    as a predicate can never trip the position-filter rule."""
    if isinstance(expr, (Comparison, Logical, Not)):
        return True
    if isinstance(expr, FunctionCall):
        return expr.name.removeprefix("fn:") in _BOOLEAN_FUNCTIONS
    if isinstance(expr, Literal):
        return isinstance(expr.value, bool)
    return False


def conjunct_is_pushable(conjunct: Expr) -> bool:
    """Can this WHERE conjunct become a path-step predicate?"""
    return _is_boolean_shaped(conjunct) and not _contains_forbidden(conjunct)


def expr_variables(expr: Expr) -> frozenset[str]:
    """Every ``$name`` referenced anywhere in *expr* (over-approximate:
    variables bound by nested FLWOR/quantifier clauses are included, which
    only ever makes callers more conservative)."""
    names: set[str] = set()

    def walk(node: Expr) -> None:
        if isinstance(node, VarRef):
            names.add(node.name)
        elif isinstance(node, FunctionCall):
            for arg in node.args:
                walk(arg)
        elif isinstance(node, PathExpr):
            walk(node.base)
            for step in node.steps:
                for predicate in step.predicates:
                    walk(predicate)
        elif isinstance(node, (Comparison, Arithmetic, Logical)):
            walk(node.left)
            walk(node.right)
        elif isinstance(node, Not):
            walk(node.operand)
        elif isinstance(node, Sequence):
            for item in node.items:
                walk(item)
        elif isinstance(node, IfExpr):
            walk(node.condition)
            walk(node.then_branch)
            walk(node.else_branch)
        elif isinstance(node, FLWOR):
            for clause in node.clauses:
                walk(clause.source if isinstance(clause, ForClause)
                     else clause.value)
            if node.where is not None:
                walk(node.where)
            for spec in node.order_specs:
                walk(spec.key)
            walk(node.returns)
        elif isinstance(node, Quantified):
            for binding in node.bindings:
                walk(binding.source)
            walk(node.condition)
        elif isinstance(node, ElementConstructor):
            if node.content is not None:
                walk(node.content)

    walk(expr)
    return frozenset(names)


def substitute_variable(expr: Expr, variable: str) -> Expr:
    """Rewrite every ``$variable`` reference in *expr* to ``.``."""
    def walk(node: Expr) -> Expr:
        if isinstance(node, VarRef):
            return ContextItem() if node.name == variable else node
        if isinstance(node, (Literal, ContextItem)):
            return node
        if isinstance(node, FunctionCall):
            return FunctionCall(node.name, tuple(walk(a) for a in node.args))
        if isinstance(node, PathExpr):
            steps = tuple(
                replace(step,
                        predicates=tuple(walk(p) for p in step.predicates))
                for step in node.steps)
            return PathExpr(walk(node.base), steps)
        if isinstance(node, Comparison):
            return Comparison(node.op, walk(node.left), walk(node.right))
        if isinstance(node, Arithmetic):
            return Arithmetic(node.op, walk(node.left), walk(node.right))
        if isinstance(node, Logical):
            return Logical(node.op, walk(node.left), walk(node.right))
        if isinstance(node, Not):
            return Not(walk(node.operand))
        if isinstance(node, Sequence):
            return Sequence(tuple(walk(item) for item in node.items))
        if isinstance(node, IfExpr):
            return IfExpr(walk(node.condition), walk(node.then_branch),
                          walk(node.else_branch))
        if isinstance(node, ElementConstructor):
            content = walk(node.content) if node.content is not None else None
            return ElementConstructor(node.name, content)
        return node  # pragma: no cover - FLWOR/Quantified are forbidden
    return walk(expr)


def fuse_where(flwor: FLWOR) -> tuple[FLWOR, tuple[Expr, ...], int]:
    """Fuse a FLWOR's WHERE clause into the innermost binding path.

    Returns ``(rewritten flwor, pushed predicates, fused clause index)``
    (``-1`` when nothing fused); pushed predicates are already rewritten
    to use ``.``.  The WHERE fuses onto the *last* clause, which must be
    a ``for`` over a path ending in an element step.  In the
    multi-clause shape every conjunct must additionally reference, among
    this FLWOR's own bindings, only the innermost variable: a conjunct
    touching an outer binding is a join predicate and must stay in WHERE
    where the cost-based join planner can see it.  Fusion remains
    all-or-nothing over the conjuncts, so the conjunct short-circuit
    order — including which conjunct first raises a type error — is
    identical to the interpreter's.
    """
    if flwor.where is None or not flwor.clauses:
        return flwor, (), -1
    position = len(flwor.clauses) - 1
    clause = flwor.clauses[position]
    if not isinstance(clause, ForClause):
        return flwor, (), -1
    source = clause.source
    if not isinstance(source, PathExpr) or not source.steps:
        return flwor, (), -1
    last_step = source.steps[-1]
    if last_step.kind != "element":
        return flwor, (), -1
    conjuncts = split_conjuncts(flwor.where)
    if not all(conjunct_is_pushable(c) for c in conjuncts):
        return flwor, (), -1
    if position:
        outer = {c.variable for c in flwor.clauses[:position]}
        outer.discard(clause.variable)
        if any(expr_variables(conjunct) & outer for conjunct in conjuncts):
            return flwor, (), -1
    pushed = tuple(substitute_variable(c, clause.variable)
                   for c in conjuncts)
    fused_step = Step(last_step.axis, last_step.kind, last_step.name,
                      last_step.predicates + pushed)
    fused_source = PathExpr(source.base, source.steps[:-1] + (fused_step,))
    fused = FLWOR(
        flwor.clauses[:position]
        + (ForClause(clause.variable, fused_source),),
        None, flwor.returns, flwor.order_specs)
    return fused, pushed, position
