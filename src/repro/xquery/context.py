"""Evaluation contexts for the XQuery subset engine.

The *dynamic context* carries variable bindings, the function registry, the
document resolver (``doc()``) and the focus (context item + position) used
inside path predicates. Contexts are immutable from the evaluator's point of
view: binding a variable or shifting the focus produces a child context, so
nested FLWOR iterations cannot leak bindings into one another.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping

from ..xmlmodel import XmlDocument, XmlElement
from .errors import XQueryNameError
from .functions import FunctionRegistry, builtin_registry
from .runtime import Item, Seq

if TYPE_CHECKING:  # pragma: no cover
    pass


class DocumentNode(XmlElement):
    """The document node ``doc()`` returns.

    XQuery's ``doc("cmu.xml")/cmu/Course`` first steps *to* the root
    element, so ``doc()`` must yield a node whose single child is the root
    — not the root itself. The reserved ``#document`` tag never collides
    with a real element name (names cannot start with ``#``); the slots are
    assigned directly because the tag deliberately fails name validation.
    """

    def __init__(self, root: XmlElement) -> None:
        self.tag = "#document"
        self.attrib = {}
        self.children = [root]


class DocumentResolver:
    """Resolves ``doc("name")`` URIs against a set of testbed documents.

    Names are matched with and without an ``.xml`` suffix, so the paper's
    ``doc("cmu.xml")`` and the terser ``doc("cmu")`` both work.
    """

    def __init__(self, documents: Mapping[str, XmlDocument] | None = None) -> None:
        self._documents: dict[str, XmlDocument] = {}
        self._nodes: dict[str, DocumentNode] = {}
        if documents:
            for name, document in documents.items():
                self.add(name, document)

    def add(self, name: str, document: XmlDocument) -> None:
        key = self._normalize(name)
        self._documents[key] = document
        self._nodes[key] = DocumentNode(document.root)

    @staticmethod
    def _normalize(name: str) -> str:
        name = name.strip().lower()
        if name.endswith(".xml"):
            name = name[:-4]
        return name

    def resolve(self, name: str) -> XmlElement:
        key = self._normalize(name)
        try:
            return self._nodes[key]
        except KeyError:
            known = ", ".join(sorted(self._documents)) or "<none>"
            raise XQueryNameError(
                f"unknown document {name!r}; known documents: {known}"
            ) from None

    def index(self, name: str):
        """The resolved document's lazily-built
        :class:`~repro.xmlmodel.indexes.DocumentIndex`.

        The index lives on the :class:`~repro.xmlmodel.XmlDocument`
        itself, so it survives this resolver and is shared by every
        plan execution touching the same document.
        """
        key = self._normalize(name)
        try:
            return self._documents[key].index()
        except KeyError:
            known = ", ".join(sorted(self._documents)) or "<none>"
            raise XQueryNameError(
                f"unknown document {name!r}; known documents: {known}"
            ) from None

    def names(self) -> list[str]:
        return sorted(self._documents)

    def __contains__(self, name: str) -> bool:
        return self._normalize(name) in self._documents


class DynamicContext:
    """Variable bindings + focus + document resolver + functions."""

    __slots__ = ("_variables", "functions", "documents",
                 "context_item", "context_position", "context_size")

    def __init__(self,
                 documents: DocumentResolver | Mapping[str, XmlDocument] | None = None,
                 functions: FunctionRegistry | None = None,
                 variables: Mapping[str, Seq] | None = None) -> None:
        if isinstance(documents, DocumentResolver):
            self.documents = documents
        else:
            self.documents = DocumentResolver(documents)
        self.functions = functions if functions is not None else builtin_registry()
        self._variables: dict[str, Seq] = dict(variables) if variables else {}
        self.context_item: Item | None = None
        self.context_position: int = 0
        self.context_size: int = 0

    # -- variables ------------------------------------------------------- #

    def bind(self, name: str, value: Seq) -> "DynamicContext":
        """Child context with *name* bound to *value*."""
        child = self._clone()
        child._variables[name] = value
        return child

    def lookup(self, name: str) -> Seq:
        try:
            return self._variables[name]
        except KeyError:
            raise XQueryNameError(f"unbound variable ${name}") from None

    # -- focus ----------------------------------------------------------- #

    def with_focus(self, item: Item, position: int, size: int) -> "DynamicContext":
        """Child context focused on *item* (for predicate evaluation)."""
        child = self._clone()
        child.context_item = item
        child.context_position = position
        child.context_size = size
        return child

    # -- documents --------------------------------------------------------#

    def resolve_document(self, name: str) -> XmlElement:
        return self.documents.resolve(name)

    def _clone(self) -> "DynamicContext":
        child = DynamicContext.__new__(DynamicContext)
        child.documents = self.documents
        child.functions = self.functions
        child._variables = dict(self._variables)
        child.context_item = self.context_item
        child.context_position = self.context_position
        child.context_size = self.context_size
        return child
