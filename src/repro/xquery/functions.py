"""Function library for the XQuery subset.

Functions receive the dynamic evaluation context plus one *sequence* per
argument and return a sequence. The registry is copy-on-extend so that an
integration system can register its user-defined functions (the paper's
"external functions", which the scoring function charges complexity points
for) without mutating the shared builtins.
"""

from __future__ import annotations

import re
from typing import TYPE_CHECKING, Callable, Iterable

from .errors import XQueryNameError, XQueryTypeError
from .runtime import (
    Seq,
    atomize,
    effective_boolean_value,
    one_string,
    singleton,
    string_value,
    to_number,
)

if TYPE_CHECKING:  # pragma: no cover
    from .context import DynamicContext

XQueryFunction = Callable[["DynamicContext", list[Seq]], Seq]


class FunctionRegistry:
    """Name → implementation map with arity checking.

    Arity may be an int, a tuple of accepted ints, or a ``(min, None)``
    tuple meaning "at least min".
    """

    def __init__(self) -> None:
        self._functions: dict[str, tuple[XQueryFunction, object]] = {}
        self._fingerprint: tuple | None = None
        self._stable_fingerprint: tuple | None = None

    def register(self, name: str, fn: XQueryFunction,
                 arity: object = 1) -> None:
        """Register *fn* under *name* (and without its namespace prefix)."""
        self._functions[name] = (fn, arity)
        self._fingerprint = None
        self._stable_fingerprint = None

    def copy(self) -> "FunctionRegistry":
        dup = FunctionRegistry()
        dup._functions = dict(self._functions)
        dup._fingerprint = self._fingerprint
        dup._stable_fingerprint = self._stable_fingerprint
        return dup

    def fingerprint(self) -> tuple:
        """A hashable token identifying this registry's *contents*.

        Two registries holding the same (name → implementation) entries
        fingerprint identically, so independently-built copies of the
        builtin registry share plan-cache entries; registering a different
        implementation under an existing name changes the fingerprint and
        therefore the cache key.

        Memoized so cache lookups keyed on it (PlanCache's hot path, the
        ResultCache's plan fingerprints) cost a dict probe, not a sort;
        :meth:`register` invalidates the memo.
        """
        if self._fingerprint is None:
            self._fingerprint = tuple(sorted(
                (name, id(fn))
                for name, (fn, _arity) in self._functions.items()))
        return self._fingerprint

    def stable_fingerprint(self) -> tuple:
        """Like :meth:`fingerprint`, but reproducible across processes.

        Implementations are named by ``module.qualname`` instead of
        ``id()``, so two interpreter runs that register the same functions
        agree on the token.  This is the identity the perf framework
        stamps into snapshots (:mod:`repro.perf`): a committed baseline
        must compare equal to a fresh collect on another machine.  It is
        deliberately *not* the cache key — distinct closures can share a
        qualname, and caches must never conflate them — so
        :meth:`fingerprint` keeps keying the plan and result caches.
        """
        if self._stable_fingerprint is None:
            self._stable_fingerprint = tuple(sorted(
                (name, f"{fn.__module__}.{fn.__qualname__}", repr(arity))
                for name, (fn, arity) in self._functions.items()))
        return self._stable_fingerprint

    def resolves_to(self, name: str, fn: "XQueryFunction") -> bool:
        """True when calling *name* would dispatch to exactly *fn*."""
        entry = self._resolve(name)
        return entry is not None and entry[0] is fn

    def names(self) -> list[str]:
        return sorted(self._functions)

    def __contains__(self, name: str) -> bool:
        return self._resolve(name) is not None

    def _resolve(self, name: str) -> tuple[XQueryFunction, object] | None:
        if name in self._functions:
            return self._functions[name]
        # Accept the fn: prefix for builtins: fn:contains == contains.
        if name.startswith("fn:") and name[3:] in self._functions:
            return self._functions[name[3:]]
        return None

    def call(self, context: "DynamicContext", name: str,
             args: list[Seq]) -> Seq:
        entry = self._resolve(name)
        if entry is None:
            raise XQueryNameError(f"unknown function: {name}()")
        fn, arity = entry
        self._check_arity(name, arity, len(args))
        return fn(context, args)

    @staticmethod
    def _check_arity(name: str, arity: object, count: int) -> None:
        if isinstance(arity, int):
            if count != arity:
                raise XQueryTypeError(
                    f"{name}() expects {arity} argument(s), got {count}")
            return
        if isinstance(arity, tuple):
            low, high = arity
            if high is None:
                if count < low:
                    raise XQueryTypeError(
                        f"{name}() expects at least {low} argument(s), "
                        f"got {count}")
                return
            if count not in range(low, high + 1):
                raise XQueryTypeError(
                    f"{name}() expects {low}..{high} argument(s), got {count}")


# --------------------------------------------------------------------------- #
# Builtin implementations
# --------------------------------------------------------------------------- #

def _fn_doc(context: "DynamicContext", args: list[Seq]) -> Seq:
    name = one_string(args[0], "doc()")
    return [context.resolve_document(name)]


def _fn_contains(context: "DynamicContext", args: list[Seq]) -> Seq:
    haystack = one_string(args[0], "contains()") if args[0] else ""
    needle = one_string(args[1], "contains()")
    return [needle in haystack]


def _fn_starts_with(context: "DynamicContext", args: list[Seq]) -> Seq:
    text = one_string(args[0], "starts-with()") if args[0] else ""
    return [text.startswith(one_string(args[1], "starts-with()"))]


def _fn_ends_with(context: "DynamicContext", args: list[Seq]) -> Seq:
    text = one_string(args[0], "ends-with()") if args[0] else ""
    return [text.endswith(one_string(args[1], "ends-with()"))]


def _fn_lower_case(context: "DynamicContext", args: list[Seq]) -> Seq:
    return [one_string(args[0], "lower-case()").lower()] if args[0] else [""]


def _fn_upper_case(context: "DynamicContext", args: list[Seq]) -> Seq:
    return [one_string(args[0], "upper-case()").upper()] if args[0] else [""]


def _fn_string(context: "DynamicContext", args: list[Seq]) -> Seq:
    if not args[0]:
        return [""]
    return [string_value(singleton(args[0], "string()"))]


def _fn_number(context: "DynamicContext", args: list[Seq]) -> Seq:
    return [to_number(singleton(args[0], "number()"))]


def _fn_count(context: "DynamicContext", args: list[Seq]) -> Seq:
    return [float(len(args[0]))]


def _fn_empty(context: "DynamicContext", args: list[Seq]) -> Seq:
    return [not args[0]]


def _fn_exists(context: "DynamicContext", args: list[Seq]) -> Seq:
    return [bool(args[0])]


def _fn_boolean(context: "DynamicContext", args: list[Seq]) -> Seq:
    return [effective_boolean_value(args[0])]


def _fn_true(context: "DynamicContext", args: list[Seq]) -> Seq:
    return [True]


def _fn_false(context: "DynamicContext", args: list[Seq]) -> Seq:
    return [False]


def _fn_concat(context: "DynamicContext", args: list[Seq]) -> Seq:
    parts = []
    for arg in args:
        parts.append(string_value(singleton(arg, "concat()")) if arg else "")
    return ["".join(parts)]


def _fn_string_join(context: "DynamicContext", args: list[Seq]) -> Seq:
    separator = one_string(args[1], "string-join()") if len(args) > 1 else ""
    return [separator.join(str(v) for v in atomize(args[0]))]


def _fn_normalize_space(context: "DynamicContext", args: list[Seq]) -> Seq:
    text = one_string(args[0], "normalize-space()") if args[0] else ""
    return [" ".join(text.split())]


def _fn_string_length(context: "DynamicContext", args: list[Seq]) -> Seq:
    text = one_string(args[0], "string-length()") if args[0] else ""
    return [float(len(text))]


def _fn_substring_before(context: "DynamicContext", args: list[Seq]) -> Seq:
    text = one_string(args[0], "substring-before()") if args[0] else ""
    marker = one_string(args[1], "substring-before()")
    before, found, _ = text.partition(marker)
    return [before if found else ""]


def _fn_substring_after(context: "DynamicContext", args: list[Seq]) -> Seq:
    text = one_string(args[0], "substring-after()") if args[0] else ""
    marker = one_string(args[1], "substring-after()")
    _, found, after = text.partition(marker)
    return [after if found else ""]


def _fn_substring(context: "DynamicContext", args: list[Seq]) -> Seq:
    text = one_string(args[0], "substring()") if args[0] else ""
    start = int(to_number(singleton(args[1], "substring()")))
    if len(args) > 2:
        length = int(to_number(singleton(args[2], "substring()")))
        return [text[max(start - 1, 0):max(start - 1, 0) + length]]
    return [text[max(start - 1, 0):]]


def _fn_matches(context: "DynamicContext", args: list[Seq]) -> Seq:
    text = one_string(args[0], "matches()") if args[0] else ""
    pattern = one_string(args[1], "matches()")
    try:
        return [re.search(pattern, text) is not None]
    except re.error as exc:
        raise XQueryTypeError(f"invalid regex {pattern!r}: {exc}") from exc


def _fn_replace(context: "DynamicContext", args: list[Seq]) -> Seq:
    text = one_string(args[0], "replace()") if args[0] else ""
    pattern = one_string(args[1], "replace()")
    replacement = one_string(args[2], "replace()")
    try:
        return [re.sub(pattern, replacement, text)]
    except re.error as exc:
        raise XQueryTypeError(f"invalid regex {pattern!r}: {exc}") from exc


def _fn_tokenize(context: "DynamicContext", args: list[Seq]) -> Seq:
    text = one_string(args[0], "tokenize()") if args[0] else ""
    pattern = one_string(args[1], "tokenize()")
    try:
        return [part for part in re.split(pattern, text) if part != ""]
    except re.error as exc:
        raise XQueryTypeError(f"invalid regex {pattern!r}: {exc}") from exc


def _fn_translate(context: "DynamicContext", args: list[Seq]) -> Seq:
    text = one_string(args[0], "translate()") if args[0] else ""
    source = one_string(args[1], "translate()")
    target = one_string(args[2], "translate()")
    table = {}
    for index, ch in enumerate(source):
        table[ord(ch)] = target[index] if index < len(target) else None
    return [text.translate(table)]


def _fn_distinct_values(context: "DynamicContext", args: list[Seq]) -> Seq:
    seen: set = set()
    out: Seq = []
    for value in atomize(args[0]):
        if value not in seen:
            seen.add(value)
            out.append(value)
    return out


def _fn_name(context: "DynamicContext", args: list[Seq]) -> Seq:
    from ..xmlmodel import XmlElement
    item = singleton(args[0], "name()")
    if not isinstance(item, XmlElement):
        raise XQueryTypeError("name() requires an element")
    return [item.tag]


def _fn_data(context: "DynamicContext", args: list[Seq]) -> Seq:
    return list(atomize(args[0]))


def _fn_not(context: "DynamicContext", args: list[Seq]) -> Seq:
    return [not effective_boolean_value(args[0])]


def _numeric_items(seq: Seq, what: str) -> list[float]:
    return [to_number(item) for item in seq]


def _fn_sum(context: "DynamicContext", args: list[Seq]) -> Seq:
    return [float(sum(_numeric_items(args[0], "sum()")))]


def _fn_avg(context: "DynamicContext", args: list[Seq]) -> Seq:
    values = _numeric_items(args[0], "avg()")
    if not values:
        return []
    return [sum(values) / len(values)]


def _fn_min(context: "DynamicContext", args: list[Seq]) -> Seq:
    values = _numeric_items(args[0], "min()")
    return [min(values)] if values else []


def _fn_max(context: "DynamicContext", args: list[Seq]) -> Seq:
    values = _numeric_items(args[0], "max()")
    return [max(values)] if values else []


def _fn_position(context: "DynamicContext", args: list[Seq]) -> Seq:
    if context.context_item is None:
        raise XQueryTypeError("position() used outside a predicate focus")
    return [float(context.context_position)]


def _fn_last(context: "DynamicContext", args: list[Seq]) -> Seq:
    if context.context_item is None:
        raise XQueryTypeError("last() used outside a predicate focus")
    return [float(context.context_size)]


def builtin_registry() -> FunctionRegistry:
    """A fresh registry pre-loaded with the builtin function library."""
    registry = FunctionRegistry()
    builtins: Iterable[tuple[str, XQueryFunction, object]] = [
        ("doc", _fn_doc, 1),
        ("contains", _fn_contains, 2),
        ("starts-with", _fn_starts_with, 2),
        ("ends-with", _fn_ends_with, 2),
        ("lower-case", _fn_lower_case, 1),
        ("upper-case", _fn_upper_case, 1),
        ("string", _fn_string, 1),
        ("number", _fn_number, 1),
        ("count", _fn_count, 1),
        ("empty", _fn_empty, 1),
        ("exists", _fn_exists, 1),
        ("boolean", _fn_boolean, 1),
        ("true", _fn_true, 0),
        ("false", _fn_false, 0),
        ("concat", _fn_concat, (2, None)),
        ("string-join", _fn_string_join, (1, 2)),
        ("normalize-space", _fn_normalize_space, 1),
        ("string-length", _fn_string_length, 1),
        ("substring-before", _fn_substring_before, 2),
        ("substring-after", _fn_substring_after, 2),
        ("substring", _fn_substring, (2, 3)),
        ("matches", _fn_matches, 2),
        ("replace", _fn_replace, 3),
        ("tokenize", _fn_tokenize, 2),
        ("translate", _fn_translate, 3),
        ("distinct-values", _fn_distinct_values, 1),
        ("name", _fn_name, 1),
        ("data", _fn_data, 1),
        ("not", _fn_not, 1),
        ("sum", _fn_sum, 1),
        ("avg", _fn_avg, 1),
        ("min", _fn_min, 1),
        ("max", _fn_max, 1),
        ("position", _fn_position, 0),
        ("last", _fn_last, 0),
    ]
    for name, fn, arity in builtins:
        registry.register(name, fn, arity)
    return registry


_DEFAULT_REGISTRY: FunctionRegistry | None = None


def default_registry() -> FunctionRegistry:
    """The shared builtin registry used when a caller passes no functions.

    Treated as immutable by convention: callers that want to register
    user-defined functions must :meth:`FunctionRegistry.copy` first (the
    UDF library already does).  Sharing one instance lets the plan cache
    key default compilations identically across call sites.
    """
    global _DEFAULT_REGISTRY
    if _DEFAULT_REGISTRY is None:
        _DEFAULT_REGISTRY = builtin_registry()
    return _DEFAULT_REGISTRY


def uses_builtin_doc(registry: FunctionRegistry) -> bool:
    """True when ``doc()`` in *registry* is the builtin resolver.

    The planner only lowers ``doc("name")`` to an index-backed document
    scan when the call would dispatch to the builtin implementation; a
    registry that rebinds ``doc`` keeps the generic function-call path.
    """
    return registry.resolves_to("doc", _fn_doc)
