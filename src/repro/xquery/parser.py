"""Recursive-descent parser for the XQuery subset.

Grammar (informal, lowest to highest precedence)::

    query        := exprSeq EOF
    exprSeq      := expr ("," expr)*
    expr         := flwor | ifExpr | quantified | orExpr
    flwor        := (forClause | letClause)+ ("where" expr)?
                    ("order" "by" orderSpec ("," orderSpec)*)?
                    "return" returnBody
    orderSpec    := expr ("ascending" | "descending")?
    quantified   := ("some" | "every") VAR "in" expr ("," VAR "in" expr)*
                    "satisfies" expr
    forClause    := "for" VAR "in" expr ("," VAR "in" expr)*
    letClause    := "let" VAR ":=" expr ("," VAR ":=" expr)*
    returnBody   := expr (expr)*          -- juxtaposition tolerated (paper style)
    ifExpr       := "if" "(" expr ")" "then" expr "else" expr
    orExpr       := andExpr ("or" andExpr)*
    andExpr      := cmpExpr ("and" cmpExpr)*
    cmpExpr      := addExpr (CMPOP addExpr)?
    addExpr      := unary (("+"|"-") unary)*
    unary        := "not" unary | "-" unary | pathExpr
    pathExpr     := primary (("/"|"//") step)*
    step         := NAME | "*" | "@" NAME | "text" "(" ")" , each with
                    ("[" expr "]")* predicates
    primary      := literal | VAR | "." | functionCall
                  | "(" exprSeq? ")" | "element" NAME "{" exprSeq? "}"
    functionCall := NAME "(" exprSeq? ")"

The return-body juxtaposition rule exists because the paper prints
``RETURN $b/Title $b/Day`` (Benchmark Query 12) without a comma; standard
comma-separated sequences are of course accepted too.
"""

from __future__ import annotations

from .ast import (
    Arithmetic,
    Comparison,
    ContextItem,
    ElementConstructor,
    Expr,
    FLWOR,
    ForClause,
    FunctionCall,
    IfExpr,
    LetClause,
    Literal,
    Logical,
    Not,
    OrderSpec,
    PathExpr,
    Quantified,
    Sequence,
    Step,
    VarRef,
)
from .errors import XQuerySyntaxError
from .lexer import tokenize
from .tokens import EOF, NAME, NUMBER, STRING, SYMBOL, VARIABLE, Token

_COMPARISON_OPS = ("=", "!=", "<", "<=", ">", ">=")


class _Parser:
    def __init__(self, source: str) -> None:
        self._source = source
        self._tokens = tokenize(source)
        self._index = 0

    # -- token utilities ------------------------------------------------- #

    @property
    def _current(self) -> Token:
        return self._tokens[self._index]

    def _advance(self) -> Token:
        token = self._current
        if token.kind != EOF:
            self._index += 1
        return token

    def _error(self, message: str) -> XQuerySyntaxError:
        return XQuerySyntaxError(message, self._source, self._current.position)

    def _expect_symbol(self, symbol: str) -> None:
        if not self._current.is_symbol(symbol):
            raise self._error(f"expected {symbol!r}, found {self._current.value!r}")
        self._advance()

    def _expect_keyword(self, word: str) -> None:
        if not self._current.is_keyword(word):
            raise self._error(f"expected '{word}', found {self._current.value!r}")
        self._advance()

    def _expect_kind(self, kind: str) -> Token:
        if self._current.kind != kind:
            raise self._error(f"expected {kind}, found {self._current.value!r}")
        return self._advance()

    # -- grammar --------------------------------------------------------- #

    def parse_query(self) -> Expr:
        expr = self._parse_expr_seq()
        if self._current.kind != EOF:
            raise self._error(f"unexpected trailing {self._current.value!r}")
        return expr

    def _parse_expr_seq(self) -> Expr:
        items = [self._parse_expr()]
        while self._current.is_symbol(","):
            self._advance()
            items.append(self._parse_expr())
        return items[0] if len(items) == 1 else Sequence(tuple(items))

    def _parse_expr(self) -> Expr:
        if self._current.is_keyword("for") or self._current.is_keyword("let"):
            return self._parse_flwor()
        if self._current.is_keyword("if"):
            return self._parse_if()
        if self._current.is_keyword("some") or \
                self._current.is_keyword("every"):
            return self._parse_quantified()
        return self._parse_or()

    def _parse_quantified(self) -> Quantified:
        kind = self._advance().value
        bindings = self._parse_for_bindings()
        if not self._current.is_keyword("satisfies"):
            raise self._error("quantified expression requires 'satisfies'")
        self._advance()
        return Quantified(kind, tuple(bindings), self._parse_expr())

    def _parse_flwor(self) -> FLWOR:
        clauses: list[ForClause | LetClause] = []
        while True:
            if self._current.is_keyword("for"):
                self._advance()
                clauses.extend(self._parse_for_bindings())
            elif self._current.is_keyword("let"):
                self._advance()
                clauses.extend(self._parse_let_bindings())
            else:
                break
        if not clauses:
            raise self._error("FLWOR requires at least one for/let clause")
        where: Expr | None = None
        if self._current.is_keyword("where"):
            self._advance()
            where = self._parse_expr()
        order_specs = self._parse_order_by()
        self._expect_keyword("return")
        returns = self._parse_return_body()
        return FLWOR(tuple(clauses), where, returns, order_specs)

    def _parse_order_by(self) -> tuple[OrderSpec, ...]:
        if not self._current.is_keyword("order"):
            return ()
        self._advance()
        self._expect_keyword("by")
        specs = [self._parse_one_order_spec()]
        while self._current.is_symbol(","):
            self._advance()
            specs.append(self._parse_one_order_spec())
        return tuple(specs)

    def _parse_one_order_spec(self) -> OrderSpec:
        key = self._parse_expr()
        descending = False
        if self._current.is_keyword("descending"):
            descending = True
            self._advance()
        elif self._current.is_keyword("ascending"):
            self._advance()
        return OrderSpec(key, descending)

    def _parse_for_bindings(self) -> list[ForClause]:
        bindings = [self._parse_one_for_binding()]
        while self._current.is_symbol(","):
            self._advance()
            bindings.append(self._parse_one_for_binding())
        return bindings

    def _parse_one_for_binding(self) -> ForClause:
        variable = self._expect_kind(VARIABLE).value
        self._expect_keyword("in")
        return ForClause(variable, self._parse_expr())

    def _parse_let_bindings(self) -> list[LetClause]:
        bindings = [self._parse_one_let_binding()]
        while self._current.is_symbol(","):
            self._advance()
            bindings.append(self._parse_one_let_binding())
        return bindings

    def _parse_one_let_binding(self) -> LetClause:
        variable = self._expect_kind(VARIABLE).value
        self._expect_symbol(":=")
        return LetClause(variable, self._parse_expr())

    def _parse_return_body(self) -> Expr:
        items = [self._parse_expr()]
        while True:
            if self._current.is_symbol(","):
                self._advance()
                items.append(self._parse_expr())
            elif self._current.kind == VARIABLE:
                # Paper-style juxtaposition: RETURN $b/Title $b/Day
                items.append(self._parse_expr())
            else:
                break
        return items[0] if len(items) == 1 else Sequence(tuple(items))

    def _parse_if(self) -> IfExpr:
        self._expect_keyword("if")
        self._expect_symbol("(")
        condition = self._parse_expr_seq()
        self._expect_symbol(")")
        self._expect_keyword("then")
        then_branch = self._parse_expr()
        self._expect_keyword("else")
        else_branch = self._parse_expr()
        return IfExpr(condition, then_branch, else_branch)

    def _parse_or(self) -> Expr:
        left = self._parse_and()
        while self._current.is_keyword("or"):
            self._advance()
            left = Logical("or", left, self._parse_and())
        return left

    def _parse_and(self) -> Expr:
        left = self._parse_comparison()
        while self._current.is_keyword("and"):
            self._advance()
            left = Logical("and", left, self._parse_comparison())
        return left

    def _parse_comparison(self) -> Expr:
        left = self._parse_additive()
        if self._current.kind == SYMBOL and self._current.value in _COMPARISON_OPS:
            op = self._advance().value
            right = self._parse_additive()
            return Comparison(op, left, right)
        return left

    def _parse_additive(self) -> Expr:
        left = self._parse_unary()
        while self._current.is_symbol("+", "-"):
            op = self._advance().value
            left = Arithmetic(op, left, self._parse_unary())
        return left

    def _parse_unary(self) -> Expr:
        if self._current.is_keyword("not"):
            self._advance()
            return Not(self._parse_unary())
        if self._current.is_symbol("-"):
            self._advance()
            return Arithmetic("-", Literal(0.0), self._parse_unary())
        return self._parse_path()

    def _parse_path(self) -> Expr:
        base = self._parse_primary()
        steps: list[Step] = []
        while self._current.is_symbol("/", "//"):
            axis = "descendant" if self._advance().value == "//" else "child"
            steps.append(self._parse_step(axis))
        return PathExpr(base, tuple(steps)) if steps else base

    def _parse_step(self, axis: str) -> Step:
        token = self._current
        if token.is_symbol("@"):
            self._advance()
            name = self._expect_kind(NAME).value
            return Step(axis, "attribute", name,
                        self._parse_predicates(allowed=False))
        if token.is_symbol("*"):
            self._advance()
            return Step(axis, "element", "*", self._parse_predicates())
        if token.kind == NAME:
            self._advance()
            if token.value == "text" and self._current.is_symbol("("):
                self._advance()
                self._expect_symbol(")")
                return Step(axis, "text", "text()",
                            self._parse_predicates(allowed=False))
            return Step(axis, "element", token.value, self._parse_predicates())
        raise self._error(f"expected a path step, found {token.value!r}")

    def _parse_predicates(self, allowed: bool = True) -> tuple[Expr, ...]:
        predicates: list[Expr] = []
        while self._current.is_symbol("["):
            if not allowed:
                raise self._error("predicates not allowed on this step")
            self._advance()
            predicates.append(self._parse_expr_seq())
            self._expect_symbol("]")
        return tuple(predicates)

    def _parse_primary(self) -> Expr:
        token = self._current
        if token.kind == STRING:
            self._advance()
            return Literal(token.value)
        if token.kind == NUMBER:
            self._advance()
            return Literal(float(token.value))
        if token.kind == VARIABLE:
            self._advance()
            return VarRef(token.value)
        if token.is_symbol("."):
            self._advance()
            return ContextItem()
        if token.is_symbol("("):
            self._advance()
            if self._current.is_symbol(")"):
                self._advance()
                return Sequence(())
            inner = self._parse_expr_seq()
            self._expect_symbol(")")
            return inner
        if token.is_keyword("element"):
            return self._parse_element_constructor()
        if token.kind == NAME:
            if self._tokens[self._index + 1].is_symbol("("):
                return self._parse_function_call()
            # Bare name: a relative path step from the context item, as in
            # predicate expressions like Course[Title = 'DB'].
            self._advance()
            step = Step("child", "element", token.value,
                        self._parse_predicates())
            return PathExpr(ContextItem(), (step,))
        if token.is_symbol("@"):
            # Relative attribute step, as in Course[@code = 'CS145'].
            self._advance()
            name = self._expect_kind(NAME).value
            return PathExpr(ContextItem(),
                            (Step("child", "attribute", name),))
        raise self._error(f"unexpected token {token.value!r}")

    def _parse_element_constructor(self) -> ElementConstructor:
        self._expect_keyword("element")
        name = self._expect_kind(NAME).value
        self._expect_symbol("{")
        content: Expr | None = None
        if not self._current.is_symbol("}"):
            content = self._parse_expr_seq()
        self._expect_symbol("}")
        return ElementConstructor(name, content)

    def _parse_function_call(self) -> FunctionCall:
        name = self._expect_kind(NAME).value
        self._expect_symbol("(")
        args: list[Expr] = []
        if not self._current.is_symbol(")"):
            args.append(self._parse_expr())
            while self._current.is_symbol(","):
                self._advance()
                args.append(self._parse_expr())
        self._expect_symbol(")")
        return FunctionCall(name, tuple(args))


def parse_query(source: str) -> Expr:
    """Parse XQuery text into an AST.

    Raises:
        XQuerySyntaxError: on any lexical or grammatical problem.
    """
    return _Parser(source).parse_query()
