"""THALIA reproduction: testbed, benchmark and scoring harness.

Reproduction of J. Hammer, M. Stonebraker, O. Topsakal, "THALIA: Test
Harness for the Assessment of Legacy Information Integration Approaches"
(University of Florida TR05-001 / ICDE 2005).

Subpackages, bottom-up:

* :mod:`repro.xmlmodel` -- XML document model, parser, serializer, simple
  paths, XSD-subset inference/validation.
* :mod:`repro.xquery` -- XQuery-subset engine running the benchmark
  queries natively.
* :mod:`repro.tess` -- the TESS screen scraper: regex wrapper configs and
  the extraction engine (with the nested-structure extension).
* :mod:`repro.catalogs` -- the synthetic testbed: canonical course data,
  25 university snapshot renderers, extraction pipeline.
* :mod:`repro.integration` -- global schema, mapping operators for all
  twelve heterogeneity capabilities, two-kind nulls, mediator.
* :mod:`repro.systems` -- Cohera and IWIZ capability models plus the full
  THALIA mediator.
* :mod:`repro.core` -- the benchmark itself: twelve queries, gold
  answers, scoring function, runner, honor roll.
* :mod:`repro.website` -- the THALIA web site generator and download
  bundles.

Thirty-second tour::

    from repro.catalogs import build_testbed
    from repro.core import run_all, render_scoreboard
    from repro.systems import cohera, iwiz, thalia_mediator

    testbed = build_testbed()
    cards = run_all([cohera(), iwiz(), thalia_mediator()], testbed)
    print(render_scoreboard(cards))
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
