"""Benchmark self-check: is this testbed build a valid THALIA instance?

A benchmark is only as good as its own invariants. This module verifies,
for any testbed build (any seed, any source subset), everything the paper
promises about THALIA itself:

1. every benchmark query's two sources are present, extractable and
   schema-valid;
2. every gold answer is non-empty and draws on *both* the reference and
   the challenge source (otherwise the heterogeneity would be untested);
3. every cleaned reference query runs natively and returns results on its
   reference source;
4. the full mediator reproduces every gold answer (the benchmark is
   *solvable*);
5. the heterogeneity classification is fully covered (each of the twelve
   cases has its exhibiting source pair).

``thalia`` exposes this as part of the ``stats`` command's exit status;
the test suite and CI-style checks call :func:`validate_benchmark`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..catalogs import Testbed
from ..catalogs.stats import coverage_report
from ..xquery import XQueryError, shared_plan_cache, shared_result_cache
from .answers import cached_gold_answer
from .queries import QUERIES


@dataclass
class ValidationIssue:
    """One problem found during self-check."""

    check: str
    query: int | None
    detail: str

    def __str__(self) -> str:
        scope = f"Q{self.query}" if self.query is not None else "testbed"
        return f"[{self.check}] {scope}: {self.detail}"


@dataclass
class ValidationResult:
    """Outcome of a full self-check run."""

    issues: list[ValidationIssue] = field(default_factory=list)
    checks_run: int = 0

    @property
    def ok(self) -> bool:
        return not self.issues

    def render(self) -> str:
        lines = [f"benchmark self-check: {self.checks_run} checks, "
                 f"{len(self.issues)} issue(s)"]
        lines.extend(f"  {issue}" for issue in self.issues)
        if self.ok:
            lines.append("  all invariants hold")
        return "\n".join(lines)


def validate_benchmark(testbed: Testbed) -> ValidationResult:
    """Run every self-check against *testbed*."""
    result = ValidationResult()

    def issue(check: str, query: int | None, detail: str) -> None:
        result.issues.append(ValidationIssue(check, query, detail))

    # 1. Sources present and schema-valid.
    for query in QUERIES:
        result.checks_run += 1
        for slug in query.sources:
            if slug not in testbed:
                issue("sources", query.number, f"source {slug!r} missing")
                continue
            bundle = testbed.source(slug)
            if not bundle.schema.is_valid(bundle.document):
                issue("sources", query.number,
                      f"{slug} fails its own schema")
            if bundle.stats.records == 0:
                issue("sources", query.number, f"{slug} extracted nothing")

    # 2. Gold answers: non-empty and spanning both sources.  Resolved
    # through the shared result cache, so a benchmark run followed by a
    # self-check (or server-side re-validation of an uploaded score)
    # computes each gold answer once per testbed content fingerprint.
    for query in QUERIES:
        result.checks_run += 1
        try:
            gold = cached_gold_answer(query, testbed)
        except KeyError:
            continue  # already reported as a missing source
        if not gold:
            issue("gold", query.number, "gold answer is empty")
            continue
        sources = {entry[0] for entry in gold}
        missing = set(query.sources) - sources
        if missing:
            issue("gold", query.number,
                  f"gold answer has no rows from {sorted(missing)}")

    # 3. Reference queries compile and run natively.  Going through the
    # shared plan cache means repeated self-checks (tests, `thalia stats`,
    # the server's startup probe) compile each benchmark query once, and
    # the shared result cache means they *execute* each one at most once
    # per testbed content fingerprint.
    documents = testbed.documents
    content_fp = testbed.content_fingerprint()
    plans = shared_plan_cache()
    results = shared_result_cache()
    for query in QUERIES:
        result.checks_run += 1
        if query.reference not in testbed:
            continue
        try:
            rows = results.execute(plans.get(query.xquery), documents,
                                   content_fp)
        except XQueryError as exc:
            issue("reference-query", query.number, f"raises {exc}")
            continue
        if not rows:
            issue("reference-query", query.number,
                  "returns nothing on its reference source")

    # 4. The benchmark is solvable by the full mediator.
    from ..systems import thalia_mediator  # local import: avoid cycle

    system = thalia_mediator()
    for query in QUERIES:
        result.checks_run += 1
        if any(slug not in testbed for slug in query.sources):
            continue
        attempt = system.answer(query, testbed)
        if attempt.answer != cached_gold_answer(query, testbed):
            issue("solvable", query.number,
                  "full mediator does not reproduce the gold answer")

    # 5. Heterogeneity coverage.
    result.checks_run += 1
    report = coverage_report(testbed)
    for number in range(1, 13):
        if not report.by_query.get(number):
            issue("coverage", number, "no source exhibits this case")

    return result
