"""Benchmark runner: systems × queries → score cards.

Since PR 4 the harness executes in two layers:

* **result reuse** — gold answers go through the shared
  :class:`~repro.xquery.results.ResultCache` (computed once per query per
  testbed content fingerprint, shared by every system in the run), and
  :class:`~repro.systems.base.CapabilityModelSystem` caches per-source
  integrations the same way;
* **parallel fan-out** — ``workers > 1`` spreads the (system, query)
  pairs over a ``ThreadPoolExecutor``.

Outcomes are reassembled by (system position, query number), never by
completion order, so a parallel run's score cards are byte-identical to
the serial run's — ``tests/core/test_runner_parallel.py`` and the CI
``concurrency-smoke`` job hold us to that.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING, Iterable

from ..catalogs import Testbed, shared_testbed
from ..xquery import shared_plan_cache
from .answers import cached_gold_answer, gold_answer
from .queries import QUERIES, Answer, BenchmarkQuery
from .scoring import QueryOutcome, ScoreCard

if TYPE_CHECKING:  # pragma: no cover
    from ..systems.base import IntegrationSystem


def run_query(system: "IntegrationSystem", query: BenchmarkQuery,
              testbed: Testbed, gold: Answer | None = None) -> QueryOutcome:
    """Run one system on one benchmark query and judge the answer.

    Callers scoring many systems pass the precomputed *gold* so it is
    derived once per query, not once per (system, query).
    """
    if gold is None:
        gold = gold_answer(query, testbed)
    attempt = system.answer(query, testbed)
    return QueryOutcome(
        number=query.number,
        supported=attempt.supported,
        correct=attempt.answer == gold,
        effort=attempt.effort,
        note=attempt.note,
    )


def _warm_plans(queries: list[BenchmarkQuery]) -> None:
    # Warm the shared plan cache up front: systems that evaluate the
    # benchmark text natively (and anything re-running it afterwards,
    # e.g. claim validation) then hit compiled plans every time.
    plans = shared_plan_cache()
    for query in queries:
        plans.get(query.xquery)


def _run_cards(systems: list["IntegrationSystem"], bed: Testbed,
               chosen: list[BenchmarkQuery], workers: int) -> list[ScoreCard]:
    """Score *systems* over *chosen* queries, deterministically.

    Gold answers are resolved through the shared result cache first —
    one computation per query, shared by every system and every worker —
    then the (system, query) grid fans out.  Each cell is independent
    (systems share nothing but caches, which are thread-safe), and the
    grid is reassembled positionally, so worker count and completion
    order can never reorder an outcome.
    """
    _warm_plans(chosen)
    golds = {query.number: cached_gold_answer(query, bed)
             for query in chosen}
    cards = [ScoreCard(system=system.name) for system in systems]
    cells = [(index, query) for index in range(len(systems))
             for query in chosen]
    if workers > 1 and len(cells) > 1:
        with ThreadPoolExecutor(max_workers=workers) as pool:
            outcomes = list(pool.map(
                lambda cell: run_query(systems[cell[0]], cell[1], bed,
                                       gold=golds[cell[1].number]),
                cells))
    else:
        outcomes = [run_query(systems[index], query, bed,
                              gold=golds[query.number])
                    for index, query in cells]
    for (index, _query), outcome in zip(cells, outcomes):
        cards[index].outcomes.append(outcome)
    return cards


def run_benchmark(system: "IntegrationSystem",
                  testbed: Testbed | None = None,
                  queries: Iterable[BenchmarkQuery] | None = None,
                  workers: int = 1) -> ScoreCard:
    """Run a system through the (full, by default) benchmark.

    When no testbed is passed, the process-wide shared build is used, so
    consecutive ``run_benchmark`` calls (and :func:`run_all`) pay for at
    most one testbed build per process.  ``workers > 1`` runs the queries
    concurrently; the outcome order is identical either way.
    """
    bed = testbed if testbed is not None else shared_testbed()
    chosen = list(queries) if queries is not None else list(QUERIES)
    return _run_cards([system], bed, chosen, workers)[0]


def run_all(systems: Iterable["IntegrationSystem"],
            testbed: Testbed | None = None,
            workers: int = 1) -> list[ScoreCard]:
    """Run several systems over one shared testbed build.

    Plan-cache warmup happens once for the whole run (not once per
    system), gold answers are computed once per query and shared across
    systems, and ``workers > 1`` fans every (system, query) pair over a
    thread pool.  Score cards come back in input-system order with
    outcomes in query order — byte-identical to ``workers=1``.
    """
    bed = testbed if testbed is not None else shared_testbed()
    return _run_cards(list(systems), bed, list(QUERIES), workers)
