"""Benchmark runner: systems × queries → score cards."""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from ..catalogs import Testbed, shared_testbed
from ..xquery import shared_plan_cache
from .answers import gold_answer
from .queries import QUERIES, BenchmarkQuery
from .scoring import QueryOutcome, ScoreCard

if TYPE_CHECKING:  # pragma: no cover
    from ..systems.base import IntegrationSystem


def run_query(system: "IntegrationSystem", query: BenchmarkQuery,
              testbed: Testbed) -> QueryOutcome:
    """Run one system on one benchmark query and judge the answer."""
    gold = gold_answer(query, testbed)
    attempt = system.answer(query, testbed)
    return QueryOutcome(
        number=query.number,
        supported=attempt.supported,
        correct=attempt.answer == gold,
        effort=attempt.effort,
        note=attempt.note,
    )


def run_benchmark(system: "IntegrationSystem",
                  testbed: Testbed | None = None,
                  queries: Iterable[BenchmarkQuery] | None = None
                  ) -> ScoreCard:
    """Run a system through the (full, by default) benchmark.

    When no testbed is passed, the process-wide shared build is used, so
    consecutive ``run_benchmark`` calls (and :func:`run_all`) pay for at
    most one testbed build per process.
    """
    bed = testbed if testbed is not None else shared_testbed()
    chosen = list(queries) if queries is not None else list(QUERIES)
    # Warm the shared plan cache up front: systems that evaluate the
    # benchmark text natively (and anything re-running it afterwards,
    # e.g. claim validation) then hit compiled plans every time.
    plans = shared_plan_cache()
    for query in chosen:
        plans.get(query.xquery)
    card = ScoreCard(system=system.name)
    for query in chosen:
        card.outcomes.append(run_query(system, query, bed))
    return card


def run_all(systems: Iterable["IntegrationSystem"],
            testbed: Testbed | None = None) -> list[ScoreCard]:
    """Run several systems over one shared testbed build."""
    bed = testbed if testbed is not None else shared_testbed()
    return [run_benchmark(system, bed) for system in systems]
