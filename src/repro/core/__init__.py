"""THALIA benchmark core: the paper's primary contribution.

* :data:`QUERIES` / :func:`get_query` — the twelve benchmark queries with
  their reference/challenge source pairings and semantic evaluators.
* :func:`gold_answer` — correct answers computed from the canonical data.
* :class:`ScoreCard` / :func:`rank` — the §3.2 scoring function.
* :func:`run_benchmark` / :func:`run_all` — the harness.
* :class:`HonorRoll` — uploaded-score persistence and ranking.
* :mod:`repro.core.report` — §4.2-style tables.

End-to-end::

    from repro.catalogs import build_testbed
    from repro.core import run_all
    from repro.core.report import render_scoreboard
    from repro.systems import cohera, iwiz, thalia_mediator

    cards = run_all([cohera(), iwiz(), thalia_mediator()], build_testbed())
    print(render_scoreboard(cards))
"""

from .answers import cached_gold_answer, gold_answer
from .honor_roll import HonorRoll, HonorRollEntry
from .queries import QUERIES, Answer, BenchmarkQuery, get_query
from .report import (
    query_short_name,
    render_query_description,
    render_query_matrix,
    render_scoreboard,
    render_system_table,
)
from .runner import run_all, run_benchmark, run_query
from .scoring import (
    MAX_CORRECT,
    QueryOutcome,
    ScoreCard,
    rank,
    validate_claims,
)
from .taxonomy import HeterogeneityCase, all_cases, render_case, render_taxonomy
from .validation import ValidationIssue, ValidationResult, validate_benchmark

__all__ = [
    "Answer",
    "BenchmarkQuery",
    "HeterogeneityCase",
    "HonorRoll",
    "HonorRollEntry",
    "MAX_CORRECT",
    "QUERIES",
    "QueryOutcome",
    "ScoreCard",
    "ValidationIssue",
    "ValidationResult",
    "get_query",
    "all_cases",
    "cached_gold_answer",
    "gold_answer",
    "query_short_name",
    "rank",
    "render_case",
    "render_query_description",
    "render_taxonomy",
    "render_query_matrix",
    "render_scoreboard",
    "render_system_table",
    "run_all",
    "run_benchmark",
    "run_query",
    "validate_benchmark",
    "validate_claims",
]
