"""THALIA's scoring function (§3.2 of the paper).

* Each correctly answered benchmark query is worth **1 point**, for a
  maximum of 12.
* Queries the system answers only with the help of an external function
  are charged a **complexity score**: low = 1, medium = 2, high = 3.
* Among systems with the same number of correct answers, the *higher* the
  complexity score the *lower* the rank ("the higher the complexity score,
  the lower the level of sophistication of the integration system").
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Iterable

from ..integration import Effort

MAX_CORRECT = 12


@dataclass(frozen=True)
class QueryOutcome:
    """Result of one system on one benchmark query."""

    number: int
    supported: bool            # the system claims the needed capabilities
    correct: bool              # its answer equals the gold answer
    effort: Effort | None      # custom-code effort charged when supported
    note: str = ""

    @property
    def complexity_points(self) -> int:
        """Complexity charged for this query (0 when unsupported/no code)."""
        if not self.supported or self.effort is None:
            return 0
        return int(self.effort)

    @property
    def effort_label(self) -> str:
        if not self.supported:
            return "not supported"
        assert self.effort is not None
        return self.effort.label

    # -- (de)serialization ------------------------------------------------#

    def to_dict(self) -> dict:
        return {
            "number": self.number,
            "supported": self.supported,
            "correct": self.correct,
            "effort": self.effort.name if self.effort is not None else None,
            "note": self.note,
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "QueryOutcome":
        number = raw["number"]
        supported = raw["supported"]
        correct = raw["correct"]
        if not isinstance(number, int) or isinstance(number, bool):
            raise ValueError(f"outcome number must be an int, got {number!r}")
        if not isinstance(supported, bool) or not isinstance(correct, bool):
            raise ValueError(
                f"supported/correct must be booleans in outcome {number}")
        effort_name = raw.get("effort")
        if effort_name is None:
            effort = None
        else:
            try:
                effort = Effort[effort_name]
            except (KeyError, TypeError):
                raise ValueError(
                    f"unknown effort {effort_name!r} in outcome {number}"
                ) from None
        note = raw.get("note", "")
        if not isinstance(note, str):
            raise ValueError(f"note must be a string in outcome {number}")
        return cls(number=number, supported=supported, correct=correct,
                   effort=effort, note=note)


@dataclass
class ScoreCard:
    """A full benchmark run for one system."""

    system: str
    outcomes: list[QueryOutcome] = field(default_factory=list)

    def outcome(self, number: int) -> QueryOutcome:
        for entry in self.outcomes:
            if entry.number == number:
                return entry
        raise KeyError(f"no outcome recorded for query {number}")

    @property
    def correct_count(self) -> int:
        """The paper's primary score: correct answers out of 12."""
        return sum(1 for o in self.outcomes if o.correct)

    @property
    def complexity_score(self) -> int:
        """Total complexity points over the *correct* answers."""
        return sum(o.complexity_points for o in self.outcomes if o.correct)

    @property
    def no_code_count(self) -> int:
        """Queries answered correctly with no custom code at all."""
        return sum(1 for o in self.outcomes
                   if o.correct and o.effort == Effort.NONE)

    @property
    def unsupported_numbers(self) -> list[int]:
        return [o.number for o in self.outcomes if not o.supported]

    @property
    def sort_key(self) -> tuple[int, int]:
        """Rank key: more correct first; ties broken by lower complexity."""
        return (-self.correct_count, self.complexity_score)

    def summary(self) -> str:
        return (f"{self.system}: {self.correct_count}/{MAX_CORRECT} correct, "
                f"complexity {self.complexity_score} "
                f"({self.no_code_count} with no code)")

    # -- (de)serialization ------------------------------------------------#

    def to_dict(self) -> dict:
        return {
            "system": self.system,
            "outcomes": [o.to_dict() for o in self.outcomes],
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "ScoreCard":
        if not isinstance(raw, dict):
            raise ValueError("score card must be a JSON object")
        system = raw.get("system")
        if not isinstance(system, str) or not system:
            raise ValueError("score card needs a non-empty 'system' string")
        outcomes = raw.get("outcomes")
        if not isinstance(outcomes, list):
            raise ValueError("score card needs an 'outcomes' list")
        card = cls(system=system)
        for entry in outcomes:
            if not isinstance(entry, dict):
                raise ValueError("each outcome must be a JSON object")
            card.outcomes.append(QueryOutcome.from_dict(entry))
        return card

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ScoreCard":
        try:
            raw = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"score card is not valid JSON: {exc}") from None
        return cls.from_dict(raw)


def rank(cards: list[ScoreCard]) -> list[ScoreCard]:
    """Order score cards per the paper's ranking rule (stable)."""
    return sorted(cards, key=lambda card: card.sort_key)


def validate_claims(card: ScoreCard,
                    claimed_correct: int | None = None,
                    claimed_complexity: int | None = None,
                    numbers: "Iterable[int] | None" = None) -> list[str]:
    """Server-side re-scoring hook: why an uploaded card must be rejected.

    The honor-roll service cannot re-run a stranger's integration system,
    but it *can* re-score the claimed per-query outcomes with the paper's
    own scoring function and refuse cards whose structure is malformed or
    whose claimed totals are inflated relative to that re-scoring.
    Returns a list of problems; an empty list means the card is admissible.

    ``numbers`` names the query numbers the card is expected to cover —
    generated scenario suites use numbers above 12.  The default (None)
    keeps the canonical rule: every outcome must be one of queries 1-12.
    """
    problems: list[str] = []
    claimed = [o.number for o in card.outcomes]
    if not claimed:
        problems.append("score card has no outcomes")
    if numbers is None:
        for number in claimed:
            if not 1 <= number <= MAX_CORRECT:
                problems.append(f"query number {number} out of range 1..12")
    else:
        allowed = set(numbers)
        for number in claimed:
            if number not in allowed:
                problems.append(
                    f"query number {number} not in the expected set")
    duplicates = sorted({n for n in claimed if claimed.count(n) > 1})
    if duplicates:
        problems.append(f"duplicate outcomes for queries {duplicates}")
    for outcome in card.outcomes:
        if outcome.correct and not outcome.supported:
            problems.append(
                f"query {outcome.number} claims correct but unsupported")
        if outcome.supported and outcome.effort is None:
            problems.append(
                f"query {outcome.number} is supported but declares no "
                "effort level")
    if claimed_correct is not None and \
            claimed_correct != card.correct_count:
        problems.append(
            f"claims {claimed_correct} correct but re-scores to "
            f"{card.correct_count}")
    if claimed_complexity is not None and \
            claimed_complexity != card.complexity_score:
        problems.append(
            f"claims complexity {claimed_complexity} but re-scores to "
            f"{card.complexity_score}")
    return problems
