"""THALIA's scoring function (§3.2 of the paper).

* Each correctly answered benchmark query is worth **1 point**, for a
  maximum of 12.
* Queries the system answers only with the help of an external function
  are charged a **complexity score**: low = 1, medium = 2, high = 3.
* Among systems with the same number of correct answers, the *higher* the
  complexity score the *lower* the rank ("the higher the complexity score,
  the lower the level of sophistication of the integration system").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..integration import Effort

MAX_CORRECT = 12


@dataclass(frozen=True)
class QueryOutcome:
    """Result of one system on one benchmark query."""

    number: int
    supported: bool            # the system claims the needed capabilities
    correct: bool              # its answer equals the gold answer
    effort: Effort | None      # custom-code effort charged when supported
    note: str = ""

    @property
    def complexity_points(self) -> int:
        """Complexity charged for this query (0 when unsupported/no code)."""
        if not self.supported or self.effort is None:
            return 0
        return int(self.effort)

    @property
    def effort_label(self) -> str:
        if not self.supported:
            return "not supported"
        assert self.effort is not None
        return self.effort.label


@dataclass
class ScoreCard:
    """A full benchmark run for one system."""

    system: str
    outcomes: list[QueryOutcome] = field(default_factory=list)

    def outcome(self, number: int) -> QueryOutcome:
        for entry in self.outcomes:
            if entry.number == number:
                return entry
        raise KeyError(f"no outcome recorded for query {number}")

    @property
    def correct_count(self) -> int:
        """The paper's primary score: correct answers out of 12."""
        return sum(1 for o in self.outcomes if o.correct)

    @property
    def complexity_score(self) -> int:
        """Total complexity points over the *correct* answers."""
        return sum(o.complexity_points for o in self.outcomes if o.correct)

    @property
    def no_code_count(self) -> int:
        """Queries answered correctly with no custom code at all."""
        return sum(1 for o in self.outcomes
                   if o.correct and o.effort == Effort.NONE)

    @property
    def unsupported_numbers(self) -> list[int]:
        return [o.number for o in self.outcomes if not o.supported]

    @property
    def sort_key(self) -> tuple[int, int]:
        """Rank key: more correct first; ties broken by lower complexity."""
        return (-self.correct_count, self.complexity_score)

    def summary(self) -> str:
        return (f"{self.system}: {self.correct_count}/{MAX_CORRECT} correct, "
                f"complexity {self.complexity_score} "
                f"({self.no_code_count} with no code)")


def rank(cards: list[ScoreCard]) -> list[ScoreCard]:
    """Order score cards per the paper's ranking rule (stable)."""
    return sorted(cards, key=lambda card: card.sort_key)
